//! # pmr — Progressive MGARD Retrieval with DNN error control
//!
//! Umbrella crate for the workspace reproducing *"Improving Progressive
//! Retrieval for HPC Scientific Data using Deep Neural Network"* (ICDE 2023).
//!
//! It re-exports the public API of every member crate so that downstream
//! users (and the examples and integration tests in this repository) can
//! depend on a single crate:
//!
//! * [`field`] — field containers, statistics, error metrics
//! * [`sim`] — Gray-Scott and synthetic WarpX data generators
//! * [`codec`] — bitstreams, negabinary mapping, lossless RLE
//! * [`mgard`] — multilevel decomposition + bit-plane progressive compressor
//! * [`storage`] — storage-tier hierarchy model and fault-tolerant
//!   segment I/O (retries, checksums, degraded retrieval)
//! * [`nn`] — from-scratch MLP library (Huber loss, Adam, …)
//! * [`core`] — D-MGARD and E-MGARD retrievers and the experiment runner
//! * [`conformance`] — error-bound conformance sweeps, differential checks,
//!   and golden-artifact verification (`pmrtool conformance`)
//! * [`analyze`] — workspace static analysis: domain lints guarding the
//!   error-bound contract (`pmrtool analyze`)
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! system inventory.

pub use pmr_analysis as analysis;
pub use pmr_analyze as analyze;
pub use pmr_blockcodec as blockcodec;
pub use pmr_codec as codec;
pub use pmr_conformance as conformance;
pub use pmr_core as core;
pub use pmr_error::{PmrError, Result as PmrResult};
pub use pmr_field as field;
pub use pmr_mgard as mgard;
pub use pmr_nn as nn;
pub use pmr_sim as sim;
pub use pmr_storage as storage;
