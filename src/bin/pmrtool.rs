//! `pmrtool` — command-line front end for the progressive compressor.
//!
//! ```text
//! pmrtool gen warpx <dir> [--size N] [--snapshots T] [--field Bx|Ex|Jx]
//! pmrtool gen grayscott <dir> [--size N] [--snapshots T] [--species u|v]
//! pmrtool compress <in.pmrf> <out.pmrc> [--levels L] [--planes B] [--mode interp|l2]
//!                  [--threads N]
//! pmrtool retrieve <in.pmrc> <out.pmrf> (--rel <x> | --abs <x> | --budget <bytes>)
//! pmrtool info <in.pmrc>
//! pmrtool conformance [--grid quick|full] [--seed N] [--golden <dir>]
//!                     [--regen-golden] [--golden-only] [--report <path>]
//! pmrtool faultsim [--grid quick|full] [--seed N] [--report <path>]
//! pmrtool analyze [--root <dir>] [--config <analyze.toml>] [--report <path>]
//!                 [--sarif <path>] [--diff <baseline.json> | --write-baseline <path>]
//! ```
//!
//! Field files use the `pmr-field` binary format (`.pmrf`); artifacts the
//! `pmr-mgard` persistence format (`.pmrc`).

use pmr::analyze::{self, AnalyzeConfig};
use pmr::blockcodec::{persist as block_persist, BlockCompressed, BlockConfig};
use pmr::conformance::{self, FaultGridConfig, SweepConfig};
use pmr::core::{Backend, Dataset, RetrievalRequest, Theory};
use pmr::field::io as field_io;
use pmr::mgard::{persist, CompressConfig, Compressed, TransformMode};
use pmr::sim::{warpx_field, GrayScott, GrayScottConfig, GsSpecies, WarpXConfig, WarpXField};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pmrtool gen warpx <dir> [--size N] [--snapshots T] [--field Bx|Ex|Jx]
  pmrtool gen grayscott <dir> [--size N] [--snapshots T] [--species u|v]
  pmrtool compress <in.pmrf> <out.pmrc> [--levels L] [--planes B] [--mode interp|l2]
                   [--threads N] [--codec multilevel|block]
  pmrtool retrieve <in.pmrc> <out.pmrf> (--rel <x> | --abs <x> | --budget <bytes>)
  pmrtool info <in.pmrc>
  pmrtool conformance [--grid quick|full] [--seed N] [--golden <dir>]
                      [--regen-golden] [--golden-only] [--report <path>]
  pmrtool faultsim [--grid quick|full] [--seed N] [--report <path>]
  pmrtool analyze [--root <dir>] [--config <analyze.toml>] [--report <path>]
                  [--sarif <path>] [--diff <baseline.json> | --write-baseline <path>]

artifact files are self-describing: retrieve/info dispatch on the magic
(multilevel .pmrc vs block-codec .pmrb).";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("compress") => compress(&args[1..]),
        Some("retrieve") => retrieve(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("conformance") => run_conformance(&args[1..]),
        Some("faultsim") => run_faultsim(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        _ => Err("missing or unknown subcommand".into()),
    }
}

/// Fetch the value following `--flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| format!("{flag} requires a value")),
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: {s}"))
}

fn positional<'a>(args: &'a [String], idx: usize, what: &str) -> Result<&'a str, String> {
    // Every flag of this tool takes a value, so skip flags in pairs.
    let mut found = 0usize;
    let mut i = 0usize;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
            continue;
        }
        if found == idx {
            return Ok(&args[i]);
        }
        found += 1;
        i += 1;
    }
    Err(format!("missing {what}"))
}

fn gen(args: &[String]) -> Result<(), String> {
    let app = positional(args, 0, "application (warpx|grayscott)")?;
    let dir = PathBuf::from(positional(args, 1, "output directory")?);
    let size: usize = match flag_value(args, "--size")? {
        Some(v) => parse(v, "--size")?,
        None => 33,
    };
    let snapshots: usize = match flag_value(args, "--snapshots")? {
        Some(v) => parse(v, "--snapshots")?,
        None => 8,
    };
    match app {
        "warpx" => {
            let field = match flag_value(args, "--field")?.unwrap_or("Jx") {
                "Bx" => WarpXField::Bx,
                "Ex" => WarpXField::Ex,
                "Jx" => WarpXField::Jx,
                other => return Err(format!("unknown field {other}")),
            };
            let cfg = WarpXConfig { size, snapshots, ..Default::default() };
            for t in 0..snapshots {
                let f = warpx_field(&cfg, field, t);
                let path = dir.join(format!("{}_t{t:04}.pmrf", field.field_name()));
                field_io::save(&f, &path).map_err(|e| e.to_string())?;
                println!("wrote {}", path.display());
            }
            Ok(())
        }
        "grayscott" => {
            let species = match flag_value(args, "--species")?.unwrap_or("u") {
                "u" | "U" => GsSpecies::U,
                "v" | "V" => GsSpecies::V,
                other => return Err(format!("unknown species {other}")),
            };
            let cfg = GrayScottConfig { size, snapshots, ..Default::default() };
            let mut result: Result<(), String> = Ok(());
            GrayScott::new(cfg).run(|t, u, v| {
                if result.is_err() {
                    return;
                }
                let f = if species == GsSpecies::U { &u } else { &v };
                let path = dir.join(format!("{}_t{t:04}.pmrf", species.field_name()));
                match field_io::save(f, &path) {
                    Ok(()) => println!("wrote {}", path.display()),
                    Err(e) => result = Err(e.to_string()),
                }
            });
            result
        }
        other => Err(format!("unknown application {other}")),
    }
}

fn compress(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input .pmrf")?;
    let output = positional(args, 1, "output .pmrc")?;
    if let Some(codec) = flag_value(args, "--codec")? {
        match codec {
            "multilevel" => {}
            "block" => return compress_block(args, input, output),
            other => return Err(format!("unknown codec {other} (multilevel|block)")),
        }
    }
    let mut builder = CompressConfig::builder();
    if let Some(v) = flag_value(args, "--levels")? {
        builder = builder.levels(parse(v, "--levels")?);
    }
    if let Some(v) = flag_value(args, "--planes")? {
        builder = builder.num_planes(parse(v, "--planes")?);
    }
    if let Some(v) = flag_value(args, "--mode")? {
        builder = builder.mode(match v {
            "interp" => TransformMode::Interpolation,
            "l2" => TransformMode::L2Projection,
            other => return Err(format!("unknown mode {other} (interp|l2)")),
        });
    }
    if let Some(v) = flag_value(args, "--threads")? {
        builder = builder.threads(parse(v, "--threads")?);
    }
    let cfg = builder.build().map_err(|e| e.to_string())?;
    let field = field_io::load(Path::new(input)).map_err(|e| e.to_string())?;
    let compressed = Compressed::compress(&field, &cfg);
    persist::save(&compressed, Path::new(output)).map_err(|e| e.to_string())?;
    let raw = (field.len() * 8) as f64;
    println!(
        "{input} ({} points) -> {output}: {} bytes ({:.1}% of raw), {} levels x {} planes",
        field.len(),
        compressed.total_bytes(),
        compressed.total_bytes() as f64 / raw * 100.0,
        compressed.num_levels(),
        compressed.num_planes()
    );
    Ok(())
}

fn compress_block(args: &[String], input: &str, output: &str) -> Result<(), String> {
    let mut cfg = BlockConfig::default();
    if let Some(v) = flag_value(args, "--planes")? {
        cfg.num_planes = parse(v, "--planes")?;
    }
    let field = field_io::load(Path::new(input)).map_err(|e| e.to_string())?;
    let compressed = BlockCompressed::compress(&field, &cfg);
    block_persist::save(&compressed, Path::new(output)).map_err(|e| e.to_string())?;
    let raw = (field.len() * 8) as f64;
    println!(
        "{input} ({} points) -> {output}: {} bytes ({:.1}% of raw), block codec x {} planes",
        field.len(),
        compressed.total_bytes(),
        compressed.total_bytes() as f64 / raw * 100.0,
        compressed.num_planes()
    );
    Ok(())
}

/// Read the first bytes of an artifact to decide its codec.
fn sniff_codec(path: &Path) -> Result<&'static str, String> {
    let mut buf = [0u8; 6];
    let mut f = std::fs::File::open(path).map_err(|e| e.to_string())?;
    std::io::Read::read_exact(&mut f, &mut buf).map_err(|e| e.to_string())?;
    match &buf {
        b"PMRC1\0" | b"PMRC2\0" => Ok("multilevel"),
        b"PMRB1\0" => Ok("block"),
        _ => Err("unrecognised artifact magic".into()),
    }
}

fn retrieve(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input .pmrc")?;
    let output = positional(args, 1, "output .pmrf")?;
    if sniff_codec(Path::new(input))? == "block" {
        return retrieve_block(args, input, output);
    }
    let compressed = persist::load(Path::new(input)).map_err(|e| e.to_string())?;
    let request = match (
        flag_value(args, "--rel")?,
        flag_value(args, "--abs")?,
        flag_value(args, "--budget")?,
    ) {
        (Some(rel), None, None) => RetrievalRequest::rel(parse(rel, "--rel")?),
        (None, Some(abs), None) => RetrievalRequest::abs(parse(abs, "--abs")?),
        (None, None, Some(bytes)) => RetrievalRequest::byte_budget(parse(bytes, "--budget")?),
        _ => return Err("exactly one of --rel, --abs, or --budget is required".into()),
    };
    let dataset = Dataset::new(&compressed);
    let out = pmr::core::retrieve(&dataset, &Theory, &request, &Backend::Direct)
        .map_err(|e| e.to_string())?;
    field_io::save(&out.field, Path::new(output)).map_err(|e| e.to_string())?;
    println!(
        "retrieved {} of {} bytes ({:.1}%), estimated bound {:.3e} -> {output}",
        out.bytes,
        compressed.total_bytes(),
        out.bytes as f64 / compressed.total_bytes() as f64 * 100.0,
        out.estimated_error
    );
    Ok(())
}

fn retrieve_block(args: &[String], input: &str, output: &str) -> Result<(), String> {
    let compressed = block_persist::load(Path::new(input)).map_err(|e| e.to_string())?;
    let abs = match (flag_value(args, "--rel")?, flag_value(args, "--abs")?) {
        (Some(rel), None) => compressed.value_range() * parse::<f64>(rel, "--rel")?,
        (None, Some(abs)) => parse(abs, "--abs")?,
        _ => return Err("exactly one of --rel or --abs is required".into()),
    };
    let b = compressed.plan(abs);
    let field = compressed.retrieve(b);
    field_io::save(&field, Path::new(output)).map_err(|e| e.to_string())?;
    println!(
        "retrieved {} of {} bytes ({} planes) for abs bound {abs:.3e} -> {output}",
        compressed.bytes_for(b),
        compressed.total_bytes(),
        b
    );
    Ok(())
}

/// Is the bare flag present? (All other pmrtool flags take a value; these
/// two are booleans, so check before value-style parsing.)
fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn run_conformance(args: &[String]) -> Result<(), String> {
    let mut cfg = match flag_value(args, "--grid")?.unwrap_or("quick") {
        "quick" => SweepConfig::quick(),
        "full" => SweepConfig::full(),
        other => return Err(format!("unknown grid {other} (quick|full)")),
    };
    if let Some(v) = flag_value(args, "--seed")? {
        cfg.seed = parse(v, "--seed")?;
    }
    let golden_dir = flag_value(args, "--golden")?.map(PathBuf::from);

    if has_flag(args, "--regen-golden") {
        let dir = golden_dir.ok_or("--regen-golden requires --golden <dir>")?;
        conformance::regenerate_golden(&dir)?;
        println!("regenerated golden artifacts in {}", dir.display());
        return Ok(());
    }

    let mut failures = Vec::new();
    if let Some(dir) = &golden_dir {
        let golden_failures = conformance::verify_golden(dir);
        if golden_failures.is_empty() {
            println!("golden artifacts in {} verified", dir.display());
        }
        failures.extend(golden_failures);
    }

    if has_flag(args, "--golden-only") {
        if golden_dir.is_none() {
            return Err("--golden-only requires --golden <dir>".into());
        }
    } else {
        let mut report = conformance::run_all(&cfg);
        report.failures.extend(std::mem::take(&mut failures));
        print!("{}", report.summary());
        if let Some(path) = flag_value(args, "--report")? {
            let grid_name = flag_value(args, "--grid")?.unwrap_or("quick");
            std::fs::write(path, conformance::report_json(&report, grid_name))
                .map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote report to {path}");
        }
        failures = report.failures;
    }

    if failures.is_empty() {
        Ok(())
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        Err(format!("{} conformance check(s) failed", failures.len()))
    }
}

fn run_faultsim(args: &[String]) -> Result<(), String> {
    let grid_name = flag_value(args, "--grid")?.unwrap_or("quick");
    let seed: u64 = match flag_value(args, "--seed")? {
        Some(v) => parse(v, "--seed")?,
        None => 0xFA_017,
    };
    let cfg = match grid_name {
        "quick" => FaultGridConfig::quick(seed),
        "full" => FaultGridConfig::full(seed),
        other => return Err(format!("unknown grid {other} (quick|full)")),
    };
    let report = conformance::run_fault_grid(&cfg);
    println!("{}", report.summary());
    if let Some(path) = flag_value(args, "--report")? {
        std::fs::write(path, conformance::fault_report_json(&report, grid_name, seed))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote report to {path}");
    }
    if report.passed() {
        Ok(())
    } else {
        for f in &report.failures {
            eprintln!("FAIL: {f}");
        }
        Err(format!("{} fault-injection check(s) failed", report.failures.len()))
    }
}

fn run_analyze(args: &[String]) -> Result<(), String> {
    let root = PathBuf::from(flag_value(args, "--root")?.unwrap_or("."));
    let config_path = match flag_value(args, "--config")? {
        Some(p) => PathBuf::from(p),
        None => root.join("analyze.toml"),
    };
    let cfg = AnalyzeConfig::load(&config_path).map_err(|e| e.to_string())?;
    let report = analyze::analyze_workspace(&root, &cfg).map_err(|e| e.to_string())?;
    print!("{}", report.summary());
    if let Some(path) = flag_value(args, "--report")? {
        std::fs::write(path, report.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote report to {path}");
    }
    if let Some(path) = flag_value(args, "--sarif")? {
        std::fs::write(path, analyze::sarif::to_sarif(&report))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote SARIF to {path}");
    }
    if let Some(path) = flag_value(args, "--write-baseline")? {
        std::fs::write(path, analyze::baseline::to_json(&report))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote baseline to {path} ({} fingerprint(s))", report.violations.len());
        return Ok(());
    }
    if let Some(path) = flag_value(args, "--diff")? {
        // Differential gate: fail only on findings absent from the
        // baseline, so CI blocks new debt while the backlog burns down.
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read baseline {path}: {e}"))?;
        let base = analyze::baseline::parse(&text).map_err(|e| e.to_string())?;
        let new = analyze::baseline::new_findings(&report, &base);
        let known = report.violations.len() - new.len();
        println!("diff vs {path}: {} new, {known} known", new.len());
        if new.is_empty() {
            return Ok(());
        }
        for v in &new {
            eprintln!("NEW: {}:{} [{}] {}", v.file, v.line, v.lint, v.message);
        }
        eprintln!("error: {} new static-analysis finding(s) vs baseline", new.len());
        std::process::exit(1);
    }
    if report.is_clean() {
        Ok(())
    } else {
        // A lint failure is a normal, well-formatted outcome, not a CLI
        // usage error — exit 1 without dumping the usage banner.
        eprintln!("error: {} static-analysis violation(s)", report.violations.len());
        std::process::exit(1);
    }
}

fn info(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input .pmrc")?;
    if sniff_codec(Path::new(input))? == "block" {
        let c = block_persist::load(Path::new(input)).map_err(|e| e.to_string())?;
        println!("artifact: {input} (block codec)");
        println!("  field:       {} (timestep {})", c.name(), c.timestep());
        println!("  shape:       {}", c.shape());
        println!("  planes:      {}", c.num_planes());
        println!("  payload:     {} bytes", c.total_bytes());
        println!("  value range: {:.6e}", c.value_range());
        return Ok(());
    }
    let c = persist::load(Path::new(input)).map_err(|e| e.to_string())?;
    println!("artifact: {input}");
    println!("  field:       {} (timestep {})", c.name(), c.timestep());
    println!("  shape:       {}", c.shape());
    println!("  mode:        {:?}", c.decomposer().mode());
    println!("  levels:      {} x {} planes", c.num_levels(), c.num_planes());
    println!("  payload:     {} bytes", c.total_bytes());
    println!("  value range: {:.6e}", c.value_range());
    println!("  theory C_l:  {:?}", c.theory_constants());
    println!("  per level:   count / total bytes / Err[l][0]");
    for (l, lvl) in c.levels().iter().enumerate() {
        println!(
            "    level_{l}:  {:>8} / {:>9} / {:.3e}",
            lvl.count(),
            lvl.total_size(),
            lvl.error_at(0)
        );
    }
    Ok(())
}
