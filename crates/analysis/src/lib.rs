//! Post-hoc analysis kernels and fidelity metrics.
//!
//! The paper's opening motivation is that *post-hoc data analytics* on
//! full-resolution simulation output is I/O-bound, and progressive
//! retrieval lets an analysis trade accuracy for bytes. This crate
//! supplies representative analysis kernels —
//!
//! * value **histograms** and **quantiles**,
//! * **isosurface activity** (cells straddling an isovalue — the work a
//!   marching-cubes pass would do),
//! * **total variation** (aggregate gradient magnitude),
//!
//! — plus distance metrics between an analysis run on original data and
//! the same analysis on a progressively retrieved approximation, so the
//! accuracy-vs-bytes trade-off can be *measured in analysis terms* rather
//! than raw error norms (`analysis_fidelity` bench).

use pmr_field::Field;
use serde::{Deserialize, Serialize};

/// A normalised value histogram over `[min, max]` of the analysed field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub min: f64,
    pub max: f64,
    /// Bin fractions summing to 1 (for non-empty fields).
    pub bins: Vec<f64>,
}

/// Histogram of `field` with `bins` equal-width bins over the field's own
/// range (degenerate ranges put everything in bin 0).
pub fn histogram(field: &Field, bins: usize) -> Histogram {
    assert!(bins >= 1, "need at least one bin");
    let (min, max) = field.min_max();
    let mut counts = vec![0u64; bins];
    let width = max - min;
    for &v in field.data() {
        let idx = if width > 0.0 {
            (((v - min) / width) * bins as f64).min(bins as f64 - 1.0) as usize
        } else {
            0
        };
        counts[idx] += 1;
    }
    let n = field.len().max(1) as f64;
    Histogram { min, max, bins: counts.into_iter().map(|c| c as f64 / n).collect() }
}

impl Histogram {
    /// L1 distance between two histograms *with matched binning*: `other`
    /// is re-binned onto `self`'s range first.
    pub fn l1_distance(&self, other: &Histogram) -> f64 {
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        self.bins.iter().zip(&other.bins).map(|(a, b)| (a - b).abs()).sum()
    }
}

/// The `q`-quantiles of the field values (`qs` in `[0, 1]`).
pub fn quantiles(field: &Field, qs: &[f64]) -> Vec<f64> {
    assert!(!field.is_empty(), "cannot take quantiles of an empty field");
    let mut sorted: Vec<f64> = field.data().to_vec();
    sorted.sort_by(f64::total_cmp);
    qs.iter()
        .map(|&q| {
            assert!((0.0..=1.0).contains(&q), "quantile out of range");
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        })
        .collect()
}

/// Number of grid cells whose corner values straddle `isovalue` — the
/// cells a marching-cubes isosurface pass would visit. For 1-D/2-D
/// fields, cells are segments/quads.
pub fn isosurface_cells(field: &Field, isovalue: f64) -> usize {
    let s = field.shape();
    let (nx, ny, nz) = (s.dim(0), s.dim(1), s.dim(2));
    let cx = nx.saturating_sub(1).max(usize::from(nx == 1));
    let cy = ny.saturating_sub(1).max(usize::from(ny == 1));
    let cz = nz.saturating_sub(1).max(usize::from(nz == 1));
    let mut count = 0usize;
    for z in 0..cz {
        for y in 0..cy {
            for x in 0..cx {
                let mut below = false;
                let mut above = false;
                for dz in 0..=usize::from(nz > 1) {
                    for dy in 0..=usize::from(ny > 1) {
                        for dx in 0..=usize::from(nx > 1) {
                            let v = field.get(x + dx, y + dy, z + dz);
                            if v < isovalue {
                                below = true;
                            } else {
                                above = true;
                            }
                        }
                    }
                }
                if below && above {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Total variation: the sum of absolute forward differences along every
/// axis — an integral smoothness measure analyses often track.
pub fn total_variation(field: &Field) -> f64 {
    let s = field.shape();
    let mut tv = 0.0;
    for d in 0..3 {
        if s.dim(d) < 2 {
            continue;
        }
        let stride = s.stride(d);
        for start in s.line_starts(d) {
            for i in 0..s.dim(d) - 1 {
                tv += (field.data()[start + (i + 1) * stride] - field.data()[start + i * stride])
                    .abs();
            }
        }
    }
    tv
}

/// Side-by-side analysis of an original field and an approximation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// L1 distance between 64-bin histograms.
    pub histogram_l1: f64,
    /// Relative error of the isosurface cell count at the original's
    /// median isovalue.
    pub isosurface_rel_err: f64,
    /// Relative error of the total variation.
    pub total_variation_rel_err: f64,
    /// Max abs error of the 5/50/95-percentile values, normalised by the
    /// original's value range.
    pub quantile_rel_err: f64,
}

/// Measure how faithfully `approx` reproduces the *analyses* of
/// `original` (not just its values).
pub fn fidelity(original: &Field, approx: &Field) -> FidelityReport {
    assert_eq!(original.shape(), approx.shape(), "shape mismatch");
    let h1 = histogram(original, 64);
    let h2 = histogram(approx, 64);
    let iso = quantiles(original, &[0.5])[0];
    let c1 = isosurface_cells(original, iso) as f64;
    let c2 = isosurface_cells(approx, iso) as f64;
    let tv1 = total_variation(original);
    let tv2 = total_variation(approx);
    let q1 = quantiles(original, &[0.05, 0.5, 0.95]);
    let q2 = quantiles(approx, &[0.05, 0.5, 0.95]);
    let range = original.value_range().max(f64::MIN_POSITIVE);
    let qerr = q1.iter().zip(&q2).map(|(a, b)| (a - b).abs() / range).fold(0.0f64, f64::max);
    FidelityReport {
        histogram_l1: h1.l1_distance(&h2),
        isosurface_rel_err: if c1 > 0.0 { (c1 - c2).abs() / c1 } else { 0.0 },
        total_variation_rel_err: if tv1 > 0.0 { (tv1 - tv2).abs() / tv1 } else { 0.0 },
        quantile_rel_err: qerr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_field::Shape;

    fn wave() -> Field {
        Field::from_fn("w", 0, Shape::cube(12), |x, y, z| {
            ((x as f64) * 0.7).sin() + ((y as f64) * 0.4).cos() + (z as f64) * 0.05
        })
    }

    #[test]
    fn histogram_sums_to_one() {
        let h = histogram(&wave(), 32);
        let sum: f64 = h.bins.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(h.bins.len(), 32);
    }

    #[test]
    fn constant_field_histogram() {
        let f = Field::new("c", 0, Shape::d1(10), vec![3.0; 10]);
        let h = histogram(&f, 8);
        assert_eq!(h.bins[0], 1.0);
        assert!(h.bins[1..].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn identical_fields_have_zero_distance() {
        let f = wave();
        let r = fidelity(&f, &f);
        assert_eq!(r.histogram_l1, 0.0);
        assert_eq!(r.isosurface_rel_err, 0.0);
        assert_eq!(r.total_variation_rel_err, 0.0);
        assert_eq!(r.quantile_rel_err, 0.0);
    }

    #[test]
    fn quantiles_of_ramp() {
        let f = Field::from_fn("r", 0, Shape::d1(101), |x, _, _| x as f64);
        let q = quantiles(&f, &[0.0, 0.5, 1.0]);
        assert_eq!(q, vec![0.0, 50.0, 100.0]);
    }

    #[test]
    fn isosurface_counts_straddling_cells() {
        // A step function along x: only cells containing the step straddle.
        let f =
            Field::from_fn("s", 0, Shape::d3(10, 4, 4), |x, _, _| if x < 5 { 0.0 } else { 1.0 });
        let cells = isosurface_cells(&f, 0.5);
        assert_eq!(cells, 3 * 3); // one x-layer of 3x3 cells
    }

    #[test]
    fn total_variation_of_ramp() {
        let f = Field::from_fn("r", 0, Shape::d1(11), |x, _, _| x as f64 * 2.0);
        assert!((total_variation(&f) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn noise_increases_fidelity_distances() {
        let f = wave();
        let noisy = pmr_field::ops::zip_with(&f, &f, |a, _| a + ((a * 12345.6789).sin()) * 0.2);
        let r = fidelity(&f, &noisy);
        assert!(r.histogram_l1 > 0.0);
        assert!(r.total_variation_rel_err > 0.0);
    }

    #[test]
    fn fidelity_improves_with_reconstruction_quality() {
        use pmr_mgard::{CompressConfig, Compressed, RetrievalPlan};
        let f = wave();
        let c = Compressed::compress(&f, &CompressConfig::default());
        let coarse = c.retrieve(&RetrievalPlan::from_planes(vec![6; c.num_levels()]));
        let fine = c.retrieve(&RetrievalPlan::from_planes(vec![20; c.num_levels()]));
        let r_coarse = fidelity(&f, &coarse);
        let r_fine = fidelity(&f, &fine);
        assert!(r_fine.histogram_l1 <= r_coarse.histogram_l1 + 1e-12);
        assert!(r_fine.quantile_rel_err <= r_coarse.quantile_rel_err + 1e-12);
    }
}
