//! Statistical summaries of fields.
//!
//! The paper's D-MGARD model takes "a set of statistical data features" as
//! input alongside the achieved maximum error. [`FieldStats`] is that set:
//! moments, range, a gradient-magnitude summary and lag-1 autocorrelation
//! (a cheap smoothness proxy — the paper notes that smoother data needs
//! fewer bit-planes).

use crate::field::Field;
use serde::{Deserialize, Serialize};

/// One-pass(ish) statistical summary of a scalar field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldStats {
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub std: f64,
    pub skewness: f64,
    pub kurtosis: f64,
    /// Mean absolute forward difference along x (gradient-magnitude proxy).
    pub mean_abs_grad: f64,
    /// Lag-1 autocorrelation along x; close to 1 for smooth fields.
    pub autocorr: f64,
}

impl FieldStats {
    /// Compute the summary for `field`.
    ///
    /// Higher moments use the two-pass formula for numerical robustness.
    /// Gradient and autocorrelation walk x-lines only; for the isotropic
    /// simulation data used here that is representative and three times
    /// cheaper than a full stencil.
    pub fn compute(field: &Field) -> Self {
        let data = field.data();
        let n = data.len();
        assert!(n > 0, "cannot summarise an empty field");
        let nf = n as f64;

        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in data {
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v;
        }
        let mean = sum / nf;

        let (mut m2, mut m3, mut m4) = (0.0, 0.0, 0.0);
        for &v in data {
            let d = v - mean;
            let d2 = d * d;
            m2 += d2;
            m3 += d2 * d;
            m4 += d2 * d2;
        }
        m2 /= nf;
        m3 /= nf;
        m4 /= nf;
        let std = m2.sqrt();
        let (skewness, kurtosis) =
            if std > 0.0 { (m3 / (std * std * std), m4 / (m2 * m2) - 3.0) } else { (0.0, 0.0) };

        let shape = field.shape();
        let nx = shape.dim(0);
        let mut grad_sum = 0.0;
        let mut grad_count = 0usize;
        let mut cov = 0.0;
        if nx >= 2 {
            for start in shape.line_starts(0) {
                for i in 0..nx - 1 {
                    let a = data[start + i];
                    let b = data[start + i + 1];
                    grad_sum += (b - a).abs();
                    cov += (a - mean) * (b - mean);
                    grad_count += 1;
                }
            }
        }
        let mean_abs_grad = if grad_count > 0 { grad_sum / grad_count as f64 } else { 0.0 };
        // The pair covariance is normalised by the full-field variance, so
        // tiny samples can nominally exceed |1|; clamp to keep the feature
        // in its semantic range.
        let autocorr = if grad_count > 0 && m2 > 0.0 {
            ((cov / grad_count as f64) / m2).clamp(-1.0, 1.0)
        } else {
            0.0
        };

        FieldStats { min: lo, max: hi, mean, std, skewness, kurtosis, mean_abs_grad, autocorr }
    }

    /// `max - min`.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Flatten into the feature layout shared by the DNN models.
    ///
    /// The order is part of the model contract; see
    /// [`FEATURE_NAMES`](Self::FEATURE_NAMES).
    pub fn to_features(&self) -> [f64; 9] {
        [
            self.min,
            self.max,
            self.range(),
            self.mean,
            self.std,
            self.skewness,
            self.kurtosis,
            self.mean_abs_grad,
            self.autocorr,
        ]
    }

    /// Names of the entries returned by [`to_features`](Self::to_features).
    pub const FEATURE_NAMES: [&'static str; 9] =
        ["min", "max", "range", "mean", "std", "skewness", "kurtosis", "mean_abs_grad", "autocorr"];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn constant_field_stats() {
        let f = Field::new("c", 0, Shape::d1(10), vec![3.0; 10]);
        let s = FieldStats::compute(&f);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.mean_abs_grad, 0.0);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let f = Field::new("s", 0, Shape::d1(4), vec![-2.0, -1.0, 1.0, 2.0]);
        let s = FieldStats::compute(&f);
        assert!(s.skewness.abs() < 1e-12);
        assert!((s.mean).abs() < 1e-12);
    }

    #[test]
    fn smooth_line_has_high_autocorr() {
        let smooth = Field::from_fn("s", 0, Shape::d1(256), |x, _, _| (x as f64 * 0.05).sin());
        let s = FieldStats::compute(&smooth);
        assert!(s.autocorr > 0.95, "autocorr = {}", s.autocorr);
    }

    #[test]
    fn feature_vector_matches_names() {
        let f = Field::from_fn("s", 0, Shape::d2(8, 8), |x, y, _| (x * y) as f64);
        let s = FieldStats::compute(&f);
        let v = s.to_features();
        assert_eq!(v.len(), FieldStats::FEATURE_NAMES.len());
        assert_eq!(v[0], s.min);
        assert_eq!(v[8], s.autocorr);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn known_variance() {
        let f = Field::new("v", 0, Shape::d1(2), vec![0.0, 2.0]);
        let s = FieldStats::compute(&f);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.std, 1.0);
    }
}
