//! Compact binary on-disk format for generated fields.
//!
//! Simulated datasets are cached on disk so that benches, tests and examples
//! do not regenerate them. The format is deliberately minimal:
//!
//! ```text
//! magic  "PMRF1\0\0\0"                     8 bytes
//! ndim   u32 LE                            4
//! dims   3 x u32 LE                       12
//! ts     u64 LE (timestep)                 8
//! nlen   u32 LE (name byte length)         4
//! name   nlen bytes UTF-8
//! data   len x f64 LE
//! ```

use crate::field::Field;
use crate::shape::Shape;
use bytes::{Buf, BufMut};
use pmr_error::PmrError;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PMRF1\0\0\0";

/// Serialize a field into a byte buffer.
pub fn to_bytes(field: &Field) -> Vec<u8> {
    let shape = field.shape();
    let name = field.name().as_bytes();
    let mut buf = Vec::with_capacity(36 + name.len() + field.len() * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(shape.ndim() as u32);
    for d in 0..3 {
        buf.put_u32_le(shape.dim(d) as u32);
    }
    buf.put_u64_le(field.timestep() as u64);
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name);
    for &v in field.data() {
        buf.put_f64_le(v);
    }
    buf
}

/// Deserialize a field from a byte buffer produced by [`to_bytes`].
pub fn from_bytes(mut buf: &[u8]) -> Result<Field, PmrError> {
    let bad = |msg: &str| PmrError::malformed("field", msg);
    if buf.len() < 36 {
        return Err(bad("truncated header"));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let ndim = buf.get_u32_le() as usize;
    let dx = buf.get_u32_le() as usize;
    let dy = buf.get_u32_le() as usize;
    let dz = buf.get_u32_le() as usize;
    let shape = match ndim {
        1 => Shape::d1(dx),
        2 => Shape::d2(dx, dy),
        3 => Shape::d3(dx, dy, dz),
        _ => return Err(bad("bad ndim")),
    };
    let timestep = buf.get_u64_le() as usize;
    let nlen = buf.get_u32_le() as usize;
    if buf.len() < nlen {
        return Err(bad("truncated name"));
    }
    let name = String::from_utf8(buf[..nlen].to_vec()).map_err(|_| bad("name not UTF-8"))?;
    buf.advance(nlen);
    if buf.len() != shape.len() * 8 {
        return Err(bad("data length mismatch"));
    }
    let mut data = Vec::with_capacity(shape.len());
    for _ in 0..shape.len() {
        data.push(buf.get_f64_le());
    }
    Ok(Field::new(name, timestep, shape, data))
}

/// Write a field to `path`, creating parent directories as needed.
pub fn save(field: &Field, path: &Path) -> Result<(), PmrError> {
    let io_err = |e: io::Error| PmrError::io_at(path, e);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(io_err)?;
    }
    let mut f = io::BufWriter::new(fs::File::create(path).map_err(io_err)?);
    f.write_all(&to_bytes(field)).map_err(io_err)?;
    f.flush().map_err(io_err)
}

/// Read a field previously written with [`save`].
pub fn load(path: &Path) -> Result<Field, PmrError> {
    let mut buf = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| PmrError::io_at(path, e))?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Field {
        Field::from_fn("J_x", 17, Shape::d3(3, 4, 2), |x, y, z| {
            (x as f64) * 0.5 - (y as f64) + (z as f64) * 2.25
        })
    }

    #[test]
    fn bytes_roundtrip() {
        let f = sample();
        let rt = from_bytes(&to_bytes(&f)).unwrap();
        assert_eq!(f, rt);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pmr_field_io_test");
        let path = dir.join("nested/J_x_t17.pmrf");
        let f = sample();
        save(&f, &path).unwrap();
        let rt = load(&path).unwrap();
        assert_eq!(f, rt);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut b = to_bytes(&sample());
        b[0] = b'X';
        assert!(from_bytes(&b).is_err());
    }

    #[test]
    fn truncated_data_rejected() {
        let b = to_bytes(&sample());
        assert!(from_bytes(&b[..b.len() - 4]).is_err());
    }

    #[test]
    fn special_values_preserved() {
        let f = Field::new("nan", 0, Shape::d1(4), vec![f64::NAN, f64::INFINITY, -0.0, 1e-308]);
        let rt = from_bytes(&to_bytes(&f)).unwrap();
        assert!(rt.data()[0].is_nan());
        assert_eq!(rt.data()[1], f64::INFINITY);
        assert_eq!(rt.data()[2].to_bits(), (-0.0_f64).to_bits());
        assert_eq!(rt.data()[3], 1e-308);
    }
}
