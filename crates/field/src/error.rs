//! Reconstruction error metrics.
//!
//! The paper's error-control contract is on the **maximum absolute error**
//! (`err` in Table I); evaluation figures also report PSNR, which MGARD-style
//! tools compute against the data value range.

use crate::field::Field;
use serde::{Deserialize, Serialize};

/// Maximum absolute pointwise error between two equal-length slices.
pub fn max_abs_error(original: &[f64], reconstructed: &[f64]) -> f64 {
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    original.iter().zip(reconstructed).fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()))
}

/// Mean squared error.
pub fn mse(original: &[f64], reconstructed: &[f64]) -> f64 {
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    if original.is_empty() {
        return 0.0;
    }
    let sum: f64 = original.iter().zip(reconstructed).map(|(&a, &b)| (a - b) * (a - b)).sum();
    sum / original.len() as f64
}

/// Root mean squared error.
pub fn rmse(original: &[f64], reconstructed: &[f64]) -> f64 {
    mse(original, reconstructed).sqrt()
}

/// Peak signal-to-noise ratio in dB, with the signal peak taken as the value
/// range of the original data (the convention used by MGARD/SZ/ZFP papers).
///
/// Returns `f64::INFINITY` for a perfect reconstruction.
pub fn psnr(original: &[f64], reconstructed: &[f64]) -> f64 {
    let range = {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in original {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    };
    let m = mse(original, reconstructed);
    if m == 0.0 {
        f64::INFINITY
    } else if range == 0.0 {
        0.0
    } else {
        10.0 * (range * range / m).log10()
    }
}

/// A bundle of all error metrics for one reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorReport {
    pub max_abs: f64,
    pub rmse: f64,
    pub psnr: f64,
}

impl ErrorReport {
    /// Compare `reconstructed` against `original`.
    pub fn between(original: &Field, reconstructed: &Field) -> Self {
        assert_eq!(original.shape(), reconstructed.shape(), "shape mismatch");
        let a = original.data();
        let b = reconstructed.data();
        ErrorReport { max_abs: max_abs_error(a, b), rmse: rmse(a, b), psnr: psnr(a, b) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn identical_slices_have_zero_error() {
        let a = vec![1.0, -2.0, 3.5];
        assert_eq!(max_abs_error(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
    }

    #[test]
    fn max_error_finds_worst_point() {
        let a = vec![0.0, 0.0, 0.0];
        let b = vec![0.1, -0.5, 0.2];
        assert_eq!(max_abs_error(&a, &b), 0.5);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let orig: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let small: Vec<f64> = orig.iter().map(|v| v + 0.01).collect();
        let large: Vec<f64> = orig.iter().map(|v| v + 1.0).collect();
        assert!(psnr(&orig, &small) > psnr(&orig, &large));
    }

    #[test]
    fn psnr_formula_sanity() {
        // range = 99, uniform error 0.99 => psnr = 10 log10((99/0.99)^2) = 40 dB
        let orig: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let rec: Vec<f64> = orig.iter().map(|v| v + 0.99).collect();
        assert!((psnr(&orig, &rec) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn report_bundles_metrics() {
        let a = Field::new("a", 0, Shape::d1(2), vec![0.0, 1.0]);
        let b = Field::new("b", 0, Shape::d1(2), vec![0.5, 1.0]);
        let r = ErrorReport::between(&a, &b);
        assert_eq!(r.max_abs, 0.5);
        assert!((r.rmse - (0.125_f64).sqrt()).abs() < 1e-12);
    }
}
