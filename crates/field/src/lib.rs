//! Scientific field containers and metrics for progressive data retrieval.
//!
//! This crate provides the shared data model used by the rest of the
//! workspace:
//!
//! * [`Shape`] — an up-to-3-dimensional grid shape with strided indexing,
//! * [`Field`] — an owned `f64` scalar field tagged with a name and timestep,
//! * [`stats::FieldStats`] — the statistical summary used as DNN features,
//! * [`error`] — reconstruction error metrics (max error, RMSE, PSNR),
//! * [`io`] — a compact binary on-disk format for generated datasets.
//!
//! Everything here is deliberately simple and allocation-conscious: fields
//! are dense `Vec<f64>` buffers in row-major (x fastest) order, and all the
//! metric routines are single-pass where possible.

pub mod error;
pub mod field;
pub mod io;
pub mod ops;
pub mod shape;
pub mod stats;

pub use error::{max_abs_error, mse, psnr, rmse, ErrorReport};
pub use field::Field;
pub use shape::Shape;
pub use stats::FieldStats;
