//! Field manipulation utilities: downsampling, slicing and region
//! extraction.
//!
//! These are the operations post-hoc analyses perform on retrieved data —
//! and what the resolution study (paper Fig. 11) needs to build matched
//! multi-resolution datasets.

use crate::field::Field;
use crate::shape::Shape;

/// Downsample by taking every `stride`-th point along each dimension
/// (endpoints included when they fall on the stride grid).
///
/// A field of side `2^k + 1` downsampled by 2 gives side `2^(k-1) + 1`, so
/// repeated halving matches the decomposition hierarchy.
pub fn downsample(field: &Field, stride: usize) -> Field {
    assert!(stride >= 1, "stride must be at least 1");
    let s = field.shape();
    let n = |d: usize| s.dim(d).div_ceil(stride);
    let shape = match s.ndim() {
        1 => Shape::d1(n(0)),
        2 => Shape::d2(n(0), n(1)),
        _ => Shape::d3(n(0), n(1), n(2)),
    };
    Field::from_fn(field.name(), field.timestep(), shape, |x, y, z| {
        field.get(x * stride, y * stride, z * stride)
    })
}

/// Extract the 2-D plane `z = z_index` of a 3-D field.
pub fn slice_z(field: &Field, z_index: usize) -> Field {
    let s = field.shape();
    assert!(z_index < s.dim(2), "z index out of range");
    let shape = Shape::d2(s.dim(0), s.dim(1));
    Field::from_fn(field.name(), field.timestep(), shape, |x, y, _| field.get(x, y, z_index))
}

/// Extract the axis-aligned box `[lo, hi)` (per-dimension half-open).
pub fn region(field: &Field, lo: [usize; 3], hi: [usize; 3]) -> Field {
    let s = field.shape();
    for d in 0..3 {
        assert!(lo[d] < hi[d], "empty region in dimension {d}");
        assert!(hi[d] <= s.dim(d), "region exceeds shape in dimension {d}");
    }
    let shape = match s.ndim() {
        1 => Shape::d1(hi[0] - lo[0]),
        2 => Shape::d2(hi[0] - lo[0], hi[1] - lo[1]),
        _ => Shape::d3(hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]),
    };
    Field::from_fn(field.name(), field.timestep(), shape, |x, y, z| {
        field.get(lo[0] + x, lo[1] + y, lo[2] + z)
    })
}

/// Pointwise combination of two same-shape fields.
pub fn zip_with(a: &Field, b: &Field, mut f: impl FnMut(f64, f64) -> f64) -> Field {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    let data = a.data().iter().zip(b.data()).map(|(&x, &y)| f(x, y)).collect();
    Field::new(a.name(), a.timestep(), a.shape(), data)
}

/// The pointwise difference `a − b` (e.g. reconstruction error fields).
pub fn difference(a: &Field, b: &Field) -> Field {
    zip_with(a, b, |x, y| x - y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp3d() -> Field {
        Field::from_fn("r", 1, Shape::d3(5, 4, 3), |x, y, z| {
            x as f64 + 10.0 * y as f64 + 100.0 * z as f64
        })
    }

    #[test]
    fn downsample_keeps_strided_points() {
        let f = ramp3d();
        let d = downsample(&f, 2);
        assert_eq!(d.shape().dims(), [3, 2, 2]);
        assert_eq!(d.get(0, 0, 0), f.get(0, 0, 0));
        assert_eq!(d.get(2, 1, 1), f.get(4, 2, 2));
        assert_eq!(d.timestep(), 1);
    }

    #[test]
    fn downsample_stride_one_is_identity() {
        let f = ramp3d();
        assert_eq!(downsample(&f, 1), f);
    }

    #[test]
    fn dyadic_downsampling_matches_hierarchy() {
        let f = Field::from_fn("h", 0, Shape::d1(17), |x, _, _| x as f64);
        let d = downsample(&f, 2);
        assert_eq!(d.len(), 9);
        let dd = downsample(&d, 2);
        assert_eq!(dd.len(), 5);
    }

    #[test]
    fn slice_extracts_plane() {
        let f = ramp3d();
        let s = slice_z(&f, 2);
        assert_eq!(s.shape().dims(), [5, 4, 1]);
        assert_eq!(s.get(3, 1, 0), f.get(3, 1, 2));
    }

    #[test]
    fn region_extracts_box() {
        let f = ramp3d();
        let r = region(&f, [1, 0, 1], [4, 2, 3]);
        assert_eq!(r.shape().dims(), [3, 2, 2]);
        assert_eq!(r.get(0, 0, 0), f.get(1, 0, 1));
        assert_eq!(r.get(2, 1, 1), f.get(3, 1, 2));
    }

    #[test]
    fn difference_is_zero_for_identical() {
        let f = ramp3d();
        let d = difference(&f, &f);
        assert!(d.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "exceeds shape")]
    fn oversized_region_rejected() {
        let f = ramp3d();
        let _ = region(&f, [0, 0, 0], [6, 1, 1]);
    }
}
