//! The owned scalar-field container.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A dense, double-precision scalar field produced by a simulation timestep.
///
/// `Field` owns its data and carries the metadata the retrieval framework
/// needs: the field name (e.g. `"J_x"`, `"D_u"`), the timestep it belongs to
/// and its grid [`Shape`]. Data is row-major with x fastest.
///
/// ```
/// use pmr_field::{Field, Shape};
///
/// let f = Field::from_fn("demo", 3, Shape::d2(4, 4), |x, y, _| (x + y) as f64);
/// assert_eq!(f.len(), 16);
/// assert_eq!(f.get(1, 2, 0), 3.0);
/// assert_eq!(f.min_max(), (0.0, 6.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    name: String,
    timestep: usize,
    shape: Shape,
    data: Vec<f64>,
}

impl Field {
    /// Create a field from raw data; `data.len()` must equal `shape.len()`.
    pub fn new(name: impl Into<String>, timestep: usize, shape: Shape, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Field { name: name.into(), timestep, shape, data }
    }

    /// A zero-filled field.
    pub fn zeros(name: impl Into<String>, timestep: usize, shape: Shape) -> Self {
        Field::new(name, timestep, shape, vec![0.0; shape.len()])
    }

    /// Build a field by evaluating `f(x, y, z)` at every grid point.
    pub fn from_fn(
        name: impl Into<String>,
        timestep: usize,
        shape: Shape,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for z in 0..shape.dim(2) {
            for y in 0..shape.dim(1) {
                for x in 0..shape.dim(0) {
                    data.push(f(x, y, z));
                }
            }
        }
        Field::new(name, timestep, shape, data)
    }

    /// Field name (e.g. `"B_x"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Simulation timestep this snapshot belongs to.
    pub fn timestep(&self) -> usize {
        self.timestep
    }

    /// Grid shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the field holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the raw values.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the raw values.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the field, returning its raw buffer.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Value at `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.shape.index(x, y, z)]
    }

    /// Set the value at `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let idx = self.shape.index(x, y, z);
        self.data[idx] = v;
    }

    /// `(min, max)` over all values. Returns `(0, 0)` for empty fields.
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// `max - min`; the value range used to convert relative error bounds to
    /// absolute ones (the paper assumes per-timestep ranges are recorded
    /// during the simulation).
    pub fn value_range(&self) -> f64 {
        let (lo, hi) = self.min_max();
        hi - lo
    }

    /// Largest absolute value in the field.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Rename the field (used when deriving training sets).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Re-tag the timestep.
    pub fn with_timestep(mut self, timestep: usize) -> Self {
        self.timestep = timestep;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout_is_x_fastest() {
        let f = Field::from_fn("t", 0, Shape::d3(2, 2, 2), |x, y, z| (x + 10 * y + 100 * z) as f64);
        assert_eq!(f.data()[0], 0.0);
        assert_eq!(f.data()[1], 1.0); // x moved first
        assert_eq!(f.data()[2], 10.0); // then y
        assert_eq!(f.data()[4], 100.0); // then z
        assert_eq!(f.get(1, 1, 1), 111.0);
    }

    #[test]
    fn min_max_and_range() {
        let f = Field::new("t", 3, Shape::d1(4), vec![-2.0, 5.0, 0.5, 1.0]);
        assert_eq!(f.min_max(), (-2.0, 5.0));
        assert_eq!(f.value_range(), 7.0);
        assert_eq!(f.max_abs(), 5.0);
        assert_eq!(f.timestep(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_length_rejected() {
        let _ = Field::new("t", 0, Shape::d1(3), vec![1.0]);
    }
}
