//! Grid shapes and strided indexing for 1-, 2- and 3-dimensional fields.

use serde::{Deserialize, Serialize};

/// The shape of a dense scalar field with up to three dimensions.
///
/// Dimensions are stored as `[nx, ny, nz]`; unused trailing dimensions are 1.
/// Data layout is row-major with x fastest: `index = x + nx * (y + ny * z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: [usize; 3],
    /// Number of meaningful dimensions (1, 2 or 3).
    ndim: usize,
}

impl Shape {
    /// A 1-D shape of `nx` points.
    pub fn d1(nx: usize) -> Self {
        assert!(nx >= 1, "shape dimensions must be positive");
        Shape { dims: [nx, 1, 1], ndim: 1 }
    }

    /// A 2-D shape of `nx * ny` points.
    pub fn d2(nx: usize, ny: usize) -> Self {
        assert!(nx >= 1 && ny >= 1, "shape dimensions must be positive");
        Shape { dims: [nx, ny, 1], ndim: 2 }
    }

    /// A 3-D shape of `nx * ny * nz` points.
    pub fn d3(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx >= 1 && ny >= 1 && nz >= 1, "shape dimensions must be positive");
        Shape { dims: [nx, ny, nz], ndim: 3 }
    }

    /// A cube of side `n` (the common case in the paper: 512^3, here scaled).
    pub fn cube(n: usize) -> Self {
        Shape::d3(n, n, n)
    }

    /// Number of meaningful dimensions.
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Extent along dimension `d` (0 = x, 1 = y, 2 = z).
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// All three extents (trailing ones are 1).
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// True when the grid has no points (never constructible via the public
    /// constructors, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stride (in elements) of dimension `d`. Requires `d < 3`.
    pub fn stride(&self, d: usize) -> usize {
        assert!(d < 3, "dimension out of range: {d}");
        self.dims[..d].iter().product()
    }

    /// Linear index of the grid point `(x, y, z)`.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.dims[0] && y < self.dims[1] && z < self.dims[2]);
        x + self.dims[0] * (y + self.dims[1] * z)
    }

    /// Inverse of [`Shape::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.dims[0];
        let rest = idx / self.dims[0];
        let y = rest % self.dims[1];
        let z = rest / self.dims[1];
        (x, y, z)
    }

    /// Iterate over the start offsets of all 1-D lines along dimension `d`.
    ///
    /// A "line" is the set of points that differ only in their coordinate
    /// along `d`; the decomposition transforms operate line by line.
    /// Requires `d < 3`.
    pub fn line_starts(&self, d: usize) -> Vec<usize> {
        assert!(d < 3, "dimension out of range: {d}");
        let mut starts = Vec::with_capacity(self.len() / self.dims[d]);
        match d {
            0 => {
                for z in 0..self.dims[2] {
                    for y in 0..self.dims[1] {
                        starts.push(self.index(0, y, z));
                    }
                }
            }
            1 => {
                for z in 0..self.dims[2] {
                    for x in 0..self.dims[0] {
                        starts.push(self.index(x, 0, z));
                    }
                }
            }
            // d == 2, by the assert above.
            _ => {
                for y in 0..self.dims[1] {
                    for x in 0..self.dims[0] {
                        starts.push(self.index(x, y, 0));
                    }
                }
            }
        }
        starts
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.ndim {
            1 => write!(f, "{}", self.dims[0]),
            2 => write!(f, "{}x{}", self.dims[0], self.dims[1]),
            _ => write!(f, "{}x{}x{}", self.dims[0], self.dims[1], self.dims[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_len_and_strides() {
        let s = Shape::cube(4);
        assert_eq!(s.len(), 64);
        assert_eq!(s.stride(0), 1);
        assert_eq!(s.stride(1), 4);
        assert_eq!(s.stride(2), 16);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn index_coords_roundtrip() {
        let s = Shape::d3(3, 4, 5);
        for idx in 0..s.len() {
            let (x, y, z) = s.coords(idx);
            assert_eq!(s.index(x, y, z), idx);
        }
    }

    #[test]
    fn line_starts_cover_grid() {
        let s = Shape::d3(3, 4, 5);
        for d in 0..3 {
            let starts = s.line_starts(d);
            assert_eq!(starts.len() * s.dim(d), s.len());
            // Walking every line must visit every point exactly once.
            let mut seen = vec![false; s.len()];
            for &st in &starts {
                for i in 0..s.dim(d) {
                    let idx = st + i * s.stride(d);
                    assert!(!seen[idx], "point visited twice");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::d1(8).to_string(), "8");
        assert_eq!(Shape::d2(8, 4).to_string(), "8x4");
        assert_eq!(Shape::cube(16).to_string(), "16x16x16");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Shape::d2(0, 3);
    }
}
