//! Property-based tests for the field substrate.

use pmr_field::{error, io, Field, FieldStats, Shape};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = Field> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(nx, ny, nz)| {
        let shape = Shape::d3(nx, ny, nz);
        proptest::collection::vec(-1e6f64..1e6, shape.len())
            .prop_map(move |data| Field::new("p", 0, shape, data))
    })
}

proptest! {
    #[test]
    fn io_roundtrip(f in arb_field()) {
        let rt = io::from_bytes(&io::to_bytes(&f)).unwrap();
        prop_assert_eq!(f, rt);
    }

    #[test]
    fn stats_are_finite_and_bounded(f in arb_field()) {
        let s = FieldStats::compute(&f);
        prop_assert!(s.to_features().iter().all(|v| v.is_finite()));
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.autocorr >= -1.0 - 1e-6 && s.autocorr <= 1.0 + 1e-6);
    }

    #[test]
    fn max_error_bounds_rmse(f in arb_field(), noise in -1.0f64..1.0) {
        let perturbed: Vec<f64> = f.data().iter().map(|v| v + noise).collect();
        let max = error::max_abs_error(f.data(), &perturbed);
        let rmse = error::rmse(f.data(), &perturbed);
        prop_assert!(rmse <= max + 1e-12);
        prop_assert!((max - noise.abs()).abs() < 1e-9);
    }

    #[test]
    fn shape_index_bijective(nx in 1usize..8, ny in 1usize..8, nz in 1usize..8) {
        let s = Shape::d3(nx, ny, nz);
        let mut seen = vec![false; s.len()];
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let i = s.index(x, y, z);
                    prop_assert!(!seen[i]);
                    seen[i] = true;
                    prop_assert_eq!(s.coords(i), (x, y, z));
                }
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}
