//! MGARD-style multilevel decomposition and error-bounded progressive
//! retrieval.
//!
//! This crate is the substrate the paper builds on: a from-scratch
//! reimplementation of the progressive path of MGARD (Ainsworth et al. 2019,
//! Liang et al. SC'21). The pipeline is
//!
//! ```text
//!   field ──decompose──▶ multilevel coefficients ──interleave──▶ per-level 1-D
//!         ──negabinary bit-plane encode──▶ planes + sizes S[l][k]
//!         ──collect──▶ error matrix Err[l][b]
//! ```
//!
//! and on retrieval
//!
//! ```text
//!   error bound e ──estimator──▶ plane counts b_l ──fetch & decode──▶
//!   coefficients ──recompose──▶ approximation with max error ≤ e
//! ```
//!
//! The *theory* estimator bounds the reconstruction error by
//! `est(b) = Σ_l C_l · Err[l][b_l]` with per-level constants `C_l` derived
//! from absolute-row-sum operator norms (see [`estimate`]); it is provably an
//! upper bound and — exactly as the paper criticises — pessimistic by orders
//! of magnitude because per-coefficient errors cancel in reality. The
//! DNN-based retrievers in `pmr-core` plug in either predicted plane counts
//! (D-MGARD) or learned constants `C_l` (E-MGARD) through the hooks exposed
//! by [`retrieve`] and [`compress`].

pub mod bitplane;
pub mod checksum;
pub mod compress;
pub mod decompose;
pub mod estimate;
pub mod exec;
pub mod persist;
pub mod retrieve;
pub mod session;
pub mod transform;

pub use bitplane::{LevelEncoding, DEFAULT_BITPLANES};
pub use compress::{
    retrieve_many, CompressConfig, CompressConfigBuilder, Compressed, DecodeOptions,
    MeasuredRetrieval,
};
pub use decompose::{Decomposer, TransformMode};
pub use estimate::theory_constants;
pub use exec::ExecPolicy;
pub use pmr_codec::PlaneKernel;
pub use retrieve::{
    greedy_plan, greedy_plan_budget, greedy_plan_capped, plan_size, refine_plan, RetrievalPlan,
};
pub use session::ProgressiveSession;
