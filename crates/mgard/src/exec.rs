//! Execution policy for the parallel data path.
//!
//! Every hot stage in this crate — the per-dimension multilevel transforms,
//! bit-plane encoding/decoding, and the batch compress/retrieve APIs — accepts
//! an [`ExecPolicy`] that says how many worker threads to use and how work is
//! chunked. The parallel paths are written so their output is *bit-identical*
//! to the serial paths: strided lines are fully independent, per-chunk error
//! reductions use `f64::max` (exact, order-independent), and chunk boundaries
//! are derived from the policy, never from thread scheduling.

use pmr_codec::PlaneKernel;
use serde::{Deserialize, Serialize};

/// Sentinel meaning "let the library pick" for [`ExecPolicy`] knobs.
pub const AUTO: usize = 0;

/// Grids smaller than this many points run the transforms serially even under
/// a parallel policy: thread startup would dominate the work.
pub const PARALLEL_MIN_POINTS: usize = 16_384;

/// Levels with fewer coefficients than this are encoded/decoded serially even
/// under a parallel policy.
pub const PARALLEL_MIN_COEFFS: usize = 16_384;

/// How work is spread across threads.
///
/// `threads == 0` (the [`AUTO`] sentinel and the default) resolves to
/// [`std::thread::available_parallelism`]; `chunk_lines == 0` resolves to a
/// fixed default chunk of strided lines per work unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecPolicy {
    /// Worker thread count; `0` = one per available core.
    pub threads: usize,
    /// Strided lines claimed per work unit in the transform passes; `0` =
    /// auto (currently 16).
    pub chunk_lines: usize,
    /// Which bit-plane codec kernel the encode/decode stages use. Every
    /// kernel is bit-identical; [`PlaneKernel::Scalar`] keeps the legacy
    /// bit-at-a-time path alive as the differential oracle (and ignores
    /// `threads` for the bit-plane stage). Defaults to [`PlaneKernel::Auto`],
    /// so policies persisted before this field existed deserialize unchanged.
    #[serde(default)]
    pub kernel: PlaneKernel,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy { threads: AUTO, chunk_lines: AUTO, kernel: PlaneKernel::Auto }
    }
}

impl ExecPolicy {
    /// A policy that always runs on the calling thread.
    pub fn serial() -> Self {
        ExecPolicy { threads: 1, ..Self::default() }
    }

    /// A policy with an explicit thread count and automatic chunking.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy { threads, ..Self::default() }
    }

    /// This policy with a different bit-plane kernel.
    pub fn with_kernel(mut self, kernel: PlaneKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The thread count after resolving the [`AUTO`] sentinel.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == AUTO {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// The transform chunk size after resolving the [`AUTO`] sentinel.
    pub fn resolved_chunk_lines(&self) -> usize {
        if self.chunk_lines == AUTO {
            16
        } else {
            self.chunk_lines
        }
    }

    /// Whether this policy runs on the calling thread only.
    pub fn is_serial(&self) -> bool {
        self.resolved_threads() <= 1
    }

    /// This policy, demoted to serial when the work is too small to amortise
    /// thread startup. Chunk boundaries are unaffected, so gating never
    /// changes results — parallel and serial agree bit-for-bit regardless.
    pub fn gate(&self, work_items: usize, min_items: usize) -> ExecPolicy {
        if work_items < min_items {
            ExecPolicy { threads: 1, ..*self }
        } else {
            *self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_to_at_least_one() {
        let p = ExecPolicy::default();
        assert!(p.resolved_threads() >= 1);
        assert!(p.resolved_chunk_lines() >= 1);
    }

    #[test]
    fn serial_policy_is_serial() {
        assert!(ExecPolicy::serial().is_serial());
        assert_eq!(ExecPolicy::with_threads(4).resolved_threads(), 4);
        assert!(!ExecPolicy::with_threads(4).is_serial());
    }

    #[test]
    fn gate_demotes_small_work() {
        let p = ExecPolicy::with_threads(8);
        assert!(p.gate(100, 1000).is_serial());
        assert_eq!(p.gate(1000, 1000), p);
    }
}
