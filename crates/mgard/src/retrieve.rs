//! The greedy bit-plane retriever and size interpreter.
//!
//! Given per-level encoded planes, an error-estimation rule (theory
//! constants or E-MGARD's learned constants) and a target bound `e`, the
//! retriever fetches planes in order of **accuracy efficiency** — estimated
//! error reduction per compressed byte (paper §III-C) — until the estimate
//! satisfies the bound. Planes within a level are inherently sequential
//! (plane `k+1` refines plane `k`), so the plan is fully described by one
//! count `b_l` per level.

use crate::bitplane::LevelEncoding;
use serde::{Deserialize, Serialize};

/// A retrieval decision: how many planes to fetch from each level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalPlan {
    /// `b_l` per coefficient level.
    pub planes: Vec<u32>,
    /// The estimator's error value at this plan (`f64::INFINITY` when no
    /// estimator was involved, e.g. for externally predicted plans).
    pub estimated_error: f64,
}

impl RetrievalPlan {
    /// A plan with explicit plane counts and no error estimate attached
    /// (used by D-MGARD, which predicts the counts directly).
    pub fn from_planes(planes: Vec<u32>) -> Self {
        RetrievalPlan { planes, estimated_error: f64::INFINITY }
    }
}

/// Greedy plan: fetch planes by accuracy efficiency until
/// `Σ_l constants[l] · Err[l][b_l] <= err_bound`.
///
/// If the bound is unreachable even with every plane (possible only for
/// bounds below the quantization floor), the plan holds all planes.
pub fn greedy_plan(levels: &[LevelEncoding], constants: &[f64], err_bound: f64) -> RetrievalPlan {
    assert_eq!(levels.len(), constants.len(), "constants/levels mismatch");
    assert!(err_bound >= 0.0, "error bound must be non-negative");
    let mut b: Vec<u32> = vec![0; levels.len()];
    let mut est: f64 = levels.iter().zip(constants).map(|(l, &c)| c * l.error_at(0)).sum();

    while est > err_bound {
        // Pick the level whose next plane gives the best error reduction
        // per byte. Zero-gain planes are still admissible (efficiency 0) so
        // the loop always progresses toward exhaustion.
        let mut best: Option<(usize, f64)> = None;
        for (l, lvl) in levels.iter().enumerate() {
            if b[l] >= lvl.num_planes() {
                continue;
            }
            let gain = constants[l] * (lvl.error_at(b[l]) - lvl.error_at(b[l] + 1)).max(0.0);
            let cost = lvl.plane_size(b[l]).max(1) as f64;
            let eff = gain / cost;
            if best.is_none_or(|(_, be)| eff > be) {
                best = Some((l, eff));
            }
        }
        let Some((l, _)) = best else {
            break; // every plane of every level fetched
        };
        let old = constants[l] * levels[l].error_at(b[l]);
        b[l] += 1;
        let new = constants[l] * levels[l].error_at(b[l]);
        est += new - old;
    }

    RetrievalPlan { planes: b, estimated_error: est }
}

/// Refine an externally predicted plan against an error estimate:
/// greedily *add* planes while `Σ constants[l]·Err[l][b_l] > err_bound`,
/// then greedily *remove* planes whose absence keeps the estimate within
/// the bound, dropping the cheapest error contribution per byte first.
///
/// This is the primitive behind the combined D-MGARD + E-MGARD retriever
/// (the paper's §IV closing future-work item): D-MGARD supplies the
/// starting counts, E-MGARD the constants.
pub fn refine_plan(
    levels: &[LevelEncoding],
    constants: &[f64],
    err_bound: f64,
    initial: &[u32],
) -> RetrievalPlan {
    assert_eq!(levels.len(), constants.len(), "constants/levels mismatch");
    assert_eq!(levels.len(), initial.len(), "initial plan/levels mismatch");
    let mut b: Vec<u32> =
        initial.iter().zip(levels).map(|(&p, lvl)| p.min(lvl.num_planes())).collect();
    let mut est: f64 =
        levels.iter().zip(constants).zip(&b).map(|((l, &c), &bl)| c * l.error_at(bl)).sum();

    // Grow: identical policy to `greedy_plan`.
    while est > err_bound {
        let mut best: Option<(usize, f64)> = None;
        for (l, lvl) in levels.iter().enumerate() {
            if b[l] >= lvl.num_planes() {
                continue;
            }
            let gain = constants[l] * (lvl.error_at(b[l]) - lvl.error_at(b[l] + 1)).max(0.0);
            let cost = lvl.plane_size(b[l]).max(1) as f64;
            let eff = gain / cost;
            if best.is_none_or(|(_, be)| eff > be) {
                best = Some((l, eff));
            }
        }
        let Some((l, _)) = best else { break };
        let old = constants[l] * levels[l].error_at(b[l]);
        b[l] += 1;
        est += constants[l] * levels[l].error_at(b[l]) - old;
    }

    // Shrink: drop the plane that frees the most bytes per unit of added
    // estimated error, as long as the bound still holds.
    loop {
        let mut best: Option<(usize, f64, f64)> = None; // (level, new_est, score)
        for (l, lvl) in levels.iter().enumerate() {
            if b[l] == 0 {
                continue;
            }
            let added = constants[l] * (lvl.error_at(b[l] - 1) - lvl.error_at(b[l]));
            let new_est = est + added;
            if new_est > err_bound {
                continue;
            }
            let freed = lvl.plane_size(b[l] - 1).max(1) as f64;
            let score = freed / (added + f64::MIN_POSITIVE);
            if best.is_none_or(|(_, _, bs)| score > bs) {
                best = Some((l, new_est, score));
            }
        }
        let Some((l, new_est, _)) = best else { break };
        b[l] -= 1;
        est = new_est;
    }

    RetrievalPlan { planes: b, estimated_error: est }
}

/// Greedy plan under per-level availability caps: starting from the planes
/// already held (`floor`), fetch additional planes by accuracy efficiency —
/// but never past `caps[l]` at level `l`.
///
/// This is the degraded-retrieval re-planner: when a segment of level `l`
/// is unrecoverable after retries, the level's usable prefix is capped at
/// the last intact plane, and the remaining error budget is spent on the
/// *surviving* levels instead. The returned plan's `estimated_error` is the
/// honest theory estimate at the capped plan — it may exceed `err_bound`
/// when the caps make the bound unreachable, and callers must report that
/// rather than the requested bound.
pub fn greedy_plan_capped(
    levels: &[LevelEncoding],
    constants: &[f64],
    err_bound: f64,
    floor: &[u32],
    caps: &[u32],
) -> RetrievalPlan {
    assert_eq!(levels.len(), constants.len(), "constants/levels mismatch");
    assert_eq!(levels.len(), floor.len(), "floor/levels mismatch");
    assert_eq!(levels.len(), caps.len(), "caps/levels mismatch");
    assert!(err_bound >= 0.0, "error bound must be non-negative");
    let caps: Vec<u32> = caps.iter().zip(levels).map(|(&c, l)| c.min(l.num_planes())).collect();
    let mut b: Vec<u32> = floor.iter().zip(&caps).map(|(&f, &c)| f.min(c)).collect();
    let mut est: f64 =
        levels.iter().zip(constants).zip(&b).map(|((l, &c), &bl)| c * l.error_at(bl)).sum();

    while est > err_bound {
        let mut best: Option<(usize, f64)> = None;
        for (l, lvl) in levels.iter().enumerate() {
            if b[l] >= caps[l] {
                continue;
            }
            let gain = constants[l] * (lvl.error_at(b[l]) - lvl.error_at(b[l] + 1)).max(0.0);
            let cost = lvl.plane_size(b[l]).max(1) as f64;
            let eff = gain / cost;
            if best.is_none_or(|(_, be)| eff > be) {
                best = Some((l, eff));
            }
        }
        let Some((l, _)) = best else {
            break; // every admissible plane fetched; bound unreachable
        };
        let old = constants[l] * levels[l].error_at(b[l]);
        b[l] += 1;
        est += constants[l] * levels[l].error_at(b[l]) - old;
    }

    RetrievalPlan { planes: b, estimated_error: est }
}

/// Greedy plan under a byte budget: fetch planes by accuracy efficiency —
/// the same ordering as [`greedy_plan`] — but stop when no remaining plane
/// fits within `byte_budget` of cumulative compressed size.
///
/// This is the planner behind `RetrievalTarget::ByteBudget`: instead of
/// "spend whatever it takes to reach error `e`", the caller says "spend at
/// most `n` bytes and give me the best error those bytes can buy". The
/// returned plan's `estimated_error` is the honest theory estimate at the
/// selected planes.
pub fn greedy_plan_budget(
    levels: &[LevelEncoding],
    constants: &[f64],
    byte_budget: u64,
) -> RetrievalPlan {
    assert_eq!(levels.len(), constants.len(), "constants/levels mismatch");
    let mut b: Vec<u32> = vec![0; levels.len()];
    let mut est: f64 = levels.iter().zip(constants).map(|(l, &c)| c * l.error_at(0)).sum();
    let mut spent: u64 = 0;

    loop {
        // Among planes that still fit in the budget, pick the best error
        // reduction per byte (ties and zero-gain planes behave exactly as
        // in `greedy_plan`, so budget- and tolerance-driven plans agree on
        // the fetch order).
        let mut best: Option<(usize, f64)> = None;
        for (l, lvl) in levels.iter().enumerate() {
            if b[l] >= lvl.num_planes() {
                continue;
            }
            let size = lvl.plane_size(b[l]);
            if spent.saturating_add(size) > byte_budget {
                continue;
            }
            let gain = constants[l] * (lvl.error_at(b[l]) - lvl.error_at(b[l] + 1)).max(0.0);
            let eff = gain / size.max(1) as f64;
            if best.is_none_or(|(_, be)| eff > be) {
                best = Some((l, eff));
            }
        }
        let Some((l, _)) = best else {
            break; // nothing left that fits
        };
        let old = constants[l] * levels[l].error_at(b[l]);
        spent += levels[l].plane_size(b[l]);
        b[l] += 1;
        est += constants[l] * levels[l].error_at(b[l]) - old;
    }

    RetrievalPlan { planes: b, estimated_error: est }
}

/// The size interpreter: compressed bytes fetched under `plan`
/// (Equation 1 of the paper).
pub fn plan_size(levels: &[LevelEncoding], plan: &RetrievalPlan) -> u64 {
    assert_eq!(levels.len(), plan.planes.len(), "plan/levels mismatch");
    levels.iter().zip(&plan.planes).map(|(l, &b)| l.size_of_first(b)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_levels() -> Vec<LevelEncoding> {
        // Three levels with different magnitudes and counts.
        let l0: Vec<f64> = (0..8).map(|i| (i as f64 - 3.5) * 2.0).collect();
        let l1: Vec<f64> = (0..32).map(|i| ((i as f64) * 0.71).sin()).collect();
        let l2: Vec<f64> = (0..128).map(|i| ((i as f64) * 0.37).cos() * 0.1).collect();
        vec![
            LevelEncoding::encode(&l0, 16),
            LevelEncoding::encode(&l1, 16),
            LevelEncoding::encode(&l2, 16),
        ]
    }

    #[test]
    fn zero_bound_fetches_everything_available() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let plan = greedy_plan(&levels, &constants, 0.0);
        // Quantization floor is positive, so the bound is unreachable and
        // every plane is fetched.
        for (l, lvl) in levels.iter().enumerate() {
            assert_eq!(plan.planes[l], lvl.num_planes());
        }
    }

    #[test]
    fn huge_bound_fetches_nothing() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let plan = greedy_plan(&levels, &constants, 1e9);
        assert_eq!(plan.planes, vec![0, 0, 0]);
        assert_eq!(plan_size(&levels, &plan), 0);
    }

    #[test]
    fn estimate_respects_bound_when_reachable() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        for bound in [1.0, 0.1, 1e-2, 1e-3] {
            let plan = greedy_plan(&levels, &constants, bound);
            assert!(plan.estimated_error <= bound, "bound={bound} est={}", plan.estimated_error);
        }
    }

    #[test]
    fn tighter_bounds_fetch_more_bytes() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let mut prev = 0;
        for bound in [10.0, 1.0, 0.1, 1e-2, 1e-3, 1e-4] {
            let plan = greedy_plan(&levels, &constants, bound);
            let size = plan_size(&levels, &plan);
            assert!(size >= prev, "bound={bound} size={size} prev={prev}");
            prev = size;
        }
    }

    #[test]
    fn larger_constants_fetch_more() {
        let levels = toy_levels();
        let small = greedy_plan(&levels, &[1.0, 1.0, 1.0], 0.05);
        let large = greedy_plan(&levels, &[8.0, 8.0, 8.0], 0.05);
        assert!(plan_size(&levels, &large) >= plan_size(&levels, &small));
    }

    #[test]
    fn plan_size_accumulates_per_level_prefixes() {
        let levels = toy_levels();
        let plan = RetrievalPlan::from_planes(vec![3, 1, 0]);
        let expected =
            levels[0].size_of_first(3) + levels[1].size_of_first(1) + levels[2].size_of_first(0);
        assert_eq!(plan_size(&levels, &plan), expected);
    }

    #[test]
    fn from_planes_has_no_estimate() {
        let p = RetrievalPlan::from_planes(vec![1, 2]);
        assert!(p.estimated_error.is_infinite());
    }

    #[test]
    fn refine_grows_underestimating_plans() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let bound = 1e-3;
        let refined = refine_plan(&levels, &constants, bound, &[0, 0, 0]);
        assert!(refined.estimated_error <= bound);
        // The grow phase matches greedy; the shrink phase may then drop
        // planes greedy over-fetched, so refine is never larger.
        let greedy = greedy_plan(&levels, &constants, bound);
        assert!(plan_size(&levels, &refined) <= plan_size(&levels, &greedy));
    }

    #[test]
    fn refine_shrinks_overestimating_plans() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let bound = 0.5;
        let all: Vec<u32> = levels.iter().map(|l| l.num_planes()).collect();
        let refined = refine_plan(&levels, &constants, bound, &all);
        assert!(refined.estimated_error <= bound);
        assert!(
            plan_size(&levels, &refined) < levels.iter().map(|l| l.total_size()).sum::<u64>(),
            "shrink pass should drop planes"
        );
    }

    #[test]
    fn refine_keeps_feasible_plans_feasible() {
        let levels = toy_levels();
        let constants = vec![2.0, 1.0, 0.5];
        for bound in [1.0, 1e-2, 1e-4] {
            for start in [vec![0u32, 5, 10], vec![16, 16, 16], vec![3, 3, 3]] {
                let plan = refine_plan(&levels, &constants, bound, &start);
                let full_est: f64 = levels
                    .iter()
                    .zip(&constants)
                    .map(|(l, &c)| c * l.error_at(l.num_planes()))
                    .sum();
                if full_est <= bound {
                    assert!(plan.estimated_error <= bound, "bound={bound} start={start:?}");
                }
            }
        }
    }

    #[test]
    fn capped_greedy_matches_greedy_when_unconstrained() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let caps: Vec<u32> = levels.iter().map(|l| l.num_planes()).collect();
        for bound in [1.0, 0.1, 1e-3] {
            let free = greedy_plan(&levels, &constants, bound);
            let capped = greedy_plan_capped(&levels, &constants, bound, &[0, 0, 0], &caps);
            assert_eq!(free, capped, "bound={bound}");
        }
    }

    #[test]
    fn capped_greedy_respects_caps_and_floor() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let floor = [2u32, 0, 1];
        let caps = [4u32, 0, 16];
        let plan = greedy_plan_capped(&levels, &constants, 1e-6, &floor, &caps);
        for l in 0..3 {
            assert!(plan.planes[l] >= floor[l].min(caps[l]), "level {l} below floor");
            assert!(plan.planes[l] <= caps[l], "level {l} above cap");
        }
        // The capped estimate is honest: recomputing from the rows agrees.
        let expect: f64 = levels
            .iter()
            .zip(&constants)
            .zip(&plan.planes)
            .map(|((lvl, &c), &b)| c * lvl.error_at(b))
            .sum();
        assert!((plan.estimated_error - expect).abs() <= 1e-12 * (1.0 + expect));
    }

    #[test]
    fn capped_greedy_compensates_on_surviving_levels() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let bound = 1e-3;
        let free = greedy_plan(&levels, &constants, bound);
        // Cap level 1 below what the free plan wanted: the planner must
        // spend more planes on levels 0/2 to chase the bound.
        assert!(free.planes[1] > 1);
        let caps = [16u32, 1, 16];
        let capped = greedy_plan_capped(&levels, &constants, bound, &[0, 0, 0], &caps);
        assert_eq!(capped.planes[1], 1);
        assert!(
            capped.planes[0] >= free.planes[0] && capped.planes[2] >= free.planes[2],
            "capped={:?} free={:?}",
            capped.planes,
            free.planes
        );
    }

    #[test]
    fn budget_plan_never_exceeds_budget() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let total: u64 = levels.iter().map(|l| l.total_size()).sum();
        for budget in [0, 16, 64, 256, 1024, total, total + 100] {
            let plan = greedy_plan_budget(&levels, &constants, budget);
            assert!(plan_size(&levels, &plan) <= budget, "budget={budget}");
        }
    }

    #[test]
    fn budget_plan_error_is_monotone_in_budget() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let mut prev_err = f64::INFINITY;
        let mut prev_size = 0;
        for budget in [0u64, 32, 128, 512, 2048, 1 << 20] {
            let plan = greedy_plan_budget(&levels, &constants, budget);
            let size = plan_size(&levels, &plan);
            assert!(plan.estimated_error <= prev_err, "budget={budget}");
            assert!(size >= prev_size, "budget={budget}");
            prev_err = plan.estimated_error;
            prev_size = size;
        }
    }

    #[test]
    fn huge_budget_fetches_everything() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let plan = greedy_plan_budget(&levels, &constants, u64::MAX);
        for (l, lvl) in levels.iter().enumerate() {
            assert_eq!(plan.planes[l], lvl.num_planes());
        }
    }

    #[test]
    fn budget_estimate_is_honest() {
        let levels = toy_levels();
        let constants = vec![2.0, 1.0, 0.5];
        let plan = greedy_plan_budget(&levels, &constants, 300);
        let expect: f64 = levels
            .iter()
            .zip(&constants)
            .zip(&plan.planes)
            .map(|((lvl, &c), &b)| c * lvl.error_at(b))
            .sum();
        assert!((plan.estimated_error - expect).abs() <= 1e-12 * (1.0 + expect));
    }

    #[test]
    fn refine_clamps_out_of_range_initial_counts() {
        let levels = toy_levels();
        let constants = vec![1.0; 3];
        let plan = refine_plan(&levels, &constants, 1e9, &[99, 99, 99]);
        assert!(plan.planes.iter().zip(&levels).all(|(&b, l)| b <= l.num_planes()));
    }
}
