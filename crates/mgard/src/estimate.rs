//! The theory-based error estimator — the component the paper shows to be
//! over-pessimistic and replaces with DNNs.
//!
//! Reconstruction is linear: `data = Σ_l T_l(coeff_l)`, so a per-level
//! coefficient error `e_l` with `‖e_l‖_∞ ≤ ε_l` yields
//! `‖err‖_∞ ≤ Σ_l ‖T_l‖_∞ ε_l`. The classical MGARD analysis bounds
//! `‖T_l‖_∞` by absolute row sums — i.e. it assumes every weight on every
//! interpolation/correction path adds constructively and **neglects the
//! cancellation between positive and negative errors** (paper §II-C). We
//! derive the same style of bound for our transform:
//!
//! * level 0 (coarsest approximation values) propagates through every
//!   inverse step purely as "coarse data": prediction weights are convex and
//!   the correction does not read coarse values, so `C_0 = 1`;
//! * a level `j > 0` shell is consumed at its own inverse step, where a
//!   worst-case 1-D amplification applies per active dimension:
//!   - interpolation mode: `fine_odd = avg(coarse) + d` → factor `2`;
//!   - L2 mode: `coarse = coarse' − z`, `‖z‖_∞ ≤ ‖M_c⁻¹‖_∞ ‖b‖_∞ ≤ 3ε`
//!     (see [`crate::transform::MASS_INVERSE_NORM_BOUND`]) → coarse ≤ `4ε`,
//!     then `fine_odd = avg + d ≤ 5ε` → factor `5`;
//!
//!   and factor 1 at every coarser-than-own step (the details there are
//!   other levels'). Hence `C_j = κ^{d_j}` with `d_j` the number of
//!   dimensions active at the step that consumes level `j`.
//!
//! These are *true* upper bounds (verified by property tests), and — exactly
//! as the paper demonstrates — looser than reality by orders of magnitude,
//! because the bit-plane quantization errors of thousands of coefficients
//! never align in sign and location.

use crate::bitplane::LevelEncoding;
use crate::decompose::{Decomposer, TransformMode};

/// Per-dimension worst-case amplification of a level's coefficient error at
/// its own inverse step.
pub fn per_dim_factor(mode: TransformMode) -> f64 {
    match mode {
        TransformMode::Interpolation => 2.0,
        TransformMode::L2Projection => 5.0,
    }
}

/// The theory constants `C_l` for every coefficient level of `dec`
/// (length `dec.levels()`).
pub fn theory_constants(dec: &Decomposer) -> Vec<f64> {
    let kappa = per_dim_factor(dec.mode());
    let steps = dec.steps();
    let mut constants = Vec::with_capacity(dec.levels());
    // Level 0: coarsest data, factor 1.
    constants.push(1.0);
    // Level j > 0 is consumed at step s = steps - j.
    for j in 1..dec.levels() {
        let s = steps - j;
        // At most 3 dimensions are ever active; the fallback is the cap.
        let d = i32::try_from(dec.active_dims_at_step(s)).unwrap_or(3);
        constants.push(kappa.powi(d));
    }
    constants
}

/// Theory estimate `Σ_l C_l · Err[l][b_l]` for the plane counts `b`.
pub fn estimate_error(levels: &[LevelEncoding], constants: &[f64], b: &[u32]) -> f64 {
    assert_eq!(levels.len(), constants.len());
    assert_eq!(levels.len(), b.len());
    levels.iter().zip(constants).zip(b).map(|((lvl, &c), &bl)| c * lvl.error_at(bl)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_field::Shape;

    #[test]
    fn constants_shape_and_monotonicity() {
        let dec = Decomposer::new(Shape::cube(17), 5, TransformMode::L2Projection);
        let c = theory_constants(&dec);
        assert_eq!(c.len(), 5);
        assert_eq!(c[0], 1.0);
        // All dims active at every step for a 17^3 grid with 4 steps.
        for &cj in &c[1..5] {
            assert_eq!(cj, 125.0);
        }
    }

    #[test]
    fn interpolation_mode_constants_smaller() {
        let shape = Shape::cube(17);
        let interp = theory_constants(&Decomposer::new(shape, 4, TransformMode::Interpolation));
        let l2 = theory_constants(&Decomposer::new(shape, 4, TransformMode::L2Projection));
        for (a, b) in interp.iter().zip(&l2).skip(1) {
            assert!(a < b);
        }
    }

    #[test]
    fn anisotropic_constants_use_active_dims() {
        // 33x3 grid: at fine steps both dims active, later only x.
        let dec = Decomposer::new(Shape::d2(33, 3), 5, TransformMode::Interpolation);
        let c = theory_constants(&dec);
        // Finest level (consumed at step 0): 2 dims -> 4.
        assert_eq!(*c.last().unwrap(), 4.0);
        // Coarsest shells consumed at steps >= 2: only x active -> 2.
        assert_eq!(c[1], 2.0);
    }

    /// The headline property: the estimate is a true upper bound on the
    /// actual reconstruction error, for both modes and truncation depths.
    #[test]
    fn estimate_upper_bounds_actual_error() {
        for mode in [TransformMode::Interpolation, TransformMode::L2Projection] {
            let shape = Shape::cube(9);
            let dec = Decomposer::new(shape, 4, mode);
            let original: Vec<f64> = (0..shape.len())
                .map(|i| {
                    let (x, y, z) = shape.coords(i);
                    ((x as f64) * 0.9).sin() * ((y as f64) * 0.55).cos()
                        + 0.3 * ((z * z) as f64).sqrt()
                })
                .collect();
            let mut coeffs = original.clone();
            dec.decompose(&mut coeffs);
            let levels: Vec<LevelEncoding> =
                dec.interleave(&coeffs).iter().map(|c| LevelEncoding::encode(c, 32)).collect();
            let constants = theory_constants(&dec);

            for planes in [0u32, 2, 5, 9, 14, 20, 32] {
                let b = vec![planes; levels.len()];
                let est = estimate_error(&levels, &constants, &b);
                // Actual reconstruction with truncated planes.
                let truncated: Vec<Vec<f64>> = levels.iter().map(|l| l.decode(planes)).collect();
                let mut data = dec.deinterleave(&truncated);
                dec.recompose(&mut data);
                let actual =
                    original.iter().zip(&data).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
                assert!(
                    actual <= est + 1e-12,
                    "mode={mode:?} planes={planes} actual={actual} est={est}"
                );
            }
        }
    }
}
