//! Multilevel decomposition of 1-/2-/3-D fields and the level interleaver.
//!
//! A [`Decomposer`] with `L` coefficient levels performs `L - 1` separable
//! decomposition steps. At step `s` the active grid consists of the nodes
//! whose coordinates are all multiples of `2^s`; the step runs the 1-D
//! transform of [`crate::transform`] along every active line of every
//! dimension, leaving details at nodes that drop out of the next-coarser
//! grid.
//!
//! **Level convention** (paper Fig. 5): level `0` is the *highest* level with
//! the *lowest* resolution — the coarsest-grid approximation values; level
//! `L-1` is the finest detail shell. Level `j > 0` holds the details created
//! at decomposition step `s = (L-1) - j`.

use crate::exec::ExecPolicy;
use crate::transform::{forward_line, inverse_line, LineScratch};
use pmr_field::Shape;
use serde::{Deserialize, Serialize};

/// Which multilevel transform to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransformMode {
    /// Pure interpolating hierarchy (details only; coarse values untouched).
    Interpolation,
    /// MGARD-style hierarchy: interpolation plus the multigrid L2-projection
    /// correction on coarse values. This is the default and the mode whose
    /// error theory the paper analyses.
    L2Projection,
}

/// A reusable multilevel decomposition plan for one grid shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposer {
    shape: Shape,
    /// Number of coefficient levels `L` (steps = L - 1).
    levels: usize,
    mode: TransformMode,
}

impl Decomposer {
    /// Create a decomposer with (up to) `levels` coefficient levels.
    ///
    /// `levels` is clamped to [`Decomposer::max_levels`] for the shape; use
    /// [`Decomposer::levels`] to observe the effective count.
    pub fn new(shape: Shape, levels: usize, mode: TransformMode) -> Self {
        let levels = levels.clamp(1, Self::max_levels(shape));
        Decomposer { shape, levels, mode }
    }

    /// The largest meaningful number of coefficient levels for `shape`:
    /// one more than the number of steps after which no dimension has two
    /// active points left.
    pub fn max_levels(shape: Shape) -> usize {
        let mut steps = 0usize;
        while (0..3).any(|d| active_size(shape.dim(d), steps) >= 2) {
            steps += 1;
        }
        steps + 1
    }

    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Effective number of coefficient levels `L`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of decomposition steps (`L - 1`).
    pub fn steps(&self) -> usize {
        self.levels - 1
    }

    pub fn mode(&self) -> TransformMode {
        self.mode
    }

    /// Number of dimensions still being transformed at step `s` (some
    /// dimensions collapse to a single point before others on anisotropic
    /// grids). Used by the theory error estimator.
    pub fn active_dims_at_step(&self, s: usize) -> usize {
        (0..3).filter(|&d| active_size(self.shape.dim(d), s) >= 2).count()
    }

    /// Forward transform, in place. `data.len()` must equal `shape.len()`.
    pub fn decompose(&self, data: &mut [f64]) {
        assert_eq!(data.len(), self.shape.len(), "data/shape length mismatch");
        let mut scratch = LineScratch::new();
        for s in 0..self.steps() {
            for d in 0..3 {
                self.transform_dim(data, s, d, true, &mut scratch);
            }
        }
    }

    /// Inverse transform, in place.
    pub fn recompose(&self, data: &mut [f64]) {
        assert_eq!(data.len(), self.shape.len(), "data/shape length mismatch");
        let mut scratch = LineScratch::new();
        for s in (0..self.steps()).rev() {
            for d in (0..3).rev() {
                self.transform_dim(data, s, d, false, &mut scratch);
            }
        }
    }

    /// [`Decomposer::decompose`] under an explicit execution policy.
    ///
    /// Each `(step, dimension)` phase transforms a set of fully independent
    /// strided lines; worker threads claim fixed-size chunks of those lines,
    /// so the parallel result is bit-identical to the serial one.
    pub fn decompose_with(&self, data: &mut [f64], exec: &ExecPolicy) {
        assert_eq!(data.len(), self.shape.len(), "data/shape length mismatch");
        let phases: Vec<(usize, usize)> =
            (0..self.steps()).flat_map(|s| (0..3).map(move |d| (s, d))).collect();
        let threads = self.clamp_threads(exec, &phases);
        if threads <= 1 {
            self.decompose(data);
        } else {
            self.run_phases_parallel(data, &phases, true, exec, threads);
        }
    }

    /// [`Decomposer::recompose`] under an explicit execution policy.
    pub fn recompose_with(&self, data: &mut [f64], exec: &ExecPolicy) {
        assert_eq!(data.len(), self.shape.len(), "data/shape length mismatch");
        let phases: Vec<(usize, usize)> =
            (0..self.steps()).rev().flat_map(|s| (0..3).rev().map(move |d| (s, d))).collect();
        let threads = self.clamp_threads(exec, &phases);
        if threads <= 1 {
            self.recompose(data);
        } else {
            self.run_phases_parallel(data, &phases, false, exec, threads);
        }
    }

    /// [`Decomposer::recompose_to_level`] under an explicit execution policy.
    pub fn recompose_to_level_with(
        &self,
        data: &mut [f64],
        target_level: usize,
        exec: &ExecPolicy,
    ) -> Vec<f64> {
        assert_eq!(data.len(), self.shape.len(), "data/shape length mismatch");
        assert!(target_level < self.levels(), "level out of range");
        let stop_step = self.steps() - target_level;
        let phases: Vec<(usize, usize)> = (stop_step..self.steps())
            .rev()
            .flat_map(|s| (0..3).rev().map(move |d| (s, d)))
            .collect();
        let threads = self.clamp_threads(exec, &phases);
        if threads <= 1 {
            return self.recompose_to_level(data, target_level);
        }
        self.run_phases_parallel(data, &phases, false, exec, threads);
        self.gather_coarse(data, target_level, stop_step)
    }

    /// Shape of the grid at coefficient level `target_level`
    /// (`0` = coarsest approximation grid, `levels() - 1` = one step above
    /// the full grid, `levels()` would be the full grid itself).
    pub fn grid_shape_at_level(&self, target_level: usize) -> Shape {
        assert!(target_level < self.levels(), "level out of range");
        let s = self.steps() - target_level;
        let d = |i: usize| active_size(self.shape.dim(i), s);
        match self.shape.ndim() {
            1 => Shape::d1(d(0)),
            2 => Shape::d2(d(0), d(1)),
            _ => Shape::d3(d(0), d(1), d(2)),
        }
    }

    /// Partially recompose `data` up to the grid of `target_level` and
    /// extract that coarse grid as a dense array (row-major).
    ///
    /// This is the "reduced degrees of freedom" path of progressive
    /// retrieval (paper §I): an analysis that only needs a coarse view
    /// never materialises — or pays recomposition for — the fine grid.
    pub fn recompose_to_level(&self, data: &mut [f64], target_level: usize) -> Vec<f64> {
        assert_eq!(data.len(), self.shape.len(), "data/shape length mismatch");
        assert!(target_level < self.levels(), "level out of range");
        let stop_step = self.steps() - target_level;
        let mut scratch = LineScratch::new();
        for s in (stop_step..self.steps()).rev() {
            for d in (0..3).rev() {
                self.transform_dim(data, s, d, false, &mut scratch);
            }
        }
        self.gather_coarse(data, target_level, stop_step)
    }

    /// Gather the active nodes of `stop_step` into a dense coarse grid.
    fn gather_coarse(&self, data: &[f64], target_level: usize, stop_step: usize) -> Vec<f64> {
        let coarse = self.grid_shape_at_level(target_level);
        let stride = 1usize << stop_step;
        let mut out = Vec::with_capacity(coarse.len());
        for z in 0..coarse.dim(2) {
            for y in 0..coarse.dim(1) {
                for x in 0..coarse.dim(0) {
                    out.push(data[self.shape.index(x * stride, y * stride, z * stride)]);
                }
            }
        }
        out
    }

    /// Line geometry of the `(step, dimension)` phase, or `None` when the
    /// dimension has collapsed to a single active point.
    fn phase_job(&self, s: usize, d: usize) -> Option<PhaseJob> {
        let n = self.shape.dim(d);
        let m = active_size(n, s);
        if m < 2 {
            return None;
        }
        let stride = self.shape.stride(d) << s;
        let (d1, d2) = other_dims(d);
        let (n1, n2) = (self.shape.dim(d1), self.shape.dim(d2));
        let (st1, st2) = (self.shape.stride(d1) << s, self.shape.stride(d2) << s);
        let (m1, m2) = (active_size(n1, s), active_size(n2, s));
        Some(PhaseJob { stride, st1, st2, m, m1, m2 })
    }

    /// Run the 1-D transform along dimension `d` on every active line of
    /// step `s`.
    fn transform_dim(
        &self,
        data: &mut [f64],
        s: usize,
        d: usize,
        forward: bool,
        scratch: &mut LineScratch,
    ) {
        let Some(j) = self.phase_job(s, d) else {
            return;
        };
        let mut line = std::mem::take(&mut scratch.line);
        line.resize(j.m, 0.0);
        for i2 in 0..j.m2 {
            for i1 in 0..j.m1 {
                let base = i1 * j.st1 + i2 * j.st2;
                for (k, v) in line.iter_mut().enumerate() {
                    *v = data[base + k * j.stride];
                }
                if forward {
                    forward_line(&mut line, self.mode, scratch);
                } else {
                    inverse_line(&mut line, self.mode, scratch);
                }
                for (k, v) in line.iter().enumerate() {
                    data[base + k * j.stride] = *v;
                }
            }
        }
        scratch.line = line;
    }

    /// Cap the policy's thread count by the widest phase: extra workers
    /// beyond one per line chunk only pay startup and barrier costs.
    fn clamp_threads(&self, exec: &ExecPolicy, phases: &[(usize, usize)]) -> usize {
        let chunk = exec.resolved_chunk_lines().max(1);
        let max_chunks = phases
            .iter()
            .filter_map(|&(s, d)| self.phase_job(s, d))
            .map(|j| (j.m1 * j.m2).div_ceil(chunk))
            .max()
            .unwrap_or(0);
        exec.resolved_threads().min(max_chunks)
    }

    /// Execute a sequence of `(step, dimension)` transform phases across
    /// `threads` scoped workers, entirely in safe code.
    ///
    /// Within one phase every strided line is independent: line `li` owns the
    /// index set `{base(li) + k * stride}`, and distinct `li` produce disjoint
    /// sets. Instead of sharing a raw pointer, each phase *splits* the buffer
    /// into disjoint `&mut` windows with `chunks_mut` so the borrow checker
    /// proves the disjointness:
    ///
    /// - When a line's elements are contiguous enough to fit inside its own
    ///   `st1`-wide window (the stride-1 dimension of each step), the phase
    ///   runs **in place**: nested `chunks_mut(st2)` / `chunks_mut(st1)`
    ///   yields one exclusive window per line.
    /// - Otherwise lines interleave in memory, and the phase runs **two-pass**
    ///   through a scratch buffer: pass 1 gathers and transforms every line
    ///   into a line-contiguous scratch slot (reading the buffer shared),
    ///   pass 2 scatters scratch back through disjoint element windows.
    ///
    /// Work is dealt to threads in fixed `chunk_lines`-sized runs decided
    /// purely by line index, and each line's transform is self-contained, so
    /// the assignment of lines to threads cannot affect the result — parallel
    /// output is bit-identical to serial output.
    fn run_phases_parallel(
        &self,
        data: &mut [f64],
        phases: &[(usize, usize)],
        forward: bool,
        exec: &ExecPolicy,
        threads: usize,
    ) {
        let chunk = exec.resolved_chunk_lines().max(1);
        let mut scratch_buf: Vec<f64> = Vec::new();
        for &(s, d) in phases {
            let Some(j) = self.phase_job(s, d) else {
                continue;
            };
            // A line fits in its own st1 window iff its last element lands
            // before the next line's base; the slab condition below then
            // guarantees i2 slabs stay inside their st2 windows too.
            let line_contained = (j.m - 1) * j.stride < j.st1;
            let slab_contained = (j.m1 - 1) * j.st1 + (j.m - 1) * j.stride < j.st2;
            if line_contained && slab_contained {
                self.phase_in_place(data, j, forward, threads, chunk);
            } else {
                self.phase_two_pass(data, j, forward, threads, chunk, &mut scratch_buf);
            }
        }
    }

    /// One transform phase where every line owns a contiguous-enough window:
    /// split the buffer into per-line `&mut` windows and transform in place.
    fn phase_in_place(
        &self,
        data: &mut [f64],
        j: PhaseJob,
        forward: bool,
        threads: usize,
        chunk: usize,
    ) {
        let mut lines: Vec<&mut [f64]> = Vec::with_capacity(j.m1 * j.m2);
        for slab in data.chunks_mut(j.st2).take(j.m2) {
            lines.extend(slab.chunks_mut(j.st1).take(j.m1));
        }
        let buckets = deal(lines, threads, chunk);
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    let mut scratch = LineScratch::new();
                    let mut line = vec![0.0f64; j.m];
                    for win in bucket {
                        for (k, v) in line.iter_mut().enumerate() {
                            *v = win[k * j.stride];
                        }
                        if forward {
                            forward_line(&mut line, self.mode, &mut scratch);
                        } else {
                            inverse_line(&mut line, self.mode, &mut scratch);
                        }
                        for (k, v) in line.iter().enumerate() {
                            win[k * j.stride] = *v;
                        }
                    }
                });
            }
        });
    }

    /// One transform phase whose lines interleave in memory. Pass 1 gathers
    /// each line from the (shared, read-only) buffer into a line-contiguous
    /// scratch slot and transforms it there; pass 2 scatters scratch back
    /// through disjoint `chunks_mut` element windows.
    fn phase_two_pass(
        &self,
        data: &mut [f64],
        j: PhaseJob,
        forward: bool,
        threads: usize,
        chunk: usize,
        scratch_buf: &mut Vec<f64>,
    ) {
        let nlines = j.m1 * j.m2;
        scratch_buf.clear();
        scratch_buf.resize(nlines * j.m, 0.0);

        // Pass 1: transform every line into its scratch slot.
        {
            let data_ro: &[f64] = data;
            let slots: Vec<(usize, &mut [f64])> = scratch_buf.chunks_mut(j.m).enumerate().collect();
            let buckets = deal(slots, threads, chunk);
            std::thread::scope(|scope| {
                for bucket in buckets {
                    scope.spawn(move || {
                        let mut scratch = LineScratch::new();
                        for (li, slot) in bucket {
                            let base = (li % j.m1) * j.st1 + (li / j.m1) * j.st2;
                            for (k, v) in slot.iter_mut().enumerate() {
                                *v = data_ro[base + k * j.stride];
                            }
                            if forward {
                                forward_line(slot, self.mode, &mut scratch);
                            } else {
                                inverse_line(slot, self.mode, &mut scratch);
                            }
                        }
                    });
                }
            });
        }

        // Pass 2: scatter scratch back. Element `k` of every line lands in
        // the `k`-th stride-wide window (nested inside st2 slabs when the
        // line stride is not the outermost step of this phase).
        let scratch_ro: &[f64] = scratch_buf;
        if j.stride > j.st2 {
            // Line stride is outermost: window w holds element w of every
            // line at local offset i1*st1 + i2*st2.
            let wins: Vec<(usize, &mut [f64])> =
                data.chunks_mut(j.stride).take(j.m).enumerate().collect();
            let buckets = deal(wins, threads, chunk);
            std::thread::scope(|scope| {
                for bucket in buckets {
                    scope.spawn(move || {
                        for (k, win) in bucket {
                            for li in 0..nlines {
                                let off = (li % j.m1) * j.st1 + (li / j.m1) * j.st2;
                                win[off] = scratch_ro[li * j.m + k];
                            }
                        }
                    });
                }
            });
        } else {
            // st2 is outermost: split into i2 slabs, then element windows
            // inside each slab; element k of line (i1, i2) sits at i1*st1.
            let slabs: Vec<(usize, &mut [f64])> =
                data.chunks_mut(j.st2).take(j.m2).enumerate().collect();
            let buckets = deal(slabs, threads, chunk);
            std::thread::scope(|scope| {
                for bucket in buckets {
                    scope.spawn(move || {
                        for (i2, slab) in bucket {
                            for (k, win) in slab.chunks_mut(j.stride).take(j.m).enumerate() {
                                for i1 in 0..j.m1 {
                                    win[i1 * j.st1] = scratch_ro[(i2 * j.m1 + i1) * j.m + k];
                                }
                            }
                        }
                    });
                }
            });
        }
    }

    /// Coefficient level of the node at `(x, y, z)` under the convention
    /// documented at module level.
    pub fn level_of_node(&self, x: usize, y: usize, z: usize) -> usize {
        let steps = self.steps();
        let mut s = 0;
        while s < steps {
            let p = 1usize << (s + 1);
            if x.is_multiple_of(p) && y.is_multiple_of(p) && z.is_multiple_of(p) {
                s += 1;
            } else {
                break;
            }
        }
        steps - s
    }

    /// Linear indices of every node, grouped by coefficient level, each
    /// group in row-major scan order. The interleaver contract: encoding and
    /// decoding both traverse these lists.
    pub fn level_indices(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.levels];
        let sh = self.shape;
        for z in 0..sh.dim(2) {
            for y in 0..sh.dim(1) {
                for x in 0..sh.dim(0) {
                    groups[self.level_of_node(x, y, z)].push(sh.index(x, y, z));
                }
            }
        }
        groups
    }

    /// Gather decomposed data into one contiguous coefficient array per
    /// level (the "interleaver" of the MGARD pipeline).
    pub fn interleave(&self, data: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(data.len(), self.shape.len());
        self.level_indices().iter().map(|idxs| idxs.iter().map(|&i| data[i]).collect()).collect()
    }

    /// Scatter per-level coefficient arrays back into a full grid buffer.
    /// Missing trailing values (never produced by [`interleave`], but
    /// possible with truncated external input) are rejected.
    pub fn deinterleave(&self, levels: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(levels.len(), self.levels, "level count mismatch");
        let mut data = vec![0.0; self.shape.len()];
        for (group, idxs) in levels.iter().zip(self.level_indices()) {
            assert_eq!(group.len(), idxs.len(), "level size mismatch");
            for (&v, &i) in group.iter().zip(&idxs) {
                data[i] = v;
            }
        }
        data
    }
}

/// Deal work items into per-thread buckets, `chunk` consecutive items at a
/// time, round-robin. The mapping is a pure function of the item index, so
/// identical inputs always land on identical buckets regardless of runtime
/// scheduling; empty buckets are dropped so no idle thread is spawned.
fn deal<T>(items: Vec<T>, threads: usize, chunk: usize) -> Vec<Vec<T>> {
    let n = threads.max(1);
    let mut buckets: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[(i / chunk) % n].push(item);
    }
    buckets.retain(|b| !b.is_empty());
    buckets
}

/// Number of active points along a dimension of extent `n` at step `s`:
/// `ceil(n / 2^s)`.
pub fn active_size(n: usize, s: usize) -> usize {
    if s >= usize::BITS as usize {
        return 1;
    }
    n.div_ceil(1 << s)
}

/// Geometry of one `(step, dimension)` transform phase: `m1 * m2` independent
/// lines of `m` points each, with element stride `stride` and line-origin
/// strides `st1`/`st2` over the cross dimensions.
#[derive(Debug, Clone, Copy)]
struct PhaseJob {
    stride: usize,
    st1: usize,
    st2: usize,
    m: usize,
    m1: usize,
    m2: usize,
}

/// The two grid dimensions other than `d`, in ascending order. Total over
/// `usize` so phase construction stays panic-free; callers only ever pass
/// `0..3`.
fn other_dims(d: usize) -> (usize, usize) {
    debug_assert!(d < 3, "dimension out of range");
    match d {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(len: usize) -> Vec<f64> {
        (0..len).map(|i| ((i * 2654435761usize) % 1000) as f64 / 31.0 - 16.0).collect()
    }

    fn roundtrip(shape: Shape, levels: usize, mode: TransformMode) {
        let dec = Decomposer::new(shape, levels, mode);
        let orig = ramp(shape.len());
        let mut data = orig.clone();
        dec.decompose(&mut data);
        dec.recompose(&mut data);
        let max_err = orig.iter().zip(&data).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "shape={shape} levels={levels} mode={mode:?} err={max_err}");
    }

    #[test]
    fn roundtrip_1d() {
        for n in [2usize, 3, 5, 8, 9, 16, 17, 33, 64, 100] {
            for mode in [TransformMode::Interpolation, TransformMode::L2Projection] {
                roundtrip(Shape::d1(n), 4, mode);
            }
        }
    }

    #[test]
    fn roundtrip_2d() {
        for (nx, ny) in [(5, 9), (8, 8), (17, 33), (30, 7)] {
            for mode in [TransformMode::Interpolation, TransformMode::L2Projection] {
                roundtrip(Shape::d2(nx, ny), 5, mode);
            }
        }
    }

    #[test]
    fn roundtrip_3d() {
        for (nx, ny, nz) in [(9, 9, 9), (17, 17, 17), (8, 12, 20), (33, 5, 2)] {
            for mode in [TransformMode::Interpolation, TransformMode::L2Projection] {
                roundtrip(Shape::d3(nx, ny, nz), 5, mode);
            }
        }
    }

    #[test]
    fn max_levels_examples() {
        assert_eq!(Decomposer::max_levels(Shape::d1(2)), 2); // one step: 2 -> 1
        assert_eq!(Decomposer::max_levels(Shape::d1(3)), 3); // 3 -> 2 -> 1
        assert_eq!(Decomposer::max_levels(Shape::d1(65)), 8); // 65,33,17,9,5,3,2 -> 1
        assert_eq!(Decomposer::max_levels(Shape::cube(17)), 6);
    }

    #[test]
    fn levels_clamped() {
        let dec = Decomposer::new(Shape::d1(5), 99, TransformMode::Interpolation);
        assert_eq!(dec.levels(), Decomposer::max_levels(Shape::d1(5)));
        let one = Decomposer::new(Shape::d1(5), 0, TransformMode::Interpolation);
        assert_eq!(one.levels(), 1);
        assert_eq!(one.steps(), 0);
    }

    #[test]
    fn level_partition_covers_grid() {
        let dec = Decomposer::new(Shape::cube(9), 4, TransformMode::L2Projection);
        let groups = dec.level_indices();
        assert_eq!(groups.len(), 4);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 9 * 9 * 9);
        // Level 0 is the coarsest grid: ceil(9/8)=2 per dim -> 8 nodes.
        assert_eq!(groups[0].len(), 8);
        // Finest shell is the biggest group.
        assert!(groups[3].len() > groups[2].len());
    }

    #[test]
    fn level_of_node_convention() {
        let dec = Decomposer::new(Shape::d1(9), 4, TransformMode::Interpolation);
        // steps = 3; node 0 and 8 divisible by 8 -> level 0.
        assert_eq!(dec.level_of_node(0, 0, 0), 0);
        assert_eq!(dec.level_of_node(8, 0, 0), 0);
        assert_eq!(dec.level_of_node(4, 0, 0), 1);
        assert_eq!(dec.level_of_node(2, 0, 0), 2);
        assert_eq!(dec.level_of_node(6, 0, 0), 2);
        assert_eq!(dec.level_of_node(1, 0, 0), 3);
        assert_eq!(dec.level_of_node(7, 0, 0), 3);
    }

    #[test]
    fn interleave_roundtrip() {
        let shape = Shape::d3(9, 5, 7);
        let dec = Decomposer::new(shape, 3, TransformMode::L2Projection);
        let data = ramp(shape.len());
        let levels = dec.interleave(&data);
        let back = dec.deinterleave(&levels);
        assert_eq!(back, data);
    }

    #[test]
    fn constant_field_has_zero_details() {
        let shape = Shape::cube(9);
        let dec = Decomposer::new(shape, 4, TransformMode::L2Projection);
        let mut data = vec![5.5; shape.len()];
        dec.decompose(&mut data);
        let levels = dec.interleave(&data);
        for (lvl, level) in levels.iter().enumerate().skip(1) {
            for &c in level {
                assert!(c.abs() < 1e-12, "level {lvl} coefficient {c}");
            }
        }
        // Coarsest approximation keeps the constant value.
        for &c in &levels[0] {
            assert!((c - 5.5).abs() < 1e-9);
        }
    }

    #[test]
    fn anisotropic_dims_collapse_gracefully() {
        // y collapses after 2 steps, x keeps going.
        let shape = Shape::d2(33, 3);
        let dec = Decomposer::new(shape, 5, TransformMode::L2Projection);
        assert_eq!(dec.active_dims_at_step(0), 2);
        assert_eq!(dec.active_dims_at_step(2), 1);
        roundtrip(shape, 5, TransformMode::L2Projection);
    }

    #[test]
    fn parallel_transform_is_bit_identical() {
        use crate::exec::ExecPolicy;
        for shape in [Shape::d1(100), Shape::d2(33, 17), Shape::d3(17, 9, 13)] {
            for mode in [TransformMode::Interpolation, TransformMode::L2Projection] {
                let dec = Decomposer::new(shape, 5, mode);
                let orig = ramp(shape.len());

                let mut serial = orig.clone();
                dec.decompose(&mut serial);
                for exec in [
                    ExecPolicy::with_threads(4),
                    ExecPolicy { threads: 3, chunk_lines: 1, ..Default::default() },
                    ExecPolicy { threads: 2, chunk_lines: 5, ..Default::default() },
                ] {
                    let mut par = orig.clone();
                    dec.decompose_with(&mut par, &exec);
                    let same = serial.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "decompose diverged: shape={shape} mode={mode:?} {exec:?}");

                    let mut back = par.clone();
                    dec.recompose_with(&mut back, &exec);
                    let mut back_serial = serial.clone();
                    dec.recompose(&mut back_serial);
                    let same =
                        back.iter().zip(&back_serial).all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "recompose diverged: shape={shape} mode={mode:?} {exec:?}");
                }
            }
        }
    }

    #[test]
    fn parallel_recompose_to_level_matches_serial() {
        use crate::exec::ExecPolicy;
        let shape = Shape::cube(17);
        let dec = Decomposer::new(shape, 4, TransformMode::L2Projection);
        let mut data = ramp(shape.len());
        dec.decompose(&mut data);
        for lvl in 0..dec.levels() {
            let mut a = data.clone();
            let mut b = data.clone();
            let coarse_serial = dec.recompose_to_level(&mut a, lvl);
            let coarse_par = dec.recompose_to_level_with(&mut b, lvl, &ExecPolicy::with_threads(4));
            assert_eq!(coarse_serial, coarse_par, "level {lvl}");
            assert_eq!(a, b, "level {lvl} full buffer");
        }
    }

    #[test]
    fn smooth_field_coefficients_decay_with_level() {
        // For smooth data, finer-level details should be smaller.
        let shape = Shape::cube(17);
        let dec = Decomposer::new(shape, 4, TransformMode::L2Projection);
        let mut data: Vec<f64> = (0..shape.len())
            .map(|i| {
                let (x, y, z) = shape.coords(i);
                ((x as f64) * 0.2).sin() + ((y as f64) * 0.15).cos() + 0.1 * (z as f64)
            })
            .collect();
        dec.decompose(&mut data);
        let levels = dec.interleave(&data);
        let max_of = |v: &[f64]| v.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        assert!(max_of(&levels[1]) > max_of(&levels[3]));
    }
}
