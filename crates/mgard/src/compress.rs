//! The high-level progressive compressor: one artifact per field holding
//! encoded planes, collected error matrix, and metadata — plus the hooks the
//! DNN retrievers plug into.

use crate::bitplane::{LevelEncoding, DEFAULT_BITPLANES};
use crate::decompose::{Decomposer, TransformMode};
use crate::estimate::{estimate_error, theory_constants};
use crate::exec::{ExecPolicy, AUTO, PARALLEL_MIN_COEFFS, PARALLEL_MIN_POINTS};
use crate::retrieve::{greedy_plan, greedy_plan_budget, plan_size, RetrievalPlan};
use pmr_codec::PlaneKernel;
use pmr_error::PmrError;
use pmr_field::{Field, Shape};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Compression parameters.
///
/// Prefer [`CompressConfig::builder`], which validates the knobs; direct
/// field construction remains available for backward compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressConfig {
    /// Number of coefficient levels `L` (clamped to the shape's maximum).
    pub levels: usize,
    /// Bit-planes per level `B`.
    pub num_planes: u32,
    /// Multilevel transform variant.
    pub mode: TransformMode,
    /// Worker threads for the parallel data path; `0` = one per available
    /// core (see [`crate::exec::ExecPolicy`]).
    #[serde(default)]
    pub threads: usize,
    /// Strided lines per transform work unit; `0` = auto.
    #[serde(default)]
    pub chunk_lines: usize,
    /// Bit-plane codec kernel for the encode/decode hot path; every kernel
    /// is bit-identical (see [`crate::exec::ExecPolicy::kernel`]). Defaults
    /// to [`PlaneKernel::Auto`], so configs persisted before this field
    /// existed deserialize unchanged.
    #[serde(default)]
    pub kernel: PlaneKernel,
}

impl Default for CompressConfig {
    fn default() -> Self {
        CompressConfig {
            levels: 5,
            num_planes: DEFAULT_BITPLANES,
            mode: TransformMode::L2Projection,
            threads: AUTO,
            chunk_lines: AUTO,
            kernel: PlaneKernel::Auto,
        }
    }
}

impl CompressConfig {
    /// A validating builder over these parameters.
    pub fn builder() -> CompressConfigBuilder {
        CompressConfigBuilder::default()
    }

    /// The execution policy implied by the `threads`/`chunk_lines`/`kernel`
    /// knobs.
    pub fn exec(&self) -> ExecPolicy {
        ExecPolicy { threads: self.threads, chunk_lines: self.chunk_lines, kernel: self.kernel }
    }
}

/// Builder for [`CompressConfig`] that validates every knob at `build` time.
#[derive(Debug, Clone, Default)]
pub struct CompressConfigBuilder {
    levels: Option<usize>,
    num_planes: Option<u32>,
    mode: Option<TransformMode>,
    threads: Option<usize>,
    chunk_lines: Option<usize>,
    kernel: Option<PlaneKernel>,
}

impl CompressConfigBuilder {
    /// Number of coefficient levels `L` (must be ≥ 1; clamped to the shape's
    /// maximum at compression time).
    pub fn levels(mut self, levels: usize) -> Self {
        self.levels = Some(levels);
        self
    }

    /// Bit-planes per level `B` (must lie in `3..=50`).
    pub fn num_planes(mut self, num_planes: u32) -> Self {
        self.num_planes = Some(num_planes);
        self
    }

    /// Multilevel transform variant.
    pub fn mode(mut self, mode: TransformMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Explicit worker thread count (must be ≥ 1; omit for one per core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Strided lines per transform work unit (must be ≥ 1; omit for auto).
    pub fn chunk_lines(mut self, chunk_lines: usize) -> Self {
        self.chunk_lines = Some(chunk_lines);
        self
    }

    /// Bit-plane codec kernel (omit for runtime auto-detection; every
    /// kernel produces bit-identical artifacts).
    pub fn kernel(mut self, kernel: PlaneKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<CompressConfig, PmrError> {
        let defaults = CompressConfig::default();
        let levels = self.levels.unwrap_or(defaults.levels);
        if levels == 0 {
            return Err(PmrError::invalid_config("levels must be >= 1"));
        }
        let num_planes = self.num_planes.unwrap_or(defaults.num_planes);
        if !(3..=50).contains(&num_planes) {
            return Err(PmrError::invalid_config(format!(
                "num_planes must lie in 3..=50, got {num_planes}"
            )));
        }
        if self.threads == Some(0) {
            return Err(PmrError::invalid_config(
                "threads must be >= 1 (omit the call for automatic parallelism)",
            ));
        }
        if self.chunk_lines == Some(0) {
            return Err(PmrError::invalid_config(
                "chunk_lines must be >= 1 (omit the call for the automatic chunk size)",
            ));
        }
        Ok(CompressConfig {
            levels,
            num_planes,
            mode: self.mode.unwrap_or(defaults.mode),
            threads: self.threads.unwrap_or(AUTO),
            chunk_lines: self.chunk_lines.unwrap_or(AUTO),
            kernel: self.kernel.unwrap_or(PlaneKernel::Auto),
        })
    }
}

/// A progressively retrievable compressed field.
///
/// ```
/// use pmr_field::{Field, Shape};
/// use pmr_mgard::{CompressConfig, Compressed};
///
/// let field = Field::from_fn("demo", 0, Shape::cube(9), |x, y, _| {
///     ((x as f64) * 0.4).sin() + (y as f64) * 0.05
/// });
/// let compressed = Compressed::compress(&field, &CompressConfig::default());
///
/// // Plan a retrieval for an absolute error bound and execute it.
/// let plan = compressed.plan_theory(1e-3);
/// let approx = compressed.retrieve(&plan);
/// let err = pmr_field::error::max_abs_error(field.data(), approx.data());
/// assert!(err <= 1e-3);
/// assert!(compressed.retrieved_bytes(&plan) <= compressed.total_bytes());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Compressed {
    name: String,
    timestep: usize,
    decomposer: Decomposer,
    levels: Vec<LevelEncoding>,
    constants: Vec<f64>,
    /// `max - min` of the original data, recorded at compression time so
    /// that relative error bounds can be converted on retrieval (the paper
    /// assumes ranges are collected during the simulation).
    value_range: f64,
    /// Execution policy used by `retrieve`; runtime-only, not persisted.
    #[serde(skip, default)]
    exec: ExecPolicy,
}

/// `max - min` over the *finite* values of `field` (0 when none are).
///
/// `Field::value_range` is NaN/inf for NaN- or inf-laced inputs, and a
/// non-finite range would make the persisted artifact unloadable —
/// `Compressed::from_parts` rejects it. Non-finite sites already decode to
/// 0.0 (see `bitplane`), so scoping the recorded range to the finite values
/// keeps bound conversion meaningful for exactly the sites the error
/// guarantees cover. Finite fields are unaffected.
fn finite_value_range(field: &Field) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in field.data() {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if hi >= lo {
        hi - lo
    } else {
        0.0
    }
}

impl Compressed {
    /// Rebuild from persisted parts (see [`crate::persist`]).
    pub(crate) fn from_parts(
        name: String,
        timestep: usize,
        decomposer: Decomposer,
        levels: Vec<LevelEncoding>,
        value_range: f64,
    ) -> Option<Self> {
        if levels.len() != decomposer.levels() || !value_range.is_finite() || value_range < 0.0 {
            return None;
        }
        // Level coefficient counts must match the decomposition layout.
        let expected: Vec<usize> = decomposer.level_indices().iter().map(Vec::len).collect();
        if levels.iter().zip(&expected).any(|(l, &e)| l.count() != e) {
            return None;
        }
        let constants = theory_constants(&decomposer);
        Some(Compressed {
            name,
            timestep,
            decomposer,
            levels,
            constants,
            value_range,
            exec: ExecPolicy::default(),
        })
    }

    /// Decompose, interleave and bit-plane encode `field`.
    ///
    /// The `threads`/`chunk_lines` knobs of `cfg` drive the parallel data
    /// path; results are bit-identical regardless of the policy. Small
    /// fields are processed serially even under a parallel policy (see
    /// [`crate::exec`]).
    pub fn compress(field: &Field, cfg: &CompressConfig) -> Self {
        Self::compress_with(field, cfg, &cfg.exec())
    }

    /// [`Compressed::compress`] with the execution policy overridden (used by
    /// the batch APIs to nest snapshot-level and line-level parallelism).
    pub fn compress_with(field: &Field, cfg: &CompressConfig, exec: &ExecPolicy) -> Self {
        let decomposer = Decomposer::new(field.shape(), cfg.levels, cfg.mode);
        let mut data = field.data().to_vec();
        let gated = exec.gate(data.len(), PARALLEL_MIN_POINTS);
        decomposer.decompose_with(&mut data, &gated);
        let levels: Vec<LevelEncoding> = decomposer
            .interleave(&data)
            .iter()
            .map(|coeffs| {
                LevelEncoding::encode_with(
                    coeffs,
                    cfg.num_planes,
                    &exec.gate(coeffs.len(), PARALLEL_MIN_COEFFS),
                )
            })
            .collect();
        let constants = theory_constants(&decomposer);
        Compressed {
            name: field.name().to_string(),
            timestep: field.timestep(),
            decomposer,
            levels,
            constants,
            value_range: finite_value_range(field),
            exec: *exec,
        }
    }

    /// Compress a batch of snapshots, fanning out across worker threads —
    /// one snapshot per worker, each compressed serially inside its worker.
    /// Results are identical to calling [`Compressed::compress`] per field.
    pub fn compress_many(fields: &[Field], cfg: &CompressConfig) -> Vec<Compressed> {
        let exec = cfg.exec();
        let threads = exec.resolved_threads().min(fields.len());
        if threads <= 1 {
            return fields.iter().map(|f| Self::compress(f, cfg)).collect();
        }
        let mut out: Vec<Option<Compressed>> = (0..fields.len()).map(|_| None).collect();
        let slots = Mutex::new(&mut out);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(field) = fields.get(i) else { break };
                    let mut c = Self::compress_with(field, cfg, &ExecPolicy::serial());
                    c.exec = exec;
                    // A poisoned lock means another worker panicked; the
                    // scope re-raises that panic on join, so recovering the
                    // slot table here is sound.
                    slots.lock().unwrap_or_else(|p| p.into_inner())[i] = Some(c);
                });
            }
        });
        let filled: Vec<Compressed> = out.into_iter().flatten().collect();
        // The fetch_add loop hands out every index exactly once; a hole is
        // a dispatch bug, not a runtime failure.
        assert_eq!(filled.len(), fields.len(), "batch worker left a slot unfilled");
        filled
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn timestep(&self) -> usize {
        self.timestep
    }

    pub fn shape(&self) -> Shape {
        self.decomposer.shape()
    }

    /// Number of coefficient levels `L`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Bit-planes per level `B`.
    pub fn num_planes(&self) -> u32 {
        self.levels[0].num_planes()
    }

    /// The decomposition plan (exposed for analysis tooling).
    pub fn decomposer(&self) -> &Decomposer {
        &self.decomposer
    }

    /// Per-level encodings (error rows, plane sizes).
    pub fn levels(&self) -> &[LevelEncoding] {
        &self.levels
    }

    /// The theory constants `C_l`.
    pub fn theory_constants(&self) -> &[f64] {
        &self.constants
    }

    /// Original data value range (for relative→absolute bound conversion).
    pub fn value_range(&self) -> f64 {
        self.value_range
    }

    /// The execution policy used by [`Compressed::retrieve`].
    pub fn exec(&self) -> ExecPolicy {
        self.exec
    }

    /// Override the execution policy used by [`Compressed::retrieve`]
    /// (loaded artifacts default to automatic parallelism).
    pub fn set_exec(&mut self, exec: ExecPolicy) {
        self.exec = exec;
    }

    /// Convert a relative error bound to the absolute bound used internally.
    pub fn absolute_bound(&self, rel_bound: f64) -> f64 {
        rel_bound * self.value_range
    }

    /// Plan a retrieval for absolute bound `e` with the original
    /// theory-based estimator.
    pub fn plan_theory(&self, abs_err: f64) -> RetrievalPlan {
        greedy_plan(&self.levels, &self.constants, abs_err)
    }

    /// Plan with externally supplied per-level constants (E-MGARD hook).
    pub fn plan_with_constants(&self, abs_err: f64, constants: &[f64]) -> RetrievalPlan {
        greedy_plan(&self.levels, constants, abs_err)
    }

    /// Plan the best retrieval that fits within `byte_budget` compressed
    /// bytes, spending the budget by accuracy efficiency (the dual of
    /// [`Compressed::plan_theory`]: bytes are the constraint, error the
    /// objective).
    pub fn plan_budget(&self, byte_budget: u64) -> RetrievalPlan {
        greedy_plan_budget(&self.levels, &self.constants, byte_budget)
    }

    /// Plan that fetches every plane (lossless-to-quantization retrieval).
    pub fn plan_full(&self) -> RetrievalPlan {
        let planes: Vec<u32> = self.levels.iter().map(|l| l.num_planes()).collect();
        let est = estimate_error(&self.levels, &self.constants, &planes);
        RetrievalPlan { planes, estimated_error: est }
    }

    /// Theory error estimate for arbitrary plane counts (used when
    /// evaluating externally predicted plans).
    pub fn estimate_for(&self, planes: &[u32]) -> f64 {
        estimate_error(&self.levels, &self.constants, planes)
    }

    /// Check that `plan` matches this artifact's layout: one entry per
    /// level, and no level asked for more planes than it holds.
    pub fn validate_plan(&self, plan: &RetrievalPlan) -> Result<(), PmrError> {
        if plan.planes.len() != self.levels.len() {
            return Err(PmrError::invalid_config(format!(
                "plan covers {} levels but the artifact has {}",
                plan.planes.len(),
                self.levels.len()
            )));
        }
        for (l, (lvl, &want)) in self.levels.iter().zip(&plan.planes).enumerate() {
            if want > lvl.num_planes() {
                return Err(PmrError::invalid_config(format!(
                    "plan requests {want} planes at level {l} but the level holds {}",
                    lvl.num_planes()
                )));
            }
        }
        Ok(())
    }

    /// Build a validated plan from explicit per-level plane counts,
    /// attaching the theory error estimate. Unlike
    /// [`RetrievalPlan::from_planes`] — which is artifact-agnostic, carries
    /// no estimate, and defers all checking to the consumer — a mismatched
    /// level count or an over-asking plane count is an error here.
    pub fn plan_from_planes(&self, planes: Vec<u32>) -> Result<RetrievalPlan, PmrError> {
        let plan = RetrievalPlan::from_planes(planes);
        self.validate_plan(&plan)?;
        let est = self.estimate_for(&plan.planes);
        Ok(RetrievalPlan { estimated_error: est, ..plan })
    }

    /// Reconstruct from raw plane payloads fetched out-of-band: one prefix
    /// of payload blobs per level, as handed over by a segment store. This
    /// is the degraded-retrieval decode path — the fault-tolerant fetch
    /// layer passes whatever plane prefixes survived, and the result is
    /// exactly what [`Compressed::retrieve`] would produce for the
    /// corresponding plan. Payloads that fail to decompress to the level's
    /// packed size are a [`PmrError::Malformed`].
    pub fn retrieve_from_payloads(&self, payloads: &[Vec<Vec<u8>>]) -> Result<Field, PmrError> {
        if payloads.len() != self.levels.len() {
            return Err(PmrError::invalid_config(format!(
                "payloads cover {} levels but the artifact has {}",
                payloads.len(),
                self.levels.len()
            )));
        }
        let coeffs: Vec<Vec<f64>> = self
            .levels
            .iter()
            .zip(payloads)
            .map(|(l, p)| l.decode_from_payloads(p))
            .collect::<Result<_, _>>()?;
        let mut data = self.decomposer.deinterleave(&coeffs);
        let gated = self.exec.gate(data.len(), PARALLEL_MIN_POINTS);
        self.decomposer.recompose_with(&mut data, &gated);
        Ok(Field::new(self.name.clone(), self.timestep, self.decomposer.shape(), data))
    }

    /// Bytes fetched under `plan` (the size interpreter).
    pub fn retrieved_bytes(&self, plan: &RetrievalPlan) -> u64 {
        plan_size(&self.levels, plan)
    }

    /// Total compressed payload size.
    pub fn total_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.total_size()).sum()
    }

    /// Decode the planes selected by `plan` and recompose the approximation.
    ///
    /// This is the low-level decode primitive: it trusts the plan (a
    /// mismatched level count panics, exactly as a slice index would) and
    /// uses the artifact's own execution policy. Callers that want
    /// validation, coarse-grid decoding, per-call execution policies, or
    /// error measurement should go through `pmr_core`'s unified
    /// `RetrievalRequest` API (or [`Compressed::decode_plan`] directly).
    pub fn retrieve(&self, plan: &RetrievalPlan) -> Field {
        assert_eq!(plan.planes.len(), self.levels.len(), "plan/levels mismatch");
        self.decode_full(plan, &self.exec)
    }

    /// Validated decode with per-call options — the primitive behind
    /// `pmr_core`'s `RetrievalRequest` API. Shape/plan mismatches and
    /// out-of-range coarse levels are errors, never panics.
    pub fn decode_plan(
        &self,
        plan: &RetrievalPlan,
        opts: &DecodeOptions,
    ) -> Result<Field, PmrError> {
        self.validate_plan(plan)?;
        let exec = opts.exec.unwrap_or(self.exec);
        match opts.coarse_level {
            None => Ok(self.decode_full(plan, &exec)),
            Some(target_level) => {
                if target_level >= self.num_levels() {
                    return Err(PmrError::invalid_config(format!(
                        "coarse level {target_level} out of range for {}-level artifact",
                        self.num_levels()
                    )));
                }
                Ok(self.decode_coarse(plan, target_level, &exec))
            }
        }
    }

    /// Unvalidated full-resolution decode shared by [`Compressed::retrieve`]
    /// and [`Compressed::decode_plan`].
    pub(crate) fn decode_full(&self, plan: &RetrievalPlan, exec: &ExecPolicy) -> Field {
        let coeffs: Vec<Vec<f64>> = self
            .levels
            .iter()
            .zip(&plan.planes)
            .map(|(l, &b)| l.decode_with(b, &exec.gate(l.count(), PARALLEL_MIN_COEFFS)))
            .collect();
        let mut data = self.decomposer.deinterleave(&coeffs);
        let gated = exec.gate(data.len(), PARALLEL_MIN_POINTS);
        self.decomposer.recompose_with(&mut data, &gated);
        Field::new(self.name.clone(), self.timestep, self.decomposer.shape(), data)
    }

    /// Unvalidated coarse-resolution decode: recompose only up to the grid
    /// of `target_level` (`0` = coarsest). Levels finer than the target
    /// contribute nothing, so a matching plan should fetch zero planes from
    /// them — the combined I/O + compute saving of progressive storage
    /// (paper §I).
    fn decode_coarse(&self, plan: &RetrievalPlan, target_level: usize, exec: &ExecPolicy) -> Field {
        let coeffs: Vec<Vec<f64>> = self
            .levels
            .iter()
            .zip(&plan.planes)
            .enumerate()
            .map(|(l, (lvl, &b))| {
                if l <= target_level {
                    lvl.decode_with(b, &exec.gate(lvl.count(), PARALLEL_MIN_COEFFS))
                } else {
                    vec![0.0; lvl.count()]
                }
            })
            .collect();
        let mut data = self.decomposer.deinterleave(&coeffs);
        let gated = exec.gate(data.len(), PARALLEL_MIN_POINTS);
        let coarse = self.decomposer.recompose_to_level_with(&mut data, target_level, &gated);
        Field::new(
            self.name.clone(),
            self.timestep,
            self.decomposer.grid_shape_at_level(target_level),
            coarse,
        )
    }

    /// [`Compressed::retrieve`] with the execution policy overridden.
    #[deprecated(
        since = "0.6.0",
        note = "use `pmr_core`'s `RetrievalRequest` with an exec policy, or `Compressed::decode_plan` with `DecodeOptions { exec, .. }`"
    )]
    pub fn retrieve_with(&self, plan: &RetrievalPlan, exec: &ExecPolicy) -> Field {
        assert_eq!(plan.planes.len(), self.levels.len(), "plan/levels mismatch");
        self.decode_full(plan, exec)
    }

    /// Execute `plan` with full error accounting against `original`.
    #[deprecated(
        since = "0.6.0",
        note = "use `pmr_core`'s `RetrievalRequest::measured()` — the unified API returns achieved error and PSNR in its `RetrievalOutcome`"
    )]
    pub fn retrieve_measured(
        &self,
        plan: &RetrievalPlan,
        original: &Field,
    ) -> Result<MeasuredRetrieval, PmrError> {
        if plan.planes.len() != self.levels.len() {
            return Err(PmrError::invalid_config(format!(
                "plan covers {} levels but the artifact has {}",
                plan.planes.len(),
                self.levels.len()
            )));
        }
        if original.shape() != self.shape() {
            return Err(PmrError::invalid_config(format!(
                "original field shape {:?} does not match artifact shape {:?}",
                original.shape(),
                self.shape()
            )));
        }
        let field = self.decode_full(plan, &self.exec);
        let achieved_error = pmr_field::error::max_abs_error(original.data(), field.data());
        Ok(MeasuredRetrieval {
            bytes: self.retrieved_bytes(plan),
            estimated_error: plan.estimated_error,
            achieved_error,
            field,
        })
    }

    /// Retrieve a coarse-resolution approximation (see
    /// [`Compressed::decode_plan`] with `DecodeOptions::at_level`).
    #[deprecated(
        since = "0.6.0",
        note = "use `pmr_core`'s `RetrievalRequest::at_level`, or `Compressed::decode_plan` with `DecodeOptions::at_level`"
    )]
    pub fn retrieve_at_level(&self, plan: &RetrievalPlan, target_level: usize) -> Field {
        assert_eq!(plan.planes.len(), self.levels.len(), "plan/levels mismatch");
        assert!(target_level < self.num_levels(), "level out of range");
        self.decode_coarse(plan, target_level, &self.exec)
    }
}

/// Per-call options for [`Compressed::decode_plan`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeOptions {
    /// Execution policy override; `None` uses the artifact's own policy.
    pub exec: Option<ExecPolicy>,
    /// Recompose only up to this level's grid (`0` = coarsest); `None`
    /// decodes at full resolution.
    pub coarse_level: Option<usize>,
}

impl DecodeOptions {
    /// Options for a coarse-grid decode at `level`.
    pub fn at_level(level: usize) -> Self {
        DecodeOptions { exec: None, coarse_level: Some(level) }
    }

    /// Options with the execution policy overridden.
    pub fn with_exec(exec: ExecPolicy) -> Self {
        DecodeOptions { exec: Some(exec), coarse_level: None }
    }
}

/// A retrieval executed with full error accounting (see
/// [`Compressed::retrieve_measured`]).
#[derive(Debug, Clone)]
pub struct MeasuredRetrieval {
    /// The reconstructed approximation.
    pub field: Field,
    /// Bytes fetched under the plan.
    pub bytes: u64,
    /// The plan's own error claim (`f64::INFINITY` when the strategy that
    /// produced the plan carries no estimator, e.g. a pure DNN prediction).
    pub estimated_error: f64,
    /// Measured `L∞` error of the reconstruction against the original.
    pub achieved_error: f64,
}

/// Execute a batch of retrievals, fanning out across worker threads — one
/// `(artifact, plan)` pair per worker at a time, each retrieval running
/// serially inside its worker. Results are identical to calling
/// [`Compressed::retrieve`] per pair.
pub fn retrieve_many(items: &[(&Compressed, &RetrievalPlan)]) -> Vec<Field> {
    let exec = items.first().map_or_else(ExecPolicy::default, |(c, _)| c.exec());
    let threads = exec.resolved_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(|(c, p)| c.retrieve(p)).collect();
    }
    let mut out: Vec<Option<Field>> = (0..items.len()).map(|_| None).collect();
    let slots = Mutex::new(&mut out);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((c, plan)) = items.get(i) else { break };
                assert_eq!(plan.planes.len(), c.levels.len(), "plan/levels mismatch");
                let field = c.decode_full(plan, &ExecPolicy::serial());
                // See `compress_many`: poison implies a worker panic that
                // the scope re-raises on join.
                slots.lock().unwrap_or_else(|p| p.into_inner())[i] = Some(field);
            });
        }
    });
    let filled: Vec<Field> = out.into_iter().flatten().collect();
    assert_eq!(filled.len(), items.len(), "batch worker left a slot unfilled");
    filled
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_field::error::max_abs_error;

    fn wave_field(n: usize) -> Field {
        Field::from_fn("wave", 7, Shape::cube(n), |x, y, z| {
            ((x as f64) * 0.31).sin() * ((y as f64) * 0.17).cos() + 0.05 * (z as f64)
        })
    }

    #[test]
    fn full_retrieval_is_near_lossless() {
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let plan = c.plan_full();
        let rec = c.retrieve(&plan);
        let err = max_abs_error(field.data(), rec.data());
        // Quantization floor: range is O(1), 30 fractional bits, plus the
        // level-constant amplification headroom.
        assert!(err < 1e-5, "err={err}");
        assert_eq!(rec.name(), "wave");
        assert_eq!(rec.timestep(), 7);
    }

    #[test]
    fn theory_plan_respects_bound() {
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        for bound in [1e-1, 1e-2, 1e-3, 1e-4] {
            let plan = c.plan_theory(bound);
            let rec = c.retrieve(&plan);
            let err = max_abs_error(field.data(), rec.data());
            assert!(err <= bound, "bound={bound} actual={err}");
        }
    }

    #[test]
    fn theory_is_pessimistic() {
        // The motivating observation of the paper: achieved error is far
        // below the requested bound.
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let bound = 1e-2;
        let plan = c.plan_theory(bound);
        let rec = c.retrieve(&plan);
        let err = max_abs_error(field.data(), rec.data());
        assert!(err < bound / 5.0, "achieved {err} not well below bound {bound}");
    }

    #[test]
    fn tighter_bound_reads_more() {
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let loose = c.retrieved_bytes(&c.plan_theory(1e-1));
        let tight = c.retrieved_bytes(&c.plan_theory(1e-4));
        assert!(tight > loose, "tight={tight} loose={loose}");
        assert!(tight <= c.total_bytes());
    }

    #[test]
    fn smaller_constants_read_less() {
        // The E-MGARD premise: replacing pessimistic constants with smaller
        // ones reduces retrieval size.
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let bound = 1e-3;
        let theory = c.plan_theory(bound);
        let tuned: Vec<f64> = c.theory_constants().iter().map(|v| v / 10.0).collect();
        let learned = c.plan_with_constants(bound, &tuned);
        assert!(c.retrieved_bytes(&learned) <= c.retrieved_bytes(&theory));
    }

    #[test]
    fn relative_bound_conversion() {
        let field = wave_field(9);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let range = field.value_range();
        assert!((c.absolute_bound(1e-3) - 1e-3 * range).abs() < 1e-15);
        assert_eq!(c.value_range(), range);
    }

    #[test]
    fn config_levels_clamped_for_tiny_grids() {
        let field = Field::from_fn("t", 0, Shape::d1(4), |x, _, _| x as f64);
        let cfg = CompressConfig { levels: 50, ..Default::default() };
        let c = Compressed::compress(&field, &cfg);
        assert!(c.num_levels() <= Decomposer::max_levels(Shape::d1(4)));
        let rec = c.retrieve(&c.plan_full());
        assert!(max_abs_error(field.data(), rec.data()) < 1e-6);
    }

    #[test]
    fn one_dimensional_fields_compress() {
        let field =
            Field::from_fn("line", 0, Shape::d1(65), |x, _, _| ((x as f64) * 0.17).sin() * 3.0);
        let c = Compressed::compress(&field, &CompressConfig::default());
        assert_eq!(c.num_levels(), 5);
        for bound in [1e-2, 1e-5] {
            let plan = c.plan_theory(bound);
            let rec = c.retrieve(&plan);
            assert!(max_abs_error(field.data(), rec.data()) <= bound);
        }
    }

    #[test]
    fn two_dimensional_fields_compress() {
        let field = Field::from_fn("slab", 0, Shape::d2(33, 17), |x, y, _| {
            ((x as f64) * 0.2).cos() + ((y as f64) * 0.35).sin()
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        let plan = c.plan_theory(1e-4);
        let rec = c.retrieve(&plan);
        assert!(max_abs_error(field.data(), rec.data()) <= 1e-4);
    }

    #[test]
    fn constant_field_costs_almost_nothing() {
        let field = Field::new("flat", 0, Shape::cube(9), vec![2.5; 729]);
        let c = Compressed::compress(&field, &CompressConfig::default());
        // Details are all zero; only the coarsest values carry content.
        let plan = c.plan_theory(1e-9);
        let rec = c.retrieve(&plan);
        assert!(max_abs_error(field.data(), rec.data()) <= 1e-6);
        assert!(
            c.retrieved_bytes(&plan) < 2500,
            "constant field read {} bytes",
            c.retrieved_bytes(&plan)
        );
    }

    #[test]
    fn estimate_for_matches_plan_estimate() {
        let field = wave_field(9);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let plan = c.plan_theory(1e-3);
        let est = c.estimate_for(&plan.planes);
        assert!((est - plan.estimated_error).abs() <= 1e-12 * (1.0 + est));
    }

    #[test]
    fn per_level_constants_steer_the_greedy() {
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let bound = c.absolute_bound(1e-3);
        // Zero-ish weight on the finest level -> barely fetch it.
        let mut lopsided = vec![1.0; c.num_levels()];
        *lopsided.last_mut().unwrap() = 1e-9;
        let plan = c.plan_with_constants(bound, &lopsided);
        let balanced = c.plan_with_constants(bound, &vec![1.0; c.num_levels()]);
        assert!(plan.planes.last().unwrap() <= balanced.planes.last().unwrap());
    }

    #[test]
    fn coarse_retrieval_matches_strided_samples_in_interp_mode() {
        // In interpolation mode the coarse-grid values are exactly the
        // original samples at strided positions (no projection moves them).
        let field = wave_field(17);
        let cfg = CompressConfig { mode: TransformMode::Interpolation, ..Default::default() };
        let c = Compressed::compress(&field, &cfg);
        let plan = c.plan_full();
        let coarse = c.decode_plan(&plan, &DecodeOptions::at_level(0)).expect("valid plan");
        let steps = c.num_levels() - 1;
        let stride = 1usize << steps;
        let cs = coarse.shape();
        assert_eq!(cs.dim(0), (17usize).div_ceil(stride));
        for z in 0..cs.dim(2) {
            for y in 0..cs.dim(1) {
                for x in 0..cs.dim(0) {
                    let expect = field.get(x * stride, y * stride, z * stride);
                    let got = coarse.get(x, y, z);
                    assert!((expect - got).abs() < 1e-5, "({x},{y},{z}): {expect} vs {got}");
                }
            }
        }
    }

    #[test]
    fn coarse_retrieval_needs_no_fine_level_planes() {
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        // Fetch only levels 0..=1, none of the finer ones.
        let mut planes = vec![0u32; c.num_levels()];
        planes[0] = c.num_planes();
        planes[1] = c.num_planes();
        let plan = RetrievalPlan::from_planes(planes);
        let coarse = c.decode_plan(&plan, &DecodeOptions::at_level(1)).expect("valid plan");
        assert_eq!(coarse.shape(), c.decomposer().grid_shape_at_level(1));
        assert!(coarse.data().iter().all(|v| v.is_finite()));
        // The fetched bytes exclude the fine levels entirely.
        let bytes = c.retrieved_bytes(&plan);
        assert!(bytes < c.total_bytes() / 4, "coarse fetch read {bytes} bytes");
    }

    #[test]
    fn coarse_grid_shapes_shrink_per_level() {
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let mut prev = 0usize;
        for l in 0..c.num_levels() {
            let s = c.decomposer().grid_shape_at_level(l);
            assert!(s.len() > prev, "grids must grow with level");
            prev = s.len();
        }
    }

    #[test]
    fn clone_preserves_plans() {
        let field = wave_field(9);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let p1 = c.plan_theory(1e-3);
        let p2 = c.clone().plan_theory(1e-3);
        assert_eq!(p1, p2);
    }

    #[test]
    fn builder_produces_defaults_and_validates() {
        let cfg = CompressConfig::builder().build().expect("defaults are valid");
        assert_eq!(cfg, CompressConfig::default());

        let cfg = CompressConfig::builder()
            .levels(4)
            .num_planes(20)
            .mode(TransformMode::Interpolation)
            .threads(2)
            .chunk_lines(8)
            .build()
            .expect("valid custom config");
        assert_eq!(cfg.levels, 4);
        assert_eq!(cfg.num_planes, 20);
        assert_eq!(cfg.mode, TransformMode::Interpolation);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.chunk_lines, 8);

        assert!(CompressConfig::builder().levels(0).build().is_err());
        assert!(CompressConfig::builder().num_planes(2).build().is_err());
        assert!(CompressConfig::builder().num_planes(51).build().is_err());
        assert!(CompressConfig::builder().threads(0).build().is_err());
        assert!(CompressConfig::builder().chunk_lines(0).build().is_err());
    }

    #[test]
    fn compress_many_matches_individual_compress() {
        let fields: Vec<Field> = (0..5)
            .map(|t| {
                Field::from_fn("batch", t, Shape::cube(9), move |x, y, z| {
                    ((x + 2 * y + 3 * z + 7 * t) as f64 * 0.21).sin()
                })
            })
            .collect();
        let cfg = CompressConfig { threads: 4, ..Default::default() };
        let batch = Compressed::compress_many(&fields, &cfg);
        assert_eq!(batch.len(), fields.len());
        for (f, c) in fields.iter().zip(&batch) {
            let one = Compressed::compress(f, &cfg);
            assert_eq!(
                crate::persist::to_bytes(c).unwrap(),
                crate::persist::to_bytes(&one).unwrap()
            );
            assert_eq!(c.timestep(), f.timestep());
        }
    }

    #[test]
    fn decode_plan_validates_and_matches_retrieve() {
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let plan = c.plan_theory(1e-3);
        let full = c.decode_plan(&plan, &DecodeOptions::default()).expect("valid plan");
        assert_eq!(full.data(), c.retrieve(&plan).data());
        // Serial override is bit-identical to the default policy.
        let serial = c
            .decode_plan(&plan, &DecodeOptions::with_exec(ExecPolicy::serial()))
            .expect("valid plan");
        assert_eq!(serial.data(), full.data());
        // Over-asking plans and out-of-range coarse levels are errors.
        let bad = RetrievalPlan::from_planes(vec![c.num_planes() + 1; c.num_levels()]);
        assert!(c.decode_plan(&bad, &DecodeOptions::default()).is_err());
        let opts = DecodeOptions::at_level(c.num_levels());
        assert!(c.decode_plan(&plan, &opts).is_err());
    }

    #[test]
    fn budget_plan_fits_and_improves_with_budget() {
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let total = c.total_bytes();
        let small = c.plan_budget(total / 10);
        let large = c.plan_budget(total / 2);
        assert!(c.retrieved_bytes(&small) <= total / 10);
        assert!(c.retrieved_bytes(&large) <= total / 2);
        assert!(large.estimated_error <= small.estimated_error);
        // Budget plans are valid plans: decode succeeds.
        assert!(c.decode_plan(&large, &DecodeOptions::default()).is_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn retrieve_measured_reports_ground_truth() {
        let field = wave_field(17);
        let c = Compressed::compress(&field, &CompressConfig::default());
        let plan = c.plan_theory(1e-3);
        let m = c.retrieve_measured(&plan, &field).expect("matching plan and field");
        assert!(m.achieved_error <= 1e-3, "achieved {}", m.achieved_error);
        assert!(m.achieved_error <= m.estimated_error);
        assert_eq!(m.bytes, c.retrieved_bytes(&plan));
        assert_eq!(m.field.data(), c.retrieve(&plan).data());

        // Mismatched shape and plan length are clean errors, not panics.
        let other = wave_field(9);
        assert!(c.retrieve_measured(&plan, &other).is_err());
        let bad = RetrievalPlan::from_planes(vec![1; c.num_levels() + 1]);
        assert!(c.retrieve_measured(&bad, &field).is_err());
    }

    #[test]
    fn non_finite_input_still_roundtrips_through_persistence() {
        // A NaN/inf-laced field must produce an artifact whose recorded
        // value range is finite, or persist::from_bytes rejects it
        // (found by the conformance robustness sweep).
        let mut field = wave_field(9);
        let n = field.len();
        field.data_mut()[0] = f64::NAN;
        field.data_mut()[n / 2] = f64::INFINITY;
        field.data_mut()[n - 1] = f64::NEG_INFINITY;
        let c = Compressed::compress(&field, &CompressConfig::default());
        assert!(c.value_range().is_finite());
        let bytes = crate::persist::to_bytes(&c).unwrap();
        let back = crate::persist::from_bytes(&bytes).expect("non-finite input roundtrips");
        assert_eq!(crate::persist::to_bytes(&back).unwrap(), bytes);
        // The reconstruction stays finite everywhere.
        let full = back.retrieve(&back.plan_full());
        assert!(full.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn retrieve_many_matches_individual_retrieve() {
        let fields: Vec<Field> = (0..4)
            .map(|t| {
                Field::from_fn("batch", t, Shape::cube(9), move |x, y, z| {
                    ((x * y + z + t) as f64 * 0.13).cos()
                })
            })
            .collect();
        let cfg = CompressConfig { threads: 4, ..Default::default() };
        let batch = Compressed::compress_many(&fields, &cfg);
        let plans: Vec<RetrievalPlan> = batch.iter().map(|c| c.plan_theory(1e-3)).collect();
        let items: Vec<(&Compressed, &RetrievalPlan)> = batch.iter().zip(&plans).collect();
        let many = retrieve_many(&items);
        for ((c, plan), got) in items.iter().zip(&many) {
            let one = c.retrieve(plan);
            assert_eq!(one.data(), got.data());
        }
    }
}
