//! Progressive retrieval sessions: monotone refinement without re-reads.
//!
//! The whole point of bit-plane progressive storage (paper §II-A) is that a
//! consumer can start from a coarse reconstruction and *refine* it by
//! fetching only the additional planes — never re-reading bytes it already
//! holds. [`ProgressiveSession`] tracks the plane counts fetched so far and
//! accounts exactly the incremental bytes of each refinement.

use crate::compress::Compressed;
use crate::retrieve::RetrievalPlan;
use pmr_error::PmrError;
use pmr_field::Field;

/// A stateful progressive reader over one compressed artifact.
///
/// ```
/// use pmr_field::{Field, Shape};
/// use pmr_mgard::{CompressConfig, Compressed, ProgressiveSession};
///
/// let field = Field::from_fn("demo", 0, Shape::cube(9), |x, _, _| (x as f64 * 0.3).cos());
/// let compressed = Compressed::compress(&field, &CompressConfig::default());
///
/// let mut session = ProgressiveSession::new(&compressed);
/// let coarse_bytes = session.refine_theory(compressed.absolute_bound(1e-1));
/// let extra_bytes = session.refine_theory(compressed.absolute_bound(1e-4));
/// // The refinement fetched only the delta; together they equal a direct fetch.
/// let direct = compressed.retrieved_bytes(&compressed.plan_theory(compressed.absolute_bound(1e-4)));
/// assert_eq!(coarse_bytes + extra_bytes, direct);
/// ```
#[derive(Debug, Clone)]
pub struct ProgressiveSession<'a> {
    compressed: &'a Compressed,
    planes: Vec<u32>,
    fetched_bytes: u64,
}

impl<'a> ProgressiveSession<'a> {
    /// Open a session with nothing fetched yet.
    pub fn new(compressed: &'a Compressed) -> Self {
        ProgressiveSession {
            compressed,
            planes: vec![0; compressed.num_levels()],
            fetched_bytes: 0,
        }
    }

    /// Plane counts currently held.
    pub fn planes(&self) -> &[u32] {
        &self.planes
    }

    /// Total bytes fetched so far across all refinements.
    pub fn fetched_bytes(&self) -> u64 {
        self.fetched_bytes
    }

    /// Refine to (at least) `plan`: fetch only the planes not yet held.
    /// Returns the incremental bytes read. Plans are merged monotonically —
    /// a looser follow-up request never discards fetched planes.
    ///
    /// Externally supplied plans are validated against the artifact: a plan
    /// covering the wrong number of levels, or requesting more planes than a
    /// level holds, is a [`PmrError::InvalidConfig`] — the session state is
    /// left untouched. (Earlier versions silently truncated both; a predicted
    /// plan that over-asks is a caller bug worth surfacing.)
    pub fn refine_to_plan(&mut self, plan: &RetrievalPlan) -> Result<u64, PmrError> {
        self.compressed.validate_plan(plan)?;
        Ok(self.merge_valid(plan))
    }

    /// Merge a plan already known to match the artifact's level layout.
    fn merge_valid(&mut self, plan: &RetrievalPlan) -> u64 {
        let mut delta = 0u64;
        for (l, (cur, &want)) in self.planes.iter_mut().zip(&plan.planes).enumerate() {
            let lvl = &self.compressed.levels()[l];
            if want > *cur {
                delta += lvl.size_of_first(want) - lvl.size_of_first(*cur);
                *cur = want;
            }
        }
        self.fetched_bytes += delta;
        delta
    }

    /// Refine using the theory-based error control. Returns incremental
    /// bytes. (Infallible: the planner only emits plans matching the
    /// artifact.)
    pub fn refine_theory(&mut self, abs_bound: f64) -> u64 {
        let plan = self.compressed.plan_theory(abs_bound);
        self.merge_valid(&plan)
    }

    /// Refine using externally supplied per-level constants (E-MGARD).
    pub fn refine_with_constants(&mut self, abs_bound: f64, constants: &[f64]) -> u64 {
        let plan = self.compressed.plan_with_constants(abs_bound, constants);
        self.merge_valid(&plan)
    }

    /// Reconstruct the field from everything fetched so far. Decoding and
    /// recomposition run under the artifact's [`crate::exec::ExecPolicy`].
    pub fn current_field(&self) -> Field {
        let plan = RetrievalPlan::from_planes(self.planes.clone());
        self.compressed.retrieve(&plan)
    }

    /// Reconstruct under an explicit execution policy — lets many sessions
    /// share a machine without oversubscribing it.
    pub fn current_field_with(&self, exec: &crate::exec::ExecPolicy) -> Field {
        let plan = RetrievalPlan::from_planes(self.planes.clone());
        self.compressed.decode_full(&plan, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressConfig;
    use pmr_field::{error::max_abs_error, Shape};

    fn artifact() -> (Field, Compressed) {
        let field = Field::from_fn("s", 0, Shape::cube(9), |x, y, z| {
            ((x as f64) * 0.6).sin() + ((y as f64) * 0.4).cos() * 0.5 + (z as f64) * 0.02
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        (field, c)
    }

    #[test]
    fn refinement_bytes_sum_to_direct_fetch() {
        let (_, c) = artifact();
        let mut session = ProgressiveSession::new(&c);
        let b1 = session.refine_theory(c.absolute_bound(1e-1));
        let b2 = session.refine_theory(c.absolute_bound(1e-3));
        let b3 = session.refine_theory(c.absolute_bound(1e-5));
        // Direct fetch at the tightest bound costs the same total bytes.
        let direct = c.retrieved_bytes(&c.plan_theory(c.absolute_bound(1e-5)));
        assert_eq!(b1 + b2 + b3, direct);
        assert_eq!(session.fetched_bytes(), direct);
    }

    #[test]
    fn refinement_error_matches_direct_retrieval() {
        let (field, c) = artifact();
        let mut session = ProgressiveSession::new(&c);
        session.refine_theory(c.absolute_bound(1e-2));
        session.refine_theory(c.absolute_bound(1e-4));
        let via_session = session.current_field();
        let direct = c.retrieve(&c.plan_theory(c.absolute_bound(1e-4)));
        assert_eq!(via_session.data(), direct.data());
        assert!(max_abs_error(field.data(), via_session.data()) <= c.absolute_bound(1e-4));
    }

    #[test]
    fn loosening_requests_fetch_nothing() {
        let (_, c) = artifact();
        let mut session = ProgressiveSession::new(&c);
        let first = session.refine_theory(c.absolute_bound(1e-4));
        assert!(first > 0);
        let second = session.refine_theory(c.absolute_bound(1e-1));
        assert_eq!(second, 0, "looser bound must not re-read");
        // Plane counts unchanged.
        let direct = c.plan_theory(c.absolute_bound(1e-4));
        assert_eq!(session.planes(), &direct.planes[..]);
    }

    #[test]
    fn refine_to_explicit_plan_merges_elementwise() {
        let (_, c) = artifact();
        let mut session = ProgressiveSession::new(&c);
        let nl = c.num_levels();
        session.refine_to_plan(&RetrievalPlan::from_planes(vec![4; nl])).unwrap();
        let mut uneven = vec![2u32; nl];
        uneven[nl - 1] = 8;
        session.refine_to_plan(&RetrievalPlan::from_planes(uneven)).unwrap();
        let mut expect = vec![4u32; nl];
        expect[nl - 1] = 8;
        assert_eq!(session.planes(), &expect[..]);
    }

    #[test]
    fn constants_refinement_reads_less_than_theory() {
        let (_, c) = artifact();
        let bound = c.absolute_bound(1e-3);
        let mut theory = ProgressiveSession::new(&c);
        theory.refine_theory(bound);
        let tuned: Vec<f64> = c.theory_constants().iter().map(|v| v / 20.0).collect();
        let mut learned = ProgressiveSession::new(&c);
        learned.refine_with_constants(bound, &tuned);
        assert!(learned.fetched_bytes() <= theory.fetched_bytes());
    }

    #[test]
    fn explicit_policy_matches_default_reconstruction() {
        use crate::exec::ExecPolicy;
        let (_, c) = artifact();
        let mut session = ProgressiveSession::new(&c);
        session.refine_theory(c.absolute_bound(1e-4));
        let default = session.current_field();
        let serial = session.current_field_with(&ExecPolicy::serial());
        let par = session.current_field_with(&ExecPolicy::with_threads(4));
        assert_eq!(default.data(), serial.data());
        assert_eq!(serial.data(), par.data());
    }

    #[test]
    fn over_asking_plan_is_rejected_without_side_effects() {
        let (_, c) = artifact();
        let mut session = ProgressiveSession::new(&c);
        let err = session
            .refine_to_plan(&RetrievalPlan::from_planes(vec![99; c.num_levels()]))
            .unwrap_err();
        assert!(matches!(err, PmrError::InvalidConfig { .. }));
        assert_eq!(session.fetched_bytes(), 0, "rejected plan must not mutate the session");
        assert!(session.planes().iter().all(|&b| b == 0));
    }

    #[test]
    fn mismatched_level_count_is_rejected() {
        let (_, c) = artifact();
        let mut session = ProgressiveSession::new(&c);
        let err = session
            .refine_to_plan(&RetrievalPlan::from_planes(vec![1; c.num_levels() + 1]))
            .unwrap_err();
        assert!(matches!(err, PmrError::InvalidConfig { .. }));
        assert_eq!(session.fetched_bytes(), 0);
    }

    #[test]
    fn full_plan_via_validation_fetches_everything() {
        let (_, c) = artifact();
        let mut session = ProgressiveSession::new(&c);
        let full: Vec<u32> = c.levels().iter().map(|l| l.num_planes()).collect();
        session.refine_to_plan(&c.plan_from_planes(full).unwrap()).unwrap();
        assert_eq!(session.fetched_bytes(), c.total_bytes());
    }
}
