//! FNV-1a 64-bit checksums over plane payloads.
//!
//! Corruption on a storage tier must surface as a detected fetch error, not
//! as silent reconstruction error — a flipped bit in a negabinary plane
//! shifts coefficients by a quantization step and the theory estimator never
//! notices. Every persisted plane payload therefore carries an FNV-1a digest
//! (the same hash the conformance goldens pin), checked at load and at
//! segment-fetch time.

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let base = fnv1a64(&payload);
        for i in [0usize, 17, 255] {
            for bit in 0..8 {
                let mut mutated = payload.clone();
                mutated[i] ^= 1 << bit;
                assert_ne!(fnv1a64(&mutated), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
