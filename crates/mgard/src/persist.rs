//! On-disk persistence of compressed artifacts.
//!
//! The format is self-contained and versioned: everything retrieval needs —
//! plane payloads, the collected error matrix, quantization steps, the
//! decomposition parameters, the value range — round-trips, so an artifact
//! written by a producer can be progressively read elsewhere.
//!
//! Two wire versions exist. `PMRC2` (current) carries a per-plane FNV-1a
//! checksum table so bit rot in a payload is detected at load/fetch time
//! instead of surfacing as silent reconstruction error; `PMRC1` (legacy,
//! pre-checksum) is still readable — [`from_bytes`] dispatches on the magic.
//!
//! ```text
//! magic "PMRC2\0"            ("PMRC1\0" = legacy, no checksum table)
//! name        u32 len + UTF-8 bytes
//! timestep    u64
//! shape       u32 ndim + 3 x u32 dims
//! levels L    u32
//! mode        u8 (0 = Interpolation, 1 = L2Projection)
//! value_range f64
//! [v2 only] checksum table, per level:
//!             u32 num_planes, num_planes x u64 fnv1a64(payload)
//! per level:  u64 count, u32 num_planes, f64 step,
//!             (B+1) x f64 error row,
//!             B x (u32 len + payload bytes)
//! ```

use crate::bitplane::LevelEncoding;
use crate::checksum::fnv1a64;
use crate::compress::Compressed;
use crate::decompose::{Decomposer, TransformMode};
use pmr_error::{len_u32, PmrError};
use pmr_field::Shape;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Legacy pre-checksum magic; artifacts with it load without verification.
pub const MAGIC_V1: &[u8; 6] = b"PMRC1\0";
/// Current magic: header is followed by a per-plane checksum table.
pub const MAGIC_V2: &[u8; 6] = b"PMRC2\0";

fn malformed(detail: &str) -> PmrError {
    PmrError::malformed("mgard artifact", detail)
}

fn encode(c: &Compressed, checksummed: bool) -> Result<Vec<u8>, PmrError> {
    let mut out = Vec::with_capacity(c.total_bytes() as usize + 4096);
    out.extend_from_slice(if checksummed { MAGIC_V2 } else { MAGIC_V1 });
    let name = c.name().as_bytes();
    out.extend_from_slice(&len_u32(name.len(), "field name length")?.to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(c.timestep() as u64).to_le_bytes());
    let shape = c.shape();
    out.extend_from_slice(&len_u32(shape.ndim(), "ndim")?.to_le_bytes());
    for d in 0..3 {
        out.extend_from_slice(&len_u32(shape.dim(d), "grid dimension")?.to_le_bytes());
    }
    out.extend_from_slice(&len_u32(c.num_levels(), "level count")?.to_le_bytes());
    out.push(match c.decomposer().mode() {
        TransformMode::Interpolation => 0,
        TransformMode::L2Projection => 1,
    });
    out.extend_from_slice(&c.value_range().to_le_bytes());
    if checksummed {
        for lvl in c.levels() {
            out.extend_from_slice(&lvl.num_planes().to_le_bytes());
            for k in 0..lvl.num_planes() {
                out.extend_from_slice(&fnv1a64(lvl.plane_payload(k)).to_le_bytes());
            }
        }
    }
    for lvl in c.levels() {
        out.extend_from_slice(&lvl.to_bytes()?);
    }
    Ok(out)
}

/// Serialize an artifact to bytes in the current checksummed format.
///
/// Fails with [`PmrError::Corrupt`] if a length no longer fits its `u32`
/// wire field — the cast-and-wrap alternative would silently persist an
/// artifact that cannot round-trip.
pub fn to_bytes(c: &Compressed) -> Result<Vec<u8>, PmrError> {
    encode(c, true)
}

/// Serialize in the legacy `PMRC1` layout (no checksum table). Exists so
/// the backward-compat path stays testable; new artifacts should use
/// [`to_bytes`].
pub fn to_bytes_legacy_v1(c: &Compressed) -> Result<Vec<u8>, PmrError> {
    encode(c, false)
}

/// Deserialize an artifact previously produced by [`to_bytes`] (either wire
/// version). For `PMRC2` inputs every plane payload is verified against the
/// stored checksum table; a mismatch is a [`PmrError::Malformed`] naming the
/// level and plane.
pub fn from_bytes(buf: &[u8]) -> Result<Compressed, PmrError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = buf.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let u32_at = |pos: &mut usize| -> Option<u32> {
        Some(u32::from_le_bytes(take(pos, 4)?.try_into().ok()?))
    };
    let u64_at = |pos: &mut usize| -> Option<u64> {
        Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
    };
    let f64_at = |pos: &mut usize| -> Option<f64> {
        Some(f64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
    };

    let magic = take(&mut pos, 6).ok_or_else(|| malformed("truncated magic"))?;
    let checksummed = match magic {
        m if m == MAGIC_V1 => false,
        m if m == MAGIC_V2 => true,
        _ => return Err(malformed("bad magic")),
    };
    let name_len = u32_at(&mut pos).ok_or_else(|| malformed("truncated name length"))? as usize;
    if name_len > 4096 {
        return Err(malformed("name length exceeds 4096"));
    }
    let name_bytes = take(&mut pos, name_len).ok_or_else(|| malformed("truncated name"))?.to_vec();
    let name = String::from_utf8(name_bytes).map_err(|_| malformed("name is not valid UTF-8"))?;
    let timestep = u64_at(&mut pos).ok_or_else(|| malformed("truncated timestep"))? as usize;
    let ndim = u32_at(&mut pos).ok_or_else(|| malformed("truncated ndim"))? as usize;
    let dx = u32_at(&mut pos).ok_or_else(|| malformed("truncated dims"))? as usize;
    let dy = u32_at(&mut pos).ok_or_else(|| malformed("truncated dims"))? as usize;
    let dz = u32_at(&mut pos).ok_or_else(|| malformed("truncated dims"))? as usize;
    // Cap the grid size well below anything a corrupted header could use
    // to drive an enormous allocation (2^28 points = 2 GiB of f64).
    let points = dx.checked_mul(dy).and_then(|p| p.checked_mul(dz));
    if dx == 0 || dy == 0 || dz == 0 || points.is_none_or(|p| p > 1 << 28) {
        return Err(malformed("grid dimensions out of range"));
    }
    let shape = match ndim {
        1 => Shape::d1(dx),
        2 => Shape::d2(dx, dy),
        3 => Shape::d3(dx, dy, dz),
        _ => return Err(malformed("ndim must be 1, 2 or 3")),
    };
    let num_levels = u32_at(&mut pos).ok_or_else(|| malformed("truncated level count"))? as usize;
    if num_levels == 0 || num_levels > 64 {
        return Err(malformed("level count out of range"));
    }
    let mode = match take(&mut pos, 1).ok_or_else(|| malformed("truncated mode"))?[0] {
        0 => TransformMode::Interpolation,
        1 => TransformMode::L2Projection,
        _ => return Err(malformed("unknown transform mode")),
    };
    let value_range = f64_at(&mut pos).ok_or_else(|| malformed("truncated value range"))?;

    let decomposer = Decomposer::new(shape, num_levels, mode);
    if decomposer.levels() != num_levels {
        return Err(malformed("stored level count impossible for this shape"));
    }

    let checksums: Option<Vec<Vec<u64>>> = if checksummed {
        let mut table = Vec::with_capacity(num_levels);
        for l in 0..num_levels {
            let planes =
                u32_at(&mut pos).ok_or_else(|| malformed("truncated checksum table"))? as usize;
            if planes > 256 {
                return Err(PmrError::malformed(
                    "mgard artifact",
                    format!("checksum table claims {planes} planes at level {l}"),
                ));
            }
            let mut row = Vec::with_capacity(planes);
            for _ in 0..planes {
                row.push(u64_at(&mut pos).ok_or_else(|| malformed("truncated checksum table"))?);
            }
            table.push(row);
        }
        Some(table)
    } else {
        None
    };

    let mut levels = Vec::with_capacity(num_levels);
    for l in 0..num_levels {
        let rest = buf.get(pos..).ok_or_else(|| malformed("truncated level payload"))?;
        let (enc, used) = LevelEncoding::from_bytes(rest)
            .ok_or_else(|| PmrError::malformed("mgard artifact", format!("bad level {l}")))?;
        pos += used;
        if let Some(table) = &checksums {
            let row = &table[l];
            if row.len() != enc.num_planes() as usize {
                return Err(PmrError::malformed(
                    "mgard artifact",
                    format!(
                        "checksum table has {} entries at level {l} but the level holds {} planes",
                        row.len(),
                        enc.num_planes()
                    ),
                ));
            }
            for (&expect, k) in row.iter().zip(0..enc.num_planes()) {
                let got = fnv1a64(enc.plane_payload(k));
                if got != expect {
                    return Err(PmrError::malformed(
                        "mgard artifact",
                        format!(
                            "checksum mismatch at level {l} plane {k}: \
                             stored {expect:#018x}, payload hashes to {got:#018x}"
                        ),
                    ));
                }
            }
        }
        levels.push(enc);
    }
    if pos != buf.len() {
        return Err(malformed("trailing bytes after last level"));
    }
    Compressed::from_parts(name, timestep, decomposer, levels, value_range)
        .ok_or_else(|| malformed("level layout does not match decomposition"))
}

/// Write an artifact to `path`, creating parent directories.
pub fn save(c: &Compressed, path: &Path) -> Result<(), PmrError> {
    let io_err = |e: io::Error| PmrError::io_at(path, e);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(io_err)?;
    }
    let bytes = to_bytes(c)?;
    let mut f = io::BufWriter::new(fs::File::create(path).map_err(io_err)?);
    f.write_all(&bytes).map_err(io_err)?;
    f.flush().map_err(io_err)
}

/// Read an artifact previously written with [`save`].
pub fn load(path: &Path) -> Result<Compressed, PmrError> {
    let mut buf = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| PmrError::io_at(path, e))?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressConfig;
    use pmr_field::{error::max_abs_error, Field};

    fn artifact() -> (Field, Compressed) {
        let field = Field::from_fn("J_x", 11, Shape::d3(9, 7, 5), |x, y, z| {
            ((x as f64) * 0.6).sin() * ((y as f64) * 0.2).cos() + (z as f64) * 0.03
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        (field, c)
    }

    /// Byte offset where the checksum table starts for `c` (v2 layout).
    fn table_offset(c: &Compressed) -> usize {
        6 + 4 + c.name().len() + 8 + 16 + 4 + 1 + 8
    }

    #[test]
    fn bytes_roundtrip_preserves_retrieval() {
        let (field, c) = artifact();
        let rt = from_bytes(&to_bytes(&c).expect("serialize")).expect("roundtrip");
        assert_eq!(rt.name(), "J_x");
        assert_eq!(rt.timestep(), 11);
        assert_eq!(rt.num_levels(), c.num_levels());
        assert_eq!(rt.value_range(), c.value_range());
        for bound in [1e-2, 1e-4] {
            let abs = c.absolute_bound(bound);
            let p1 = c.plan_theory(abs);
            let p2 = rt.plan_theory(abs);
            assert_eq!(p1, p2);
            let r1 = c.retrieve(&p1);
            let r2 = rt.retrieve(&p2);
            assert_eq!(r1.data(), r2.data());
            assert!(max_abs_error(field.data(), r2.data()) <= abs);
        }
    }

    #[test]
    fn legacy_v1_blobs_still_load() {
        let (_, c) = artifact();
        let v1 = to_bytes_legacy_v1(&c).expect("serialize");
        assert_eq!(&v1[..6], MAGIC_V1);
        let rt = from_bytes(&v1).expect("legacy load");
        assert_eq!(rt.total_bytes(), c.total_bytes());
        let plan = c.plan_theory(c.absolute_bound(1e-4));
        assert_eq!(c.retrieve(&plan).data(), rt.retrieve(&plan).data());
        // The two wire versions differ only by magic + checksum table.
        let v2 = to_bytes(&c).expect("serialize");
        let table: usize = c.levels().iter().map(|l| 4 + 8 * l.num_planes() as usize).sum();
        assert_eq!(v2.len(), v1.len() + table);
    }

    #[test]
    fn tampered_checksum_entry_detected() {
        let (_, c) = artifact();
        let mut bytes = to_bytes(&c).expect("serialize");
        // First digest byte of level 0's table row (skip its u32 count).
        let at = table_offset(&c) + 4;
        bytes[at] ^= 0xFF;
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "got: {err}");
    }

    #[test]
    fn payload_bit_flip_detected() {
        let (_, c) = artifact();
        let bytes = to_bytes(&c).expect("serialize");
        // Flip one bit in the last payload byte of the buffer — deep inside
        // the final level's plane data, past every header field.
        let mut bad = bytes.clone();
        let at = bad.len() - 1;
        bad[at] ^= 0x01;
        assert!(from_bytes(&bad).is_err(), "payload corruption must not load silently");
    }

    #[test]
    fn file_roundtrip() {
        let (_, c) = artifact();
        let dir = std::env::temp_dir().join("pmr_persist_test");
        let path = dir.join("artifact.pmrc");
        save(&c, &path).unwrap();
        let rt = load(&path).unwrap();
        assert_eq!(rt.total_bytes(), c.total_bytes());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_inputs_rejected_without_panic() {
        let (_, c) = artifact();
        let bytes = to_bytes(&c).expect("serialize");
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(from_bytes(&[]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(from_bytes(&bad_magic).is_err());
        // Flip the stored level count to an impossible value.
        let mut bad = bytes.clone();
        // magic(6) + name_len(4) + name(3) + ts(8) + shape(16) = offset 37
        bad[37] = 63;
        assert!(from_bytes(&bad).is_err());
    }

    #[test]
    fn truncated_tail_rejected() {
        let (_, c) = artifact();
        let mut bytes = to_bytes(&c).expect("serialize");
        bytes.push(0); // trailing garbage
        assert!(from_bytes(&bytes).is_err());
    }
}
