//! On-disk persistence of compressed artifacts.
//!
//! The format is self-contained and versioned: everything retrieval needs —
//! plane payloads, the collected error matrix, quantization steps, the
//! decomposition parameters, the value range — round-trips, so an artifact
//! written by a producer can be progressively read elsewhere.
//!
//! ```text
//! magic "PMRC1\0"
//! name        u32 len + UTF-8 bytes
//! timestep    u64
//! shape       u32 ndim + 3 x u32 dims
//! levels L    u32
//! mode        u8 (0 = Interpolation, 1 = L2Projection)
//! value_range f64
//! per level:  u64 count, u32 num_planes, f64 step,
//!             (B+1) x f64 error row,
//!             B x (u32 len + payload bytes)
//! ```

use crate::bitplane::LevelEncoding;
use crate::compress::Compressed;
use crate::decompose::{Decomposer, TransformMode};
use pmr_field::Shape;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 6] = b"PMRC1\0";

/// Serialize an artifact to bytes.
pub fn to_bytes(c: &Compressed) -> Vec<u8> {
    let mut out = Vec::with_capacity(c.total_bytes() as usize + 4096);
    out.extend_from_slice(MAGIC);
    let name = c.name().as_bytes();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(c.timestep() as u64).to_le_bytes());
    let shape = c.shape();
    out.extend_from_slice(&(shape.ndim() as u32).to_le_bytes());
    for d in 0..3 {
        out.extend_from_slice(&(shape.dim(d) as u32).to_le_bytes());
    }
    out.extend_from_slice(&(c.num_levels() as u32).to_le_bytes());
    out.push(match c.decomposer().mode() {
        TransformMode::Interpolation => 0,
        TransformMode::L2Projection => 1,
    });
    out.extend_from_slice(&c.value_range().to_le_bytes());
    for lvl in c.levels() {
        out.extend_from_slice(&lvl.to_bytes());
    }
    out
}

/// Deserialize an artifact previously produced by [`to_bytes`].
pub fn from_bytes(buf: &[u8]) -> Option<Compressed> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = buf.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let u32_at = |pos: &mut usize| -> Option<u32> {
        Some(u32::from_le_bytes(take(pos, 4)?.try_into().ok()?))
    };
    let u64_at = |pos: &mut usize| -> Option<u64> {
        Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
    };
    let f64_at = |pos: &mut usize| -> Option<f64> {
        Some(f64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
    };

    if take(&mut pos, 6)? != MAGIC {
        return None;
    }
    let name_len = u32_at(&mut pos)? as usize;
    if name_len > 4096 {
        return None;
    }
    let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).ok()?;
    let timestep = u64_at(&mut pos)? as usize;
    let ndim = u32_at(&mut pos)? as usize;
    let dx = u32_at(&mut pos)? as usize;
    let dy = u32_at(&mut pos)? as usize;
    let dz = u32_at(&mut pos)? as usize;
    // Cap the grid size well below anything a corrupted header could use
    // to drive an enormous allocation (2^28 points = 2 GiB of f64).
    if dx == 0 || dy == 0 || dz == 0 || dx.checked_mul(dy)?.checked_mul(dz)? > (1 << 28) {
        return None;
    }
    let shape = match ndim {
        1 => Shape::d1(dx),
        2 => Shape::d2(dx, dy),
        3 => Shape::d3(dx, dy, dz),
        _ => return None,
    };
    let num_levels = u32_at(&mut pos)? as usize;
    if num_levels == 0 || num_levels > 64 {
        return None;
    }
    let mode = match take(&mut pos, 1)?[0] {
        0 => TransformMode::Interpolation,
        1 => TransformMode::L2Projection,
        _ => return None,
    };
    let value_range = f64_at(&mut pos)?;

    let decomposer = Decomposer::new(shape, num_levels, mode);
    if decomposer.levels() != num_levels {
        return None; // stored level count impossible for this shape
    }

    let mut levels = Vec::with_capacity(num_levels);
    for _ in 0..num_levels {
        let (enc, used) = LevelEncoding::from_bytes(buf.get(pos..)?)?;
        pos += used;
        levels.push(enc);
    }
    if pos != buf.len() {
        return None;
    }
    Compressed::from_parts(name, timestep, decomposer, levels, value_range)
}

/// Write an artifact to `path`, creating parent directories.
pub fn save(c: &Compressed, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = io::BufWriter::new(fs::File::create(path)?);
    f.write_all(&to_bytes(c))?;
    f.flush()
}

/// Read an artifact previously written with [`save`].
pub fn load(path: &Path) -> io::Result<Compressed> {
    let mut buf = Vec::new();
    fs::File::open(path)?.read_to_end(&mut buf)?;
    from_bytes(&buf)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed artifact"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::CompressConfig;
    use pmr_field::{error::max_abs_error, Field};

    fn artifact() -> (Field, Compressed) {
        let field = Field::from_fn("J_x", 11, Shape::d3(9, 7, 5), |x, y, z| {
            ((x as f64) * 0.6).sin() * ((y as f64) * 0.2).cos() + (z as f64) * 0.03
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        (field, c)
    }

    #[test]
    fn bytes_roundtrip_preserves_retrieval() {
        let (field, c) = artifact();
        let rt = from_bytes(&to_bytes(&c)).expect("roundtrip");
        assert_eq!(rt.name(), "J_x");
        assert_eq!(rt.timestep(), 11);
        assert_eq!(rt.num_levels(), c.num_levels());
        assert_eq!(rt.value_range(), c.value_range());
        for bound in [1e-2, 1e-4] {
            let abs = c.absolute_bound(bound);
            let p1 = c.plan_theory(abs);
            let p2 = rt.plan_theory(abs);
            assert_eq!(p1, p2);
            let r1 = c.retrieve(&p1);
            let r2 = rt.retrieve(&p2);
            assert_eq!(r1.data(), r2.data());
            assert!(max_abs_error(field.data(), r2.data()) <= abs);
        }
    }

    #[test]
    fn file_roundtrip() {
        let (_, c) = artifact();
        let dir = std::env::temp_dir().join("pmr_persist_test");
        let path = dir.join("artifact.pmrc");
        save(&c, &path).unwrap();
        let rt = load(&path).unwrap();
        assert_eq!(rt.total_bytes(), c.total_bytes());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_inputs_rejected_without_panic() {
        let (_, c) = artifact();
        let bytes = to_bytes(&c);
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_none());
        assert!(from_bytes(&[]).is_none());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(from_bytes(&bad_magic).is_none());
        // Flip the stored level count to an impossible value.
        let mut bad = bytes.clone();
        // magic(6) + name_len(4) + name(3) + ts(8) + shape(16) = offset 37
        bad[37] = 63;
        assert!(from_bytes(&bad).is_none());
    }

    #[test]
    fn truncated_tail_rejected() {
        let (_, c) = artifact();
        let mut bytes = to_bytes(&c);
        bytes.push(0); // trailing garbage
        assert!(from_bytes(&bytes).is_none());
    }
}
