//! Negabinary bit-plane encoding of one coefficient level, with the
//! collected error matrix row.
//!
//! Coefficients are scaled by the level's max magnitude into fixed-point
//! integers with `B - 2` fractional bits (so every quantized value fits in
//! `B` negabinary digits), then sliced into `B` planes, most significant
//! first. Each plane is bit-packed and run through the lossless stage;
//! the compressed sizes are the `S[l][k]` of the paper's Equation 1.
//!
//! While encoding we also *collect* (not model) the error row
//! `Err[b] = max_i |c_i − decode_b(c_i)|` for `b = 0..=B` — the per-level
//! error matrix that both the theory estimator and E-MGARD consume.
//!
//! # Kernels
//!
//! The encode/decode hot path runs through the cache-blocked transpose
//! kernels of [`pmr_codec::transpose`]: 64 quantized digits form a tile
//! whose bitwise transpose yields all plane words at once, so the per-bit
//! `BitWriter`/`BitReader` traffic collapses into whole-word copies and the
//! prefix-reconstruction error loop becomes branchless and vectorizable.
//! [`ExecPolicy::kernel`] selects the implementation; every kernel is
//! bit-identical by construction, and [`PlaneKernel::Scalar`] keeps the
//! original bit-at-a-time path alive as the differential oracle (it ignores
//! `threads` for this stage — the oracle is defined serially).

use crate::exec::ExecPolicy;
use pmr_codec::{
    bitstream::{BitReader, BitWriter},
    lossless, negabinary, transpose, PlaneKernel, TileImpl,
};
use pmr_error::{len_u32, PmrError};
use serde::{Deserialize, Serialize};

/// Default number of bit-planes per coefficient level (the paper's `B`).
pub const DEFAULT_BITPLANES: u32 = 32;

/// One coefficient level, encoded as progressive bit-planes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelEncoding {
    /// Number of coefficients in the level.
    count: usize,
    /// Total number of planes `B`.
    num_planes: u32,
    /// Quantization step: `coefficient ≈ q * step`.
    step: f64,
    /// Losslessly compressed plane payloads, plane 0 = most significant.
    planes: Vec<Vec<u8>>,
    /// Collected error row: `error_row[b]` is the exact max absolute
    /// coefficient error when only the first `b` planes are used
    /// (length `B + 1`; `error_row[0]` = max |c|).
    error_row: Vec<f64>,
}

/// Fixed-point quantization of one coefficient against the level step.
///
/// The saturating float→int `as` cast *is* the crate's non-finite policy
/// (see the degenerate-level branch in [`LevelEncoding::encode`]): a NaN
/// coefficient quantizes to 0, ±inf never reaches here because the caller
/// collapses the level first.
fn quantize(c: f64, step: f64) -> i64 {
    // lint:allow(lossy_cast): round-then-saturate is the documented NaN/inf quantization policy
    (c / step).round() as i64
}

/// Quantize/encode one tile-aligned coefficient chunk: fills one packed-bit
/// segment per plane (`segs[k]`, pre-sized to `coeffs.len().div_ceil(8)`)
/// and folds the chunk's truncation errors into `row` (length `B + 1`).
///
/// Bit-identity with the scalar path: the digits come from the same
/// `quantize`/`to_negabinary` expressions; plane bits land at the same
/// MSB-first positions (`word.to_be_bytes()` is exactly the `BitWriter`
/// layout, and zero-padded tile tails match its zero fill); and the error
/// accumulator `val`, although held in f64, only ever takes integer values
/// below 2^51 (`num_planes <= 50`), where f64 addition is exact — so every
/// `(c - val * step)` matches the scalar `(c - val_i64 as f64 * step)` bit
/// for bit. The max-merges reorder only `f64::max`, which is associative,
/// commutative, and NaN-ignoring like the scalar `if err > worst` fold.
fn encode_chunk_tiled(
    coeffs: &[f64],
    num_planes: u32,
    step: f64,
    weights_f: &[f64],
    imp: TileImpl,
    segs: &mut [Vec<u8>],
    row: &mut [f64],
) {
    let b = num_planes;
    let bu = b as usize;
    let seg_len = coeffs.len().div_ceil(8);
    for (t, chunk) in coeffs.chunks(transpose::TILE).enumerate() {
        let mut tile = [0u64; transpose::TILE];
        let mut cval = [0.0f64; transpose::TILE];
        for ((d, cv), &c) in tile.iter_mut().zip(cval.iter_mut()).zip(chunk) {
            *d = negabinary::to_negabinary(quantize(c, step));
            *cv = c;
        }
        let mut m0 = row[0];
        for &c in chunk {
            m0 = m0.max(c.abs());
        }
        row[0] = m0;
        // Branchless prefix-reconstruction error, one plane across the whole
        // tile. Padding lanes contribute zero digits and c = 0.0, i.e. a
        // zero error that never moves the max.
        let mut val = [0.0f64; transpose::TILE];
        for ((shift, &w), worst) in (0..b).rev().zip(weights_f).zip(row[1..].iter_mut()) {
            let wbits = w.to_bits();
            // Two passes so the accumulate and the max-reduction each
            // auto-vectorize; `max` is order-independent, so splitting them
            // keeps the row bit-identical to the scalar oracle.
            for j in 0..transpose::TILE {
                let bit = tile[j] >> shift & 1;
                val[j] += f64::from_bits(wbits & bit.wrapping_neg());
            }
            let mut pmax = 0.0f64;
            for j in 0..transpose::TILE {
                pmax = pmax.max((cval[j] - val[j] * step).abs());
            }
            *worst = worst.max(pmax);
        }
        // One transpose yields every plane word of the tile; the plane words
        // are the bottom `b` rows (see `pmr_codec::transpose` docs).
        transpose::transpose64(&mut tile, imp);
        let base = t * 8;
        let nbytes = (seg_len - base).min(8);
        for (seg, word) in segs.iter_mut().zip(&tile[transpose::TILE - bu..]) {
            seg[base..base + nbytes].copy_from_slice(&word.to_be_bytes()[..nbytes]);
        }
    }
}

/// Rebuild the coefficients starting at tile-aligned index `lo` from
/// unpacked plane bytes (a prefix of the planes is fine — missing low
/// planes decode as zero digits). `expected` is the packed byte length of
/// one full plane, `count.div_ceil(8)`.
fn tiles_to_coeffs(
    plane_bytes: &[Vec<u8>],
    num_planes: u32,
    step: f64,
    expected: usize,
    lo: usize,
    out: &mut [f64],
    imp: TileImpl,
) {
    debug_assert_eq!(lo % transpose::TILE, 0);
    let bu = num_planes as usize;
    for (t, ochunk) in out.chunks_mut(transpose::TILE).enumerate() {
        let base = (lo + t * transpose::TILE) / 8;
        let nbytes = (expected - base).min(8);
        let mut y = [0u64; transpose::TILE];
        for (yk, pb) in y[transpose::TILE - bu..].iter_mut().zip(plane_bytes) {
            let mut wb = [0u8; 8];
            wb[..nbytes].copy_from_slice(&pb[base..base + nbytes]);
            *yk = u64::from_be_bytes(wb);
        }
        transpose::transpose64(&mut y, imp);
        for (slot, &d) in ochunk.iter_mut().zip(&y) {
            *slot = negabinary::from_negabinary(d) as f64 * step;
        }
    }
}

impl LevelEncoding {
    /// Encode `coeffs` into `num_planes` bit-planes (`3 <= num_planes <= 50`).
    pub fn encode(coeffs: &[f64], num_planes: u32) -> Self {
        Self::encode_with(coeffs, num_planes, &ExecPolicy::serial())
    }

    /// [`LevelEncoding::encode`] under an explicit execution policy.
    ///
    /// The parallel path splits the coefficients into tile-aligned chunks
    /// (multiples of 64, so no tile straddles a worker); each chunk fills
    /// its own plane byte segments and a private error row, the segments
    /// concatenate at byte boundaries, and the rows merge with `f64::max`
    /// — exact and therefore bit-identical to the serial scan. The lossless
    /// compression pass parallelizes across planes, which are independent.
    ///
    /// [`PlaneKernel::Scalar`] routes to the original bit-at-a-time encoder
    /// (the differential oracle), which is defined serially and ignores
    /// `threads` for this stage.
    pub fn encode_with(coeffs: &[f64], num_planes: u32, exec: &ExecPolicy) -> Self {
        assert!((3..=50).contains(&num_planes), "num_planes out of range");
        let b = num_planes;
        let max_abs = coeffs.iter().fold(0.0_f64, |m, &c| m.max(c.abs()));

        if max_abs == 0.0 || !max_abs.is_finite() {
            // Degenerate level: everything quantizes to zero. Planes are
            // all-zero bitstreams (nearly free after RLE).
            //
            // This branch is half of the crate's non-finite policy. The
            // fold above uses `f64::max`, which *ignores NaN*, so:
            //
            // * a level containing ±inf has `max_abs = inf` and lands here:
            //   no finite step covers it, the whole level collapses to
            //   zeros with `step = 0` and a zero error row;
            // * a NaN coefficient among otherwise finite values does NOT
            //   land here — it falls through to quantization, where
            //   `(NaN / step).round() as i64` saturates to 0, so that one
            //   site decodes as exactly 0.0 and its (NaN) truncation error
            //   is excluded from the collected error row (`NaN > x` is
            //   false, so the max-fold below never records it).
            //
            // Either way the artifact stays structurally valid and no
            // non-finite value ever reaches the error matrix or the greedy
            // planner; achieved-error guarantees apply to the finite sites
            // only. Callers that must preserve non-finite payloads mask
            // them out before compression; the conformance harness pins
            // this contract with NaN/inf-laced fields.
            let empty_plane = {
                let mut w = BitWriter::with_capacity(coeffs.len());
                for _ in 0..coeffs.len() {
                    w.push(false);
                }
                lossless::compress(&w.into_bytes())
            };
            return LevelEncoding {
                count: coeffs.len(),
                num_planes: b,
                step: 0.0,
                planes: vec![empty_plane; b as usize],
                error_row: vec![0.0; b as usize + 1],
            };
        }

        // Fixed-point scale: |q| <= 2^(B-2) fits in B negabinary digits.
        let step = max_abs / (1u64 << (b - 2)) as f64;
        let step = if step > 0.0 { step } else { f64::MIN_POSITIVE };

        if exec.kernel.is_scalar() {
            return Self::encode_scalar(coeffs, b, step);
        }
        let imp = exec.kernel.tile_impl();
        let threads = exec.resolved_threads();
        if threads <= 1 || coeffs.len() < 2 * threads {
            Self::encode_tiled(coeffs, b, step, imp)
        } else {
            Self::encode_tiled_parallel(coeffs, b, step, imp, threads)
        }
    }

    /// The original bit-at-a-time encoder, kept verbatim as the
    /// differential oracle behind [`PlaneKernel::Scalar`].
    fn encode_scalar(coeffs: &[f64], b: u32, step: f64) -> Self {
        let mut digits: Vec<u64> = Vec::with_capacity(coeffs.len());
        let mut error_row = vec![0.0f64; b as usize + 1];
        // Weights (-2)^(B-1-k) for incremental reconstruction.
        let weights: Vec<i64> = (0..b).map(|k| (-2_i64).pow(b - 1 - k)).collect();

        for &c in coeffs {
            let q = quantize(c, step);
            let nb = negabinary::to_negabinary(q);
            digits.push(nb);
            // Collect the exact truncation error for every prefix length.
            // `(0..b).rev()` walks the shifts `b-1-k` without any
            // usize→u32 narrowing on the plane index.
            error_row[0] = error_row[0].max(c.abs());
            let mut val: i64 = 0;
            for ((shift, &w), worst) in
                (0..b).rev().zip(weights.iter()).zip(error_row[1..].iter_mut())
            {
                if nb >> shift & 1 == 1 {
                    val += w;
                }
                let err = (c - val as f64 * step).abs();
                if err > *worst {
                    *worst = err;
                }
            }
        }

        let mut planes = Vec::with_capacity(b as usize);
        for k in 0..b {
            let shift = b - 1 - k;
            let mut w = BitWriter::with_capacity(digits.len());
            for &nb in &digits {
                w.push(nb >> shift & 1 == 1);
            }
            planes.push(lossless::compress(&w.into_bytes()));
        }

        LevelEncoding { count: coeffs.len(), num_planes: b, step, planes, error_row }
    }

    /// Serial tiled encode: one pass of [`encode_chunk_tiled`] over the
    /// whole level, then per-plane lossless compression.
    fn encode_tiled(coeffs: &[f64], b: u32, step: f64, imp: TileImpl) -> Self {
        let bu = b as usize;
        let weights_f: Vec<f64> = (0..b).map(|k| (-2_i64).pow(b - 1 - k) as f64).collect();
        let seg_len = coeffs.len().div_ceil(8);
        let mut segs: Vec<Vec<u8>> = vec![vec![0u8; seg_len]; bu];
        let mut error_row = vec![0.0f64; bu + 1];
        encode_chunk_tiled(coeffs, b, step, &weights_f, imp, &mut segs, &mut error_row);
        let planes = segs.iter().map(|s| lossless::compress(s)).collect();
        LevelEncoding { count: coeffs.len(), num_planes: b, step, planes, error_row }
    }

    /// Parallel tiled encode; see [`LevelEncoding::encode_with`] for the
    /// bit-identity argument.
    fn encode_tiled_parallel(
        coeffs: &[f64],
        b: u32,
        step: f64,
        imp: TileImpl,
        threads: usize,
    ) -> Self {
        let bu = b as usize;
        let weights_f: Vec<f64> = (0..b).map(|k| (-2_i64).pow(b - 1 - k) as f64).collect();
        // Tile-aligned chunks: no tile straddles a worker, and every
        // non-final chunk packs to a whole number of plane bytes.
        let csize =
            coeffs.len().div_ceil(threads).max(1).div_ceil(transpose::TILE) * transpose::TILE;
        let nchunks = coeffs.len().div_ceil(csize);
        let mut rows: Vec<Vec<f64>> = vec![vec![0.0f64; bu + 1]; nchunks];
        let mut segsets: Vec<Vec<Vec<u8>>> =
            coeffs.chunks(csize).map(|ch| vec![vec![0u8; ch.len().div_ceil(8)]; bu]).collect();
        std::thread::scope(|scope| {
            for ((cchunk, segs), row) in
                coeffs.chunks(csize).zip(segsets.iter_mut()).zip(rows.iter_mut())
            {
                let weights_f = &weights_f;
                scope.spawn(move || encode_chunk_tiled(cchunk, b, step, weights_f, imp, segs, row));
            }
        });
        let mut error_row = vec![0.0f64; bu + 1];
        for row in &rows {
            for (e, &r) in error_row.iter_mut().zip(row) {
                *e = e.max(r);
            }
        }

        // Stitch and compress each plane; planes are independent, so they
        // are distributed across workers whole.
        let mut planes: Vec<Vec<u8>> = vec![Vec::new(); bu];
        let expected = coeffs.len().div_ceil(8);
        let pchunk = bu.div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (pi, chunk) in planes.chunks_mut(pchunk).enumerate() {
                let segsets = &segsets;
                scope.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let k = pi * pchunk + j;
                        let mut buf = Vec::with_capacity(expected);
                        for segs in segsets {
                            buf.extend_from_slice(&segs[k]);
                        }
                        *slot = lossless::compress(&buf);
                    }
                });
            }
        });

        LevelEncoding { count: coeffs.len(), num_planes: b, step, planes, error_row }
    }

    /// Number of coefficients.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total number of planes `B`.
    pub fn num_planes(&self) -> u32 {
        self.num_planes
    }

    /// Compressed byte size of plane `k` (`S[l][k]`).
    pub fn plane_size(&self, k: u32) -> u64 {
        self.planes[k as usize].len() as u64
    }

    /// Compressed byte size of the first `b` planes.
    pub fn size_of_first(&self, b: u32) -> u64 {
        self.planes[..b.min(self.num_planes) as usize].iter().map(|p| p.len() as u64).sum()
    }

    /// Total compressed size of all planes.
    pub fn total_size(&self) -> u64 {
        self.size_of_first(self.num_planes)
    }

    /// The collected error row `Err[0..=B]`.
    pub fn error_row(&self) -> &[f64] {
        &self.error_row
    }

    /// The compressed payload of plane `k` — the unit of segment storage:
    /// fault-tolerant readers fetch exactly these byte strings (keyed by
    /// `(level, plane)`) from a [`pmr-storage`] segment store.
    pub fn plane_payload(&self, k: u32) -> &[u8] {
        &self.planes[k as usize]
    }

    /// Decode the level from *externally fetched* plane payloads instead of
    /// the payloads held by this encoding. `payloads[k]` must be the byte
    /// string of plane `k`; the prefix may be shorter than `B` (progressive
    /// truncation keeps any prefix valid) but never longer.
    ///
    /// Unlike [`LevelEncoding::decode`], which trusts its own payloads, this
    /// is the data path for bytes that crossed a storage tier: every payload
    /// is re-validated (bounded decompression to exactly one bit per
    /// coefficient) and a mangled segment comes back as
    /// [`PmrError::Malformed`] instead of a panic.
    pub fn decode_from_payloads(&self, payloads: &[Vec<u8>]) -> Result<Vec<f64>, PmrError> {
        self.decode_from_payloads_with(payloads, PlaneKernel::Auto)
    }

    /// [`LevelEncoding::decode_from_payloads`] with an explicit bit-plane
    /// kernel — the validated path's differential hook
    /// ([`PlaneKernel::Scalar`] re-runs the original bit-at-a-time
    /// assembly).
    pub fn decode_from_payloads_with(
        &self,
        payloads: &[Vec<u8>],
        kernel: PlaneKernel,
    ) -> Result<Vec<f64>, PmrError> {
        if payloads.len() > self.num_planes as usize {
            return Err(PmrError::malformed(
                "plane segment",
                format!("{} payloads for a {}-plane level", payloads.len(), self.num_planes),
            ));
        }
        if self.step == 0.0 {
            return Ok(vec![0.0; self.count]);
        }
        let expected = self.count.div_ceil(8);
        let mut plane_bytes = Vec::with_capacity(payloads.len());
        for (k, payload) in payloads.iter().enumerate() {
            match lossless::decompress_bounded(payload, expected) {
                Some(b) if b.len() == expected => plane_bytes.push(b),
                _ => {
                    return Err(PmrError::malformed(
                        "plane segment",
                        format!("plane {k} does not decompress to {expected} packed bytes"),
                    ))
                }
            }
        }
        if kernel.is_scalar() {
            let mut digits = vec![0u64; self.count];
            for (bytes, shift) in plane_bytes.iter().zip((0..self.num_planes).rev()) {
                let mut r = BitReader::new(bytes);
                for nb in digits.iter_mut() {
                    if r.next_bit() == Some(true) {
                        *nb |= 1u64 << shift;
                    }
                }
            }
            return Ok(digits
                .into_iter()
                .map(|nb| negabinary::from_negabinary(nb) as f64 * self.step)
                .collect());
        }
        let mut out = vec![0.0f64; self.count];
        tiles_to_coeffs(
            &plane_bytes,
            self.num_planes,
            self.step,
            expected,
            0,
            &mut out,
            kernel.tile_impl(),
        );
        Ok(out)
    }

    /// Serialize to a self-contained byte buffer (used by the artifact
    /// persistence of this crate and by other codecs building on the
    /// bit-plane machinery).
    ///
    /// Fails with [`PmrError::Corrupt`] if a plane payload has outgrown the
    /// `u32` length field of the wire format — wrapping the length would
    /// write an artifact that deserializes to the wrong bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, PmrError> {
        let mut out = Vec::with_capacity(self.total_size() as usize + 256);
        out.extend_from_slice(&(self.count as u64).to_le_bytes());
        out.extend_from_slice(&self.num_planes.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        for &e in &self.error_row {
            out.extend_from_slice(&e.to_le_bytes());
        }
        for p in &self.planes {
            out.extend_from_slice(&len_u32(p.len(), "plane payload length")?.to_le_bytes());
            out.extend_from_slice(p);
        }
        Ok(out)
    }

    /// Inverse of [`LevelEncoding::to_bytes`]: parses and validates,
    /// returning the encoding and the number of bytes consumed.
    pub fn from_bytes(buf: &[u8]) -> Option<(Self, usize)> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let count = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        if count > (1 << 28) {
            return None;
        }
        let count = count as usize;
        let num_planes = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        if !(3..=50).contains(&num_planes) {
            return None;
        }
        let step = f64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let mut error_row = Vec::with_capacity(num_planes as usize + 1);
        for _ in 0..=num_planes {
            error_row.push(f64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?));
        }
        let mut planes = Vec::with_capacity(num_planes as usize);
        for _ in 0..num_planes {
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            planes.push(take(&mut pos, len)?.to_vec());
        }
        let enc = Self::from_parts(count, num_planes, step, planes, error_row)?;
        Some((enc, pos))
    }

    /// Rebuild from persisted parts; validates the structural invariants.
    pub(crate) fn from_parts(
        count: usize,
        num_planes: u32,
        step: f64,
        planes: Vec<Vec<u8>>,
        error_row: Vec<f64>,
    ) -> Option<Self> {
        if !(3..=50).contains(&num_planes)
            || planes.len() != num_planes as usize
            || error_row.len() != num_planes as usize + 1
            || !step.is_finite()
            || step < 0.0
            || error_row.iter().any(|e| !e.is_finite() || *e < 0.0)
        {
            return None;
        }
        // Every plane payload must decompress to exactly one bit per
        // coefficient, so a corrupted artifact fails loudly at load time
        // instead of panicking inside `decode`. The bounded form caps the
        // allocation at the expected plane size, so forged repeat tokens
        // cannot balloon past the declared coefficient count either.
        let expected = count.div_ceil(8);
        for p in &planes {
            match lossless::decompress_bounded(p, expected) {
                Some(bytes) if bytes.len() == expected => {}
                _ => return None,
            }
        }
        Some(LevelEncoding { count, num_planes, step, planes, error_row })
    }

    /// Max absolute coefficient error when the first `b` planes are used.
    pub fn error_at(&self, b: u32) -> f64 {
        self.error_row[b.min(self.num_planes) as usize]
    }

    /// Decompress the first `b` plane payloads. Planes are a construction
    /// invariant: `encode` packs exactly one bit per coefficient and
    /// `from_parts` re-validates persisted planes the same way, so a
    /// failure here is a contract bug, not bad input — asserted, not routed
    /// through `PmrError`.
    fn decompress_planes(&self, b: u32) -> Vec<Vec<u8>> {
        let expected = self.count.div_ceil(8);
        (0..b as usize)
            .map(|k| {
                let bytes = lossless::decompress(&self.planes[k]).unwrap_or_default();
                assert_eq!(bytes.len(), expected, "plane {k} violated the construction invariant");
                bytes
            })
            .collect()
    }

    /// Decode the level using only the first `b` planes (clamped to `B`).
    pub fn decode(&self, b: u32) -> Vec<f64> {
        let b = b.min(self.num_planes);
        self.decode_tiled(b, PlaneKernel::Auto.tile_impl())
    }

    /// [`LevelEncoding::decode`] under an explicit execution policy.
    ///
    /// Planes decompress independently in parallel, then tile-aligned
    /// coefficient chunks assemble their digits through the transpose
    /// kernels — each coefficient is produced by exactly one worker, so the
    /// output matches serial decoding bit for bit. [`PlaneKernel::Scalar`]
    /// routes to the original bit-at-a-time decoder (serial by definition).
    pub fn decode_with(&self, b: u32, exec: &ExecPolicy) -> Vec<f64> {
        let b = b.min(self.num_planes);
        if exec.kernel.is_scalar() {
            return self.decode_scalar(b);
        }
        let imp = exec.kernel.tile_impl();
        let threads = exec.resolved_threads();
        if threads <= 1 || b == 0 || self.step == 0.0 || self.count < 2 * threads {
            return self.decode_tiled(b, imp);
        }
        self.decode_tiled_parallel(b, imp, threads)
    }

    /// The original bit-at-a-time decoder, kept verbatim as the
    /// differential oracle behind [`PlaneKernel::Scalar`].
    fn decode_scalar(&self, b: u32) -> Vec<f64> {
        if self.step == 0.0 {
            return vec![0.0; self.count];
        }
        let expected = self.count.div_ceil(8);
        let mut digits = vec![0u64; self.count];
        for k in 0..b {
            let bytes = lossless::decompress(&self.planes[k as usize]).unwrap_or_default();
            assert_eq!(bytes.len(), expected, "plane {k} violated the construction invariant");
            let mut r = BitReader::new(&bytes);
            let shift = self.num_planes - 1 - k;
            for nb in digits.iter_mut() {
                if r.next_bit() == Some(true) {
                    *nb |= 1u64 << shift;
                }
            }
        }
        digits.into_iter().map(|nb| negabinary::from_negabinary(nb) as f64 * self.step).collect()
    }

    /// Serial tiled decode.
    fn decode_tiled(&self, b: u32, imp: TileImpl) -> Vec<f64> {
        if self.step == 0.0 {
            return vec![0.0; self.count];
        }
        let plane_bytes = self.decompress_planes(b);
        let mut out = vec![0.0f64; self.count];
        tiles_to_coeffs(
            &plane_bytes,
            self.num_planes,
            self.step,
            self.count.div_ceil(8),
            0,
            &mut out,
            imp,
        );
        out
    }

    /// Parallel tiled decode: plane decompression parallelizes across
    /// planes, tile assembly across tile-aligned coefficient chunks.
    fn decode_tiled_parallel(&self, b: u32, imp: TileImpl, threads: usize) -> Vec<f64> {
        let expected = self.count.div_ceil(8);
        let mut plane_bytes: Vec<Vec<u8>> = vec![Vec::new(); b as usize];
        let pchunk = (b as usize).div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (ci, chunk) in plane_bytes.chunks_mut(pchunk).enumerate() {
                scope.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let k = ci * pchunk + j;
                        let bytes = lossless::decompress(&self.planes[k]).unwrap_or_default();
                        assert_eq!(
                            bytes.len(),
                            expected,
                            "plane {k} violated the construction invariant"
                        );
                        *slot = bytes;
                    }
                });
            }
        });

        let mut out = vec![0.0f64; self.count];
        let csize = self.count.div_ceil(threads).max(1).div_ceil(transpose::TILE) * transpose::TILE;
        std::thread::scope(|scope| {
            for (ci, chunk) in out.chunks_mut(csize).enumerate() {
                let plane_bytes = &plane_bytes;
                scope.spawn(move || {
                    tiles_to_coeffs(
                        plane_bytes,
                        self.num_planes,
                        self.step,
                        expected,
                        ci * csize,
                        chunk,
                        imp,
                    );
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coeffs(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.37;
                t.sin() * 3.0 + (t * 1.7).cos() * 0.01
            })
            .collect()
    }

    fn scalar_policy() -> ExecPolicy {
        ExecPolicy::serial().with_kernel(PlaneKernel::Scalar)
    }

    #[test]
    fn full_decode_is_near_lossless() {
        let coeffs = sample_coeffs(500);
        let enc = LevelEncoding::encode(&coeffs, 32);
        let dec = enc.decode(32);
        let max_abs = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        let quant_step = max_abs / (1u64 << 30) as f64;
        for (a, b) in coeffs.iter().zip(&dec) {
            assert!((a - b).abs() <= quant_step, "err {}", (a - b).abs());
        }
    }

    #[test]
    fn error_row_matches_actual_decode_error() {
        let coeffs = sample_coeffs(200);
        let enc = LevelEncoding::encode(&coeffs, 24);
        for b in 0..=24u32 {
            let dec = enc.decode(b);
            let actual = coeffs.iter().zip(&dec).map(|(a, d)| (a - d).abs()).fold(0.0f64, f64::max);
            let recorded = enc.error_at(b);
            assert!(
                (actual - recorded).abs() < 1e-12 * (1.0 + actual),
                "b={b} actual={actual} recorded={recorded}"
            );
        }
    }

    #[test]
    fn error_row_starts_at_max_abs() {
        let coeffs = vec![-4.0, 1.0, 2.5];
        let enc = LevelEncoding::encode(&coeffs, 16);
        assert_eq!(enc.error_at(0), 4.0);
        assert!(enc.error_at(16) < 4.0 / (1u64 << 13) as f64);
    }

    #[test]
    fn zero_level_is_cheap_and_exact() {
        let coeffs = vec![0.0; 1000];
        let enc = LevelEncoding::encode(&coeffs, 32);
        assert!(enc.total_size() < 1000, "size {}", enc.total_size());
        assert_eq!(enc.decode(5), vec![0.0; 1000]);
        assert_eq!(enc.error_at(0), 0.0);
    }

    #[test]
    fn high_planes_compress_better_than_low_planes() {
        // Coefficients spanning magnitudes: top planes are sparse.
        let coeffs: Vec<f64> = (0..4096)
            .map(|i| {
                let t = i as f64;
                (t * 0.013).sin() * (t * 0.00071).cos()
            })
            .collect();
        let enc = LevelEncoding::encode(&coeffs, 32);
        let high: u64 = (0..4).map(|k| enc.plane_size(k)).sum();
        let low: u64 = (28..32).map(|k| enc.plane_size(k)).sum();
        assert!(high < low, "high={high} low={low}");
    }

    #[test]
    fn partial_decode_error_decreases_with_planes() {
        let coeffs = sample_coeffs(300);
        let enc = LevelEncoding::encode(&coeffs, 32);
        // Sampled strictly on the recorded rows every 4 planes.
        let mut prev = f64::INFINITY;
        for b in (0..=32).step_by(4) {
            let e = enc.error_at(b);
            assert!(e <= prev + 1e-15, "b={b} e={e} prev={prev}");
            prev = e;
        }
    }

    #[test]
    fn single_coefficient_level() {
        let enc = LevelEncoding::encode(&[7.25], 32);
        let dec = enc.decode(32);
        assert!((dec[0] - 7.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_few_planes_rejected() {
        let _ = LevelEncoding::encode(&[1.0], 2);
    }

    #[test]
    fn parallel_encode_is_bit_identical() {
        let coeffs = sample_coeffs(3001);
        let serial = LevelEncoding::encode(&coeffs, 30);
        for exec in [ExecPolicy::with_threads(4), ExecPolicy::with_threads(7)] {
            let par = LevelEncoding::encode_with(&coeffs, 30, &exec);
            assert_eq!(par.to_bytes().unwrap(), serial.to_bytes().unwrap(), "{exec:?}");
            let row_bits =
                |e: &LevelEncoding| e.error_row().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(row_bits(&par), row_bits(&serial), "{exec:?}");
        }
    }

    #[test]
    fn parallel_decode_matches_serial() {
        let coeffs = sample_coeffs(2777);
        let enc = LevelEncoding::encode(&coeffs, 32);
        for b in [0u32, 1, 7, 16, 32] {
            let serial = enc.decode(b);
            let par = enc.decode_with(b, &ExecPolicy::with_threads(4));
            let same = serial.iter().zip(&par).all(|(a, x)| a.to_bits() == x.to_bits());
            assert!(same, "b={b}");
        }
    }

    #[test]
    fn parallel_encode_degenerate_zero_level() {
        let coeffs = vec![0.0; 4096];
        let par = LevelEncoding::encode_with(&coeffs, 32, &ExecPolicy::with_threads(4));
        let serial = LevelEncoding::encode(&coeffs, 32);
        assert_eq!(par.to_bytes().unwrap(), serial.to_bytes().unwrap());
    }

    #[test]
    fn tiled_encode_matches_scalar_oracle() {
        // Counts straddling tile boundaries, including ragged tails.
        for n in [1usize, 63, 64, 65, 127, 128, 200, 1000, 4096, 4100] {
            let coeffs = sample_coeffs(n);
            for b in [3u32, 17, 32, 50] {
                let scalar = LevelEncoding::encode_with(&coeffs, b, &scalar_policy());
                for kernel in [PlaneKernel::Auto, PlaneKernel::Simd, PlaneKernel::Swar] {
                    let tiled = LevelEncoding::encode_with(
                        &coeffs,
                        b,
                        &ExecPolicy::serial().with_kernel(kernel),
                    );
                    assert_eq!(
                        tiled.to_bytes().unwrap(),
                        scalar.to_bytes().unwrap(),
                        "n={n} b={b} {kernel:?}"
                    );
                    let bits = |e: &LevelEncoding| {
                        e.error_row().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                    };
                    assert_eq!(bits(&tiled), bits(&scalar), "n={n} b={b} {kernel:?}");
                }
            }
        }
    }

    #[test]
    fn tiled_decode_matches_scalar_oracle() {
        for n in [1usize, 65, 1000, 4100] {
            let coeffs = sample_coeffs(n);
            let enc = LevelEncoding::encode(&coeffs, 32);
            for b in [0u32, 1, 7, 16, 31, 32] {
                let scalar = enc.decode_with(b, &scalar_policy());
                for kernel in [PlaneKernel::Auto, PlaneKernel::Simd, PlaneKernel::Swar] {
                    let tiled = enc.decode_with(b, &ExecPolicy::serial().with_kernel(kernel));
                    let same = scalar.iter().zip(&tiled).all(|(a, x)| a.to_bits() == x.to_bits());
                    assert!(same, "n={n} b={b} {kernel:?}");
                }
            }
        }
    }

    #[test]
    fn payload_decode_matches_scalar_oracle() {
        let coeffs = sample_coeffs(777);
        let enc = LevelEncoding::encode(&coeffs, 24);
        for p in [0usize, 1, 11, 24] {
            let payloads: Vec<Vec<u8>> =
                (0..p).map(|k| enc.plane_payload(k as u32).to_vec()).collect();
            let scalar = enc.decode_from_payloads_with(&payloads, PlaneKernel::Scalar).unwrap();
            let tiled = enc.decode_from_payloads(&payloads).unwrap();
            let same = scalar.iter().zip(&tiled).all(|(a, x)| a.to_bits() == x.to_bits());
            assert!(same, "p={p}");
        }
    }

    #[test]
    fn new_artifacts_decode_through_scalar_path() {
        // Artifacts encoded by the tiled path must read back identically
        // through the legacy scalar decoder (cross-version compatibility).
        let coeffs = sample_coeffs(1234);
        let tiled = LevelEncoding::encode(&coeffs, 32);
        let scalar_enc = LevelEncoding::encode_with(&coeffs, 32, &scalar_policy());
        assert_eq!(tiled.to_bytes().unwrap(), scalar_enc.to_bytes().unwrap());
        for b in [4u32, 16, 32] {
            let via_scalar = tiled.decode_with(b, &scalar_policy());
            let via_tiled = tiled.decode(b);
            let same = via_scalar.iter().zip(&via_tiled).all(|(a, x)| a.to_bits() == x.to_bits());
            assert!(same, "b={b}");
        }
    }

    #[test]
    fn adversarial_levels_are_kernel_invariant() {
        let mut cases: Vec<Vec<f64>> = vec![
            vec![0.0; 321],                                                  // all-zero planes
            (0..130).map(|i| if i % 2 == 0 { 1.5 } else { -1.5 }).collect(), // alternating sign
            (0..97).map(|i| f64::MIN_POSITIVE * (i as f64 + 1.0)).collect(), // subnormal scale
            vec![5e-324; 66],                                                // actual subnormals
        ];
        let mut nan_laced = sample_coeffs(200);
        nan_laced[3] = f64::NAN;
        nan_laced[77] = f64::NAN;
        cases.push(nan_laced);
        let mut inf_laced = sample_coeffs(100);
        inf_laced[50] = f64::INFINITY;
        cases.push(inf_laced);
        for (i, coeffs) in cases.iter().enumerate() {
            let scalar = LevelEncoding::encode_with(coeffs, 32, &scalar_policy());
            let tiled = LevelEncoding::encode(coeffs, 32);
            assert_eq!(tiled.to_bytes().unwrap(), scalar.to_bytes().unwrap(), "case {i}");
            for b in [0u32, 5, 32] {
                let s = scalar.decode_with(b, &scalar_policy());
                let t = tiled.decode(b);
                let same = s.iter().zip(&t).all(|(a, x)| a.to_bits() == x.to_bits());
                assert!(same, "case {i} b={b}");
            }
        }
    }
}
