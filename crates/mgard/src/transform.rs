//! One-dimensional building blocks of the multilevel transform.
//!
//! A decomposition step splits a line of `m` values into `ceil(m/2)` coarse
//! values (even indices) and `floor(m/2)` detail coefficients (odd indices):
//!
//! 1. **predict** — each odd value is replaced by its deviation from the
//!    linear interpolation of its even neighbours (constant extrapolation at
//!    an even-length line's right boundary);
//! 2. **correct** (L2 mode only) — the coarse values receive the multigrid
//!    correction `z = M_c⁻¹ b` where `M_c` is the coarse-grid hat-function
//!    mass matrix and `b` the restriction of the detail load, making the
//!    coarse line the L2 projection of the fine one (the defining feature of
//!    MGARD's decomposition, and the source of the >1 operator row sums the
//!    paper's error theory is pessimistic about).
//!
//! Both steps are exactly invertible because the correction is recomputable
//! from the stored details alone.
//!
//! Quadrature at truncated boundary supports uses the interior weights; this
//! keeps the transform invertible and only marginally affects projection
//! optimality in the last cell (documented substitution, DESIGN.md §3).

use crate::decompose::TransformMode;

/// Mass-matrix coefficients for coarse hat functions with unit fine spacing
/// (coarse spacing 2): interior diagonal `4/3`, boundary diagonal `2/3`,
/// off-diagonal `1/3`.
const DIAG_INTERIOR: f64 = 4.0 / 3.0;
const DIAG_BOUNDARY: f64 = 2.0 / 3.0;
const OFF_DIAG: f64 = 1.0 / 3.0;

/// Scratch space reused across line transforms to avoid per-line allocation.
#[derive(Debug, Default)]
pub struct LineScratch {
    /// Gathered line values.
    pub line: Vec<f64>,
    /// Load vector / solution for the correction solve.
    b: Vec<f64>,
    /// Thomas-algorithm forward-sweep storage.
    cp: Vec<f64>,
}

impl LineScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Solve the symmetric tridiagonal system `M z = b` in place (`b` becomes
/// `z`) with the Thomas algorithm. `M` is the coarse mass matrix of size
/// `b.len()` described at module level.
fn solve_coarse_mass(b: &mut [f64], cp: &mut Vec<f64>) {
    let n = b.len();
    if n == 0 {
        return;
    }
    if n == 1 {
        // Single coarse node: its hat covers the whole (two-cell) domain.
        b[0] /= DIAG_BOUNDARY;
        return;
    }
    cp.clear();
    cp.resize(n, 0.0);
    let diag = |i: usize| {
        if i == 0 || i == n - 1 {
            DIAG_BOUNDARY
        } else {
            DIAG_INTERIOR
        }
    };
    // Forward sweep.
    cp[0] = OFF_DIAG / diag(0);
    b[0] /= diag(0);
    for i in 1..n {
        let m = diag(i) - OFF_DIAG * cp[i - 1];
        cp[i] = OFF_DIAG / m;
        b[i] = (b[i] - OFF_DIAG * b[i - 1]) / m;
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        b[i] -= cp[i] * b[i + 1];
    }
}

/// Forward transform of one gathered line (`line.len() >= 2`).
pub fn forward_line(line: &mut [f64], mode: TransformMode, scratch: &mut LineScratch) {
    let m = line.len();
    debug_assert!(m >= 2);

    // Predict: odd entries become details.
    for j in (1..m).step_by(2) {
        let pred = if j + 1 < m { 0.5 * (line[j - 1] + line[j + 1]) } else { line[j - 1] };
        line[j] -= pred;
    }

    if mode == TransformMode::L2Projection {
        let n_coarse = m.div_ceil(2);
        let b = &mut scratch.b;
        b.clear();
        b.resize(n_coarse, 0.0);
        // Load vector: each detail contributes weight 1/2 to its two
        // neighbouring coarse hats (interior quadrature everywhere).
        for j in (1..m).step_by(2) {
            let d = line[j];
            b[(j - 1) / 2] += 0.5 * d;
            if j + 1 < m {
                b[j.div_ceil(2)] += 0.5 * d;
            }
        }
        solve_coarse_mass(b, &mut scratch.cp);
        for (jc, z) in b.iter().enumerate() {
            line[2 * jc] += z;
        }
    }
}

/// Inverse of [`forward_line`].
pub fn inverse_line(line: &mut [f64], mode: TransformMode, scratch: &mut LineScratch) {
    let m = line.len();
    debug_assert!(m >= 2);

    if mode == TransformMode::L2Projection {
        let n_coarse = m.div_ceil(2);
        let b = &mut scratch.b;
        b.clear();
        b.resize(n_coarse, 0.0);
        for j in (1..m).step_by(2) {
            let d = line[j];
            b[(j - 1) / 2] += 0.5 * d;
            if j + 1 < m {
                b[j.div_ceil(2)] += 0.5 * d;
            }
        }
        solve_coarse_mass(b, &mut scratch.cp);
        for (jc, z) in b.iter().enumerate() {
            line[2 * jc] -= z;
        }
    }

    // Un-predict.
    for j in (1..m).step_by(2) {
        let pred = if j + 1 < m { 0.5 * (line[j - 1] + line[j + 1]) } else { line[j - 1] };
        line[j] += pred;
    }
}

/// Infinity norm bound of `M_c⁻¹` used by the theory estimator: by weak
/// diagonal dominance the margin is `2/3 - 1/3 = 1/3` at boundary rows, so
/// `‖M_c⁻¹‖_∞ ≤ 3`.
pub const MASS_INVERSE_NORM_BOUND: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(len: usize, mode: TransformMode) {
        let orig: Vec<f64> = (0..len).map(|i| ((i * 37 + 11) % 17) as f64 - 8.0).collect();
        let mut line = orig.clone();
        let mut scratch = LineScratch::new();
        forward_line(&mut line, mode, &mut scratch);
        inverse_line(&mut line, mode, &mut scratch);
        for (a, b) in orig.iter().zip(&line) {
            assert!((a - b).abs() < 1e-12, "len={len} mode={mode:?}");
        }
    }

    #[test]
    fn roundtrip_all_small_lengths() {
        for len in 2..40 {
            roundtrip(len, TransformMode::Interpolation);
            roundtrip(len, TransformMode::L2Projection);
        }
    }

    #[test]
    fn linear_data_has_zero_details() {
        // Linear functions are exactly predicted by linear interpolation.
        let mut line: Vec<f64> = (0..9).map(|i| 2.0 * i as f64 + 1.0).collect();
        let mut scratch = LineScratch::new();
        forward_line(&mut line, TransformMode::Interpolation, &mut scratch);
        for j in (1..9).step_by(2) {
            assert!(line[j].abs() < 1e-12);
        }
        // Coarse values untouched in interpolation mode.
        for j in (0..9).step_by(2) {
            assert_eq!(line[j], 2.0 * j as f64 + 1.0);
        }
    }

    #[test]
    fn l2_mode_moves_coarse_values() {
        let mut line: Vec<f64> = (0..9).map(|i| ((i as f64) * 0.7).sin()).collect();
        let orig = line.clone();
        let mut scratch = LineScratch::new();
        forward_line(&mut line, TransformMode::L2Projection, &mut scratch);
        let moved = (0..9).step_by(2).any(|j| (line[j] - orig[j]).abs() > 1e-9);
        assert!(moved, "correction should perturb coarse values on curved data");
    }

    #[test]
    fn tridiagonal_solve_matches_dense() {
        // Verify the Thomas solver against a brute-force Gaussian
        // elimination for several sizes.
        for n in 1..12usize {
            let diag = |i: usize| {
                if i == 0 || i == n - 1 {
                    DIAG_BOUNDARY
                } else {
                    DIAG_INTERIOR
                }
            };
            let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
            // Dense solve.
            let mut a = vec![vec![0.0; n + 1]; n];
            for i in 0..n {
                a[i][i] = diag(i);
                if i > 0 {
                    a[i][i - 1] = OFF_DIAG;
                }
                if i + 1 < n {
                    a[i][i + 1] = OFF_DIAG;
                }
                a[i][n] = rhs[i];
            }
            for col in 0..n {
                let (upper, lower) = a.split_at_mut(col + 1);
                let prow = &upper[col];
                let p = prow[col];
                for row in lower.iter_mut() {
                    let f = row[col] / p;
                    for (rc, &pc) in row.iter_mut().zip(prow).skip(col) {
                        *rc -= f * pc;
                    }
                }
            }
            let mut dense = vec![0.0; n];
            for r in (0..n).rev() {
                let mut s = a[r][n];
                for c in r + 1..n {
                    s -= a[r][c] * dense[c];
                }
                dense[r] = s / a[r][r];
            }
            // Thomas solve.
            let mut b = rhs.clone();
            let mut cp = Vec::new();
            solve_coarse_mass(&mut b, &mut cp);
            for i in 0..n {
                assert!((b[i] - dense[i]).abs() < 1e-10, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn mass_inverse_norm_bound_holds() {
        // Empirically check ‖M⁻¹‖_∞ ≤ 3 by solving for all unit vectors.
        for n in 2..20usize {
            let mut inv_cols = vec![vec![0.0; n]; n];
            for (j, col) in inv_cols.iter_mut().enumerate() {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                let mut cp = Vec::new();
                solve_coarse_mass(&mut e, &mut cp);
                col.copy_from_slice(&e);
            }
            let mut rowsums = vec![0.0f64; n];
            for col in &inv_cols {
                for (rs, v) in rowsums.iter_mut().zip(col) {
                    *rs += v.abs();
                }
            }
            let max_rowsum = rowsums.into_iter().fold(0.0f64, f64::max);
            assert!(max_rowsum <= MASS_INVERSE_NORM_BOUND + 1e-9, "n={n} norm={max_rowsum}");
        }
    }
}
