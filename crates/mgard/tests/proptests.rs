//! Property tests for the MGARD-style substrate: transform invertibility,
//! error-matrix correctness and the soundness of the theory bound.

use pmr_field::{error::max_abs_error, Field, Shape};
use pmr_mgard::{
    decompose::{Decomposer, TransformMode},
    estimate::{estimate_error, theory_constants},
    CompressConfig, Compressed, ExecPolicy, LevelEncoding, PlaneKernel,
};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (2usize..40).prop_map(Shape::d1),
        (2usize..14, 2usize..14).prop_map(|(a, b)| Shape::d2(a, b)),
        (2usize..8, 2usize..8, 2usize..8).prop_map(|(a, b, c)| Shape::d3(a, b, c)),
    ]
}

fn arb_mode() -> impl Strategy<Value = TransformMode> {
    prop_oneof![Just(TransformMode::Interpolation), Just(TransformMode::L2Projection)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decompose_recompose_identity(
        shape in arb_shape(),
        mode in arb_mode(),
        levels in 1usize..6,
        seed in any::<u64>(),
    ) {
        let orig: Vec<f64> = (0..shape.len())
            .map(|i| {
                let h = (i as u64).wrapping_mul(seed | 1).wrapping_mul(0x9E3779B97F4A7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
            })
            .collect();
        let dec = Decomposer::new(shape, levels, mode);
        let mut data = orig.clone();
        dec.decompose(&mut data);
        dec.recompose(&mut data);
        let err = orig.iter().zip(&data).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        prop_assert!(err < 1e-8, "err={err}");
    }

    #[test]
    fn interleave_partition(shape in arb_shape(), levels in 1usize..6) {
        let dec = Decomposer::new(shape, levels, TransformMode::Interpolation);
        let groups = dec.level_indices();
        prop_assert_eq!(groups.len(), dec.levels());
        let mut seen = vec![false; shape.len()];
        for g in &groups {
            for &i in g {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn error_row_is_exact(
        coeffs in proptest::collection::vec(-1e3f64..1e3, 1..200),
        planes in 4u32..34,
    ) {
        let enc = LevelEncoding::encode(&coeffs, planes);
        for b in [0, planes / 2, planes] {
            let dec = enc.decode(b);
            let actual = coeffs.iter().zip(&dec).map(|(a, d)| (a - d).abs()).fold(0.0f64, f64::max);
            prop_assert!((actual - enc.error_at(b)).abs() <= 1e-9 * (1.0 + actual));
        }
    }

    #[test]
    fn theory_bound_is_sound(
        side in 3usize..10,
        mode in arb_mode(),
        planes_used in 0u32..16,
        seed in any::<u64>(),
    ) {
        let shape = Shape::cube(side);
        let dec = Decomposer::new(shape, 4, mode);
        let orig: Vec<f64> = (0..shape.len())
            .map(|i| {
                let h = (i as u64).wrapping_mul(seed | 1).wrapping_mul(0x2545F4914F6CDD1D);
                ((h >> 12) as f64 / (1u64 << 52) as f64).sin() * 50.0
            })
            .collect();
        let mut data = orig.clone();
        dec.decompose(&mut data);
        let levels: Vec<LevelEncoding> =
            dec.interleave(&data).iter().map(|c| LevelEncoding::encode(c, 16)).collect();
        let constants = theory_constants(&dec);
        let b = vec![planes_used; levels.len()];
        let est = estimate_error(&levels, &constants, &b);

        let truncated: Vec<Vec<f64>> = levels.iter().map(|l| l.decode(planes_used)).collect();
        let mut rec = dec.deinterleave(&truncated);
        dec.recompose(&mut rec);
        let actual = orig.iter().zip(&rec).map(|(a, r)| (a - r).abs()).fold(0.0f64, f64::max);
        prop_assert!(actual <= est * (1.0 + 1e-9) + 1e-12, "actual={actual} est={est}");
    }

    #[test]
    fn chunked_transform_matches_unchunked(
        shape in arb_shape(),
        mode in arb_mode(),
        levels in 1usize..6,
        threads in 2usize..6,
        chunk_lines in 1usize..33,
        seed in any::<u64>(),
    ) {
        let orig: Vec<f64> = (0..shape.len())
            .map(|i| {
                let h = (i as u64).wrapping_mul(seed | 1).wrapping_mul(0x9E3779B97F4A7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
            })
            .collect();
        let dec = Decomposer::new(shape, levels, mode);
        let exec = ExecPolicy { threads, chunk_lines, ..Default::default() };

        let mut serial = orig.clone();
        dec.decompose(&mut serial);
        let mut chunked = orig.clone();
        dec.decompose_with(&mut chunked, &exec);
        prop_assert!(
            serial.iter().zip(&chunked).all(|(a, b)| a.to_bits() == b.to_bits()),
            "chunked decompose diverged from serial"
        );

        let mut back_serial = serial.clone();
        dec.recompose(&mut back_serial);
        let mut back_chunked = chunked;
        dec.recompose_with(&mut back_chunked, &exec);
        prop_assert!(
            back_serial.iter().zip(&back_chunked).all(|(a, b)| a.to_bits() == b.to_bits()),
            "chunked recompose diverged from serial"
        );
    }

    #[test]
    fn chunked_encode_matches_unchunked(
        coeffs in proptest::collection::vec(-1e3f64..1e3, 1..400),
        planes in 4u32..34,
        threads in 2usize..6,
    ) {
        let serial = LevelEncoding::encode(&coeffs, planes);
        let par = LevelEncoding::encode_with(&coeffs, planes, &ExecPolicy::with_threads(threads));
        prop_assert_eq!(par.to_bytes().unwrap(), serial.to_bytes().unwrap());
        let serial_row: Vec<u64> = serial.error_row().iter().map(|v| v.to_bits()).collect();
        let par_row: Vec<u64> = par.error_row().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(par_row, serial_row);
    }

    // --- SIMD/SWAR tile kernels vs the legacy scalar oracle: encode bytes,
    // error rows and every decode prefix must be bit-identical. ---

    #[test]
    fn tiled_kernels_match_scalar_oracle(
        coeffs in proptest::collection::vec(-1e6f64..1e6, 1..500),
        planes in 4u32..34,
        prefix_frac in 0.0f64..=1.0,
    ) {
        let scalar = ExecPolicy::serial().with_kernel(PlaneKernel::Scalar);
        let oracle = LevelEncoding::encode_with(&coeffs, planes, &scalar);
        let b = (f64::from(planes) * prefix_frac) as u32;
        let want: Vec<u64> =
            oracle.decode_with(b, &scalar).iter().map(|v| v.to_bits()).collect();
        for kernel in [PlaneKernel::Auto, PlaneKernel::Simd, PlaneKernel::Swar] {
            let exec = ExecPolicy::serial().with_kernel(kernel);
            let enc = LevelEncoding::encode_with(&coeffs, planes, &exec);
            prop_assert_eq!(enc.to_bytes().unwrap(), oracle.to_bytes().unwrap());
            let row: Vec<u64> = enc.error_row().iter().map(|v| v.to_bits()).collect();
            let oracle_row: Vec<u64> = oracle.error_row().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(row, oracle_row);
            let got: Vec<u64> =
                enc.decode_with(b, &exec).iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn payload_decode_never_panics_on_truncation(
        coeffs in proptest::collection::vec(-1e3f64..1e3, 1..300),
        planes in 4u32..34,
        take in 0usize..40,
        cut in 0usize..4096,
        corrupt in any::<u8>(),
    ) {
        // Truncated, over-long, or bit-flipped plane payloads must come back
        // as Ok or a clean Err through every kernel — never a panic. The
        // bounded decompressor is what makes this total.
        let enc = LevelEncoding::encode(&coeffs, planes);
        let mut payloads: Vec<Vec<u8>> =
            (0..take.min(planes as usize) as u32).map(|k| enc.plane_payload(k).to_vec()).collect();
        if let Some(last) = payloads.last_mut() {
            last.truncate(cut.min(last.len()));
            if let Some(byte) = last.first_mut() {
                *byte ^= corrupt;
            }
        }
        for kernel in [PlaneKernel::Scalar, PlaneKernel::Auto, PlaneKernel::Swar] {
            let _ = enc.decode_from_payloads_with(&payloads, kernel);
        }
    }

    #[test]
    fn payload_prefix_decode_is_kernel_invariant(
        coeffs in proptest::collection::vec(-1e4f64..1e4, 1..300),
        planes in 4u32..34,
        keep_frac in 0.0f64..=1.0,
    ) {
        // A valid strict prefix of plane payloads decodes identically
        // through the scalar assembly and the transposed kernels.
        let enc = LevelEncoding::encode(&coeffs, planes);
        let keep = (f64::from(planes) * keep_frac) as usize;
        let payloads: Vec<Vec<u8>> =
            (0..keep as u32).map(|k| enc.plane_payload(k).to_vec()).collect();
        let want: Vec<u64> = enc
            .decode_from_payloads_with(&payloads, PlaneKernel::Scalar)
            .expect("prefix of a valid artifact decodes")
            .iter().map(|v| v.to_bits()).collect();
        for kernel in [PlaneKernel::Auto, PlaneKernel::Simd, PlaneKernel::Swar] {
            let got: Vec<u64> = enc
                .decode_from_payloads_with(&payloads, kernel)
                .expect("prefix of a valid artifact decodes")
                .iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&got, &want);
        }
    }

    // --- float edge cases through the negabinary bit-plane path. The NaN
    // (deterministic twins of the kernel properties live at the bottom of
    // this file: the offline proptest stub elides `proptest!` bodies, so
    // local runs still need compiled coverage of the same invariants.)
    // policy (documented in `bitplane::LevelEncoding::encode`): any level
    // containing a non-finite value collapses to a zero level. ---

    #[test]
    fn bitplane_roundtrips_signed_zero_and_subnormals(
        base in proptest::collection::vec(-1e3f64..1e3, 1..64),
        planes in 4u32..34,
        edge_idx in 0usize..64,
    ) {
        let mut coeffs = base;
        let n = coeffs.len();
        let edges = [0.0, -0.0, f64::MIN_POSITIVE, -f64::MIN_POSITIVE, 5e-324, -5e-324];
        coeffs[edge_idx % n] = edges[edge_idx % edges.len()];
        let enc = LevelEncoding::encode(&coeffs, planes);
        let dec = enc.decode(planes);
        let actual = coeffs.iter().zip(&dec).map(|(a, d)| (a - d).abs()).fold(0.0f64, f64::max);
        prop_assert!((actual - enc.error_at(planes)).abs() <= 1e-9 * (1.0 + actual));
        prop_assert!(dec.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bitplane_inf_policy_zeroes_the_level(
        base in proptest::collection::vec(-1e3f64..1e3, 1..64),
        planes in 4u32..34,
        edge_idx in 0usize..64,
        negative in any::<bool>(),
    ) {
        let mut coeffs = base;
        let n = coeffs.len();
        coeffs[edge_idx % n] = if negative { f64::NEG_INFINITY } else { f64::INFINITY };
        let enc = LevelEncoding::encode(&coeffs, planes);
        // Infinite max magnitude -> degenerate level: decodes to zeros at
        // every plane count, with a zero error row.
        for b in [0, planes / 2, planes] {
            prop_assert!(enc.decode(b).iter().all(|&v| v == 0.0));
            prop_assert_eq!(enc.error_at(b), 0.0);
        }
        let bytes = enc.to_bytes().unwrap();
        let (back, used) = LevelEncoding::from_bytes(&bytes).expect("degenerate level persists");
        prop_assert_eq!(used, bytes.len());
        prop_assert!(back.decode(planes).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bitplane_nan_site_decodes_to_zero(
        base in proptest::collection::vec(1.0f64..1e3, 2..64),
        planes in 4u32..34,
        edge_idx in 0usize..64,
    ) {
        // NaN among finite values: that site quantizes to 0, decodes to
        // exactly 0.0, and never poisons the error row.
        let mut coeffs = base;
        let n = coeffs.len();
        let idx = edge_idx % n;
        coeffs[idx] = f64::NAN;
        let enc = LevelEncoding::encode(&coeffs, planes);
        let dec = enc.decode(planes);
        prop_assert_eq!(dec[idx], 0.0);
        prop_assert!(dec.iter().all(|v| v.is_finite()));
        prop_assert!(enc.error_row().iter().all(|e| e.is_finite()));
        // The artifact persists and round-trips despite the NaN input.
        let bytes = enc.to_bytes().unwrap();
        let (back, used) = LevelEncoding::from_bytes(&bytes).expect("NaN-laced level persists");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn bitplane_handles_huge_magnitudes(
        scale_exp in 200i32..308,
        planes in 4u32..34,
        seed in any::<u64>(),
    ) {
        // f64::MAX-adjacent magnitudes must not overflow the fixed-point
        // quantizer into non-finite reconstructions.
        let scale = 10f64.powi(scale_exp);
        let coeffs: Vec<f64> = (0..48)
            .map(|i| {
                let h = (i as u64).wrapping_mul(seed | 1).wrapping_mul(0x9E3779B97F4A7C15);
                ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * scale
            })
            .collect();
        let enc = LevelEncoding::encode(&coeffs, planes);
        let dec = enc.decode(planes);
        prop_assert!(dec.iter().all(|v| v.is_finite()));
        let max_abs = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        let quant = max_abs / (1u64 << (planes - 2)) as f64;
        let actual = coeffs.iter().zip(&dec).map(|(a, d)| (a - d).abs()).fold(0.0f64, f64::max);
        prop_assert!(actual <= quant * 1.5, "actual={actual} quant={quant}");
    }

    // --- deserializers never panic: arbitrary and corrupted bytes must be
    // rejected with an error, not unwind or over-allocate. ---

    #[test]
    fn persist_from_bytes_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = pmr_mgard::persist::from_bytes(&data);
        let _ = LevelEncoding::from_bytes(&data);
    }

    #[test]
    fn persist_from_bytes_never_panics_on_mutations(
        seed in any::<u64>(),
        flips in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..16),
    ) {
        // Mutate a genuine artifact: every result is either a clean parse
        // (payload bytes are not checksummed) or a structured error.
        let field = Field::from_fn("m", 0, Shape::cube(5), |x, y, z| {
            let h = ((x + 31 * y + 997 * z) as u64)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x9E3779B97F4A7C15);
            (h >> 11) as f64 / (1u64 << 53) as f64
        });
        let c = Compressed::compress(&field, &CompressConfig { levels: 3, ..Default::default() });
        let mut bytes = pmr_mgard::persist::to_bytes(&c).unwrap();
        for (pos, val) in flips {
            let n = bytes.len();
            bytes[pos % n] ^= val;
        }
        if let Ok(back) = pmr_mgard::persist::from_bytes(&bytes) {
            // Whatever parsed must still be structurally usable.
            let plan = back.plan_full();
            let rec = back.retrieve(&plan);
            prop_assert_eq!(rec.data().len(), back.shape().len());
        }
    }

    #[test]
    fn greedy_plan_monotone_in_bound(seed in any::<u64>()) {
        let shape = Shape::cube(7);
        let field = Field::from_fn("p", 0, shape, |x, y, z| {
            let h = ((x + 31 * y + 997 * z) as u64)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x9E3779B97F4A7C15);
            (h >> 11) as f64 / (1u64 << 53) as f64
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        let mut prev_size = u64::MAX;
        for bound in [1.0, 1e-1, 1e-2, 1e-3, 1e-4] {
            let plan = c.plan_theory(bound);
            let size = c.retrieved_bytes(&plan);
            prop_assert!(size <= c.total_bytes());
            if prev_size != u64::MAX {
                prop_assert!(size >= prev_size, "size must grow as bound tightens");
            }
            prev_size = size;
            // Bound respected by the actual reconstruction whenever the
            // estimator claims success.
            if plan.estimated_error <= bound {
                let rec = c.retrieve(&plan);
                prop_assert!(max_abs_error(field.data(), rec.data()) <= bound);
            }
        }
    }
}

// Deterministic twins of the kernel-differential properties above (the
// offline proptest stub elides `proptest!` bodies; CI runs the randomized
// form with the real crate).
#[test]
fn kernel_identity_and_payload_totality_on_fixed_corpus() {
    let scalar = ExecPolicy::serial().with_kernel(PlaneKernel::Scalar);
    let kernels = [PlaneKernel::Auto, PlaneKernel::Simd, PlaneKernel::Swar];
    let coeffs: Vec<f64> = (0..333).map(|i| ((i as f64) * 0.73).sin() * 1e4 - (i as f64)).collect();
    for planes in [4u32, 13, 33] {
        let oracle = LevelEncoding::encode_with(&coeffs, planes, &scalar);
        for kernel in kernels {
            let exec = ExecPolicy::serial().with_kernel(kernel);
            let enc = LevelEncoding::encode_with(&coeffs, planes, &exec);
            assert_eq!(enc.to_bytes().unwrap(), oracle.to_bytes().unwrap());
            let row: Vec<u64> = enc.error_row().iter().map(|v| v.to_bits()).collect();
            let oracle_row: Vec<u64> = oracle.error_row().iter().map(|v| v.to_bits()).collect();
            assert_eq!(row, oracle_row);
            for b in [0, planes / 2, planes] {
                let got: Vec<u64> = enc.decode_with(b, &exec).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> =
                    oracle.decode_with(b, &scalar).iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "kernel {kernel:?} decode({b}) diverged");
            }
        }

        // Valid prefixes decode identically through every kernel; truncated
        // and bit-flipped payloads return cleanly instead of panicking.
        let enc = LevelEncoding::encode(&coeffs, planes);
        for keep in [0usize, 1, planes as usize / 2, planes as usize] {
            let payloads: Vec<Vec<u8>> =
                (0..keep as u32).map(|k| enc.plane_payload(k).to_vec()).collect();
            let want: Vec<u64> = enc
                .decode_from_payloads_with(&payloads, PlaneKernel::Scalar)
                .expect("prefix of a valid artifact decodes")
                .iter()
                .map(|v| v.to_bits())
                .collect();
            for kernel in kernels {
                let got: Vec<u64> = enc
                    .decode_from_payloads_with(&payloads, kernel)
                    .expect("prefix of a valid artifact decodes")
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(got, want, "payload decode {kernel:?} diverged at keep={keep}");
            }
            if keep == 0 {
                continue;
            }
            let mut mangled = payloads;
            if let Some(last) = mangled.last_mut() {
                let cut = last.len() / 2;
                last.truncate(cut);
                if let Some(byte) = last.first_mut() {
                    *byte ^= 0x5a;
                }
            }
            for kernel in [PlaneKernel::Scalar, PlaneKernel::Auto, PlaneKernel::Swar] {
                let _ = enc.decode_from_payloads_with(&mangled, kernel);
            }
        }
    }
}
