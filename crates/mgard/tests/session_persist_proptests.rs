//! Property tests for progressive sessions, plan refinement and artifact
//! persistence.

use pmr_field::{Field, Shape};
use pmr_mgard::{
    persist, refine_plan, CompressConfig, Compressed, ProgressiveSession, RetrievalPlan,
    TransformMode,
};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = Field> {
    (3usize..8, 3usize..8, 1usize..6, any::<u64>()).prop_map(|(nx, ny, nz, seed)| {
        let shape = Shape::d3(nx, ny, nz);
        Field::from_fn("p", 0, shape, move |x, y, z| {
            let h = ((x + 31 * y + 977 * z) as u64)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x9E3779B97F4A7C15);
            (h >> 11) as f64 / (1u64 << 53) as f64 * 10.0 - 5.0
        })
    })
}

fn arb_config() -> impl Strategy<Value = CompressConfig> {
    (
        2usize..6,
        6u32..24,
        prop_oneof![Just(TransformMode::Interpolation), Just(TransformMode::L2Projection)],
    )
        .prop_map(|(levels, num_planes, mode)| CompressConfig {
            levels,
            num_planes,
            mode,
            ..Default::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn persistence_roundtrip_any_artifact(field in arb_field(), cfg in arb_config()) {
        let c = Compressed::compress(&field, &cfg);
        let rt = persist::from_bytes(&persist::to_bytes(&c).expect("serialize")).expect("roundtrip");
        prop_assert_eq!(rt.num_levels(), c.num_levels());
        let plan = c.plan_theory(c.absolute_bound(1e-3));
        let plan_rt = rt.plan_theory(rt.absolute_bound(1e-3));
        prop_assert_eq!(&plan, &plan_rt);
        let r1 = c.retrieve(&plan);
        let r2 = rt.retrieve(&plan_rt);
        prop_assert_eq!(r1.data(), r2.data());
    }

    #[test]
    fn persistence_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must reject or parse, never panic.
        let _ = persist::from_bytes(&bytes);
    }

    #[test]
    fn persistence_never_panics_on_mutations(
        field in arb_field(),
        flip_at in any::<prop::sample::Index>(),
        new_byte in any::<u8>(),
    ) {
        let c = Compressed::compress(&field, &CompressConfig::default());
        let mut bytes = persist::to_bytes(&c).expect("serialize");
        let idx = flip_at.index(bytes.len());
        bytes[idx] = new_byte;
        if let Ok(rt) = persist::from_bytes(&bytes) {
            // If the mutation survived validation it must still be usable.
            let plan = rt.plan_full();
            let _ = rt.retrieved_bytes(&plan);
        }
    }

    #[test]
    fn session_monotone_and_consistent(
        field in arb_field(),
        bounds in proptest::collection::vec(1e-7f64..1.0, 1..6),
    ) {
        let c = Compressed::compress(&field, &CompressConfig::default());
        let mut session = ProgressiveSession::new(&c);
        let mut prev_planes = vec![0u32; c.num_levels()];
        let mut total = 0u64;
        for &rel in &bounds {
            let delta = session.refine_theory(c.absolute_bound(rel));
            total += delta;
            // Monotone: plane counts never decrease.
            prop_assert!(session
                .planes()
                .iter()
                .zip(&prev_planes)
                .all(|(&now, &before)| now >= before));
            prev_planes = session.planes().to_vec();
        }
        prop_assert_eq!(session.fetched_bytes(), total);
        // Fetched bytes equal a direct fetch of the final plane counts.
        let direct = c.retrieved_bytes(&RetrievalPlan::from_planes(prev_planes));
        prop_assert_eq!(total, direct);
    }

    #[test]
    fn refine_plan_estimate_is_self_consistent(
        field in arb_field(),
        bound_exp in -8f64..0.0,
        start_fill in 0u32..20,
    ) {
        let c = Compressed::compress(&field, &CompressConfig::default());
        let bound = c.absolute_bound(10f64.powf(bound_exp));
        let start = vec![start_fill; c.num_levels()];
        let plan = refine_plan(c.levels(), c.theory_constants(), bound, &start);
        // The reported estimate matches an independent recomputation.
        let est = c.estimate_for(&plan.planes);
        prop_assert!((plan.estimated_error - est).abs() <= 1e-9 * (1.0 + est));
        // And the plan is achievable: bound respected whenever claimed.
        if plan.estimated_error <= bound {
            let rec = c.retrieve(&plan);
            let err = pmr_field::error::max_abs_error(field.data(), rec.data());
            prop_assert!(err <= bound * (1.0 + 1e-12));
        }
    }
}
