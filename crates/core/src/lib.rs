//! The paper's contribution: DNN-based progressive retrieval.
//!
//! Two models replace parts of the MGARD error-control path (paper Fig. 4):
//!
//! * [`dmgard::DMgard`] — **D-MGARD**, a chained multi-output regression
//!   (CMOR) stack of per-level MLPs mapping
//!   `(data features, achieved max error, b_0..b_{l-1}) → b_l`. It bypasses
//!   the error estimator *and* the greedy retriever.
//! * [`emgard::EMgard`] — **E-MGARD**, per-level encoder networks that
//!   predict the mapping constants `C_l` of
//!   `err ≈ Σ_l C_l · Err[l][b_l]`, replacing the single pessimistic theory
//!   constant while keeping MGARD's greedy retriever.
//!
//! [`records`] harvests training data by running the theory-based retriever
//! over the paper's 81 relative error bounds; [`framework`] wraps all three
//! retrieval strategies behind one interface, and [`experiment`] orchestrates
//! the train-on-early / test-on-late evaluation protocol of §IV.

pub mod api;
pub mod dmgard;
pub mod emgard;
pub mod experiment;
pub mod features;
pub mod framework;
pub mod records;
pub mod sweep;
pub mod tolerant;

pub use api::{
    retrieve, Backend, Dataset, RetrievalOutcome, RetrievalRequest, RetrievalTarget, Tolerance,
};
pub use dmgard::{DMgard, DMgardConfig};
pub use emgard::{build_samples_many, EMgard, EMgardConfig};
pub use framework::{
    AnyRetriever, Combined, RetrievalContext, RetrievalSummary, Retriever, Theory,
};
pub use pmr_mgard::{ExecPolicy, PlaneKernel};
pub use records::{collect_records, collect_records_many, standard_rel_bounds, RetrievalRecord};
pub use sweep::{sweep, sweep_strategy, SweepPoint};
#[allow(deprecated)]
pub use tolerant::execute_tolerant;
