//! E-MGARD: learned per-level error-control constants.
//!
//! The theory bound applies one pessimistic constant to every level even
//! though per-level error magnitudes differ wildly (paper Fig. 7). E-MGARD
//! learns a constant per level: an encoder network per coefficient level
//! maps a fixed-size representation of that level's coefficients to `C_l`,
//! and the achieved error is estimated as `err ≈ Σ_l C_l · Err[l][b_l]`
//! (Equation 7). MGARD's greedy retriever then runs unchanged against the
//! learned estimate.
//!
//! **Representation note** (documented substitution, DESIGN.md §3): the
//! paper feeds the raw coefficient level through encoder layers of width
//! 2048/512/128/8. We summarise each level into a 38-dimensional signature
//! (log-magnitude histogram + scale statistics) before the encoder — the
//! same information channel at laptop-scale width; the encoder depth and
//! the softplus-positive constants are preserved.
//!
//! Training minimises a Huber loss between `ln(estimate)` and `ln(actual)`
//! over randomly drawn retrieval plans, because target errors span nine
//! decades.

use pmr_field::{error::max_abs_error, Field};
use pmr_mgard::{Compressed, ExecPolicy, RetrievalPlan};
use pmr_nn::{Activation, Adam, Loss, Matrix, Mlp, Standardizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Width of the per-level signature vector.
pub const SIG_DIM: usize = 38;

const HIST_BINS: usize = 32;
const LOG_FLOOR: f64 = 1e-30;
/// Additive guard inside logarithms during training.
const EPS: f64 = 1e-18;

/// Fixed-size representation of one coefficient level: 6 scale statistics
/// followed by a 32-bin histogram of relative magnitudes
/// (`floor(log2(max/|c|))`, clamped to the bit-plane range).
pub fn level_signature(coeffs: &[f64]) -> Vec<f32> {
    let n = coeffs.len().max(1) as f64;
    let max_abs = coeffs.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
    let mean_abs = coeffs.iter().map(|c| c.abs()).sum::<f64>() / n;
    let mean = coeffs.iter().sum::<f64>() / n;
    let var = coeffs.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n;
    let mut hist = [0f32; HIST_BINS];
    let mut zeros = 0usize;
    if max_abs > 0.0 {
        for &c in coeffs {
            let a = c.abs();
            if a < max_abs * 2f64.powi(-(HIST_BINS as i32)) {
                zeros += 1;
                continue;
            }
            let bin = ((max_abs / a).log2().floor() as usize).min(HIST_BINS - 1);
            hist[bin] += 1.0;
        }
        for h in &mut hist {
            *h /= n as f32;
        }
    } else {
        zeros = coeffs.len();
    }
    let mut sig = Vec::with_capacity(SIG_DIM);
    sig.push((max_abs + LOG_FLOOR).log10() as f32);
    sig.push((mean_abs + LOG_FLOOR).log10() as f32);
    sig.push((var.sqrt() + LOG_FLOOR).log10() as f32);
    sig.push((n).log10() as f32);
    sig.push(zeros as f32 / n as f32);
    sig.push(if max_abs > 0.0 { (mean_abs / max_abs) as f32 } else { 0.0 });
    sig.extend_from_slice(&hist);
    debug_assert_eq!(sig.len(), SIG_DIM);
    sig
}

/// Per-level signatures of a compressed artifact (decodes each level at
/// full precision; in production these 38 floats per level would be stored
/// as metadata at compression time).
pub fn signatures_of(compressed: &Compressed) -> Vec<Vec<f32>> {
    compressed.levels().iter().map(|l| level_signature(&l.decode(l.num_planes()))).collect()
}

/// E-MGARD hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EMgardConfig {
    /// Encoder hidden widths (paper: 2048/512/128/8; scaled default keeps
    /// the depth and the 8-wide latent).
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Huber threshold in natural-log error units.
    pub huber_delta: f32,
    /// Random retrieval plans drawn per compressed artifact when building
    /// training samples.
    pub samples_per_artifact: usize,
    pub seed: u64,
}

impl Default for EMgardConfig {
    fn default() -> Self {
        EMgardConfig {
            hidden: vec![128, 32, 8],
            epochs: 150,
            batch_size: 64,
            lr: 3e-3,
            huber_delta: 1.0,
            samples_per_artifact: 24,
            seed: 23,
        }
    }
}

/// One training observation: the per-level signatures of an artifact, the
/// per-level coefficient errors of a sampled plan, and the actual
/// reconstruction error of that plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSample {
    pub signatures: Vec<Vec<f32>>,
    pub level_errs: Vec<f64>,
    pub actual_err: f64,
}

/// Draw training samples from one `(field, compressed)` pair.
///
/// Plans are mixed: half are theory plans at random bounds (the region the
/// retriever actually visits), half are uniform random plane counts
/// (coverage of the whole plan space).
pub fn build_samples(
    field: &Field,
    compressed: &Compressed,
    cfg: &EMgardConfig,
    seed: u64,
) -> Vec<TrainSample> {
    build_samples_with(field, compressed, cfg, seed, &ExecPolicy::default())
}

/// [`build_samples`] with an explicit execution policy for the plan
/// reconstructions it draws.
pub fn build_samples_with(
    field: &Field,
    compressed: &Compressed,
    cfg: &EMgardConfig,
    seed: u64,
    exec: &ExecPolicy,
) -> Vec<TrainSample> {
    let mut rng = StdRng::seed_from_u64(seed ^ cfg.seed.rotate_left(32));
    let signatures = signatures_of(compressed);
    let nl = compressed.num_levels();
    let b = compressed.num_planes();
    let mut out = Vec::with_capacity(cfg.samples_per_artifact);
    for k in 0..cfg.samples_per_artifact {
        let planes: Vec<u32> = if k % 2 == 0 {
            let rel = 10f64.powf(rng.random_range(-9.0..-0.5));
            let plan = compressed.plan_theory(compressed.absolute_bound(rel));
            // Jitter so the model also sees near-plan neighbourhoods.
            plan.planes
                .iter()
                .map(|&p| {
                    let d = rng.random_range(-2i64..=2);
                    (p as i64 + d).clamp(0, b as i64) as u32
                })
                .collect()
        } else {
            (0..nl).map(|_| rng.random_range(0..=b)).collect()
        };
        let plan = RetrievalPlan::from_planes(planes.clone());
        let opts = pmr_mgard::DecodeOptions::with_exec(*exec);
        let rec = compressed
            .decode_plan(&plan, &opts)
            // lint:allow(panic_path): plane counts are clamped to this artifact's capacity above, so decode_plan cannot fail
            .expect("sampled plane counts are clamped to the artifact's capacity");
        let actual_err = max_abs_error(field.data(), rec.data());
        let level_errs: Vec<f64> =
            compressed.levels().iter().zip(&planes).map(|(l, &p)| l.error_at(p)).collect();
        out.push(TrainSample { signatures: signatures.clone(), level_errs, actual_err });
    }
    out
}

/// Draw training samples from many `(field, compressed, seed)` triples,
/// fanning the snapshots out over worker threads.
///
/// Each worker runs its reconstructions under a serial inner policy —
/// snapshot-level parallelism already saturates the cores, and serial
/// execution is bit-identical to parallel, so the result equals calling
/// [`build_samples`] per snapshot in order.
pub fn build_samples_many(
    items: &[(&Field, &Compressed, u64)],
    cfg: &EMgardConfig,
) -> Vec<Vec<TrainSample>> {
    let threads = ExecPolicy::default().resolved_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(|&(f, c, s)| build_samples(f, c, cfg, s)).collect();
    }
    let mut out: Vec<Option<Vec<TrainSample>>> = (0..items.len()).map(|_| None).collect();
    let slots = parking_lot::Mutex::new(&mut out);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(field, compressed, seed)) = items.get(i) else { break };
                let samples =
                    build_samples_with(field, compressed, cfg, seed, &ExecPolicy::serial());
                slots.lock()[i] = Some(samples);
            });
        }
    });
    let filled: Vec<Vec<TrainSample>> = out.into_iter().flatten().collect();
    assert_eq!(filled.len(), items.len(), "batch worker left a slot unfilled");
    filled
}

/// The trained E-MGARD model: one encoder per coefficient level.
#[derive(Debug, Clone)]
pub struct EMgard {
    encoders: Vec<Mlp>,
    standardizers: Vec<Standardizer>,
}

impl EMgard {
    /// Train the per-level encoders jointly on `samples`.
    ///
    /// Returns the model and the per-epoch mean training loss.
    pub fn train(samples: &[TrainSample], cfg: &EMgardConfig) -> (Self, Vec<f32>) {
        assert!(!samples.is_empty(), "no training samples");
        let nl = samples[0].signatures.len();
        assert!(samples.iter().all(|s| s.signatures.len() == nl && s.level_errs.len() == nl));

        // Fit per-level standardizers over all samples' signatures.
        let standardizers: Vec<Standardizer> = (0..nl)
            .map(|l| {
                let rows: Vec<Vec<f32>> = samples.iter().map(|s| s.signatures[l].clone()).collect();
                Standardizer::fit(&Matrix::from_rows(&rows))
            })
            .collect();

        // Pre-standardised signature rows per level.
        let sig_rows: Vec<Vec<Vec<f32>>> = (0..nl)
            .map(|l| {
                samples
                    .iter()
                    .map(|s| {
                        let mut row = s.signatures[l].clone();
                        standardizers[l].transform_row(&mut row);
                        row
                    })
                    .collect()
            })
            .collect();

        let mut encoders: Vec<Mlp> = (0..nl)
            .map(|l| {
                let mut sizes = vec![SIG_DIM];
                sizes.extend_from_slice(&cfg.hidden);
                sizes.push(1);
                Mlp::new(
                    &sizes,
                    Activation::Relu,
                    Activation::Softplus,
                    cfg.seed.wrapping_add(1000 + l as u64),
                )
            })
            .collect();
        let mut optimizers: Vec<Adam> = (0..nl).map(|_| Adam::new(cfg.lr)).collect();
        let huber = Loss::Huber(cfg.huber_delta);

        let mut history = Vec::with_capacity(cfg.epochs);
        let mut idx: Vec<usize> = (0..samples.len()).collect();
        for epoch in 0..cfg.epochs {
            idx.shuffle(&mut StdRng::seed_from_u64(cfg.seed.wrapping_add(epoch as u64)));
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in idx.chunks(cfg.batch_size) {
                let bs = chunk.len();
                // Forward every level encoder on this batch.
                let mut cs: Vec<Matrix> = Vec::with_capacity(nl);
                for l in 0..nl {
                    let rows: Vec<Vec<f32>> =
                        chunk.iter().map(|&i| sig_rows[l][i].clone()).collect();
                    let x = Matrix::from_rows(&rows);
                    cs.push(encoders[l].forward(&x));
                }
                // Estimate, loss and gradients in log space.
                let mut dlogs = vec![0.0f64; bs];
                let mut batch_loss = 0.0f64;
                let mut est = vec![0.0f64; bs];
                for (bi, &i) in chunk.iter().enumerate() {
                    let s = &samples[i];
                    let mut e = 0.0f64;
                    for (cl, &le) in cs.iter().zip(&s.level_errs) {
                        e += cl.get(bi, 0) as f64 * le;
                    }
                    est[bi] = e;
                    let z = (e + EPS).ln() as f32;
                    let zt = (s.actual_err + EPS).ln() as f32;
                    batch_loss += huber.pointwise(z - zt) as f64;
                    dlogs[bi] = huber.pointwise_grad(z - zt) as f64 / bs as f64;
                }
                epoch_loss += batch_loss / bs as f64;
                batches += 1;
                // Backprop into each encoder: dL/dC_l = dL/dz / (est+eps) * Err_l.
                for l in 0..nl {
                    let grads: Vec<f32> = chunk
                        .iter()
                        .enumerate()
                        .map(|(bi, &i)| {
                            (dlogs[bi] / (est[bi] + EPS) * samples[i].level_errs[l]) as f32
                        })
                        .collect();
                    let g = Matrix::from_vec(bs, 1, grads);
                    encoders[l].zero_grad();
                    encoders[l].backward(&g);
                    optimizers[l].step(&mut encoders[l]);
                }
            }
            history.push((epoch_loss / batches as f64) as f32);
        }
        (EMgard { encoders, standardizers }, history)
    }

    pub fn num_levels(&self) -> usize {
        self.encoders.len()
    }

    /// Predict the per-level mapping constants for an artifact.
    ///
    /// Constants are clamped from above by the theory constants: those are
    /// *proven* upper bounds, so any larger learned value is strictly
    /// wasteful. The clamp guarantees E-MGARD never fetches more than the
    /// original MGARD (the invariant visible in paper Fig. 13).
    ///
    /// Takes `&self`: inference never mutates the encoders, so one trained
    /// model can serve many planner threads concurrently.
    pub fn predict_constants(&self, compressed: &Compressed) -> Vec<f64> {
        assert_eq!(compressed.num_levels(), self.encoders.len(), "level count mismatch");
        signatures_of(compressed)
            .into_iter()
            .zip(compressed.theory_constants())
            .enumerate()
            .map(|(l, (mut sig, &ceiling))| {
                self.standardizers[l].transform_row(&mut sig);
                let c = self.encoders[l].infer_row(&sig)[0] as f64;
                c.clamp(1e-6, ceiling)
            })
            .collect()
    }

    /// Plan a retrieval: learned constants + the original greedy retriever.
    pub fn plan(&self, compressed: &Compressed, abs_bound: f64) -> RetrievalPlan {
        let constants = self.predict_constants(compressed);
        compressed.plan_with_constants(abs_bound, &constants)
    }

    /// Serialize encoders and standardizers.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"PMRE1\0");
        out.extend_from_slice(&(self.encoders.len() as u32).to_le_bytes());
        for (m, s) in self.encoders.iter().zip(&self.standardizers) {
            let mb = m.to_bytes();
            let sb = s.to_bytes();
            out.extend_from_slice(&(mb.len() as u64).to_le_bytes());
            out.extend_from_slice(&mb);
            out.extend_from_slice(&(sb.len() as u64).to_le_bytes());
            out.extend_from_slice(&sb);
        }
        out
    }

    /// Inverse of [`EMgard::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        if take(&mut pos, 6)? != b"PMRE1\0" {
            return None;
        }
        let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        if n == 0 || n > 64 {
            return None;
        }
        let mut encoders = Vec::with_capacity(n);
        let mut standardizers = Vec::with_capacity(n);
        for _ in 0..n {
            let ml = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize;
            encoders.push(Mlp::from_bytes(take(&mut pos, ml)?)?);
            let sl = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize;
            standardizers.push(Standardizer::from_bytes(take(&mut pos, sl)?)?);
        }
        if pos != buf.len() {
            return None;
        }
        Some(EMgard { encoders, standardizers })
    }

    /// Write the serialized model to `path`, creating parent directories.
    pub fn save(&self, path: &std::path::Path) -> Result<(), pmr_error::PmrError> {
        let io_err = |e: std::io::Error| pmr_error::PmrError::io_at(path, e);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
        std::fs::write(path, self.to_bytes()).map_err(io_err)
    }

    /// Read a model previously written with [`EMgard::save`].
    pub fn load(path: &std::path::Path) -> Result<Self, pmr_error::PmrError> {
        let buf = std::fs::read(path).map_err(|e| pmr_error::PmrError::io_at(path, e))?;
        EMgard::from_bytes(&buf).ok_or_else(|| {
            pmr_error::PmrError::malformed("emgard model", "corrupt or truncated model file")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_field::Shape;
    use pmr_mgard::CompressConfig;

    fn pair(t: usize) -> (Field, Compressed) {
        let field = Field::from_fn("e", t, Shape::cube(9), move |x, y, z| {
            ((x as f64) * (0.4 + 0.02 * t as f64)).sin() * ((y as f64) * 0.3).cos()
                + (z as f64) * 0.01
        });
        let cfg = CompressConfig { levels: 3, num_planes: 16, ..Default::default() };
        let c = Compressed::compress(&field, &cfg);
        (field, c)
    }

    fn fast_cfg() -> EMgardConfig {
        EMgardConfig {
            epochs: 60,
            samples_per_artifact: 16,
            hidden: vec![32, 8],
            ..Default::default()
        }
    }

    #[test]
    fn signature_shape_and_finiteness() {
        let sig = level_signature(&[0.5, -1.25, 3.0, 0.0, 1e-9]);
        assert_eq!(sig.len(), SIG_DIM);
        assert!(sig.iter().all(|v| v.is_finite()));
        // Histogram sums to <= 1 (zeros excluded).
        let hist_sum: f32 = sig[6..].iter().sum();
        assert!(hist_sum <= 1.0 + 1e-5);
    }

    #[test]
    fn signature_of_zero_level() {
        let sig = level_signature(&[0.0; 64]);
        assert!(sig.iter().all(|v| v.is_finite()));
        assert_eq!(sig[4], 1.0); // all zero fraction
    }

    #[test]
    fn training_reduces_loss_and_plans_respect_greedy() {
        let cfg = fast_cfg();
        let mut samples = Vec::new();
        for t in 0..3 {
            let (f, c) = pair(t);
            samples.extend(build_samples(&f, &c, &cfg, t as u64));
        }
        let (model, history) = EMgard::train(&samples, &cfg);
        assert!(history.last().unwrap() < &history[0], "loss did not decrease: {history:?}");

        let (field, c) = pair(4);
        let constants = model.predict_constants(&c);
        assert_eq!(constants.len(), 3);
        assert!(constants.iter().all(|&v| v > 0.0));

        // The learned plan reads no more than the theory plan.
        let bound = c.absolute_bound(1e-3);
        let learned = model.plan(&c, bound);
        let theory = c.plan_theory(bound);
        assert!(c.retrieved_bytes(&learned) <= c.retrieved_bytes(&theory));
        let _ = field;
    }

    #[test]
    fn persistence_roundtrip() {
        let cfg = fast_cfg();
        let (f, c) = pair(0);
        let samples = build_samples(&f, &c, &cfg, 0);
        let (model, _) = EMgard::train(&samples, &cfg);
        let rt = EMgard::from_bytes(&model.to_bytes()).expect("roundtrip");
        let a = model.predict_constants(&c);
        let b = rt.predict_constants(&c);
        assert_eq!(a, b);
        assert!(EMgard::from_bytes(b"garbage").is_none());
    }

    /// Finite-difference check of the custom training gradient: the loss is
    /// `Huber(ln(Σ C_l·Err_l + ε) − ln(actual + ε))` and the hand-derived
    /// gradient w.r.t. `C_l` is `huber'(Δz) / (est + ε) · Err_l`.
    #[test]
    fn training_gradient_matches_finite_difference() {
        let errs = [0.3f64, 0.05, 0.8];
        let actual = 0.2f64;
        let huber = pmr_nn::Loss::Huber(1.0);
        let loss_of = |cs: &[f64]| -> f64 {
            let est: f64 = cs.iter().zip(&errs).map(|(c, e)| c * e).sum();
            let z = (est + EPS).ln() as f32;
            let zt = (actual + EPS).ln() as f32;
            huber.pointwise(z - zt) as f64
        };
        let cs = [1.4f64, 0.6, 2.3];
        let est: f64 = cs.iter().zip(&errs).map(|(c, e)| c * e).sum();
        let z = (est + EPS).ln() as f32;
        let zt = (actual + EPS).ln() as f32;
        let dlog = huber.pointwise_grad(z - zt) as f64;
        for l in 0..3 {
            let analytic = dlog / (est + EPS) * errs[l];
            // The implementation computes ln() in f32, so tiny steps drown
            // in rounding; a larger step with a loose tolerance is the
            // right check for this piecewise-smooth region.
            let h = 1e-2;
            let mut plus = cs;
            plus[l] += h;
            let mut minus = cs;
            minus[l] -= h;
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * h);
            assert!(
                (fd - analytic).abs() < 5e-2 * (1.0 + analytic.abs()),
                "l={l} fd={fd} analytic={analytic}"
            );
        }
    }

    #[test]
    fn build_samples_many_matches_sequential() {
        let cfg = fast_cfg();
        let pairs: Vec<(Field, Compressed)> = (0..3).map(pair).collect();
        let items: Vec<(&Field, &Compressed, u64)> =
            pairs.iter().enumerate().map(|(i, (f, c))| (f, c, i as u64)).collect();
        let batched = build_samples_many(&items, &cfg);
        assert_eq!(batched.len(), 3);
        for (i, (f, c)) in pairs.iter().enumerate() {
            assert_eq!(batched[i], build_samples(f, c, &cfg, i as u64));
        }
    }

    #[test]
    fn build_samples_are_consistent() {
        let cfg = fast_cfg();
        let (f, c) = pair(1);
        let samples = build_samples(&f, &c, &cfg, 9);
        assert_eq!(samples.len(), cfg.samples_per_artifact);
        for s in &samples {
            assert_eq!(s.level_errs.len(), c.num_levels());
            assert!(s.actual_err.is_finite());
            // Per-level coefficient error should never be below the actual
            // reconstruction error by more than the transform can amplify —
            // weak sanity: both finite and non-negative.
            assert!(s.level_errs.iter().all(|&e| e >= 0.0));
        }
    }
}
