//! The unified retrieval framework (paper Fig. 4): one interface over the
//! theory-based baseline and the two DNN retrievers.

use crate::dmgard::DMgard;
use crate::emgard::EMgard;
use pmr_field::{error, Field};
use pmr_mgard::{Compressed, RetrievalPlan};
use serde::{Deserialize, Serialize};

/// Everything a retriever may consult when planning: the compressed
/// artifact and the snapshot's base feature vector (stored as metadata at
/// compression time in a production deployment).
pub struct RetrievalContext<'a> {
    pub compressed: &'a Compressed,
    pub features: &'a [f32],
}

/// A retrieval strategy.
pub enum AnyRetriever {
    /// Original MGARD: theory constants + greedy retriever.
    Theory,
    /// D-MGARD: predicted plane counts, no estimator, no greedy search.
    DMgard(DMgard),
    /// E-MGARD: learned constants + the original greedy retriever.
    EMgard(EMgard),
    /// Combined (paper future work): D-MGARD initialises the plan,
    /// E-MGARD's learned estimate grows/sheds planes to meet the bound.
    Combined(DMgard, EMgard),
}

impl AnyRetriever {
    pub fn name(&self) -> &'static str {
        match self {
            AnyRetriever::Theory => "MGARD",
            AnyRetriever::DMgard(_) => "D-MGARD",
            AnyRetriever::EMgard(_) => "E-MGARD",
            AnyRetriever::Combined(..) => "DE-MGARD",
        }
    }

    /// Produce the plane counts for a requested absolute error bound.
    pub fn plan(&mut self, ctx: &RetrievalContext<'_>, abs_bound: f64) -> RetrievalPlan {
        match self {
            AnyRetriever::Theory => ctx.compressed.plan_theory(abs_bound),
            AnyRetriever::DMgard(m) => m.predict_plan(ctx.features, abs_bound),
            AnyRetriever::EMgard(m) => m.plan(ctx.compressed, abs_bound),
            AnyRetriever::Combined(d, e) => {
                let initial = d.predict(ctx.features, abs_bound);
                let constants = e.predict_constants(ctx.compressed);
                pmr_mgard::retrieve::refine_plan(
                    ctx.compressed.levels(),
                    &constants,
                    abs_bound,
                    &initial,
                )
            }
        }
    }
}

/// The measured result of executing a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalOutcome {
    pub planes: Vec<u32>,
    /// Bytes fetched (Equation 1).
    pub bytes: u64,
    /// Actual max absolute error of the reconstruction.
    pub achieved_err: f64,
    /// PSNR of the reconstruction.
    pub psnr: f64,
}

/// Execute `plan` against `compressed` and measure against `original`.
pub fn execute(original: &Field, compressed: &Compressed, plan: &RetrievalPlan) -> RetrievalOutcome {
    let rec = compressed.retrieve(plan);
    RetrievalOutcome {
        planes: plan.planes.clone(),
        bytes: compressed.retrieved_bytes(plan),
        achieved_err: error::max_abs_error(original.data(), rec.data()),
        psnr: error::psnr(original.data(), rec.data()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::retrieval_features;
    use pmr_field::Shape;
    use pmr_mgard::CompressConfig;

    #[test]
    fn theory_retriever_end_to_end() {
        let field = Field::from_fn("t", 0, Shape::cube(9), |x, y, _| {
            ((x as f64) * 0.7).sin() + (y as f64) * 0.05
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        let feats = retrieval_features(&field, &c);
        let ctx = RetrievalContext { compressed: &c, features: &feats };
        let mut r = AnyRetriever::Theory;
        assert_eq!(r.name(), "MGARD");
        let bound = c.absolute_bound(1e-3);
        let plan = r.plan(&ctx, bound);
        let outcome = execute(&field, &c, &plan);
        assert!(outcome.achieved_err <= bound);
        assert!(outcome.bytes > 0);
        assert!(outcome.psnr > 20.0);
    }
}
