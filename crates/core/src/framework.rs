//! The unified retrieval framework (paper Fig. 4): one interface over the
//! theory-based baseline and the two DNN retrievers.

use crate::dmgard::DMgard;
use crate::emgard::EMgard;
use pmr_error::PmrError;
use pmr_field::{error, Field};
use pmr_mgard::{Compressed, RetrievalPlan};
use serde::{Deserialize, Serialize};

/// Everything a retriever may consult when planning: the compressed
/// artifact and the snapshot's base feature vector (stored as metadata at
/// compression time in a production deployment).
pub struct RetrievalContext<'a> {
    pub compressed: &'a Compressed,
    pub features: &'a [f32],
}

/// A retrieval strategy: given the retrieval context and an absolute error
/// bound, choose the per-level plane counts to fetch.
///
/// Planning takes `&self` — no retriever mutates itself while planning —
/// and the `Send + Sync` supertraits let one trained retriever be shared
/// across worker threads (e.g. the batch APIs in [`crate::experiment`]).
pub trait Retriever: Send + Sync {
    /// Human-readable strategy name (used in reports and benches).
    fn name(&self) -> &str;

    /// Produce the plane counts for a requested absolute error bound.
    fn plan(&self, ctx: &RetrievalContext<'_>, abs_bound: f64) -> RetrievalPlan;
}

/// Original MGARD: theory constants + greedy retriever. Stateless.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Theory;

impl Retriever for Theory {
    fn name(&self) -> &str {
        "MGARD"
    }

    fn plan(&self, ctx: &RetrievalContext<'_>, abs_bound: f64) -> RetrievalPlan {
        ctx.compressed.plan_theory(abs_bound)
    }
}

impl Retriever for DMgard {
    fn name(&self) -> &str {
        "D-MGARD"
    }

    fn plan(&self, ctx: &RetrievalContext<'_>, abs_bound: f64) -> RetrievalPlan {
        self.predict_plan(ctx.features, abs_bound)
    }
}

impl Retriever for EMgard {
    fn name(&self) -> &str {
        "E-MGARD"
    }

    fn plan(&self, ctx: &RetrievalContext<'_>, abs_bound: f64) -> RetrievalPlan {
        // The inherent method (learned constants + greedy retriever).
        EMgard::plan(self, ctx.compressed, abs_bound)
    }
}

/// Combined retriever (paper future work): D-MGARD initialises the plan,
/// E-MGARD's learned estimate grows/sheds planes to meet the bound.
#[derive(Debug, Clone)]
pub struct Combined {
    pub dmgard: DMgard,
    pub emgard: EMgard,
}

impl Retriever for Combined {
    fn name(&self) -> &str {
        "DE-MGARD"
    }

    fn plan(&self, ctx: &RetrievalContext<'_>, abs_bound: f64) -> RetrievalPlan {
        let initial = self.dmgard.predict(ctx.features, abs_bound);
        let constants = self.emgard.predict_constants(ctx.compressed);
        pmr_mgard::retrieve::refine_plan(ctx.compressed.levels(), &constants, abs_bound, &initial)
    }
}

/// A retrieval strategy chosen at runtime: a thin enum adapter over the
/// [`Retriever`] implementations.
pub enum AnyRetriever {
    /// Original MGARD: theory constants + greedy retriever.
    Theory,
    /// D-MGARD: predicted plane counts, no estimator, no greedy search.
    DMgard(DMgard),
    /// E-MGARD: learned constants + the original greedy retriever.
    EMgard(EMgard),
    /// The combined D+E retriever (see [`Combined`]).
    Combined(Combined),
}

impl Retriever for AnyRetriever {
    fn name(&self) -> &str {
        match self {
            AnyRetriever::Theory => Theory.name(),
            AnyRetriever::DMgard(m) => Retriever::name(m),
            AnyRetriever::EMgard(m) => Retriever::name(m),
            AnyRetriever::Combined(c) => c.name(),
        }
    }

    fn plan(&self, ctx: &RetrievalContext<'_>, abs_bound: f64) -> RetrievalPlan {
        match self {
            AnyRetriever::Theory => Theory.plan(ctx, abs_bound),
            AnyRetriever::DMgard(m) => Retriever::plan(m, ctx, abs_bound),
            AnyRetriever::EMgard(m) => Retriever::plan(m, ctx, abs_bound),
            AnyRetriever::Combined(c) => c.plan(ctx, abs_bound),
        }
    }
}

/// The measured summary of executing a plan (planes, bytes, error, PSNR).
///
/// This is the row type persisted in experiment records; for the full
/// retrieval result (field, stats, degradation) see
/// [`crate::api::RetrievalOutcome`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalSummary {
    pub planes: Vec<u32>,
    /// Bytes fetched (Equation 1).
    pub bytes: u64,
    /// Actual max absolute error of the reconstruction.
    pub achieved_err: f64,
    /// PSNR of the reconstruction.
    pub psnr: f64,
}

/// Old name of [`RetrievalSummary`], before `RetrievalOutcome` became the
/// result type of the unified [`crate::api::retrieve`] entry point.
#[deprecated(
    since = "0.6.0",
    note = "renamed to RetrievalSummary; the unified \
    API's result type is pmr_core::api::RetrievalOutcome"
)]
pub type RetrievalOutcome = RetrievalSummary;

/// Decode `plan` and measure against `original` (internal, non-deprecated
/// core of the legacy `execute` shim and the sweep/record paths).
pub(crate) fn measure_plan(
    original: &Field,
    compressed: &Compressed,
    plan: &RetrievalPlan,
) -> Result<RetrievalSummary, PmrError> {
    if plan.planes.len() != compressed.num_levels() {
        return Err(PmrError::invalid_config(format!(
            "plan has {} levels but the artifact has {}",
            plan.planes.len(),
            compressed.num_levels()
        )));
    }
    if original.shape() != compressed.shape() {
        return Err(PmrError::invalid_config(format!(
            "original field shape {:?} does not match artifact shape {:?}",
            original.shape(),
            compressed.shape()
        )));
    }
    let field = compressed.decode_plan(plan, &pmr_mgard::DecodeOptions::default())?;
    Ok(RetrievalSummary {
        planes: plan.planes.clone(),
        bytes: compressed.retrieved_bytes(plan),
        achieved_err: error::max_abs_error(original.data(), field.data()),
        psnr: error::psnr(original.data(), field.data()),
    })
}

/// Execute `plan` against `compressed` and measure against `original`.
///
/// Fails when the plan does not match the artifact (wrong level count) or
/// the original does not match the artifact's shape.
#[deprecated(
    since = "0.6.0",
    note = "use pmr_core::api::retrieve with \
    RetrievalRequest::plane_set(plan.planes).measured() instead"
)]
pub fn execute(
    original: &Field,
    compressed: &Compressed,
    plan: &RetrievalPlan,
) -> Result<RetrievalSummary, PmrError> {
    measure_plan(original, compressed, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::retrieval_features;
    use pmr_field::Shape;
    use pmr_mgard::CompressConfig;

    #[test]
    fn theory_retriever_end_to_end() {
        let field = Field::from_fn("t", 0, Shape::cube(9), |x, y, _| {
            ((x as f64) * 0.7).sin() + (y as f64) * 0.05
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        let feats = retrieval_features(&field, &c);
        let ctx = RetrievalContext { compressed: &c, features: &feats };
        let r = AnyRetriever::Theory;
        assert_eq!(r.name(), "MGARD");
        let bound = c.absolute_bound(1e-3);
        let plan = r.plan(&ctx, bound);
        let outcome = measure_plan(&field, &c, &plan).unwrap();
        assert!(outcome.achieved_err <= bound);
        assert!(outcome.bytes > 0);
        assert!(outcome.psnr > 20.0);
    }

    #[test]
    fn retrievers_are_sync_shareable() {
        fn assert_retriever<T: Retriever>() {}
        assert_retriever::<Theory>();
        assert_retriever::<DMgard>();
        assert_retriever::<EMgard>();
        assert_retriever::<Combined>();
        assert_retriever::<AnyRetriever>();

        // Planning through a shared reference from several threads.
        let field = Field::from_fn("t", 0, Shape::cube(9), |x, y, _| {
            ((x as f64) * 0.7).sin() + (y as f64) * 0.05
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        let feats = retrieval_features(&field, &c);
        let r: &dyn Retriever = &Theory;
        let bound = c.absolute_bound(1e-3);
        let plans: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let ctx = RetrievalContext { compressed: &c, features: &feats };
                        r.plan(&ctx, bound).planes
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("planner thread")).collect()
        });
        assert!(plans.windows(2).all(|w| w[0] == w[1]));
    }
}
