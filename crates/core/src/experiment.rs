//! Experiment orchestration: the paper's train-on-early / test-on-late
//! protocol (§IV-A4) and the three-way retrieval comparison behind
//! Figs. 1, 2, 12 and 13.

use crate::dmgard::{DMgard, DMgardConfig};
use crate::emgard::{build_samples_many, EMgard, EMgardConfig, TrainSample};
use crate::features;
use crate::framework::{measure_plan, RetrievalSummary};
use crate::records::{collect_records_many, RetrievalRecord};
use pmr_error::PmrError;
use pmr_field::Field;
use pmr_mgard::{CompressConfig, Compressed};
use serde::{Deserialize, Serialize};

/// Configuration of one end-to-end experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    pub compress: CompressConfig,
    pub dmgard: DMgardConfig,
    pub emgard: EMgardConfig,
    /// Relative bounds used when harvesting D-MGARD training records.
    pub train_bounds: Vec<f64>,
}

impl ExperimentConfig {
    /// Paper-style defaults.
    pub fn paper_defaults() -> Self {
        ExperimentConfig {
            compress: CompressConfig::default(),
            dmgard: DMgardConfig::default(),
            emgard: EMgardConfig::default(),
            train_bounds: crate::records::standard_rel_bounds(),
        }
    }
}

/// Both trained models plus the compression parameters they assume.
pub struct TrainedModels {
    pub dmgard: DMgard,
    pub emgard: EMgard,
    pub num_levels: usize,
    pub num_planes: u32,
}

impl TrainedModels {
    /// The combined retriever — the paper's closing future-work item:
    /// D-MGARD supplies the initial plane counts, E-MGARD's learned
    /// constants check and refine them (grow until the learned estimate
    /// meets the bound, then shed planes the estimate shows to be
    /// unnecessary). Recovers most of D-MGARD's bound violations while
    /// keeping learned-retriever savings.
    pub fn plan_combined(
        &self,
        compressed: &Compressed,
        features: &[f32],
        abs_bound: f64,
    ) -> pmr_mgard::RetrievalPlan {
        let initial = self.dmgard.predict(features, abs_bound);
        let constants = self.emgard.predict_constants(compressed);
        pmr_mgard::retrieve::refine_plan(compressed.levels(), &constants, abs_bound, &initial)
    }
}

/// Train D-MGARD and E-MGARD from a stream of training snapshots.
///
/// `fields` yields the training snapshots (paper: the first half of the
/// timesteps of one field). Each snapshot is compressed once; D-MGARD
/// records and E-MGARD samples are harvested from the same artifact.
pub fn train_models(
    fields: impl IntoIterator<Item = Field>,
    cfg: &ExperimentConfig,
) -> (TrainedModels, Vec<RetrievalRecord>) {
    let fields: Vec<Field> = fields.into_iter().collect();
    assert!(!fields.is_empty(), "no training snapshots supplied");

    // Harvesting (compress + sweep bounds + sample plans) dominates
    // wall-clock; each stage fans out over the snapshots through the batch
    // APIs, which are bit-identical to their sequential counterparts.
    let artifacts = Compressed::compress_many(&fields, &cfg.compress);
    let rec_items: Vec<(&Field, &Compressed)> = fields.iter().zip(&artifacts).collect();
    let records: Vec<RetrievalRecord> =
        collect_records_many(&rec_items, &cfg.train_bounds).into_iter().flatten().collect();
    let sample_items: Vec<(&Field, &Compressed, u64)> =
        fields.iter().zip(&artifacts).map(|(f, c)| (f, c, f.timestep() as u64)).collect();
    let esamples: Vec<TrainSample> =
        build_samples_many(&sample_items, &cfg.emgard).into_iter().flatten().collect();

    let num_levels = artifacts[0].num_levels();
    let num_planes = artifacts[0].num_planes();
    let (dmgard, _) = DMgard::train(&records, num_levels, num_planes, &cfg.dmgard);
    let (emgard, _) = EMgard::train(&esamples, &cfg.emgard);
    (TrainedModels { dmgard, emgard, num_levels, num_planes }, records)
}

/// One row of the three-way comparison at a single bound on a single
/// snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    pub field_name: String,
    pub timestep: usize,
    pub rel_bound: f64,
    pub abs_bound: f64,
    pub theory: RetrievalSummary,
    pub dmgard: RetrievalSummary,
    pub emgard: RetrievalSummary,
    /// The combined D+E retriever (extension; see
    /// [`TrainedModels::plan_combined`]).
    pub combined: RetrievalSummary,
}

impl ComparisonRow {
    /// Saved retrieval fraction of D-MGARD vs the original (Equation 8).
    pub fn saving_d(&self) -> f64 {
        saving(self.theory.bytes, self.dmgard.bytes)
    }

    /// Saved retrieval fraction of E-MGARD vs the original (Equation 8).
    pub fn saving_e(&self) -> f64 {
        saving(self.theory.bytes, self.emgard.bytes)
    }

    /// Saved retrieval fraction of the combined retriever (Equation 8).
    pub fn saving_c(&self) -> f64 {
        saving(self.theory.bytes, self.combined.bytes)
    }
}

/// `|D_mgard − D_new| / D_mgard` (Equation 8).
pub fn saving(theory_bytes: u64, new_bytes: u64) -> f64 {
    if theory_bytes == 0 {
        return 0.0;
    }
    (theory_bytes as f64 - new_bytes as f64).abs() / theory_bytes as f64
}

/// Run all three retrievers on one snapshot over `rel_bounds`.
///
/// Fails when a model produces a plan incompatible with the artifact
/// (e.g. trained for a different level count).
pub fn compare_on_field(
    field: &Field,
    models: &TrainedModels,
    cfg: &ExperimentConfig,
    rel_bounds: &[f64],
) -> Result<Vec<ComparisonRow>, PmrError> {
    let compressed = Compressed::compress(field, &cfg.compress);
    let feats = features::retrieval_features(field, &compressed);
    // E-MGARD constants depend only on the artifact, not the bound.
    let constants = models.emgard.predict_constants(&compressed);
    rel_bounds
        .iter()
        .map(|&rel| {
            let abs = compressed.absolute_bound(rel);
            let tplan = compressed.plan_theory(abs);
            let dplan = models.dmgard.predict_plan(&feats, abs);
            let eplan = compressed.plan_with_constants(abs, &constants);
            let cplan = pmr_mgard::retrieve::refine_plan(
                compressed.levels(),
                &constants,
                abs,
                &dplan.planes,
            );
            Ok(ComparisonRow {
                field_name: field.name().to_string(),
                timestep: field.timestep(),
                rel_bound: rel,
                abs_bound: abs,
                theory: measure_plan(field, &compressed, &tplan)?,
                dmgard: measure_plan(field, &compressed, &dplan)?,
                emgard: measure_plan(field, &compressed, &eplan)?,
                combined: measure_plan(field, &compressed, &cplan)?,
            })
        })
        .collect()
}

/// Per-level signed prediction errors (`predicted − actual`) of D-MGARD on
/// a set of records — the data behind Figs. 9–11.
pub fn dmgard_prediction_errors(records: &[RetrievalRecord], model: &DMgard) -> Vec<Vec<i64>> {
    let nl = model.num_levels();
    let mut per_level: Vec<Vec<i64>> = vec![Vec::with_capacity(records.len()); nl];
    for r in records {
        let pred = model.predict(&r.features, r.achieved_err);
        for (l, (&p, &a)) in pred.iter().zip(&r.planes).enumerate() {
            per_level[l].push(p as i64 - a as i64);
        }
    }
    per_level
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_field::Shape;
    use pmr_nn::TrainConfig;

    fn snapshot(t: usize) -> Field {
        Field::from_fn("x", t, Shape::cube(9), move |x, y, z| {
            ((x as f64) * (0.4 + 0.03 * t as f64)).sin()
                + ((y as f64) * 0.25).cos() * 0.5
                + (z as f64) * 0.02
        })
    }

    fn fast_experiment() -> ExperimentConfig {
        ExperimentConfig {
            compress: CompressConfig { levels: 3, num_planes: 16, ..Default::default() },
            dmgard: DMgardConfig {
                hidden: vec![24, 24],
                train: TrainConfig { epochs: 50, batch_size: 32, lr: 3e-3, ..Default::default() },
                ..Default::default()
            },
            emgard: EMgardConfig {
                epochs: 50,
                samples_per_artifact: 12,
                hidden: vec![32, 8],
                ..Default::default()
            },
            train_bounds: vec![1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
        }
    }

    #[test]
    fn end_to_end_pipeline() {
        let cfg = fast_experiment();
        let (models, records) = train_models((0..3).map(snapshot), &cfg);
        assert_eq!(records.len(), 3 * cfg.train_bounds.len());

        // Evaluate on an unseen later snapshot.
        let test = snapshot(4);
        let rows = compare_on_field(&test, &models, &cfg, &[1e-4, 1e-2]).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // Theory always respects the bound.
            assert!(row.theory.achieved_err <= row.abs_bound);
            // E-MGARD reads no more than the theory baseline.
            assert!(row.emgard.bytes <= row.theory.bytes, "E read more than theory");
            assert!(row.saving_e() >= 0.0);
            assert!(row.saving_d() >= 0.0);
            // The combined retriever's plan satisfies E-MGARD's estimate,
            // so its achieved error tracks the bound like E-MGARD's.
            assert!(row.combined.bytes > 0);
            assert!(row.combined.achieved_err.is_finite());
        }

        // plan_combined equals the refine primitive applied to D's plan.
        let compressed = Compressed::compress(&test, &cfg.compress);
        let feats = crate::features::retrieval_features(&test, &compressed);
        let abs = compressed.absolute_bound(1e-3);
        let direct = models.plan_combined(&compressed, &feats, abs);
        let initial = models.dmgard.predict(&feats, abs);
        let constants = models.emgard.predict_constants(&compressed);
        let manual =
            pmr_mgard::retrieve::refine_plan(compressed.levels(), &constants, abs, &initial);
        assert_eq!(direct.planes, manual.planes);

        // Prediction errors are small-ish on the training records.
        let per_level = dmgard_prediction_errors(&records, &models.dmgard);
        assert_eq!(per_level.len(), models.num_levels);
        let mean_abs: f64 =
            per_level.iter().flat_map(|v| v.iter().map(|e| e.abs() as f64)).sum::<f64>()
                / (records.len() * models.num_levels) as f64;
        assert!(mean_abs < 4.0, "mean abs prediction error {mean_abs}");
    }

    #[test]
    fn saving_formula() {
        assert_eq!(saving(100, 60), 0.4);
        assert_eq!(saving(0, 10), 0.0);
        assert_eq!(saving(100, 100), 0.0);
    }
}
