//! Fault-tolerant execution of any [`Retriever`] strategy.
//!
//! The planning half of the framework (theory greedy, D-MGARD prediction,
//! E-MGARD learned constants) is oblivious to storage faults — it just
//! produces plane counts. This module closes the loop: plan with whatever
//! strategy, then execute the plan through `pmr-storage`'s tolerant fetch
//! path, which retries, verifies checksums, truncates dead prefixes, and
//! reports the honest achievable bound when segments are lost.

use crate::framework::{RetrievalContext, Retriever};
use pmr_error::PmrError;
use pmr_mgard::RetrievalPlan;
use pmr_storage::{
    fetch_plan_tolerant, Placement, SegmentStore, StorageHierarchy, TolerantConfig,
    TolerantRetrieval,
};

/// Plan with `retriever` at `abs_bound`, then execute the plan tolerantly
/// against `store`.
///
/// Learned strategies may over-ask — D-MGARD's regression can predict more
/// planes than a level holds. That is not a caller bug the way a malformed
/// explicit plan is, so predicted counts are clamped to each level's
/// capacity before execution (fetching every plane of a level is the most
/// it can mean). Everything downstream is the storage-layer contract:
/// retries, checksum verification, degraded reports with sound bounds.
#[deprecated(
    since = "0.6.0",
    note = "use pmr_core::api::retrieve with \
    Backend::Store — the unified API plans, clamps, and executes tolerantly"
)]
pub fn execute_tolerant(
    retriever: &dyn Retriever,
    ctx: &RetrievalContext<'_>,
    abs_bound: f64,
    store: &dyn SegmentStore,
    cfg: &TolerantConfig,
    model: Option<(&StorageHierarchy, &Placement)>,
) -> Result<TolerantRetrieval, PmrError> {
    let raw = retriever.plan(ctx, abs_bound);
    let clamped: Vec<u32> = raw
        .planes
        .iter()
        .zip(ctx.compressed.levels())
        .map(|(&b, lvl)| b.min(lvl.num_planes()))
        .collect();
    let plan = RetrievalPlan { planes: clamped, estimated_error: raw.estimated_error };
    fetch_plan_tolerant(ctx.compressed, store, &plan, abs_bound, cfg, model)
}

#[cfg(test)]
#[allow(deprecated)] // exercises the legacy shim; the unified path is covered in `api::tests`
mod tests {
    use super::*;
    use crate::features::retrieval_features;
    use crate::framework::Theory;
    use pmr_field::{error::max_abs_error, Field, Shape};
    use pmr_mgard::{CompressConfig, Compressed};
    use pmr_storage::{FaultConfig, FaultInjector, MemStore, RetryPolicy};

    fn artifact() -> (Field, Compressed) {
        let field = Field::from_fn("ct", 0, Shape::cube(9), |x, y, z| {
            ((x as f64) * 0.6).sin() + ((y as f64) * 0.3).cos() * 0.4 + (z as f64) * 0.01
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        (field, c)
    }

    #[test]
    fn theory_strategy_survives_flaky_store() {
        let (field, c) = artifact();
        let feats = retrieval_features(&field, &c);
        let ctx = RetrievalContext { compressed: &c, features: &feats };
        let faults = FaultConfig { transient: 0.3, bit_flip: 0.15, ..FaultConfig::quiet(77) };
        let inj = FaultInjector::new(MemStore::from_compressed(&c), faults).unwrap();
        let bound = c.absolute_bound(1e-4);
        let tc = TolerantConfig {
            policy: RetryPolicy { max_attempts: 64, ..RetryPolicy::default() },
            ..TolerantConfig::default()
        };
        let out = execute_tolerant(&Theory, &ctx, bound, &inj, &tc, None).unwrap();
        assert!(!out.is_degraded());
        assert!(max_abs_error(field.data(), out.field.data()) <= bound);
        assert!(out.stats.retries > 0);
    }

    #[test]
    fn over_asking_strategy_is_clamped_not_rejected() {
        struct Greedy;
        impl Retriever for Greedy {
            fn name(&self) -> &str {
                "greedy-overask"
            }
            fn plan(&self, ctx: &RetrievalContext<'_>, _abs_bound: f64) -> RetrievalPlan {
                // A (mock) learned model predicting past every level's
                // capacity — must mean "fetch everything", not an error.
                RetrievalPlan::from_planes(vec![u32::MAX; ctx.compressed.num_levels()])
            }
        }
        let (field, c) = artifact();
        let feats = retrieval_features(&field, &c);
        let ctx = RetrievalContext { compressed: &c, features: &feats };
        let store = MemStore::from_compressed(&c);
        let out = execute_tolerant(&Greedy, &ctx, 1e-6, &store, &TolerantConfig::default(), None)
            .unwrap();
        assert!(!out.is_degraded());
        let full: Vec<u32> = c.levels().iter().map(|l| l.num_planes()).collect();
        assert_eq!(out.planes, full);
        assert_eq!(out.stats.bytes, c.total_bytes());
        // Full fetch reproduces the quantization-limited reconstruction.
        let direct = c.retrieve(&c.plan_full());
        assert_eq!(out.field.data(), direct.data());
        let _ = field;
    }

    #[test]
    fn strategy_loss_reports_degradation() {
        let (field, c) = artifact();
        let feats = retrieval_features(&field, &c);
        let ctx = RetrievalContext { compressed: &c, features: &feats };
        let bound = c.absolute_bound(1e-5);
        let l = c.num_levels() - 1;
        let store = MemStore::from_compressed(&c).without(&[(l, 0)]);
        let out = execute_tolerant(&Theory, &ctx, bound, &store, &TolerantConfig::default(), None)
            .unwrap();
        let report = out.degraded.as_ref().expect("loss must degrade");
        assert!(report.lost_segments.contains(&(l, 0)));
        assert!(max_abs_error(field.data(), out.field.data()) <= report.achievable_bound);
    }
}
