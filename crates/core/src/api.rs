//! The unified retrieval API: one `RetrievalRequest → RetrievalOutcome`
//! entry point over every retrieval surface the workspace grew —
//! direct decode, per-call execution policies, coarse-grid decode, error
//! measurement, byte-budget planning, and the fault-tolerant storage path.
//!
//! Before this module, callers picked from a sprawl of near-duplicates:
//! `Compressed::retrieve` / `retrieve_with` / `retrieve_measured` /
//! `retrieve_at_level`, `pmr_core::execute` / `execute_tolerant`, and
//! `pmr_storage::retrieve_tolerant`. Those remain as thin deprecated shims;
//! new code — including `pmrd`, the serving daemon, whose wire protocol is
//! deliberately the same shape — states *what* it wants:
//!
//! ```text
//!   RetrievalRequest { target: Tolerance | ByteBudget | PlaneSet, … }
//!     × strategy (Theory / D-MGARD / E-MGARD / combined)
//!     × backend  (Direct decode | SegmentStore with faults/retries)
//!     → RetrievalOutcome { field, planes, bytes, bounds, stats, degraded }
//! ```

use crate::framework::{RetrievalContext, Retriever};
use pmr_error::PmrError;
use pmr_field::{error, Field};
use pmr_mgard::{Compressed, DecodeOptions, ExecPolicy, PlaneKernel, RetrievalPlan};
use pmr_storage::{
    fetch_plan_tolerant, DegradedRetrieval, FetchStats, Placement, SegmentStore, StorageHierarchy,
    TolerantConfig,
};

/// An error-bound target, absolute or relative to the field's value range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Absolute `L∞` bound.
    Abs(f64),
    /// Bound relative to the artifact's recorded value range
    /// (`abs = rel · range`, the paper's ξ).
    Rel(f64),
}

impl Tolerance {
    /// Resolve to the absolute bound used by every planner. Non-finite or
    /// negative bounds are an [`PmrError::InvalidConfig`].
    pub fn absolute(&self, compressed: &Compressed) -> Result<f64, PmrError> {
        let abs = match *self {
            Tolerance::Abs(e) => e,
            Tolerance::Rel(r) => compressed.absolute_bound(r),
        };
        if !abs.is_finite() || abs < 0.0 {
            return Err(PmrError::invalid_config(format!(
                "error bound must be finite and non-negative, got {abs}"
            )));
        }
        Ok(abs)
    }
}

/// What a retrieval should optimise for.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrievalTarget {
    /// Fetch just enough planes to satisfy an error tolerance.
    Tolerance(Tolerance),
    /// Spend at most this many compressed bytes, minimising the error
    /// estimate (planned with the theory estimator regardless of strategy).
    ByteBudget(u64),
    /// Fetch exactly these per-level plane counts (validated against the
    /// artifact layout).
    PlaneSet(Vec<u32>),
}

/// A complete description of one retrieval: the target plus execution and
/// measurement options. Construct with the shorthand constructors and
/// chain the builder-style modifiers.
#[derive(Debug, Clone)]
pub struct RetrievalRequest {
    /// What to optimise for.
    pub target: RetrievalTarget,
    /// Execution-policy override for the decode (direct backend only).
    pub exec: Option<ExecPolicy>,
    /// Measure achieved error and PSNR against the original field
    /// (requires [`Dataset::original`]).
    pub measure: bool,
    /// Decode only up to this level's grid (`0` = coarsest; direct backend
    /// only).
    pub coarse_level: Option<usize>,
    /// Retry/re-plan policy for the storage backend.
    pub tolerant: TolerantConfig,
}

impl RetrievalRequest {
    /// Request for an arbitrary target with default options.
    pub fn new(target: RetrievalTarget) -> Self {
        RetrievalRequest {
            target,
            exec: None,
            measure: false,
            coarse_level: None,
            tolerant: TolerantConfig::default(),
        }
    }

    /// Absolute error-bound request.
    pub fn abs(bound: f64) -> Self {
        Self::new(RetrievalTarget::Tolerance(Tolerance::Abs(bound)))
    }

    /// Relative error-bound request (the paper's ξ).
    pub fn rel(bound: f64) -> Self {
        Self::new(RetrievalTarget::Tolerance(Tolerance::Rel(bound)))
    }

    /// Byte-budget request: best error the bytes can buy.
    pub fn byte_budget(bytes: u64) -> Self {
        Self::new(RetrievalTarget::ByteBudget(bytes))
    }

    /// Explicit plane-count request.
    pub fn plane_set(planes: Vec<u32>) -> Self {
        Self::new(RetrievalTarget::PlaneSet(planes))
    }

    /// Measure achieved error and PSNR against the dataset's original.
    pub fn measured(mut self) -> Self {
        self.measure = true;
        self
    }

    /// Override the execution policy for the decode.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Select the bit-plane codec kernel for the decode (layered onto the
    /// current execution policy, or the default policy if none was set).
    /// Every kernel is bit-identical; [`PlaneKernel::Scalar`] exists for
    /// differential testing against the legacy path.
    pub fn with_kernel(mut self, kernel: PlaneKernel) -> Self {
        self.exec = Some(self.exec.unwrap_or_default().with_kernel(kernel));
        self
    }

    /// Decode a coarse-grid approximation up to `level` (`0` = coarsest).
    pub fn at_level(mut self, level: usize) -> Self {
        self.coarse_level = Some(level);
        self
    }

    /// Set the fault-tolerance policy for the storage backend.
    pub fn with_tolerant(mut self, cfg: TolerantConfig) -> Self {
        self.tolerant = cfg;
        self
    }
}

/// The artifact under retrieval plus optional measurement/planning context.
#[derive(Clone, Copy)]
pub struct Dataset<'a> {
    /// The compressed artifact.
    pub compressed: &'a Compressed,
    /// The uncompressed original, when available (enables
    /// [`RetrievalRequest::measured`]).
    pub original: Option<&'a Field>,
    /// Snapshot feature vector for learned strategies (empty slice is fine
    /// for [`crate::framework::Theory`]).
    pub features: &'a [f32],
}

impl<'a> Dataset<'a> {
    /// A dataset with no original and no features (theory-only planning).
    pub fn new(compressed: &'a Compressed) -> Self {
        Dataset { compressed, original: None, features: &[] }
    }

    /// Attach the original field for measurement.
    pub fn with_original(mut self, original: &'a Field) -> Self {
        self.original = Some(original);
        self
    }

    /// Attach the feature vector consumed by learned strategies.
    pub fn with_features(mut self, features: &'a [f32]) -> Self {
        self.features = features;
        self
    }
}

/// Where the planes come from.
pub enum Backend<'a> {
    /// Decode straight out of the in-memory artifact (no I/O model).
    Direct,
    /// Fetch through a [`SegmentStore`] with the full fault-tolerance
    /// contract: retries, checksum verification, degraded re-planning.
    Store {
        /// The segment store holding the artifact's plane payloads.
        store: &'a dyn SegmentStore,
        /// Optional storage-tier latency model for virtual-time accounting.
        model: Option<(&'a StorageHierarchy, &'a Placement)>,
    },
}

/// The result of one unified retrieval.
#[derive(Debug, Clone)]
pub struct RetrievalOutcome {
    /// The reconstructed approximation (coarse-grid when
    /// [`RetrievalRequest::coarse_level`] was set).
    pub field: Field,
    /// Name of the strategy that planned the retrieval.
    pub strategy: String,
    /// Per-level plane counts actually decoded (post-clamp, post-degradation).
    pub planes: Vec<u32>,
    /// Compressed bytes fetched.
    pub bytes: u64,
    /// The plan's own error claim (`f64::INFINITY` when the strategy
    /// carries no estimator, e.g. a pure D-MGARD plane prediction).
    pub claimed_error: f64,
    /// Sound theory estimate at the decoded planes — the achieved bound
    /// reported to clients, honest under degradation.
    pub estimated_error: f64,
    /// Measured `L∞` error (only with [`RetrievalRequest::measured`]).
    pub achieved_error: Option<f64>,
    /// PSNR of the reconstruction (only with [`RetrievalRequest::measured`]).
    pub psnr: Option<f64>,
    /// Fetch accounting from the storage backend (`None` for direct decode).
    pub stats: Option<FetchStats>,
    /// Degradation report when segments were unrecoverable.
    pub degraded: Option<DegradedRetrieval>,
}

impl RetrievalOutcome {
    /// Did the storage path lose segments (prefix truncation / re-plan)?
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// Resolve a request target to a validated, capacity-clamped plan.
///
/// Tolerance targets plan through `retriever`; learned strategies may
/// over-ask (a regression can predict past a level's capacity), which is
/// clamped to "fetch everything at that level" rather than rejected. Byte
/// budgets plan with the theory estimator; explicit plane sets are
/// validated against the artifact layout.
pub fn plan_for_target(
    compressed: &Compressed,
    retriever: &dyn Retriever,
    features: &[f32],
    target: &RetrievalTarget,
) -> Result<RetrievalPlan, PmrError> {
    match target {
        RetrievalTarget::Tolerance(tol) => {
            let abs = tol.absolute(compressed)?;
            let ctx = RetrievalContext { compressed, features };
            let raw = retriever.plan(&ctx, abs);
            if raw.planes.len() != compressed.num_levels() {
                return Err(PmrError::invalid_config(format!(
                    "strategy {} planned {} levels but the artifact has {}",
                    retriever.name(),
                    raw.planes.len(),
                    compressed.num_levels()
                )));
            }
            let clamped: Vec<u32> = raw
                .planes
                .iter()
                .zip(compressed.levels())
                .map(|(&b, lvl)| b.min(lvl.num_planes()))
                .collect();
            Ok(RetrievalPlan { planes: clamped, estimated_error: raw.estimated_error })
        }
        RetrievalTarget::ByteBudget(bytes) => Ok(compressed.plan_budget(*bytes)),
        RetrievalTarget::PlaneSet(planes) => compressed.plan_from_planes(planes.clone()),
    }
}

/// The requested bound handed to the tolerant fetch path: the absolute
/// tolerance when the target is one, otherwise the plan's own sound
/// estimate (budget and plane-set targets promise nothing tighter).
fn requested_bound(
    compressed: &Compressed,
    target: &RetrievalTarget,
    plan: &RetrievalPlan,
) -> Result<f64, PmrError> {
    match target {
        RetrievalTarget::Tolerance(tol) => tol.absolute(compressed),
        _ => Ok(compressed.estimate_for(&plan.planes)),
    }
}

/// Execute one unified retrieval: plan for the request's target with
/// `retriever`, fetch/decode through `backend`, optionally measure.
///
/// This is the single entry point behind `pmrtool retrieve`, the examples,
/// and the `pmrd` daemon. Invalid combinations are errors, not panics:
/// measurement without an original, coarse decode on the storage backend,
/// plans that do not match the artifact.
pub fn retrieve(
    dataset: &Dataset<'_>,
    retriever: &dyn Retriever,
    request: &RetrievalRequest,
    backend: &Backend<'_>,
) -> Result<RetrievalOutcome, PmrError> {
    let compressed = dataset.compressed;
    if request.measure && dataset.original.is_none() {
        return Err(PmrError::invalid_config(
            "measurement requested but the dataset has no original field".to_string(),
        ));
    }
    if request.measure && request.coarse_level.is_some() {
        return Err(PmrError::invalid_config(
            "measurement is defined on the full grid; drop measured() or at_level()".to_string(),
        ));
    }
    if let (true, Some(original)) = (request.measure, dataset.original) {
        if original.shape() != compressed.shape() {
            return Err(PmrError::invalid_config(format!(
                "original field shape {:?} does not match artifact shape {:?}",
                original.shape(),
                compressed.shape()
            )));
        }
    }

    let plan = plan_for_target(compressed, retriever, dataset.features, &request.target)?;

    let (field, planes, bytes, estimated, stats, degraded) = match backend {
        Backend::Direct => {
            let opts = DecodeOptions { exec: request.exec, coarse_level: request.coarse_level };
            let field = compressed.decode_plan(&plan, &opts)?;
            let bytes = compressed.retrieved_bytes(&plan);
            let estimated = compressed.estimate_for(&plan.planes);
            (field, plan.planes.clone(), bytes, estimated, None, None)
        }
        Backend::Store { store, model } => {
            if request.coarse_level.is_some() {
                return Err(PmrError::invalid_config(
                    "coarse-grid decode is a direct-backend feature".to_string(),
                ));
            }
            let bound = requested_bound(compressed, &request.target, &plan)?;
            let t =
                fetch_plan_tolerant(compressed, *store, &plan, bound, &request.tolerant, *model)?;
            (t.field, t.planes, t.stats.bytes, t.estimated_error, Some(t.stats), t.degraded)
        }
    };

    let (achieved_error, psnr) = match (request.measure, dataset.original) {
        (true, Some(original)) => (
            Some(error::max_abs_error(original.data(), field.data())),
            Some(error::psnr(original.data(), field.data())),
        ),
        _ => (None, None),
    };

    Ok(RetrievalOutcome {
        field,
        strategy: retriever.name().to_string(),
        planes,
        bytes,
        claimed_error: plan.estimated_error,
        estimated_error: estimated,
        achieved_error,
        psnr,
        stats,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Theory;
    use pmr_field::{error::max_abs_error, Shape};
    use pmr_mgard::CompressConfig;
    use pmr_storage::{FaultConfig, FaultInjector, MemStore, RetryPolicy};

    fn artifact() -> (Field, Compressed) {
        let field = Field::from_fn("api", 0, Shape::cube(9), |x, y, z| {
            ((x as f64) * 0.6).sin() + ((y as f64) * 0.3).cos() * 0.4 + (z as f64) * 0.01
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        (field, c)
    }

    #[test]
    fn tolerance_request_matches_legacy_path() {
        let (field, c) = artifact();
        let ds = Dataset::new(&c).with_original(&field);
        let bound = c.absolute_bound(1e-3);
        let out =
            retrieve(&ds, &Theory, &RetrievalRequest::abs(bound).measured(), &Backend::Direct)
                .expect("direct retrieval");
        let legacy = c.retrieve(&c.plan_theory(bound));
        assert_eq!(out.field.data(), legacy.data());
        assert!(out.achieved_error.expect("measured") <= bound);
        assert!(out.psnr.expect("measured") > 20.0);
        assert_eq!(out.bytes, c.retrieved_bytes(&c.plan_theory(bound)));
        assert!(out.stats.is_none() && out.degraded.is_none());
        assert_eq!(out.strategy, "MGARD");
    }

    #[test]
    fn relative_tolerance_resolves_through_value_range() {
        let (field, c) = artifact();
        let ds = Dataset::new(&c).with_original(&field);
        let out = retrieve(&ds, &Theory, &RetrievalRequest::rel(1e-3).measured(), &Backend::Direct)
            .expect("direct retrieval");
        assert!(out.achieved_error.expect("measured") <= c.absolute_bound(1e-3));
    }

    #[test]
    fn byte_budget_request_respects_budget() {
        let (_, c) = artifact();
        let ds = Dataset::new(&c);
        let budget = c.total_bytes() / 4;
        let out = retrieve(&ds, &Theory, &RetrievalRequest::byte_budget(budget), &Backend::Direct)
            .expect("budget retrieval");
        assert!(out.bytes <= budget, "spent {} of {budget}", out.bytes);
        assert!(out.estimated_error.is_finite());
        // A bigger budget never reports a worse bound.
        let better =
            retrieve(&ds, &Theory, &RetrievalRequest::byte_budget(budget * 3), &Backend::Direct)
                .expect("budget retrieval");
        assert!(better.estimated_error <= out.estimated_error);
    }

    #[test]
    fn plane_set_request_is_validated() {
        let (_, c) = artifact();
        let ds = Dataset::new(&c);
        let planes = vec![4u32; c.num_levels()];
        let out =
            retrieve(&ds, &Theory, &RetrievalRequest::plane_set(planes.clone()), &Backend::Direct)
                .expect("plane-set retrieval");
        assert_eq!(out.planes, planes);
        let bad = RetrievalRequest::plane_set(vec![4u32; c.num_levels() + 1]);
        assert!(retrieve(&ds, &Theory, &bad, &Backend::Direct).is_err());
        let overask = RetrievalRequest::plane_set(vec![c.num_planes() + 1; c.num_levels()]);
        assert!(retrieve(&ds, &Theory, &overask, &Backend::Direct).is_err());
    }

    #[test]
    fn coarse_level_decodes_coarse_grid() {
        let (_, c) = artifact();
        let ds = Dataset::new(&c);
        let req = RetrievalRequest::rel(1e-3).at_level(0);
        let out = retrieve(&ds, &Theory, &req, &Backend::Direct).expect("coarse retrieval");
        assert_eq!(out.field.shape(), c.decomposer().grid_shape_at_level(0));
        // Measurement on a coarse grid is rejected, not mis-measured.
        let bad = RetrievalRequest::rel(1e-3).at_level(0).measured();
        let (field, c2) = artifact();
        let ds2 = Dataset::new(&c2).with_original(&field);
        assert!(retrieve(&ds2, &Theory, &bad, &Backend::Direct).is_err());
    }

    #[test]
    fn measurement_without_original_is_rejected() {
        let (_, c) = artifact();
        let ds = Dataset::new(&c);
        let req = RetrievalRequest::rel(1e-3).measured();
        assert!(retrieve(&ds, &Theory, &req, &Backend::Direct).is_err());
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        let (_, c) = artifact();
        let ds = Dataset::new(&c);
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(retrieve(&ds, &Theory, &RetrievalRequest::abs(bad), &Backend::Direct).is_err());
        }
    }

    #[test]
    fn store_backend_survives_flaky_store() {
        let (field, c) = artifact();
        let ds = Dataset::new(&c).with_original(&field);
        let faults = FaultConfig { transient: 0.3, bit_flip: 0.15, ..FaultConfig::quiet(77) };
        let inj = FaultInjector::new(MemStore::from_compressed(&c), faults).unwrap();
        let bound = c.absolute_bound(1e-4);
        let req = RetrievalRequest::abs(bound).measured().with_tolerant(TolerantConfig {
            policy: RetryPolicy { max_attempts: 64, ..RetryPolicy::default() },
            ..TolerantConfig::default()
        });
        let backend = Backend::Store { store: &inj, model: None };
        let out = retrieve(&ds, &Theory, &req, &backend).expect("tolerant retrieval");
        assert!(!out.is_degraded());
        let stats = out.stats.as_ref().expect("store path records stats");
        assert!(stats.retries > 0);
        assert!(out.achieved_error.expect("measured") <= bound);
    }

    #[test]
    fn store_backend_reports_honest_degradation() {
        let (field, c) = artifact();
        let ds = Dataset::new(&c);
        let bound = c.absolute_bound(1e-5);
        let l = c.num_levels() - 1;
        let store = MemStore::from_compressed(&c).without(&[(l, 0)]);
        let backend = Backend::Store { store: &store, model: None };
        let out = retrieve(&ds, &Theory, &RetrievalRequest::abs(bound), &backend)
            .expect("degraded retrieval");
        let report = out.degraded.as_ref().expect("loss must degrade");
        assert!(report.lost_segments.contains(&(l, 0)));
        assert!(max_abs_error(field.data(), out.field.data()) <= report.achievable_bound);
        assert_eq!(out.estimated_error, report.achievable_bound);
    }

    #[test]
    fn store_and_direct_backends_are_bit_identical() {
        let (_, c) = artifact();
        let ds = Dataset::new(&c);
        let store = MemStore::from_compressed(&c);
        let backend = Backend::Store { store: &store, model: None };
        for req in [RetrievalRequest::rel(1e-2), RetrievalRequest::rel(1e-4)] {
            let direct = retrieve(&ds, &Theory, &req, &Backend::Direct).expect("direct");
            let stored = retrieve(&ds, &Theory, &req, &backend).expect("stored");
            assert_eq!(direct.field.data(), stored.field.data());
            assert_eq!(direct.planes, stored.planes);
            assert_eq!(direct.bytes, stored.bytes);
        }
    }

    #[test]
    fn coarse_decode_on_store_backend_is_rejected() {
        let (_, c) = artifact();
        let ds = Dataset::new(&c);
        let store = MemStore::from_compressed(&c);
        let backend = Backend::Store { store: &store, model: None };
        let req = RetrievalRequest::rel(1e-3).at_level(0);
        assert!(retrieve(&ds, &Theory, &req, &backend).is_err());
    }
}
