//! Feature engineering shared by the DNN models.
//!
//! D-MGARD takes "a set of statistical data features" `F` plus the achieved
//! maximum error as input (paper §III-C). The base feature vector is the
//! [`pmr_field::FieldStats`] summary; the error enters in `log10` because
//! bounds span nine decades.
//!
//! Deliberately *not* a feature: the raw timestep. The evaluation protocol
//! trains on early timesteps and tests on late ones, so a time input would
//! always be extrapolated outside its training range — the statistics that
//! drift with the simulation carry the same signal without that failure
//! mode (and match the paper, which lists only statistical features).

use pmr_field::{Field, FieldStats};
use pmr_mgard::Compressed;

/// Number of base features: the [`FieldStats`] summary plus three
/// log-scale features.
pub const NUM_BASE_FEATURES: usize = 12;

/// Floor applied before `log10` so exact reconstructions stay finite.
pub const ERR_FLOOR: f64 = 1e-16;

/// Base feature vector of a field snapshot.
pub fn base_features(field: &Field) -> Vec<f32> {
    features_from_stats(&FieldStats::compute(field))
}

/// Same as [`base_features`] when the stats are already available.
///
/// The raw statistics are augmented with `log10(range)`, `log10(std)` and
/// `log10(max |v|)`: the number of bit-planes needed for an absolute bound
/// is essentially `log(scale) − log(err)`, so giving the network the scale
/// in log space lets it extrapolate across the amplitude drift between
/// training and test timesteps.
pub fn features_from_stats(stats: &FieldStats) -> Vec<f32> {
    let mut f: Vec<f32> = stats.to_features().iter().map(|&v| v as f32).collect();
    f.push(log_err(stats.range()));
    f.push(log_err(stats.std));
    f.push(log_err(stats.max.abs().max(stats.min.abs())));
    debug_assert_eq!(f.len(), NUM_BASE_FEATURES);
    f
}

/// `log10` of an error value, floored for numerical safety.
pub fn log_err(err: f64) -> f32 {
    err.max(ERR_FLOOR).log10() as f32
}

/// The full retrieval feature vector: [`base_features`] plus the log
/// magnitude of every coefficient level (`log10(Err[l][0])`).
///
/// The per-level magnitudes are *artifact metadata*: `Err[l][0]` is the
/// head of the collected error matrix, available before a single plane is
/// fetched. They tell the models how the field's energy is distributed
/// across the hierarchy — the signal that lets one trained model transfer
/// across fields whose spectral content differs (e.g. train on `J_x`,
/// predict for `B_x`/`E_x`, paper Fig. 9).
pub fn retrieval_features(field: &Field, compressed: &Compressed) -> Vec<f32> {
    let mut f = base_features(field);
    for lvl in compressed.levels() {
        f.push(log_err(lvl.error_at(0)));
    }
    f
}

/// The scale-invariant subset of [`base_features`] used as direct model
/// inputs: skewness, kurtosis and lag-1 autocorrelation.
///
/// Absolute-scale statistics (min/max/range/std/…) are deliberately kept
/// *out* of the network inputs: within one training field they are nearly
/// constant, so the network attaches arbitrary weights to them and
/// extrapolates wildly when asked to plan for a different field (paper
/// protocol: train on `J_x`, predict for `B_x`/`E_x`). All scale
/// information the plane count actually depends on enters through the
/// relative error input of [`chain_input`].
pub fn invariant_stats(base: &[f32]) -> [f32; 3] {
    debug_assert!(base.len() >= NUM_BASE_FEATURES);
    // Indices into FieldStats::to_features(): 5 = skewness, 6 = kurtosis,
    // 8 = lag-1 autocorrelation.
    [base[5], base[6], base[8]]
}

/// Input vector of the level-`l` CMOR model:
/// `invariant stats ++ [log10(err), log10(err) − log10(Err[l][0])] ++ [b_0, …, b_{l-1}]`.
///
/// The second error input is the requested error *relative to the level's
/// coefficient magnitude* — the quantity the plane count actually tracks
/// (`b_l ≈ −log2(err / Err[l][0]) / decay`). Feeding the ratio instead of
/// two absolute values keeps the model on an interpolated input range when
/// it is applied to fields whose absolute scales it never saw in training.
pub fn chain_input(
    stats: &[f32],
    err: f64,
    level_scale_log: f32,
    previous_planes: &[f32],
) -> Vec<f32> {
    let mut x = Vec::with_capacity(stats.len() + 2 + previous_planes.len());
    x.extend_from_slice(stats);
    let le = log_err(err);
    x.push(le);
    x.push(le - level_scale_log);
    x.extend_from_slice(previous_planes);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_field::Shape;

    #[test]
    fn base_features_dimension() {
        let field = Field::from_fn("f", 3, Shape::cube(5), |x, y, z| (x + y + z) as f64);
        let f = base_features(&field);
        assert_eq!(f.len(), NUM_BASE_FEATURES);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_err_floors_zero() {
        assert!(log_err(0.0).is_finite());
        assert_eq!(log_err(1.0), 0.0);
        assert_eq!(log_err(1e-3), -3.0);
    }

    #[test]
    fn chain_input_layout() {
        let stats = vec![1.0f32, 2.0];
        let x = chain_input(&stats, 0.01, -1.0, &[5.0, 7.0]);
        assert_eq!(x, vec![1.0, 2.0, -2.0, -1.0, 5.0, 7.0]);
    }
}
