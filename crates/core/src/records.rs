//! Harvesting training records from compression experiments.
//!
//! Paper §III-C, step 1–2: "run the compression experiments under a set of
//! absolute errors; collect the achieved maximum errors as well as the
//! numbers of bit-planes fetched". The 81 relative bounds of §IV-A3
//! (`{1..9} × 10^{-9..-1}`) are reproduced by [`standard_rel_bounds`].

use crate::features;
use pmr_field::{error::max_abs_error, Field};
use pmr_mgard::{Compressed, ExecPolicy};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One `(requested bound → plan → achieved error)` observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalRecord {
    pub field_name: String,
    pub timestep: usize,
    /// Base data features of the snapshot (see [`crate::features`]).
    pub features: Vec<f32>,
    /// Requested relative bound.
    pub rel_bound: f64,
    /// Requested absolute bound (`rel_bound * value_range`).
    pub abs_bound: f64,
    /// Actual max error of the reconstruction under the theory plan.
    pub achieved_err: f64,
    /// Plane counts `b_l` the theory retriever chose.
    pub planes: Vec<u32>,
    /// Bytes the plan fetches.
    pub retrieved_bytes: u64,
}

/// The paper's 81 relative error bounds: `{1..9} × 10^k` for
/// `k = -9 ..= -1`, ascending.
pub fn standard_rel_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(81);
    for k in (-9i32..=-1).rev() {
        for m in 1..=9u32 {
            bounds.push(m as f64 * 10f64.powi(k));
        }
    }
    bounds.sort_by(f64::total_cmp);
    bounds
}

/// Run the theory retriever for every bound and collect records.
///
/// Reconstructions are memoised by plan (many bounds collapse onto the same
/// plane counts), which typically cuts the recomposition work 3–5×.
pub fn collect_records(
    field: &Field,
    compressed: &Compressed,
    rel_bounds: &[f64],
) -> Vec<RetrievalRecord> {
    collect_records_with(field, compressed, rel_bounds, &ExecPolicy::default())
}

/// [`collect_records`] with an explicit execution policy for the
/// reconstructions the bound sweep performs.
pub fn collect_records_with(
    field: &Field,
    compressed: &Compressed,
    rel_bounds: &[f64],
    exec: &ExecPolicy,
) -> Vec<RetrievalRecord> {
    let base = features::retrieval_features(field, compressed);
    // BTreeMap keeps the cache's iteration order deterministic; records are
    // training inputs, so their production must not depend on hash order.
    let mut achieved_cache: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
    let mut out = Vec::with_capacity(rel_bounds.len());
    for &rel in rel_bounds {
        let abs = compressed.absolute_bound(rel);
        let plan = compressed.plan_theory(abs);
        let achieved = *achieved_cache.entry(plan.planes.clone()).or_insert_with(|| {
            let opts = pmr_mgard::DecodeOptions::with_exec(*exec);
            let rec = compressed
                .decode_plan(&plan, &opts)
                // lint:allow(panic_path): the plan was produced by plan_theory on this same artifact, so decode_plan cannot fail
                .expect("theory plan always matches its own artifact");
            max_abs_error(field.data(), rec.data())
        });
        let retrieved_bytes = compressed.retrieved_bytes(&plan);
        out.push(RetrievalRecord {
            field_name: field.name().to_string(),
            timestep: field.timestep(),
            features: base.clone(),
            rel_bound: rel,
            abs_bound: abs,
            achieved_err: achieved,
            planes: plan.planes,
            retrieved_bytes,
        });
    }
    out
}

/// Harvest records from many `(field, compressed)` pairs, fanning the
/// snapshots out over worker threads.
///
/// Workers reconstruct under a serial inner policy (snapshot-level
/// parallelism already saturates the cores, and serial execution is
/// bit-identical to parallel), so the result equals calling
/// [`collect_records`] per snapshot in order.
pub fn collect_records_many(
    items: &[(&Field, &Compressed)],
    rel_bounds: &[f64],
) -> Vec<Vec<RetrievalRecord>> {
    let threads = ExecPolicy::default().resolved_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(|&(f, c)| collect_records(f, c, rel_bounds)).collect();
    }
    let mut out: Vec<Option<Vec<RetrievalRecord>>> = (0..items.len()).map(|_| None).collect();
    let slots = parking_lot::Mutex::new(&mut out);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(field, compressed)) = items.get(i) else { break };
                let recs =
                    collect_records_with(field, compressed, rel_bounds, &ExecPolicy::serial());
                slots.lock()[i] = Some(recs);
            });
        }
    });
    let filled: Vec<Vec<RetrievalRecord>> = out.into_iter().flatten().collect();
    assert_eq!(filled.len(), items.len(), "batch worker left a slot unfilled");
    filled
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_field::Shape;
    use pmr_mgard::CompressConfig;

    fn sample() -> (Field, Compressed) {
        let field = Field::from_fn("s", 2, Shape::cube(9), |x, y, z| {
            ((x as f64) * 0.5).sin() + ((y as f64) * 0.3).cos() * ((z as f64) * 0.2).sin()
        });
        let c = Compressed::compress(&field, &CompressConfig::default());
        (field, c)
    }

    #[test]
    fn standard_bounds_count_and_range() {
        let b = standard_rel_bounds();
        assert_eq!(b.len(), 81);
        assert_eq!(b[0], 1e-9);
        assert_eq!(*b.last().unwrap(), 0.9);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn records_respect_bounds_and_monotonicity() {
        let (field, c) = sample();
        let bounds = [1e-6, 1e-4, 1e-2, 1e-1];
        let recs = collect_records(&field, &c, &bounds);
        assert_eq!(recs.len(), 4);
        for r in &recs {
            // The motivating gap: achieved err is (well) below requested.
            assert!(
                r.achieved_err <= r.abs_bound,
                "bound {} violated: {}",
                r.abs_bound,
                r.achieved_err
            );
            assert_eq!(r.planes.len(), c.num_levels());
            assert_eq!(r.timestep, 2);
        }
        // Tighter bound never reads fewer bytes.
        assert!(recs.windows(2).all(|w| w[0].retrieved_bytes >= w[1].retrieved_bytes));
    }

    #[test]
    fn collect_records_many_matches_sequential() {
        let pairs: Vec<(Field, Compressed)> = (0..3)
            .map(|t| {
                let field = Field::from_fn("m", t, Shape::cube(9), move |x, y, z| {
                    ((x as f64) * (0.4 + 0.03 * t as f64)).sin()
                        + ((y + z) as f64 * 0.2).cos() * 0.5
                });
                let c = Compressed::compress(&field, &CompressConfig::default());
                (field, c)
            })
            .collect();
        let items: Vec<(&Field, &Compressed)> = pairs.iter().map(|(f, c)| (f, c)).collect();
        let bounds = [1e-5, 1e-3, 1e-1];
        let batched = collect_records_many(&items, &bounds);
        assert_eq!(batched.len(), 3);
        for (i, (f, c)) in pairs.iter().enumerate() {
            assert_eq!(batched[i], collect_records(f, c, &bounds));
        }
    }

    #[test]
    fn memoisation_consistent_with_direct() {
        let (field, c) = sample();
        // Two nearby bounds likely share a plan; achieved errors must match
        // an independent computation.
        let recs = collect_records(&field, &c, &[1e-3, 1.1e-3]);
        for r in &recs {
            let plan = c.plan_theory(r.abs_bound);
            let rec = c.retrieve(&plan);
            let direct = max_abs_error(field.data(), rec.data());
            assert_eq!(r.achieved_err, direct);
        }
    }
}
