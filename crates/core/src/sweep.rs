//! Strategy-agnostic conformance sweep driver.
//!
//! A *sweep* runs a [`Retriever`] over an artifact across a grid of error
//! bounds and measures, for every point, what the plan claimed versus what
//! the reconstruction actually achieved. The driver knows nothing about any
//! concrete strategy — it speaks only the [`Retriever`] trait — so Theory,
//! D-MGARD, E-MGARD, the combined retriever, and anything a downstream crate
//! implements are all swept identically. `pmr-conformance` builds its
//! violation-rate and overshoot accounting on these points.

use crate::framework::{RetrievalContext, Retriever};
use pmr_error::PmrError;
use pmr_field::Field;
use pmr_mgard::Compressed;

/// One `(strategy × artifact × bound)` measurement from a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Strategy name as reported by [`Retriever::name`].
    pub strategy: String,
    /// Name of the swept field/artifact.
    pub field_name: String,
    /// Timestep of the swept snapshot.
    pub timestep: usize,
    /// The absolute error bound handed to the planner.
    pub abs_bound: f64,
    /// The plan's own error claim (`f64::INFINITY` when the strategy
    /// carries no estimator, e.g. a pure DNN plane prediction).
    pub estimated_err: f64,
    /// Measured `L∞` error of the reconstruction against the original.
    pub achieved_err: f64,
    /// Bytes fetched under the plan.
    pub bytes: u64,
    /// Total compressed size of the artifact.
    pub total_bytes: u64,
    /// The per-level plane counts the strategy chose.
    pub planes: Vec<u32>,
}

impl SweepPoint {
    /// Did the reconstruction exceed the requested bound?
    pub fn violated(&self) -> bool {
        self.achieved_err > self.abs_bound
    }

    /// Did the strategy's own estimator claim the bound was met?
    ///
    /// Soundness contracts are scoped to claimed points: a bound below the
    /// quantization floor is *unreachable* — the greedy planner fetches
    /// everything and reports an estimate above the bound — which is a
    /// property of the encoding, not a violation by the strategy.
    pub fn claimed(&self) -> bool {
        self.estimated_err <= self.abs_bound
    }

    /// `achieved / bound` ratio; values above 1 quantify how badly a
    /// violated point overshot. Zero achieved error maps to 0 regardless of
    /// the bound so that exact reconstructions never divide by zero.
    pub fn overshoot(&self) -> f64 {
        if self.achieved_err == 0.0 {
            0.0
        } else {
            self.achieved_err / self.abs_bound
        }
    }

    /// Fraction of the artifact fetched (the paper's retrieval-size axis).
    pub fn fraction_fetched(&self) -> f64 {
        self.bytes as f64 / self.total_bytes.max(1) as f64
    }
}

/// Sweep one strategy over `abs_bounds` for a single artifact.
///
/// `original` must be the exact field the artifact was compressed from;
/// achieved errors are measured against it.
///
/// Fails when the retriever produces a plan that does not match the
/// artifact (e.g. a model trained for a different level count).
pub fn sweep_strategy(
    original: &Field,
    compressed: &Compressed,
    features: &[f32],
    retriever: &dyn Retriever,
    abs_bounds: &[f64],
) -> Result<Vec<SweepPoint>, PmrError> {
    let ctx = RetrievalContext { compressed, features };
    let total_bytes = compressed.total_bytes();
    abs_bounds
        .iter()
        .map(|&abs_bound| {
            let plan = retriever.plan(&ctx, abs_bound);
            let m = crate::framework::measure_plan(original, compressed, &plan)?;
            Ok(SweepPoint {
                strategy: retriever.name().to_string(),
                field_name: original.name().to_string(),
                timestep: original.timestep(),
                abs_bound,
                estimated_err: plan.estimated_error,
                achieved_err: m.achieved_err,
                bytes: m.bytes,
                total_bytes,
                planes: plan.planes,
            })
        })
        .collect()
}

/// Sweep every strategy over `abs_bounds` for a single artifact.
pub fn sweep(
    original: &Field,
    compressed: &Compressed,
    features: &[f32],
    retrievers: &[&dyn Retriever],
    abs_bounds: &[f64],
) -> Result<Vec<SweepPoint>, PmrError> {
    let mut out = Vec::new();
    for r in retrievers {
        out.extend(sweep_strategy(original, compressed, features, *r, abs_bounds)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::retrieval_features;
    use crate::framework::Theory;
    use pmr_field::Shape;
    use pmr_mgard::CompressConfig;

    fn wave() -> Field {
        Field::from_fn("w", 0, Shape::cube(9), |x, y, z| {
            ((x as f64) * 0.4).sin() + ((y as f64) * 0.3).cos() + (z as f64) * 0.02
        })
    }

    #[test]
    fn theory_sweep_is_sound_on_claimed_points() {
        let field = wave();
        let c = Compressed::compress(&field, &CompressConfig::default());
        let feats = retrieval_features(&field, &c);
        let bounds: Vec<f64> = [1e-1, 1e-2, 1e-3, 1e-4].map(|r| c.absolute_bound(r)).to_vec();
        let points = sweep_strategy(&field, &c, &feats, &Theory, &bounds).unwrap();
        assert_eq!(points.len(), bounds.len());
        for p in &points {
            assert_eq!(p.strategy, "MGARD");
            assert!(p.claimed(), "all these bounds are reachable");
            assert!(!p.violated(), "theory violated at bound {}", p.abs_bound);
            assert!(p.overshoot() <= 1.0);
            assert!(p.fraction_fetched() <= 1.0);
        }
        // Tighter bounds fetch no fewer bytes.
        for w in points.windows(2) {
            assert!(w[1].bytes >= w[0].bytes);
        }
    }

    #[test]
    fn sweep_covers_all_strategies() {
        let field = wave();
        let c = Compressed::compress(&field, &CompressConfig::default());
        let feats = retrieval_features(&field, &c);
        let bounds = [c.absolute_bound(1e-2)];
        let rs: Vec<&dyn Retriever> = vec![&Theory, &Theory];
        let points = sweep(&field, &c, &feats, &rs, &bounds).unwrap();
        assert_eq!(points.len(), 2);
    }
}
