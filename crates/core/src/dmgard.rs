//! D-MGARD: chained multi-output regression of bit-plane counts.
//!
//! One MLP per coefficient level (paper Fig. 6). Model `M_l` predicts `b_l`
//! from the base features, `log10(err)`, and the *previous levels'* plane
//! counts `b_0 … b_{l-1}` — exploiting the strong correlation between plane
//! counts (Fig. 5a) that an independent multi-output MLP would ignore. At
//! inference the chain runs level 0 → L−1, each prediction feeding the next
//! model (Fig. 6b). Training uses the **achieved** error of each record as
//! the error input (§III-C), so that querying with a user bound `e` yields
//! plane counts whose achieved error lands near `e` instead of far below it.
//!
//! All per-level models are independent and train in parallel threads, as
//! the paper notes is possible.

use crate::features::{self, NUM_BASE_FEATURES};
use crate::records::RetrievalRecord;
use pmr_mgard::RetrievalPlan;
use pmr_nn::{fit, Activation, Dataset, Loss, Matrix, Mlp, Standardizer, TrainConfig};
use serde::{Deserialize, Serialize};

/// D-MGARD hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DMgardConfig {
    /// Hidden-layer widths. The paper uses six fully-connected hidden
    /// layers; the default reproduces that depth at CPU-friendly width.
    pub hidden: Vec<usize>,
    /// Negative slope of the leaky ReLU.
    pub leaky_slope: f32,
    /// Training-loop settings (Huber(1) + Adam per the paper).
    pub train: TrainConfig,
    /// Chain the per-level models (CMOR, paper Fig. 6). When `false`, each
    /// level trains an independent MLP without the `b_0..b_{l-1}` inputs —
    /// the baseline the paper argues against (cited as [22]); kept for the
    /// `ablation_chain` bench.
    pub chained: bool,
    /// Also feed the scale-invariant field statistics (skewness, kurtosis,
    /// autocorrelation) into each level model. Off by default: on the
    /// synthetic evaluation data these statistics are nearly constant
    /// within a single training field, so the network attaches spurious
    /// weight to them and extrapolates badly when transferred across
    /// fields (paper protocol: train `J_x`, predict `B_x`/`E_x`). The
    /// data-characteristic signal the paper routes through its feature set
    /// is carried here by the per-level magnitude metadata inside the
    /// relative-error input instead (see `features::chain_input`).
    pub use_stat_features: bool,
}

impl Default for DMgardConfig {
    fn default() -> Self {
        DMgardConfig {
            hidden: vec![64, 64, 64, 64, 64, 64],
            leaky_slope: 0.01,
            // The paper trains 300 epochs at lr 5e-5 with batch 256 on a
            // GPU; at our scaled widths a higher lr with fewer epochs
            // reaches the same training accuracy in CPU-budget time.
            train: TrainConfig {
                epochs: 120,
                batch_size: 128,
                lr: 1e-3,
                loss: Loss::Huber(1.0),
                seed: 17,
            },
            chained: true,
            use_stat_features: false,
        }
    }
}

/// Per-level training diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSummary {
    /// Final epoch training loss per level model.
    pub final_losses: Vec<f32>,
}

/// The trained CMOR model stack.
#[derive(Debug, Clone)]
pub struct DMgard {
    models: Vec<Mlp>,
    standardizers: Vec<Standardizer>,
    /// Per-level target affine transform `(mean, std)`: networks are
    /// trained on z-scored plane counts for conditioning (the raw targets
    /// sit 8-32 plane-units away from a fresh network's output range); the
    /// Huber threshold is rescaled so the objective's minimizer is exactly
    /// the paper's Huber(1) on raw plane units.
    target_affine: Vec<(f32, f32)>,
    num_planes: u32,
    chained: bool,
    use_stat_features: bool,
}

impl DMgard {
    /// Train one MLP per level from harvested records.
    ///
    /// `num_levels`/`num_planes` must match the compression configuration
    /// that produced the records.
    pub fn train(
        records: &[RetrievalRecord],
        num_levels: usize,
        num_planes: u32,
        cfg: &DMgardConfig,
    ) -> (Self, TrainingSummary) {
        assert!(!records.is_empty(), "no training records");
        assert!(num_levels >= 1);
        assert!(records.iter().all(|r| r.planes.len() == num_levels), "level count mismatch");

        // Assemble per-level datasets. Model l sees the planes of levels
        // 0..l as *ground truth* during training (teacher forcing).
        let mut level_inputs: Vec<Vec<Vec<f32>>> = vec![Vec::new(); num_levels];
        let mut level_targets: Vec<Vec<f32>> = vec![Vec::new(); num_levels];
        let feat_width = NUM_BASE_FEATURES + num_levels;
        for r in records {
            assert_eq!(
                r.features.len(),
                feat_width,
                "features must be stats + one scale per level (see features::retrieval_features)"
            );
            let (base, scales) = r.features.split_at(NUM_BASE_FEATURES);
            let inv = features::invariant_stats(base);
            let stats: &[f32] = if cfg.use_stat_features { &inv } else { &[] };
            let prev: Vec<f32> = r.planes.iter().map(|&b| b as f32).collect();
            for l in 0..num_levels {
                let chain = if cfg.chained { &prev[..l] } else { &prev[..0] };
                level_inputs[l].push(features::chain_input(
                    stats,
                    r.achieved_err,
                    scales[l],
                    chain,
                ));
                level_targets[l].push(r.planes[l] as f32);
            }
        }

        // Train the per-level models in parallel (they are independent).
        let results: Vec<(Mlp, Standardizer, (f32, f32), f32)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..num_levels)
                .map(|l| {
                    let inputs = &level_inputs[l];
                    let targets = &level_targets[l];
                    let cfg = cfg.clone();
                    scope.spawn(move || {
                        let x_raw = Matrix::from_rows(inputs);
                        let std = Standardizer::fit(&x_raw);
                        let x = std.transform(&x_raw);
                        // Z-score the targets (floor the spread so constant
                        // targets map to exactly zero).
                        let n = targets.len() as f32;
                        let mu = targets.iter().sum::<f32>() / n;
                        let var = targets.iter().map(|t| (t - mu) * (t - mu)).sum::<f32>() / n;
                        let sigma = var.sqrt().max(1e-3);
                        let y = Matrix::from_vec(
                            targets.len(),
                            1,
                            targets.iter().map(|t| (t - mu) / sigma).collect(),
                        );
                        let data = Dataset::new(x, y);
                        let mut sizes = vec![x_raw.cols()];
                        sizes.extend_from_slice(&cfg.hidden);
                        sizes.push(1);
                        let mut mlp = Mlp::new(
                            &sizes,
                            Activation::LeakyRelu(cfg.leaky_slope),
                            Activation::Identity,
                            cfg.train.seed.wrapping_add(l as u64),
                        );
                        let mut train_cfg = cfg.train;
                        train_cfg.seed = cfg.train.seed.wrapping_mul(31).wrapping_add(l as u64);
                        // Rescale the loss threshold so that e.g. Huber(1)
                        // on raw planes == Huber(1/sigma) on z-scores.
                        train_cfg.loss = match train_cfg.loss {
                            Loss::Huber(d) => Loss::Huber(d / sigma),
                            other => other,
                        };
                        let history = fit(&mut mlp, &data, &train_cfg);
                        let final_loss = history.last().copied().unwrap_or(f32::NAN);
                        (mlp, std, (mu, sigma), final_loss)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // Re-raise a trainer panic on the coordinating thread
                    // instead of masking it behind a second panic site.
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });

        let mut models = Vec::with_capacity(num_levels);
        let mut standardizers = Vec::with_capacity(num_levels);
        let mut target_affine = Vec::with_capacity(num_levels);
        let mut final_losses = Vec::with_capacity(num_levels);
        for (m, s, a, l) in results {
            models.push(m);
            standardizers.push(s);
            target_affine.push(a);
            final_losses.push(l);
        }
        (
            DMgard {
                models,
                standardizers,
                target_affine,
                num_planes,
                chained: cfg.chained,
                use_stat_features: cfg.use_stat_features,
            },
            TrainingSummary { final_losses },
        )
    }

    /// Number of coefficient levels the model covers.
    pub fn num_levels(&self) -> usize {
        self.models.len()
    }

    /// Bit-planes per level `B` (for clamping).
    pub fn num_planes(&self) -> u32 {
        self.num_planes
    }

    /// Raw (unrounded) chained prediction; exposed for error analysis.
    ///
    /// Takes `&self`: inference never mutates the stack, so one trained
    /// model can serve many planner threads concurrently.
    pub fn predict_raw(&self, base_features: &[f32], err: f64) -> Vec<f32> {
        assert_eq!(
            base_features.len(),
            NUM_BASE_FEATURES + self.models.len(),
            "features must be stats + one scale per level"
        );
        let (base, scales) = base_features.split_at(NUM_BASE_FEATURES);
        let inv = features::invariant_stats(base);
        let stats: &[f32] = if self.use_stat_features { &inv } else { &[] };
        let mut prev: Vec<f32> = Vec::with_capacity(self.models.len());
        let mut raw = Vec::with_capacity(self.models.len());
        for (l, model) in self.models.iter().enumerate() {
            let chain = if self.chained { prev.as_slice() } else { &[] };
            let mut x = features::chain_input(stats, err, scales[l], chain);
            self.standardizers[l].transform_row(&mut x);
            let (mu, sigma) = self.target_affine[l];
            let y = model.infer_row(&x)[0] * sigma + mu;
            raw.push(y);
            // Feed the *rounded* prediction forward, matching what the
            // retriever will actually fetch.
            prev.push(clamp_planes(y, self.num_planes) as f32);
        }
        raw
    }

    /// Predict plane counts for a requested maximum error `err`.
    pub fn predict(&self, base_features: &[f32], err: f64) -> Vec<u32> {
        self.predict_raw(base_features, err)
            .into_iter()
            .map(|y| clamp_planes(y, self.num_planes))
            .collect()
    }

    /// Predict and wrap as a [`RetrievalPlan`].
    pub fn predict_plan(&self, base_features: &[f32], err: f64) -> RetrievalPlan {
        RetrievalPlan::from_planes(self.predict(base_features, err))
    }

    /// Serialize the full stack (models + standardizers).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"PMRD1\0");
        out.extend_from_slice(&(self.models.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.num_planes.to_le_bytes());
        out.push(self.chained as u8);
        out.push(self.use_stat_features as u8);
        for ((m, s), &(mu, sigma)) in
            self.models.iter().zip(&self.standardizers).zip(&self.target_affine)
        {
            let mb = m.to_bytes();
            let sb = s.to_bytes();
            out.extend_from_slice(&(mb.len() as u64).to_le_bytes());
            out.extend_from_slice(&mb);
            out.extend_from_slice(&(sb.len() as u64).to_le_bytes());
            out.extend_from_slice(&sb);
            out.extend_from_slice(&mu.to_le_bytes());
            out.extend_from_slice(&sigma.to_le_bytes());
        }
        out
    }

    /// Inverse of [`DMgard::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        if take(&mut pos, 6)? != b"PMRD1\0" {
            return None;
        }
        let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let num_planes = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let chained = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let use_stat_features = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        if n == 0 || n > 64 {
            return None;
        }
        let mut models = Vec::with_capacity(n);
        let mut standardizers = Vec::with_capacity(n);
        let mut target_affine = Vec::with_capacity(n);
        for _ in 0..n {
            let ml = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize;
            models.push(Mlp::from_bytes(take(&mut pos, ml)?)?);
            let sl = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize;
            standardizers.push(Standardizer::from_bytes(take(&mut pos, sl)?)?);
            let mu = f32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let sigma = f32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            target_affine.push((mu, sigma));
        }
        if pos != buf.len() {
            return None;
        }
        Some(DMgard {
            models,
            standardizers,
            target_affine,
            num_planes,
            chained,
            use_stat_features,
        })
    }

    /// Write the serialized stack to `path`, creating parent directories.
    pub fn save(&self, path: &std::path::Path) -> Result<(), pmr_error::PmrError> {
        let io_err = |e: std::io::Error| pmr_error::PmrError::io_at(path, e);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
        std::fs::write(path, self.to_bytes()).map_err(io_err)
    }

    /// Read a stack previously written with [`DMgard::save`].
    pub fn load(path: &std::path::Path) -> Result<Self, pmr_error::PmrError> {
        let buf = std::fs::read(path).map_err(|e| pmr_error::PmrError::io_at(path, e))?;
        DMgard::from_bytes(&buf).ok_or_else(|| {
            pmr_error::PmrError::malformed("dmgard model", "corrupt or truncated model file")
        })
    }
}

/// Round and clamp a raw prediction into a valid plane count.
fn clamp_planes(y: f32, num_planes: u32) -> u32 {
    (y.round().max(0.0) as u32).min(num_planes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::collect_records;
    use pmr_field::{Field, Shape};
    use pmr_mgard::{CompressConfig, Compressed};

    fn fast_cfg() -> DMgardConfig {
        DMgardConfig {
            hidden: vec![24, 24],
            train: TrainConfig { epochs: 60, batch_size: 32, lr: 3e-3, ..Default::default() },
            ..Default::default()
        }
    }

    fn training_records() -> (Vec<RetrievalRecord>, usize, u32) {
        let mut records = Vec::new();
        let cfg = CompressConfig { levels: 3, num_planes: 16, ..Default::default() };
        for t in 0..4usize {
            let field = Field::from_fn("f", t, Shape::cube(9), move |x, y, z| {
                ((x as f64) * (0.3 + t as f64 * 0.05)).sin() + ((y + z) as f64 * 0.2).cos() * 0.5
            });
            let c = Compressed::compress(&field, &cfg);
            records.extend(collect_records(&field, &c, &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1]));
        }
        (records, 3, 16)
    }

    #[test]
    fn trains_and_predicts_valid_planes() {
        let (records, levels, planes) = training_records();
        let (model, summary) = DMgard::train(&records, levels, planes, &fast_cfg());
        assert_eq!(summary.final_losses.len(), levels);
        assert!(summary.final_losses.iter().all(|l| l.is_finite()));
        let pred = model.predict(&records[0].features, records[0].achieved_err);
        assert_eq!(pred.len(), levels);
        assert!(pred.iter().all(|&b| b <= planes));
    }

    #[test]
    fn learns_the_training_mapping_roughly() {
        let (records, levels, planes) = training_records();
        let (model, _) = DMgard::train(&records, levels, planes, &fast_cfg());
        // On training points the prediction should be within a couple of
        // planes for most records (paper: majority within ±1).
        let mut total_err = 0f64;
        let mut count = 0f64;
        for r in &records {
            let pred = model.predict(&r.features, r.achieved_err);
            for (p, &t) in pred.iter().zip(&r.planes) {
                total_err += (*p as f64 - t as f64).abs();
                count += 1.0;
            }
        }
        let mean_abs = total_err / count;
        assert!(mean_abs < 3.0, "mean abs plane error {mean_abs}");
    }

    #[test]
    fn tighter_error_requests_more_planes() {
        let (records, levels, planes) = training_records();
        let (model, _) = DMgard::train(&records, levels, planes, &fast_cfg());
        let f = &records[0].features;
        let loose: u32 = model.predict(f, 1e-1).iter().sum();
        let tight: u32 = model.predict(f, 1e-6).iter().sum();
        assert!(tight > loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn persistence_roundtrip() {
        let (records, levels, planes) = training_records();
        let (model, _) = DMgard::train(&records, levels, planes, &fast_cfg());
        let bytes = model.to_bytes();
        let rt = DMgard::from_bytes(&bytes).expect("roundtrip");
        let f = &records[0].features;
        assert_eq!(model.predict(f, 1e-3), rt.predict(f, 1e-3));
        assert!(DMgard::from_bytes(&bytes[..10]).is_none());
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(clamp_planes(-3.2, 16), 0);
        assert_eq!(clamp_planes(4.4, 16), 4);
        assert_eq!(clamp_planes(4.6, 16), 5);
        assert_eq!(clamp_planes(99.0, 16), 16);
    }
}
