//! Property tests for the DNN retrieval layer.

use pmr_core::emgard::{level_signature, SIG_DIM};
use pmr_core::features;
use pmr_core::{collect_records, DMgard, EMgard};
use pmr_field::{Field, Shape};
use pmr_mgard::{CompressConfig, Compressed};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = Field> {
    (4usize..9, any::<u64>(), 0usize..8).prop_map(|(n, seed, t)| {
        Field::from_fn("p", t, Shape::cube(n), move |x, y, z| {
            let h = ((x + 37 * y + 1009 * z) as u64)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x9E3779B97F4A7C15);
            ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 8.0
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn signature_always_well_formed(coeffs in proptest::collection::vec(-1e12f64..1e12, 0..300)) {
        let sig = level_signature(&coeffs);
        prop_assert_eq!(sig.len(), SIG_DIM);
        prop_assert!(sig.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn retrieval_features_are_finite(field in arb_field()) {
        let c = Compressed::compress(&field, &CompressConfig::default());
        let f = features::retrieval_features(&field, &c);
        prop_assert_eq!(f.len(), features::NUM_BASE_FEATURES + c.num_levels());
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn records_always_respect_bounds(field in arb_field()) {
        let c = Compressed::compress(&field, &CompressConfig::default());
        let recs = collect_records(&field, &c, &[1e-5, 1e-3, 1e-1]);
        for r in &recs {
            prop_assert!(r.achieved_err <= r.abs_bound * (1.0 + 1e-12) ||
                         // unreachable bounds (below quantization floor) fetch everything
                         r.planes.iter().zip(c.levels()).all(|(&b, l)| b == l.num_planes()));
            prop_assert!(r.retrieved_bytes <= c.total_bytes());
        }
    }

    #[test]
    fn dmgard_from_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = DMgard::from_bytes(&bytes);
    }

    #[test]
    fn emgard_from_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = EMgard::from_bytes(&bytes);
    }

    #[test]
    fn chain_input_is_total(err in 0f64..1e9, scale in -30f32..30.0, prev in proptest::collection::vec(0f32..32.0, 0..6)) {
        let x = features::chain_input(&[], err, scale, &prev);
        prop_assert_eq!(x.len(), 2 + prev.len());
        prop_assert!(x.iter().all(|v| v.is_finite()));
    }
}
