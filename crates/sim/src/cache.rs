//! On-disk cache for generated datasets.
//!
//! Gray-Scott snapshots are expensive to recreate (the simulation must run
//! from t = 0), and benches/examples/tests request the same snapshots over
//! and over. The cache stores each `(config, field, timestep)` snapshot as
//! one file in the `pmr-field` binary format, keyed by the config
//! fingerprint.

use crate::gray_scott::{GrayScott, GrayScottConfig, GsSpecies};
use crate::warpx::{warpx_field, WarpXConfig, WarpXField};
use pmr_field::{io, Field};
use std::path::{Path, PathBuf};

/// A directory-backed snapshot cache.
#[derive(Debug, Clone)]
pub struct DatasetCache {
    dir: PathBuf,
}

impl DatasetCache {
    /// Cache rooted at `dir` (created lazily).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DatasetCache { dir: dir.into() }
    }

    /// The default location: `$PMR_DATA_DIR` if set, else
    /// `<workspace-target>/pmr-data`, else `./pmr-data`.
    pub fn default_location() -> PathBuf {
        if let Ok(dir) = std::env::var("PMR_DATA_DIR") {
            return PathBuf::from(dir);
        }
        if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
            return Path::new(&target).join("pmr-data");
        }
        PathBuf::from("target").join("pmr-data")
    }

    /// Cache with the default location.
    pub fn default_cache() -> Self {
        DatasetCache::new(Self::default_location())
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, fingerprint: &str, field_name: &str, t: usize) -> PathBuf {
        self.dir.join(fingerprint).join(format!("{field_name}_t{t:04}.pmrf"))
    }

    /// A WarpX-synthetic snapshot; generated on demand (generation is cheap
    /// enough that only the file round-trip is cached).
    pub fn warpx(&self, cfg: &WarpXConfig, field: WarpXField, t: usize) -> Field {
        assert!(t < cfg.snapshots, "timestep {t} out of range");
        let path = self.path_for(&cfg.fingerprint(), field.field_name(), t);
        if let Ok(f) = io::load(&path) {
            return f;
        }
        let f = warpx_field(cfg, field, t);
        // The freshly generated field is returned regardless; the next
        // call simply regenerates on a cache miss.
        // lint:allow(error_swallow): cache write failures are non-fatal (e.g. read-only media)
        let _ = io::save(&f, &path);
        f
    }

    /// A Gray-Scott snapshot. If not cached, the whole run up to
    /// `cfg.snapshots` is simulated once and all snapshots are stored.
    pub fn gray_scott(&self, cfg: &GrayScottConfig, species: GsSpecies, t: usize) -> Field {
        assert!(t < cfg.snapshots, "timestep {t} out of range");
        let path = self.path_for(&cfg.fingerprint(), species.field_name(), t);
        if let Ok(f) = io::load(&path) {
            return f;
        }
        self.ensure_gray_scott(cfg);
        io::load(&path).expect("snapshot must exist after simulation")
    }

    /// Run the Gray-Scott simulation and persist every snapshot that is not
    /// already on disk.
    pub fn ensure_gray_scott(&self, cfg: &GrayScottConfig) {
        let fp = cfg.fingerprint();
        let missing = (0..cfg.snapshots).any(|t| {
            !self.path_for(&fp, GsSpecies::U.field_name(), t).exists()
                || !self.path_for(&fp, GsSpecies::V.field_name(), t).exists()
        });
        if !missing {
            return;
        }
        GrayScott::new(*cfg).run(|t, u, v| {
            io::save(&u, &self.path_for(&fp, GsSpecies::U.field_name(), t))
                .expect("cache write failed");
            io::save(&v, &self.path_for(&fp, GsSpecies::V.field_name(), t))
                .expect("cache write failed");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> DatasetCache {
        DatasetCache::new(std::env::temp_dir().join(format!("pmr_cache_test_{tag}")))
    }

    #[test]
    fn warpx_cache_roundtrip() {
        let cache = temp_cache("wx");
        let cfg = WarpXConfig { size: 8, snapshots: 4, ..Default::default() };
        let a = cache.warpx(&cfg, WarpXField::Bx, 2);
        let b = cache.warpx(&cfg, WarpXField::Bx, 2); // from disk now
        assert_eq!(a, b);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn gray_scott_cache_runs_once() {
        let cache = temp_cache("gs");
        std::fs::remove_dir_all(cache.dir()).ok();
        let cfg =
            GrayScottConfig { size: 8, snapshots: 3, steps_per_snapshot: 2, ..Default::default() };
        let u1 = cache.gray_scott(&cfg, GsSpecies::U, 1);
        let v2 = cache.gray_scott(&cfg, GsSpecies::V, 2);
        assert_eq!(u1.timestep(), 1);
        assert_eq!(v2.name(), "D_v");
        // Second access hits the files.
        let u1b = cache.gray_scott(&cfg, GsSpecies::U, 1);
        assert_eq!(u1, u1b);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_timestep_rejected() {
        let cache = temp_cache("oob");
        let cfg = WarpXConfig { size: 8, snapshots: 2, ..Default::default() };
        let _ = cache.warpx(&cfg, WarpXField::Ex, 2);
    }
}
