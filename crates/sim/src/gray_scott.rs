//! 3-D Gray-Scott reaction–diffusion simulation (Pearson, *Science* 1993).
//!
//! Two species `u` and `v` react and diffuse on a periodic cube:
//!
//! ```text
//!   ∂u/∂t = Du ∇²u − u v² + F (1 − u)
//!   ∂v/∂t = Dv ∇²v + u v² − (F + k) v
//! ```
//!
//! integrated with explicit Euler and a 7-point Laplacian. The default
//! parameters sit in the pattern-forming regime, so snapshots evolve
//! non-trivially over time — which is exactly what the paper's
//! train-on-early / test-on-late protocol needs.

use pmr_field::{Field, Shape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which species field to extract (paper names: `D_u`, `D_v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GsSpecies {
    U,
    V,
}

impl GsSpecies {
    /// Field name used throughout the evaluation (`"D_u"` / `"D_v"`).
    pub fn field_name(self) -> &'static str {
        match self {
            GsSpecies::U => "D_u",
            GsSpecies::V => "D_v",
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrayScottConfig {
    /// Cube side length (paper: 512, here scaled down).
    pub size: usize,
    /// Feed rate `F`.
    pub feed: f64,
    /// Kill rate `k`.
    pub kill: f64,
    /// Diffusion rate of `u`.
    pub du: f64,
    /// Diffusion rate of `v`.
    pub dv: f64,
    /// Euler timestep.
    pub dt: f64,
    /// Integration steps between saved snapshots.
    pub steps_per_snapshot: usize,
    /// Number of snapshots to produce.
    pub snapshots: usize,
    /// RNG seed for the initial perturbation.
    pub seed: u64,
}

impl Default for GrayScottConfig {
    fn default() -> Self {
        GrayScottConfig {
            size: 48,
            feed: 0.025,
            kill: 0.055,
            du: 0.2,
            dv: 0.1,
            // Explicit-Euler stability for 3-D diffusion needs
            // dt <= 1 / (6 * max(du, dv)) = 0.83; stay safely below.
            dt: 0.5,
            steps_per_snapshot: 10,
            snapshots: 48,
            seed: 42,
        }
    }
}

impl GrayScottConfig {
    /// Stable identifier for on-disk caching.
    pub fn fingerprint(&self) -> String {
        format!(
            "gs_n{}_f{:.4}_k{:.4}_du{:.3}_dv{:.3}_dt{:.2}_sps{}_s{}",
            self.size,
            self.feed,
            self.kill,
            self.du,
            self.dv,
            self.dt,
            self.steps_per_snapshot,
            self.seed
        )
    }
}

/// A running Gray-Scott simulation.
#[derive(Debug, Clone)]
pub struct GrayScott {
    cfg: GrayScottConfig,
    shape: Shape,
    u: Vec<f64>,
    v: Vec<f64>,
    scratch_u: Vec<f64>,
    scratch_v: Vec<f64>,
    /// Integration steps taken so far.
    steps: usize,
}

impl GrayScott {
    /// Initialise: `u = 1`, `v = 0`, with a perturbed seed cube in the
    /// centre plus small seeded noise (the standard Gray-Scott setup).
    pub fn new(cfg: GrayScottConfig) -> Self {
        assert!(cfg.size >= 4, "grid too small for the 7-point stencil");
        let shape = Shape::cube(cfg.size);
        let n = shape.len();
        let mut u = vec![1.0; n];
        let mut v = vec![0.0; n];
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let c = cfg.size / 2;
        let r = (cfg.size / 8).max(2);
        for z in c - r..c + r {
            for y in c - r..c + r {
                for x in c - r..c + r {
                    let i = shape.index(x, y, z);
                    u[i] = 0.5 + rng.random_range(-0.05..0.05);
                    v[i] = 0.25 + rng.random_range(-0.05..0.05);
                }
            }
        }
        // Tiny broadband noise to break symmetry everywhere.
        for ui in u.iter_mut() {
            *ui += rng.random_range(-0.01..0.01);
        }

        GrayScott { cfg, shape, u, v, scratch_u: vec![0.0; n], scratch_v: vec![0.0; n], steps: 0 }
    }

    pub fn config(&self) -> &GrayScottConfig {
        &self.cfg
    }

    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Integration steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps
    }

    /// Advance one Euler step.
    pub fn step(&mut self) {
        let n = self.cfg.size;
        let shape = self.shape;
        let (sx, sy, sz) = (shape.stride(0), shape.stride(1), shape.stride(2));
        let u = &self.u;
        let v = &self.v;
        let nu = &mut self.scratch_u;
        let nv = &mut self.scratch_v;
        let GrayScottConfig { feed, kill, du, dv, dt, .. } = self.cfg;

        for z in 0..n {
            let zm = if z == 0 { n - 1 } else { z - 1 };
            let zp = if z == n - 1 { 0 } else { z + 1 };
            for y in 0..n {
                let ym = if y == 0 { n - 1 } else { y - 1 };
                let yp = if y == n - 1 { 0 } else { y + 1 };
                let row = y * sy + z * sz;
                let row_ym = ym * sy + z * sz;
                let row_yp = yp * sy + z * sz;
                let row_zm = y * sy + zm * sz;
                let row_zp = y * sy + zp * sz;
                for x in 0..n {
                    let xm = if x == 0 { n - 1 } else { x - 1 };
                    let xp = if x == n - 1 { 0 } else { x + 1 };
                    let i = row + x * sx;
                    let uc = u[i];
                    let vc = v[i];
                    let lap_u = u[row + xm]
                        + u[row + xp]
                        + u[row_ym + x]
                        + u[row_yp + x]
                        + u[row_zm + x]
                        + u[row_zp + x]
                        - 6.0 * uc;
                    let lap_v = v[row + xm]
                        + v[row + xp]
                        + v[row_ym + x]
                        + v[row_yp + x]
                        + v[row_zm + x]
                        + v[row_zp + x]
                        - 6.0 * vc;
                    let uvv = uc * vc * vc;
                    nu[i] = uc + dt * (du * lap_u - uvv + feed * (1.0 - uc));
                    nv[i] = vc + dt * (dv * lap_v + uvv - (feed + kill) * vc);
                }
            }
        }
        std::mem::swap(&mut self.u, &mut self.scratch_u);
        std::mem::swap(&mut self.v, &mut self.scratch_v);
        self.steps += 1;
    }

    /// Advance to the next snapshot boundary.
    pub fn advance_snapshot(&mut self) {
        for _ in 0..self.cfg.steps_per_snapshot {
            self.step();
        }
    }

    /// Current state of a species as a [`Field`] tagged with the snapshot
    /// index `t`.
    pub fn snapshot(&self, species: GsSpecies, t: usize) -> Field {
        let data = match species {
            GsSpecies::U => self.u.clone(),
            GsSpecies::V => self.v.clone(),
        };
        Field::new(species.field_name(), t, self.shape, data)
    }

    /// Run the full simulation, invoking `sink(t, u_field, v_field)` for
    /// each snapshot (t = 0 is the state after the first advance).
    pub fn run(mut self, mut sink: impl FnMut(usize, Field, Field)) {
        for t in 0..self.cfg.snapshots {
            self.advance_snapshot();
            sink(t, self.snapshot(GsSpecies::U, t), self.snapshot(GsSpecies::V, t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> GrayScottConfig {
        GrayScottConfig { size: 12, snapshots: 3, steps_per_snapshot: 5, ..Default::default() }
    }

    #[test]
    fn concentrations_stay_physical() {
        let mut sim = GrayScott::new(tiny_cfg());
        for _ in 0..50 {
            sim.step();
        }
        let u = sim.snapshot(GsSpecies::U, 0);
        let v = sim.snapshot(GsSpecies::V, 0);
        let (ulo, uhi) = u.min_max();
        let (vlo, vhi) = v.min_max();
        assert!(ulo >= -0.1 && uhi <= 1.5, "u out of range [{ulo},{uhi}]");
        assert!(vlo >= -0.1 && vhi <= 1.5, "v out of range [{vlo},{vhi}]");
    }

    #[test]
    fn fields_evolve_over_time() {
        let mut sim = GrayScott::new(tiny_cfg());
        sim.advance_snapshot();
        let early = sim.snapshot(GsSpecies::V, 0);
        for _ in 0..10 {
            sim.advance_snapshot();
        }
        let late = sim.snapshot(GsSpecies::V, 10);
        let diff = pmr_field::error::max_abs_error(early.data(), late.data());
        assert!(diff > 1e-4, "simulation appears frozen (diff={diff})");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let mut cfg = tiny_cfg();
            cfg.seed = seed;
            let mut sim = GrayScott::new(cfg);
            sim.advance_snapshot();
            sim.snapshot(GsSpecies::U, 0)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn run_produces_all_snapshots() {
        let mut count = 0;
        GrayScott::new(tiny_cfg()).run(|t, u, v| {
            assert_eq!(u.timestep(), t);
            assert_eq!(u.name(), "D_u");
            assert_eq!(v.name(), "D_v");
            count += 1;
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn reaction_conserves_total_mass_loosely() {
        // Feed adds u, kill removes v; totals change slowly but must not
        // explode (stability check for the default dt).
        let mut sim = GrayScott::new(tiny_cfg());
        let total0: f64 = sim.u.iter().sum::<f64>() + sim.v.iter().sum::<f64>();
        for _ in 0..30 {
            sim.step();
        }
        let total1: f64 = sim.u.iter().sum::<f64>() + sim.v.iter().sum::<f64>();
        assert!((total1 - total0).abs() / total0 < 0.5, "mass drifted {total0} -> {total1}");
        assert!(total1.is_finite());
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = tiny_cfg();
        let mut b = tiny_cfg();
        b.feed = 0.03;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
