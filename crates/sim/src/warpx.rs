//! Synthetic WarpX-like laser-driven electron acceleration fields.
//!
//! The paper's WarpX dataset comes from a laser wakefield acceleration (LWFA)
//! run on Summit, which we cannot reproduce. This generator evaluates an
//! analytic-plus-stochastic model of the same scenario directly on the grid:
//!
//! * a linearly polarised **laser pulse** with peak amplitude `a0` and
//!   duration `τ` propagates along x,
//! * a **plasma wake** with wavelength `λ_p ∝ 1/√n_e` trails the pulse and
//!   grows over time (`E_x`),
//! * an accelerated **electron bunch** and the plasma return current form
//!   `J_x` (spiky, localised),
//! * the bunch's azimuthal self-field plus quasi-static structures form
//!   `B_x`,
//! * seeded low-frequency background modes drift with time, and hash-based
//!   broadband micro-noise makes the lowest bit-planes incompressible, as
//!   for real simulation output.
//!
//! What the evaluation needs from this substitute — and what it provides —
//! is (a) field statistics that drift across timesteps, (b) compressibility
//! that depends non-linearly on `t`, the error bound, `a0`, `n_e` and `τ`
//! (the exact sweeps of paper Fig. 3), and (c) three structurally different
//! fields sharing one simulation configuration.

use pmr_field::{Field, Shape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which scalar field to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WarpXField {
    /// Magnetic field along x.
    Bx,
    /// Electric field along x (dominated by the wakefield).
    Ex,
    /// Current density along x (bunch + return current).
    Jx,
}

impl WarpXField {
    /// Field name as used in the paper (`"B_x"`, `"E_x"`, `"J_x"`).
    pub fn field_name(self) -> &'static str {
        match self {
            WarpXField::Bx => "B_x",
            WarpXField::Ex => "E_x",
            WarpXField::Jx => "J_x",
        }
    }

    /// All three fields.
    pub fn all() -> [WarpXField; 3] {
        [WarpXField::Bx, WarpXField::Ex, WarpXField::Jx]
    }

    fn id(self) -> u64 {
        match self {
            WarpXField::Bx => 1,
            WarpXField::Ex => 2,
            WarpXField::Jx => 3,
        }
    }
}

/// Simulation configuration — the knobs of paper Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarpXConfig {
    /// Cube side length (paper: 512, scaled in this repo).
    pub size: usize,
    /// Laser peak (normalised) amplitude `a0`.
    pub a0: f64,
    /// Electron density `n_e` in units of the reference density.
    pub electron_density: f64,
    /// Laser duration `τ` (fraction of the domain the pulse spans).
    pub laser_duration: f64,
    /// Number of snapshots the run produces.
    pub snapshots: usize,
    /// Seed for background modes and micro-noise.
    pub seed: u64,
}

impl Default for WarpXConfig {
    fn default() -> Self {
        WarpXConfig {
            size: 48,
            a0: 2.0,
            electron_density: 1.0,
            laser_duration: 0.05,
            snapshots: 48,
            seed: 1,
        }
    }
}

impl WarpXConfig {
    /// Stable identifier for on-disk caching (includes a generator version
    /// so cached snapshots are invalidated when the field model changes).
    pub fn fingerprint(&self) -> String {
        format!(
            "wx2_n{}_a{:.3}_ne{:.3}_tau{:.4}_s{}",
            self.size, self.a0, self.electron_density, self.laser_duration, self.seed
        )
    }
}

/// A background mode: low-frequency structure drifting over time.
struct Mode {
    kx: f64,
    ky: f64,
    kz: f64,
    amp: f64,
    phase: f64,
    omega: f64,
}

fn background_modes(cfg: &WarpXConfig, field: WarpXField, scale: f64) -> Vec<Mode> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9) ^ field.id());
    (0..6)
        .map(|_| Mode {
            kx: std::f64::consts::TAU * rng.random_range(1.0..4.0),
            ky: std::f64::consts::TAU * rng.random_range(1.0..4.0),
            kz: std::f64::consts::TAU * rng.random_range(1.0..4.0),
            amp: scale * rng.random_range(0.02..0.08),
            phase: rng.random_range(0.0..std::f64::consts::TAU),
            omega: rng.random_range(0.5..3.0),
        })
        .collect()
}

/// Deterministic broadband micro-noise in [-1, 1] from position and seed.
#[inline]
fn hash_noise(x: usize, y: usize, z: usize, salt: u64) -> f64 {
    let mut h = salt ^ 0x51_7C_C1_B7_27_22_0A_95;
    for v in [x as u64, y as u64, z as u64] {
        h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Generate one field at snapshot `t` (`0 <= t < cfg.snapshots`).
pub fn warpx_field(cfg: &WarpXConfig, field: WarpXField, t: usize) -> Field {
    assert!(cfg.size >= 4, "grid too small");
    assert!(cfg.snapshots >= 1);
    let n = cfg.size;
    let shape = Shape::cube(n);
    let tn = t as f64 / cfg.snapshots as f64; // normalised time in [0, 1)

    // Pulse kinematics: enters on the left, crosses the domain once.
    let xc = 0.08 + 0.9 * tn;
    let sigma_x = cfg.laser_duration.max(1e-3);
    let sigma_r = 0.16;
    // Laser carrier resolvable on the grid: a few points per cycle.
    let k0 = std::f64::consts::TAU * (n as f64 / 6.0);
    // Plasma wavenumber grows with sqrt(density).
    let kp = std::f64::consts::TAU * 6.0 * cfg.electron_density.max(1e-6).sqrt();
    // Wake excitation is resonant: strongest when the pulse length matches
    // the plasma wavelength (kp * sigma_x ~ pi/2 for a Gaussian pulse);
    // this is what couples laser duration and density to every field.
    let resonance = {
        let r = kp * sigma_x / std::f64::consts::FRAC_PI_2;
        r * (1.0 - r).exp()
    };
    // Wake amplitude grows then saturates (dephasing).
    let wake_amp = cfg.a0 * cfg.a0 * resonance * (1.0 - (-3.0 * tn).exp()) * (1.0 - 0.4 * tn);
    // Accelerated bunch sits half a plasma wavelength behind the pulse and
    // gains charge over time; injection efficiency follows the resonance.
    let xb = xc - std::f64::consts::PI / kp;
    let bunch_amp = cfg.electron_density * cfg.a0 * tn * 4.0 * (0.25 + 0.75 * resonance);
    let sigma_b = 0.02 + 0.01 * tn + 0.2 * sigma_x;

    let scale = match field {
        WarpXField::Bx => cfg.a0,
        WarpXField::Ex => cfg.a0 * cfg.a0,
        WarpXField::Jx => cfg.electron_density * cfg.a0,
    };
    let modes = background_modes(cfg, field, scale);
    let noise_amp = 2e-4 * scale;
    let salt = cfg.seed ^ field.id().wrapping_mul(0xA24B_AED4_963E_E407) ^ (t as u64) << 17;

    let inv = 1.0 / n as f64;
    Field::from_fn(field.field_name(), t, shape, |xi, yi, zi| {
        let x = xi as f64 * inv;
        let y = yi as f64 * inv;
        let z = zi as f64 * inv;
        let ry = y - 0.5;
        let rz = z - 0.5;
        let r2 = ry * ry + rz * rz;
        let trans = (-r2 / (2.0 * sigma_r * sigma_r)).exp();
        let xi_rel = x - xc;
        let pulse_env = (-xi_rel * xi_rel / (2.0 * sigma_x * sigma_x)).exp() * trans;
        // Wake exists only behind the pulse, decaying away from it.
        let behind = if xi_rel < 0.0 { (xi_rel / 0.45).exp() } else { 0.0 };
        let wake = wake_amp * behind * (kp * xi_rel).cos() * trans;

        let mut v = match field {
            WarpXField::Ex => {
                // Longitudinal field: wake plus a weak longitudinal laser
                // component at the carrier frequency.
                wake + 0.15 * cfg.a0 * pulse_env * (k0 * xi_rel).sin()
            }
            WarpXField::Bx => {
                // Quasi-static azimuthal self-field of bunch and wake
                // currents: antisymmetric swirl around the axis, plus a
                // carrier-frequency laser residue.
                let db = x - xb;
                let bunch = (-db * db / (2.0 * sigma_b * sigma_b)).exp();
                cfg.a0 * (ry - rz) * 8.0 * trans * (0.5 * wake_amp * behind + bunch * tn)
                    + 0.1 * cfg.a0 * pulse_env * (k0 * xi_rel).cos()
            }
            WarpXField::Jx => {
                // Electron bunch current (sharp) + plasma return current
                // (oscillatory, opposite sign).
                let db = x - xb;
                let bunch = bunch_amp * (-db * db / (2.0 * sigma_b * sigma_b)).exp() * trans;
                let ret =
                    -0.3 * cfg.electron_density * wake_amp * behind * (kp * xi_rel).sin() * trans;
                bunch + ret
            }
        };
        for m in &modes {
            v += m.amp * (m.kx * x + m.ky * y + m.kz * z + m.phase + m.omega * tn).sin();
        }
        v + noise_amp * hash_noise(xi, yi, zi, salt)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_field::FieldStats;

    fn cfg() -> WarpXConfig {
        WarpXConfig { size: 16, snapshots: 8, ..Default::default() }
    }

    #[test]
    fn deterministic_generation() {
        let a = warpx_field(&cfg(), WarpXField::Ex, 3);
        let b = warpx_field(&cfg(), WarpXField::Ex, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn fields_differ_from_each_other() {
        let e = warpx_field(&cfg(), WarpXField::Ex, 3);
        let j = warpx_field(&cfg(), WarpXField::Jx, 3);
        assert!(pmr_field::error::max_abs_error(e.data(), j.data()) > 1e-3);
        assert_eq!(e.name(), "E_x");
        assert_eq!(j.name(), "J_x");
    }

    #[test]
    fn fields_evolve_with_time() {
        for f in WarpXField::all() {
            let a = warpx_field(&cfg(), f, 1);
            let b = warpx_field(&cfg(), f, 6);
            let diff = pmr_field::error::max_abs_error(a.data(), b.data());
            assert!(diff > 1e-3, "{} frozen in time", f.field_name());
        }
    }

    #[test]
    fn statistics_drift_with_time() {
        // Train-early/test-late only makes sense if moments move.
        let s1 = FieldStats::compute(&warpx_field(&cfg(), WarpXField::Jx, 0));
        let s2 = FieldStats::compute(&warpx_field(&cfg(), WarpXField::Jx, 7));
        assert!((s1.std - s2.std).abs() > 1e-6 || (s1.max - s2.max).abs() > 1e-6);
    }

    #[test]
    fn amplitude_scales_with_a0() {
        let mut strong = cfg();
        strong.a0 = 4.0;
        let weak = warpx_field(&cfg(), WarpXField::Ex, 5);
        let heavy = warpx_field(&strong, WarpXField::Ex, 5);
        assert!(heavy.max_abs() > weak.max_abs());
    }

    #[test]
    fn density_changes_wake_structure() {
        let mut dense = cfg();
        dense.electron_density = 4.0;
        let a = warpx_field(&cfg(), WarpXField::Ex, 5);
        let b = warpx_field(&dense, WarpXField::Ex, 5);
        // Different plasma wavelength -> different field pattern.
        assert!(pmr_field::error::max_abs_error(a.data(), b.data()) > 1e-3);
    }

    #[test]
    fn all_values_finite() {
        for f in WarpXField::all() {
            for t in 0..8 {
                let field = warpx_field(&cfg(), f, t);
                assert!(field.data().iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let mut other = cfg();
        other.laser_duration = 0.1;
        assert_ne!(cfg().fingerprint(), other.fingerprint());
    }

    #[test]
    fn laser_duration_affects_wake_strength() {
        // The resonance makes the wake (and hence E_x amplitude) a
        // non-monotone function of the pulse duration.
        let amp = |tau: f64| {
            let mut c = cfg();
            c.laser_duration = tau;
            warpx_field(&c, WarpXField::Ex, 6).max_abs()
        };
        let amps: Vec<f64> = [0.005, 0.02, 0.08, 0.3].iter().map(|&t| amp(t)).collect();
        let max = amps.iter().cloned().fold(0.0f64, f64::max);
        let min = amps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > min * 1.05, "duration has no effect: {amps:?}");
        // Extremely short and extremely long pulses both under-drive the
        // wake relative to the best case.
        assert!(amps[0] < max || amps[3] < max);
    }

    #[test]
    fn pulse_travels_rightward() {
        // The x position of the peak |E_x| slab should advance with time.
        let centre_of_energy = |t: usize| {
            let f = warpx_field(&cfg(), WarpXField::Ex, t);
            let shape = f.shape();
            let mut best = (0usize, 0.0f64);
            for x in 0..shape.dim(0) {
                let mut slab = 0.0;
                for y in 0..shape.dim(1) {
                    for z in 0..shape.dim(2) {
                        slab += f.get(x, y, z).abs();
                    }
                }
                if slab > best.1 {
                    best = (x, slab);
                }
            }
            best.0
        };
        assert!(
            centre_of_energy(7) >= centre_of_energy(1),
            "pulse/wake should move toward larger x"
        );
    }

    #[test]
    fn bunch_current_grows_with_time() {
        // J_x carries an accelerated bunch whose charge grows with time.
        let a = warpx_field(&cfg(), WarpXField::Jx, 1).max_abs();
        let b = warpx_field(&cfg(), WarpXField::Jx, 7).max_abs();
        assert!(b > a, "bunch current should grow: t1={a} t7={b}");
    }
}
