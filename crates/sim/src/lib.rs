//! Scientific dataset generators for the progressive-retrieval evaluation.
//!
//! The paper evaluates on two applications (Table II):
//!
//! * **Gray-Scott** — a 3-D reaction–diffusion simulation; [`gray_scott`]
//!   implements the actual Pearson '93 model with an explicit Euler
//!   integrator and periodic boundaries, producing the `D_u`, `D_v` fields.
//! * **WarpX** — laser-driven electron acceleration. We cannot run WarpX
//!   itself, so [`warpx`] provides a *synthetic* laser–plasma generator with
//!   the same controllable knobs the paper sweeps (timestep, laser peak
//!   amplitude `a0`, electron density `n_e`, laser duration `τ`) producing
//!   the fields `B_x`, `E_x`, `J_x`. See DESIGN.md §2 for why this
//!   substitution preserves the evaluated behaviour.
//!
//! [`cache`] persists generated snapshots to disk so that benches and
//! examples do not regenerate them on every run.

pub mod cache;
pub mod gray_scott;
pub mod warpx;

pub use cache::DatasetCache;
pub use gray_scott::{GrayScott, GrayScottConfig, GsSpecies};
pub use warpx::{warpx_field, WarpXConfig, WarpXField};
