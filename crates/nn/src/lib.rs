//! A small, dependency-light neural-network library.
//!
//! The paper's models are plain multi-layer perceptrons — six
//! fully-connected hidden layers with leaky-ReLU activations trained with
//! the Huber loss (δ = 1) and Adam. Nothing about them requires a tensor
//! framework, so this crate implements exactly what is needed, from
//! scratch:
//!
//! * [`tensor::Matrix`] — a row-major `f32` matrix with the three matmul
//!   variants backpropagation needs,
//! * [`activation`] — leaky ReLU, ReLU, softplus, identity,
//! * [`linear::Linear`] + [`mlp::Mlp`] — layers with cached activations and
//!   exact reverse-mode gradients (verified against finite differences in
//!   the tests),
//! * [`loss`] — MSE, MAE and the Huber loss the paper selects (§III-C),
//! * [`optim::Adam`] — the Adam optimizer,
//! * [`data`] — feature standardisation, shuffled mini-batching, splits,
//! * [`train`] — the mini-batch training loop,
//! * model persistence via [`mlp::Mlp::to_bytes`] / [`mlp::Mlp::from_bytes`].

pub mod activation;
pub mod data;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod tensor;
pub mod train;

pub use activation::Activation;
pub use data::{Dataset, Standardizer};
pub use linear::Linear;
pub use loss::Loss;
pub use mlp::Mlp;
pub use optim::{Adam, LrSchedule, Optimizer, Sgd};
pub use tensor::Matrix;
pub use train::{fit, fit_with, FitReport, TrainConfig};
