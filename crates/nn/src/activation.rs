//! Elementwise activation functions.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Activation applied after a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(x, slope * x)` — the paper's hidden activation for D-MGARD
    /// (slope 0.01 unless configured otherwise).
    LeakyRelu(f32),
    /// `max(x, 0)` — the E-MGARD encoder's activation.
    Relu,
    /// `ln(1 + e^x)` — strictly positive output; used for the E-MGARD head
    /// so that predicted mapping constants satisfy `C_l > 0`.
    Softplus,
    /// Pass-through (regression output layers).
    Identity,
}

impl Activation {
    /// `f(x)`.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::LeakyRelu(s) => {
                if x >= 0.0 {
                    x
                } else {
                    s * x
                }
            }
            Activation::Relu => x.max(0.0),
            Activation::Softplus => {
                // Numerically stable: ln(1+e^x) = max(x,0) + ln(1+e^-|x|).
                x.max(0.0) + (-x.abs()).exp().ln_1p()
            }
            Activation::Identity => x,
        }
    }

    /// `f'(x)` evaluated at the pre-activation `x`.
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::LeakyRelu(s) => {
                if x >= 0.0 {
                    1.0
                } else {
                    s
                }
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Softplus => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => 1.0,
        }
    }

    /// Apply to every element of a matrix, returning a new matrix.
    pub fn apply_matrix(self, z: &Matrix) -> Matrix {
        let mut out = z.clone();
        out.map_inplace(|v| self.apply(v));
        out
    }

    /// Persistence tag (see `mlp::to_bytes`).
    pub fn tag(self) -> u8 {
        match self {
            Activation::LeakyRelu(_) => 0,
            Activation::Relu => 1,
            Activation::Softplus => 2,
            Activation::Identity => 3,
        }
    }

    /// Inverse of [`Activation::tag`]; `slope` is only read for leaky ReLU.
    pub fn from_tag(tag: u8, slope: f32) -> Option<Self> {
        match tag {
            0 => Some(Activation::LeakyRelu(slope)),
            1 => Some(Activation::Relu),
            2 => Some(Activation::Softplus),
            3 => Some(Activation::Identity),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaky_relu_values() {
        let a = Activation::LeakyRelu(0.01);
        assert_eq!(a.apply(2.0), 2.0);
        assert_eq!(a.apply(-2.0), -0.02);
        assert_eq!(a.derivative(2.0), 1.0);
        assert_eq!(a.derivative(-2.0), 0.01);
    }

    #[test]
    fn softplus_positive_and_smooth() {
        let a = Activation::Softplus;
        assert!(a.apply(-20.0) > 0.0);
        assert!((a.apply(20.0) - 20.0).abs() < 1e-5);
        assert!((a.derivative(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-3f32;
        for act in [
            Activation::LeakyRelu(0.05),
            Activation::Relu,
            Activation::Softplus,
            Activation::Identity,
        ] {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                assert!(
                    (fd - act.derivative(x)).abs() < 1e-2,
                    "{act:?} at {x}: fd={fd} an={}",
                    act.derivative(x)
                );
            }
        }
    }

    #[test]
    fn tag_roundtrip() {
        for act in [
            Activation::LeakyRelu(0.07),
            Activation::Relu,
            Activation::Softplus,
            Activation::Identity,
        ] {
            let rt = Activation::from_tag(act.tag(), 0.07).unwrap();
            assert_eq!(rt, act);
        }
        assert!(Activation::from_tag(9, 0.0).is_none());
    }
}
