//! Datasets, feature standardisation and mini-batching.

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-column z-score standardiser fitted on training features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fit column means and standard deviations (constant columns get
    /// `std = 1` so they transform to zero rather than NaN).
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit on an empty matrix");
        let n = x.rows() as f32;
        let mut mean = vec![0.0f32; x.cols()];
        for r in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; x.cols()];
        for r in 0..x.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(x.row(r)).zip(&mean) {
                let d = v - m;
                *s += d * d;
            }
        }
        // Columns with (near-)zero spread get std = 1 instead of a tiny
        // epsilon: dividing by an epsilon would blow microscopic jitter in
        // an almost-constant column up to huge z-scores and wreck training.
        let std: Vec<f32> = var
            .into_iter()
            .zip(&mean)
            .map(|(v, &m)| {
                let s = (v / n).sqrt();
                if s < 1e-4 * (1.0 + m.abs()) {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { mean, std }
    }

    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Transform a matrix (columns must match the fitted width).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.dim(), "column count mismatch");
        let mut out = x.clone();
        let cols = self.dim();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            let c = i % cols;
            *v = (*v - self.mean[c]) / self.std[c];
        }
        out
    }

    /// Transform a single row in place.
    pub fn transform_row(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.dim(), "row length mismatch");
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - self.mean[i]) / self.std[i];
        }
    }

    /// Undo [`Standardizer::transform_row`].
    pub fn inverse_row(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.dim(), "row length mismatch");
        for (i, v) in row.iter_mut().enumerate() {
            *v = *v * self.std[i] + self.mean[i];
        }
    }

    /// Persist to bytes (mean then std, f32 LE).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.dim() * 8);
        out.extend_from_slice(&(self.dim() as u32).to_le_bytes());
        for &v in self.mean.iter().chain(&self.std) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Inverse of [`Standardizer::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        if buf.len() < 4 {
            return None;
        }
        let dim = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
        if buf.len() != 4 + dim * 8 {
            return None;
        }
        let read =
            |off: usize| f32::from_le_bytes(buf[4 + off * 4..8 + off * 4].try_into().unwrap());
        let mean = (0..dim).map(read).collect();
        let std = (dim..2 * dim).map(read).collect();
        Some(Standardizer { mean, std })
    }
}

/// Paired features and targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    pub x: Matrix,
    pub y: Matrix,
}

impl Dataset {
    pub fn new(x: Matrix, y: Matrix) -> Self {
        assert_eq!(x.rows(), y.rows(), "feature/target row mismatch");
        Dataset { x, y }
    }

    pub fn len(&self) -> usize {
        self.x.rows()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministically shuffle and split into `(train, test)` with
    /// `train_frac` of the rows in the training set (at least one row each
    /// when possible).
    pub fn shuffle_split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac), "fraction out of range");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = ((self.len() as f64 * train_frac).round() as usize)
            .clamp(usize::from(self.len() > 1), self.len());
        let (a, b) = idx.split_at(cut);
        (
            Dataset::new(self.x.select_rows(a), self.y.select_rows(a)),
            Dataset::new(self.x.select_rows(b), self.y.select_rows(b)),
        )
    }

    /// Shuffled mini-batches for one epoch.
    pub fn batches(&self, batch_size: usize, seed: u64) -> Vec<(Matrix, Matrix)> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        idx.chunks(batch_size)
            .map(|chunk| (self.x.select_rows(chunk), self.y.select_rows(chunk)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let x = Matrix::from_vec(4, 2, vec![1., 10., 2., 20., 3., 30., 4., 40.]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        for c in 0..2 {
            let mean: f32 = (0..4).map(|r| t.get(r, c)).sum::<f32>() / 4.0;
            let var: f32 = (0..4).map(|r| t.get(r, c).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-6);
            assert!((var - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_column_does_not_nan() {
        let x = Matrix::from_vec(3, 1, vec![5., 5., 5.]);
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        assert!(t.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn row_transform_roundtrip() {
        let x = Matrix::from_vec(3, 2, vec![1., -3., 2., 0., 4., 9.]);
        let s = Standardizer::fit(&x);
        let mut row = vec![2.5f32, 1.0];
        let orig = row.clone();
        s.transform_row(&mut row);
        s.inverse_row(&mut row);
        for (a, b) in orig.iter().zip(&row) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn standardizer_persistence() {
        let x = Matrix::from_vec(3, 2, vec![1., -3., 2., 0., 4., 9.]);
        let s = Standardizer::fit(&x);
        let rt = Standardizer::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(s, rt);
        assert!(Standardizer::from_bytes(&[1, 2, 3]).is_none());
    }

    #[test]
    fn split_partitions_rows() {
        let n = 10;
        let x = Matrix::from_vec(n, 1, (0..n).map(|i| i as f32).collect());
        let y = x.clone();
        let d = Dataset::new(x, y);
        let (tr, te) = d.shuffle_split(0.7, 3);
        assert_eq!(tr.len() + te.len(), n);
        assert_eq!(tr.len(), 7);
        // Same seed -> same split.
        let (tr2, _) = d.shuffle_split(0.7, 3);
        assert_eq!(tr.x, tr2.x);
    }

    #[test]
    fn batches_cover_dataset() {
        let n = 11;
        let x = Matrix::from_vec(n, 1, (0..n).map(|i| i as f32).collect());
        let d = Dataset::new(x.clone(), x);
        let batches = d.batches(4, 1);
        assert_eq!(batches.len(), 3); // 4 + 4 + 3
        let mut seen: Vec<f32> = batches.iter().flat_map(|(bx, _)| bx.data().to_vec()).collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, (0..n).map(|i| i as f32).collect::<Vec<_>>());
    }
}
