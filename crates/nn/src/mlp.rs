//! Multi-layer perceptron composed of [`Linear`] layers and activations.

use crate::activation::Activation;
use crate::linear::Linear;
use crate::tensor::Matrix;
use pmr_error::PmrError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An MLP: `linear → act → linear → act → … → linear → out_act`.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    /// Activation after each layer; `acts.len() == layers.len()`.
    acts: Vec<Activation>,
    /// Pre-activation caches from the last forward pass.
    zs: Vec<Matrix>,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `&[in, h1, h2, out]`.
    ///
    /// `hidden_act` follows every layer except the last, which gets
    /// `out_act`. Initialisation is deterministic in `seed`.
    pub fn new(sizes: &[usize], hidden_act: Activation, out_act: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output widths");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = sizes.len() - 1;
        let mut layers = Vec::with_capacity(n);
        let mut acts = Vec::with_capacity(n);
        for i in 0..n {
            layers.push(Linear::new(sizes[i], sizes[i + 1], &mut rng));
            acts.push(if i + 1 == n { out_act } else { hidden_act });
        }
        Mlp { layers, acts, zs: Vec::new() }
    }

    /// Assemble from explicit layers (persistence path).
    pub fn from_parts(layers: Vec<Linear>, acts: Vec<Activation>) -> Self {
        assert_eq!(layers.len(), acts.len(), "one activation per layer");
        assert!(!layers.is_empty());
        for w in layers.windows(2) {
            assert_eq!(w[0].fan_out(), w[1].fan_in(), "layer widths must chain");
        }
        Mlp { layers, acts, zs: Vec::new() }
    }

    pub fn input_dim(&self) -> usize {
        self.layers[0].fan_in()
    }

    pub fn output_dim(&self) -> usize {
        self.layers.last().unwrap().fan_out()
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    pub fn activations(&self) -> &[Activation] {
        &self.acts
    }

    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Linear::num_params).sum()
    }

    /// Forward pass, caching pre-activations for [`Mlp::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.zs.clear();
        let mut a = x.clone();
        for (layer, act) in self.layers.iter_mut().zip(&self.acts) {
            let z = layer.forward(&a);
            a = act.apply_matrix(&z);
            self.zs.push(z);
        }
        a
    }

    /// Inference through shared references: no caches are written, so a
    /// trained network is usable concurrently from many threads.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            a = act.apply_matrix(&layer.infer(&a));
        }
        a
    }

    /// Convenience: [`Mlp::infer`] for one input row.
    pub fn infer_row(&self, row: &[f32]) -> Vec<f32> {
        self.infer(&Matrix::row_vector(row)).data().to_vec()
    }

    /// Inference without keeping caches around afterwards.
    pub fn predict(&mut self, x: &Matrix) -> Matrix {
        self.infer(x)
    }

    /// Convenience: predict for one input row.
    pub fn predict_row(&mut self, row: &[f32]) -> Vec<f32> {
        self.infer_row(row)
    }

    /// Backward pass from the loss gradient w.r.t. the network output.
    /// Fills every layer's `dw`/`db`.
    pub fn backward(&mut self, dloss: &Matrix) {
        assert_eq!(self.zs.len(), self.layers.len(), "backward requires a forward pass");
        let mut grad = dloss.clone();
        for i in (0..self.layers.len()).rev() {
            // dZ = dA ⊙ f'(Z)
            let z = &self.zs[i];
            let act = self.acts[i];
            {
                let gd = grad.data_mut();
                for (g, &zv) in gd.iter_mut().zip(z.data()) {
                    *g *= act.derivative(zv);
                }
            }
            grad = self.layers[i].backward(&grad);
        }
    }

    /// Zero every layer's gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Visit `(params, grads)` slices in a stable order (weights then bias,
    /// layer by layer). The optimizer relies on this ordering.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut [f32], &[f32])) {
        for l in &mut self.layers {
            f(l.w.data_mut(), l.dw.data());
            f(&mut l.b, &l.db);
        }
    }

    /// Serialize architecture + parameters to a self-contained byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"PMRN1\0");
        out.extend_from_slice(&(self.layers.len() as u32).to_le_bytes());
        for (l, act) in self.layers.iter().zip(&self.acts) {
            out.extend_from_slice(&(l.fan_in() as u32).to_le_bytes());
            out.extend_from_slice(&(l.fan_out() as u32).to_le_bytes());
            out.push(act.tag());
            let slope = match act {
                Activation::LeakyRelu(s) => *s,
                _ => 0.0,
            };
            out.extend_from_slice(&slope.to_le_bytes());
            for &v in l.w.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &v in &l.b {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Inverse of [`Mlp::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        if take(&mut pos, 6)? != b"PMRN1\0" {
            return None;
        }
        let n_layers = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        if n_layers == 0 || n_layers > 1024 {
            return None;
        }
        let mut layers = Vec::with_capacity(n_layers);
        let mut acts = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let fi = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            let fo = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            // Reject implausible widths *before* allocating: a corrupted
            // header must not drive `with_capacity` into a huge allocation.
            if fi == 0 || fo == 0 || fi > 65_536 || fo > 65_536 {
                return None;
            }
            // The remaining buffer must be able to hold this layer at all.
            if buf.len().saturating_sub(pos) < 5 + 4 * (fi * fo + fo) {
                return None;
            }
            let tag = take(&mut pos, 1)?[0];
            let slope = f32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let act = Activation::from_tag(tag, slope)?;
            let mut w = Vec::with_capacity(fi * fo);
            for _ in 0..fi * fo {
                w.push(f32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?));
            }
            let mut b = Vec::with_capacity(fo);
            for _ in 0..fo {
                b.push(f32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?));
            }
            layers.push(Linear::from_params(Matrix::from_vec(fi, fo, w), b));
            acts.push(act);
        }
        if pos != buf.len() {
            return None;
        }
        // Validate chaining before assembling.
        for w in layers.windows(2) {
            if w[0].fan_out() != w[1].fan_in() {
                return None;
            }
        }
        Some(Mlp::from_parts(layers, acts))
    }

    /// Write the serialized model to `path`, creating parent directories.
    pub fn save(&self, path: &std::path::Path) -> Result<(), PmrError> {
        let io_err = |e: std::io::Error| PmrError::io_at(path, e);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
        std::fs::write(path, self.to_bytes()).map_err(io_err)
    }

    /// Read a model previously written with [`Mlp::save`].
    pub fn load(path: &std::path::Path) -> Result<Self, PmrError> {
        let buf = std::fs::read(path).map_err(|e| PmrError::io_at(path, e))?;
        Mlp::from_bytes(&buf)
            .ok_or_else(|| PmrError::malformed("mlp model", "corrupt or truncated model file"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;

    fn tiny_mlp(seed: u64) -> Mlp {
        Mlp::new(&[3, 5, 4, 2], Activation::LeakyRelu(0.01), Activation::Identity, seed)
    }

    #[test]
    fn forward_shapes() {
        let mut mlp = tiny_mlp(1);
        let x = Matrix::zeros(7, 3);
        let y = mlp.forward(&x);
        assert_eq!(y.rows(), 7);
        assert_eq!(y.cols(), 2);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.num_params(), 3 * 5 + 5 + 5 * 4 + 4 + 4 * 2 + 2);
    }

    /// Finite-difference verification of the full backward pass — the
    /// make-or-break test for the training code.
    #[test]
    fn gradients_match_finite_differences() {
        let mut mlp = Mlp::new(&[2, 4, 3], Activation::Softplus, Activation::Identity, 3);
        let x = Matrix::from_vec(5, 2, (0..10).map(|i| (i as f32 * 0.37).sin()).collect());
        let t = Matrix::from_vec(5, 3, (0..15).map(|i| (i as f32 * 0.11).cos()).collect());
        let loss = Loss::Huber(1.0);

        // Analytic gradients.
        let y = mlp.forward(&x);
        let dl = loss.grad(&y, &t);
        mlp.backward(&dl);
        let mut analytic = Vec::new();
        mlp.visit_params(|_, g| analytic.extend_from_slice(g));

        // Numeric gradients over a sample of parameters.
        let eps = 1e-3f32;
        let mut flat_idx;
        let mut max_rel_err = 0.0f32;
        let total = analytic.len();
        let sample: Vec<usize> = (0..total).step_by(7).collect();
        for &target_idx in &sample {
            let mut plus = 0.0;
            let mut minus = 0.0;
            for &delta in &[eps, -2.0 * eps] {
                // Perturb parameter `target_idx` by walking the flat order.
                flat_idx = 0;
                mlp.visit_params(|p, _| {
                    for v in p.iter_mut() {
                        if flat_idx == target_idx {
                            *v += delta;
                        }
                        flat_idx += 1;
                    }
                });
                let y = mlp.forward(&x);
                let l = loss.value(&y, &t);
                if delta > 0.0 {
                    plus = l;
                } else {
                    minus = l;
                }
            }
            // Restore.
            flat_idx = 0;
            mlp.visit_params(|p, _| {
                for v in p.iter_mut() {
                    if flat_idx == target_idx {
                        *v += eps;
                    }
                    flat_idx += 1;
                }
            });
            let fd = (plus - minus) / (2.0 * eps);
            let an = analytic[target_idx];
            let denom = an.abs().max(fd.abs()).max(1e-3);
            max_rel_err = max_rel_err.max((fd - an).abs() / denom);
        }
        assert!(max_rel_err < 5e-2, "max relative gradient error {max_rel_err}");
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = tiny_mlp(9);
        let mut b = tiny_mlp(9);
        let x = Matrix::from_vec(1, 3, vec![0.1, -0.2, 0.3]);
        assert_eq!(a.forward(&x), b.forward(&x));
        let mut c = tiny_mlp(10);
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    #[test]
    fn persistence_roundtrip() {
        let mut mlp = tiny_mlp(4);
        let bytes = mlp.to_bytes();
        let mut rt = Mlp::from_bytes(&bytes).expect("roundtrip");
        let x = Matrix::from_vec(2, 3, vec![0.5, 1.0, -1.0, 0.0, 2.0, -0.5]);
        assert_eq!(mlp.forward(&x), rt.forward(&x));
    }

    #[test]
    fn persistence_rejects_corruption() {
        let mlp = tiny_mlp(4);
        let mut bytes = mlp.to_bytes();
        assert!(Mlp::from_bytes(&bytes[..bytes.len() - 2]).is_none());
        bytes[0] = b'X';
        assert!(Mlp::from_bytes(&bytes).is_none());
        assert!(Mlp::from_bytes(&[]).is_none());
    }

    #[test]
    fn infer_matches_forward() {
        let mut mlp = tiny_mlp(11);
        let x = Matrix::from_vec(3, 3, (0..9).map(|i| (i as f32 * 0.21).sin()).collect());
        let y = mlp.forward(&x);
        let shared = &mlp;
        assert_eq!(shared.infer(&x), y);
        assert_eq!(shared.infer_row(&[0.1, 0.2, 0.3]).len(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let mlp = tiny_mlp(6);
        let dir = std::env::temp_dir().join("pmr_nn_mlp_persist_test");
        let path = dir.join("m.pmrn");
        mlp.save(&path).unwrap();
        let rt = Mlp::load(&path).unwrap();
        let x = Matrix::from_vec(1, 3, vec![0.4, -0.7, 1.1]);
        assert_eq!(mlp.infer(&x), rt.infer(&x));
        std::fs::remove_dir_all(&dir).ok();
        assert!(Mlp::load(&path).is_err());
    }

    #[test]
    fn predict_row_convenience() {
        let mut mlp = tiny_mlp(2);
        let out = mlp.predict_row(&[1.0, 2.0, 3.0]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
