//! Regression losses: MSE, MAE, and the Huber loss the paper selects.
//!
//! Paper §III-C: MAE under-penalises outliers (long error tails), MSE
//! under-penalises small errors (large average error); the Huber loss with
//! `δ = 1` combines both and gave the best training accuracy. The ablation
//! bench `ablation_loss` reproduces that comparison.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Loss function over a batch of predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Huber loss with threshold `δ` (Equation 4 of the paper).
    Huber(f32),
}

impl Loss {
    /// Mean loss over all elements of the batch.
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(pred.rows(), target.rows(), "batch mismatch");
        assert_eq!(pred.cols(), target.cols(), "width mismatch");
        let n = (pred.rows() * pred.cols()) as f32;
        let sum: f32 =
            pred.data().iter().zip(target.data()).map(|(&p, &t)| self.pointwise(p - t)).sum();
        sum / n
    }

    /// Gradient of [`Loss::value`] w.r.t. the predictions (already includes
    /// the `1/n` batch normalisation).
    pub fn grad(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(pred.rows(), target.rows(), "batch mismatch");
        assert_eq!(pred.cols(), target.cols(), "width mismatch");
        let n = (pred.rows() * pred.cols()) as f32;
        let data: Vec<f32> = pred
            .data()
            .iter()
            .zip(target.data())
            .map(|(&p, &t)| self.pointwise_grad(p - t) / n)
            .collect();
        Matrix::from_vec(pred.rows(), pred.cols(), data)
    }

    /// Loss of a single residual `e = pred − target`.
    #[inline]
    pub fn pointwise(&self, e: f32) -> f32 {
        match *self {
            Loss::Mse => 0.5 * e * e,
            Loss::Mae => e.abs(),
            Loss::Huber(d) => {
                if e.abs() < d {
                    0.5 * e * e
                } else {
                    d * (e.abs() - 0.5 * d)
                }
            }
        }
    }

    /// Derivative of [`Loss::pointwise`].
    #[inline]
    pub fn pointwise_grad(&self, e: f32) -> f32 {
        match *self {
            Loss::Mse => e,
            Loss::Mae => {
                if e > 0.0 {
                    1.0
                } else if e < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Loss::Huber(d) => {
                if e.abs() < d {
                    e
                } else {
                    d * e.signum()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huber_is_quadratic_then_linear() {
        let h = Loss::Huber(1.0);
        assert_eq!(h.pointwise(0.5), 0.125);
        assert_eq!(h.pointwise(2.0), 1.0 * (2.0 - 0.5));
        assert_eq!(h.pointwise(-2.0), h.pointwise(2.0));
    }

    #[test]
    fn huber_equals_mse_inside_delta() {
        let h = Loss::Huber(10.0);
        let m = Loss::Mse;
        for &e in &[0.1f32, -0.5, 3.0] {
            assert_eq!(h.pointwise(e), m.pointwise(e));
            assert_eq!(h.pointwise_grad(e), m.pointwise_grad(e));
        }
    }

    #[test]
    fn huber_grad_is_clipped() {
        let h = Loss::Huber(1.0);
        assert_eq!(h.pointwise_grad(100.0), 1.0);
        assert_eq!(h.pointwise_grad(-100.0), -1.0);
        assert_eq!(h.pointwise_grad(0.5), 0.5);
    }

    #[test]
    fn batch_value_and_grad_consistent() {
        let pred = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let target = Matrix::from_vec(2, 2, vec![1.0, 0.0, 3.0, 8.0]);
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber(1.0)] {
            let v = loss.value(&pred, &target);
            assert!(v >= 0.0);
            let g = loss.grad(&pred, &target);
            assert_eq!(g.rows(), 2);
            // Zero residual -> zero gradient entry.
            assert_eq!(g.get(0, 0), 0.0);
            assert_eq!(g.get(1, 0), 0.0);
        }
    }

    #[test]
    fn grad_matches_finite_difference() {
        let target = Matrix::from_vec(1, 3, vec![0.3, -0.7, 2.0]);
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber(0.5)] {
            let pred = Matrix::from_vec(1, 3, vec![0.45, -1.2, 1.4]);
            let g = loss.grad(&pred, &target);
            let h = 1e-3f32;
            for j in 0..3 {
                let mut plus = pred.clone();
                plus.set(0, j, plus.get(0, j) + h);
                let mut minus = pred.clone();
                minus.set(0, j, minus.get(0, j) - h);
                let fd = (loss.value(&plus, &target) - loss.value(&minus, &target)) / (2.0 * h);
                assert!(
                    (fd - g.get(0, j)).abs() < 1e-2,
                    "{loss:?} j={j} fd={fd} an={}",
                    g.get(0, j)
                );
            }
        }
    }
}
