//! Fully-connected layer with cached forward state and exact gradients.

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::RngExt;
#[cfg(test)]
use rand::SeedableRng;

/// `y = x W + b` with `W: in × out`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: Matrix,
    pub b: Vec<f32>,
    /// Gradient of the loss w.r.t. `w`, filled by [`Linear::backward`].
    pub dw: Matrix,
    /// Gradient w.r.t. `b`.
    pub db: Vec<f32>,
    /// Input cached by the last forward pass.
    input: Option<Matrix>,
}

impl Linear {
    /// Kaiming-uniform initialisation: `U(−√(6/fan_in), √(6/fan_in))`,
    /// biases zero. Appropriate for the ReLU-family activations used here.
    pub fn new(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        assert!(fan_in > 0 && fan_out > 0, "layer dimensions must be positive");
        let bound = (6.0 / fan_in as f32).sqrt();
        let data: Vec<f32> =
            (0..fan_in * fan_out).map(|_| rng.random_range(-bound..bound)).collect();
        Linear {
            w: Matrix::from_vec(fan_in, fan_out, data),
            b: vec![0.0; fan_out],
            dw: Matrix::zeros(fan_in, fan_out),
            db: vec![0.0; fan_out],
            input: None,
        }
    }

    /// Layer built from explicit parameters (persistence path).
    pub fn from_params(w: Matrix, b: Vec<f32>) -> Self {
        assert_eq!(w.cols(), b.len(), "bias length must match output width");
        let (fi, fo) = (w.rows(), w.cols());
        Linear { w, b, dw: Matrix::zeros(fi, fo), db: vec![0.0; fo], input: None }
    }

    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass; caches `x` for the backward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = self.infer(x);
        self.input = Some(x.clone());
        y
    }

    /// Forward pass without caching: usable from shared references, so a
    /// trained layer can serve concurrent inference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.fan_in(), "input width mismatch");
        let mut y = x.matmul(&self.w);
        y.add_bias(&self.b);
        y
    }

    /// Backward pass: given `dY`, set `dw`/`db` and return `dX`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.input.as_ref().expect("backward called before forward");
        assert_eq!(dy.rows(), x.rows(), "batch size mismatch");
        assert_eq!(dy.cols(), self.fan_out(), "gradient width mismatch");
        self.dw = x.t_matmul(dy);
        self.db = dy.col_sums();
        dy.matmul_t(&self.w)
    }

    /// Reset accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        self.dw.data_mut().fill(0.0);
        self.db.fill(0.0);
    }

    /// Drop the cached input (e.g. before persisting).
    pub fn clear_cache(&mut self) {
        self.input = None;
    }

    pub fn num_params(&self) -> usize {
        self.w.data().len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let w = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let mut l = Linear::from_params(w, vec![0.5, -0.5]);
        let x = Matrix::from_vec(1, 2, vec![1., 1.]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn backward_gradient_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.1).collect());
        let _ = l.forward(&x);
        let dy = Matrix::from_vec(4, 2, vec![0.1; 8]);
        let dx = l.backward(&dy);
        assert_eq!(dx.rows(), 4);
        assert_eq!(dx.cols(), 3);
        assert_eq!(l.dw.rows(), 3);
        assert_eq!(l.dw.cols(), 2);
        assert_eq!(l.db.len(), 2);
    }

    #[test]
    fn initialisation_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Linear::new(10, 10, &mut rng);
        let bound = (6.0f32 / 10.0).sqrt();
        assert!(a.w.data().iter().all(|v| v.abs() <= bound));
        assert!(a.b.iter().all(|&v| v == 0.0));
        let mut rng2 = StdRng::seed_from_u64(5);
        let b = Linear::new(10, 10, &mut rng2);
        assert_eq!(a.w, b.w);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        let dy = Matrix::zeros(1, 2);
        let _ = l.backward(&dy);
    }
}
