//! Row-major `f32` matrices with the matmul variants backprop needs.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Matrix { rows, cols, data }
    }

    /// Matrix from row slices (all rows must share one length).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// A `1 × n` matrix from one row.
    pub fn row_vector(row: &[f32]) -> Self {
        Matrix::from_vec(1, row.len(), row.to_vec())
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Rows selected by `idx`, in order (for mini-batching).
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &r in idx {
            data.extend_from_slice(self.row(r));
        }
        Matrix { rows: idx.len(), cols: self.cols, data }
    }

    /// `self (m×k) · other (k×n) -> m×n` (ikj loop order for locality).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Matrix { rows: m, cols: n, data: out }
    }

    /// `selfᵀ (m×k) · other (k→rows of self... )`: computes `Aᵀ B` where
    /// `A = self (k×m)` and `B = other (k×n)`, yielding `m×n`. Used for
    /// `dW = Xᵀ dY`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Matrix { rows: m, cols: n, data: out }
    }

    /// `A Bᵀ` where `A = self (m×k)` and `B = other (n×k)`, yielding `m×n`.
    /// Used for `dX = dY Wᵀ`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        Matrix { rows: m, cols: n, data: out }
    }

    /// Add `bias` (length = cols) to every row.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column sums (length = cols). Used for `db`.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Append `other`'s columns to the right of `self`'s (equal row counts).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix { rows: self.rows, cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]); // 3x2
        let b = Matrix::from_vec(3, 2, vec![0.5, -1., 2., 0., 1., 3.]); // 3x2
        let c = a.t_matmul(&b); // 2x2 = Aᵀ B
                                // Aᵀ = [[1,3,5],[2,4,6]]
        assert_eq!(c.get(0, 0), 1. * 0.5 + 3. * 2. + 5. * 1.);
        assert_eq!(c.get(1, 1), -2. + 4. * 0. + 6. * 3.);
    }

    #[test]
    fn matmul_t_equals_matmul_with_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]); // 2x3
        let b = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32).collect()); // 4x3
        let c = a.matmul_t(&b); // 2x4
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 4);
        assert_eq!(c.get(0, 0), 1. * 0. + 2. * 1. + 3. * 2.);
        assert_eq!(c.get(1, 3), 4. * 9. + 5. * 10. + 6. * 11.);
    }

    #[test]
    fn bias_and_colsums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_bias(&[1.0, -2.0]);
        assert_eq!(m.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn select_rows_orders() {
        let m = Matrix::from_vec(3, 2, vec![0., 1., 10., 11., 20., 21.]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[20., 21., 0., 1.]);
    }

    #[test]
    fn hstack_concatenates() {
        let a = Matrix::from_vec(2, 1, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = a.hstack(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(1), &[2., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_matmul_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
