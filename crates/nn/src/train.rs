//! The mini-batch training loop.

use crate::data::Dataset;
use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::optim::{Adam, LrSchedule, Optimizer};
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub loss: Loss,
    /// Seed for batch shuffling (varied per epoch internally).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        // Paper D-MGARD settings: Huber(1), Adam; learning rate and batch
        // size as in §IV-A4 (lr 5e-5, batch 256), epochs scaled down from
        // 300 by callers that need faster runs.
        TrainConfig { epochs: 300, batch_size: 256, lr: 5e-5, loss: Loss::Huber(1.0), seed: 0 }
    }
}

/// Train `mlp` on `data`, returning the mean training loss per epoch.
///
/// ```
/// use pmr_nn::{fit, Activation, Dataset, Loss, Matrix, Mlp, TrainConfig};
///
/// // Fit y = 2x on 32 points.
/// let xs: Vec<f32> = (0..32).map(|i| i as f32 / 16.0 - 1.0).collect();
/// let data = Dataset::new(
///     Matrix::from_vec(32, 1, xs.clone()),
///     Matrix::from_vec(32, 1, xs.iter().map(|v| 2.0 * v).collect()),
/// );
/// let mut mlp = Mlp::new(&[1, 8, 1], Activation::LeakyRelu(0.01), Activation::Identity, 1);
/// let cfg = TrainConfig { epochs: 80, batch_size: 8, lr: 5e-3, loss: Loss::Huber(1.0), seed: 0 };
/// let history = fit(&mut mlp, &data, &cfg);
/// assert!(history.last().unwrap() < &history[0]);
/// ```
pub fn fit(mlp: &mut Mlp, data: &Dataset, cfg: &TrainConfig) -> Vec<f32> {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert_eq!(data.x.cols(), mlp.input_dim(), "feature width mismatch");
    assert_eq!(data.y.cols(), mlp.output_dim(), "target width mismatch");
    let mut opt = Adam::new(cfg.lr);
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for (bx, by) in data.batches(cfg.batch_size, cfg.seed.wrapping_add(epoch as u64)) {
            let pred = mlp.forward(&bx);
            epoch_loss += cfg.loss.value(&pred, &by) as f64;
            let grad = cfg.loss.grad(&pred, &by);
            mlp.zero_grad();
            mlp.backward(&grad);
            opt.step(mlp);
            batches += 1;
        }
        history.push((epoch_loss / batches as f64) as f32);
    }
    history
}

/// Mean loss of `mlp` on `data` without updating parameters.
pub fn evaluate(mlp: &mut Mlp, data: &Dataset, loss: Loss) -> f32 {
    let pred = mlp.predict(&data.x);
    loss.value(&pred, &data.y)
}

/// Result of [`fit_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Mean training loss per epoch actually run.
    pub train_loss: Vec<f32>,
    /// Validation loss per epoch (empty when no validation set given).
    pub val_loss: Vec<f32>,
    /// Whether early stopping fired before the epoch budget.
    pub stopped_early: bool,
}

/// Full-featured training loop: learning-rate schedule, optional
/// validation tracking and early stopping.
///
/// Early stopping fires when the validation loss fails to improve for
/// `patience` consecutive epochs (requires `validation`).
pub fn fit_with(
    mlp: &mut Mlp,
    data: &Dataset,
    cfg: &TrainConfig,
    schedule: LrSchedule,
    validation: Option<&Dataset>,
    patience: Option<usize>,
) -> FitReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert_eq!(data.x.cols(), mlp.input_dim(), "feature width mismatch");
    assert_eq!(data.y.cols(), mlp.output_dim(), "target width mismatch");
    if patience.is_some() {
        assert!(validation.is_some(), "early stopping requires a validation set");
    }
    let mut opt = Adam::new(cfg.lr);
    let mut report =
        FitReport { train_loss: Vec::new(), val_loss: Vec::new(), stopped_early: false };
    let mut best_val = f32::INFINITY;
    let mut since_best = 0usize;
    for epoch in 0..cfg.epochs {
        opt.set_lr(schedule.rate_at(cfg.lr, epoch, cfg.epochs));
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for (bx, by) in data.batches(cfg.batch_size, cfg.seed.wrapping_add(epoch as u64)) {
            let pred = mlp.forward(&bx);
            epoch_loss += cfg.loss.value(&pred, &by) as f64;
            let grad = cfg.loss.grad(&pred, &by);
            mlp.zero_grad();
            mlp.backward(&grad);
            Optimizer::step(&mut opt, mlp);
            batches += 1;
        }
        report.train_loss.push((epoch_loss / batches as f64) as f32);
        if let Some(val) = validation {
            let v = evaluate(mlp, val, cfg.loss);
            report.val_loss.push(v);
            if v < best_val - 1e-7 {
                best_val = v;
                since_best = 0;
            } else {
                since_best += 1;
                if patience.is_some_and(|p| since_best >= p) {
                    report.stopped_early = true;
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::tensor::Matrix;

    fn quadratic_dataset(n: usize) -> Dataset {
        let xs: Vec<f32> = (0..n).map(|i| i as f32 / n as f32 * 2.0 - 1.0).collect();
        let x = Matrix::from_vec(n, 1, xs.clone());
        let y = Matrix::from_vec(n, 1, xs.iter().map(|v| v * v).collect());
        Dataset::new(x, y)
    }

    #[test]
    fn training_reduces_loss() {
        let data = quadratic_dataset(128);
        let mut mlp =
            Mlp::new(&[1, 16, 16, 1], Activation::LeakyRelu(0.01), Activation::Identity, 11);
        let cfg = TrainConfig { epochs: 150, batch_size: 32, lr: 5e-3, ..Default::default() };
        let history = fit(&mut mlp, &data, &cfg);
        assert_eq!(history.len(), 150);
        assert!(history.last().unwrap() < &(history[0] / 10.0));
        assert!(evaluate(&mut mlp, &data, Loss::Mae) < 0.05);
    }

    #[test]
    fn generalises_to_held_out_split() {
        let data = quadratic_dataset(256);
        let (train, test) = data.shuffle_split(0.75, 9);
        let mut mlp =
            Mlp::new(&[1, 16, 16, 1], Activation::LeakyRelu(0.01), Activation::Identity, 3);
        let cfg = TrainConfig { epochs: 200, batch_size: 32, lr: 5e-3, ..Default::default() };
        fit(&mut mlp, &train, &cfg);
        let test_loss = evaluate(&mut mlp, &test, Loss::Huber(1.0));
        assert!(test_loss < 0.01, "test loss {test_loss}");
    }

    #[test]
    fn deterministic_training() {
        let data = quadratic_dataset(64);
        let cfg = TrainConfig { epochs: 5, batch_size: 16, lr: 1e-3, ..Default::default() };
        let run = || {
            let mut mlp = Mlp::new(&[1, 8, 1], Activation::Relu, Activation::Identity, 21);
            fit(&mut mlp, &data, &cfg)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fit_with_early_stopping_halts() {
        let data = quadratic_dataset(128);
        let (train, val) = data.shuffle_split(0.75, 1);
        let mut mlp = Mlp::new(&[1, 16, 1], Activation::LeakyRelu(0.01), Activation::Identity, 5);
        let cfg = TrainConfig { epochs: 500, batch_size: 32, lr: 5e-3, ..Default::default() };
        let report = fit_with(&mut mlp, &train, &cfg, LrSchedule::Constant, Some(&val), Some(10));
        assert_eq!(report.train_loss.len(), report.val_loss.len());
        // With 500 epochs and patience 10 it should almost surely stop early.
        assert!(report.train_loss.len() <= 500);
        if report.stopped_early {
            assert!(report.train_loss.len() < 500);
        }
    }

    #[test]
    fn cosine_schedule_trains() {
        let data = quadratic_dataset(64);
        let mut mlp = Mlp::new(&[1, 12, 1], Activation::LeakyRelu(0.01), Activation::Identity, 7);
        let cfg = TrainConfig { epochs: 120, batch_size: 16, lr: 8e-3, ..Default::default() };
        let report =
            fit_with(&mut mlp, &data, &cfg, LrSchedule::Cosine { min_lr: 1e-4 }, None, None);
        assert!(report.train_loss.last().unwrap() < &(report.train_loss[0] / 5.0));
        assert!(!report.stopped_early);
        assert!(report.val_loss.is_empty());
    }

    #[test]
    #[should_panic(expected = "early stopping requires a validation set")]
    fn patience_without_validation_rejected() {
        let data = quadratic_dataset(16);
        let mut mlp = Mlp::new(&[1, 4, 1], Activation::Relu, Activation::Identity, 0);
        let cfg = TrainConfig { epochs: 5, batch_size: 8, lr: 1e-3, ..Default::default() };
        let _ = fit_with(&mut mlp, &data, &cfg, LrSchedule::Constant, None, Some(3));
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn width_mismatch_rejected() {
        let data = quadratic_dataset(8);
        let mut mlp = Mlp::new(&[2, 1], Activation::Identity, Activation::Identity, 0);
        let _ = fit(&mut mlp, &data, &TrainConfig::default());
    }
}
