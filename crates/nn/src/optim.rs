//! Optimizers: Adam (the paper's choice) and SGD with momentum (baseline).

use crate::mlp::Mlp;

/// A parameter-update rule.
pub trait Optimizer {
    /// Apply one update from the gradients currently stored in `mlp`.
    fn step(&mut self, mlp: &mut Mlp);
    /// Override the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);
    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Adam (Kingma & Ba) with bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Step counter for bias correction.
    t: u64,
    /// First-moment estimates, flat in the model's parameter order.
    m: Vec<f32>,
    /// Second-moment estimates.
    v: Vec<f32>,
}

impl Adam {
    /// Standard hyperparameters with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Apply one update from the gradients currently stored in `mlp`.
    pub fn step(&mut self, mlp: &mut Mlp) {
        if self.m.is_empty() {
            let n = mlp.num_params();
            self.m = vec![0.0; n];
            self.v = vec![0.0; n];
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut off = 0usize;
        mlp.visit_params(|params, grads| {
            debug_assert!(off + params.len() <= m.len(), "model grew under the optimizer");
            for ((p, &g), (mi, vi)) in params
                .iter_mut()
                .zip(grads)
                .zip(m[off..off + grads.len()].iter_mut().zip(&mut v[off..off + grads.len()]))
            {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let m_hat = *mi / b1t;
                let v_hat = *vi / b2t;
                *p -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            off += params.len();
        });
        assert_eq!(off, m.len(), "parameter count changed between steps");
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, mlp: &mut Mlp) {
        Adam::step(self, mlp);
    }

    fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    /// Velocity buffers, flat in the model's parameter order.
    v: Vec<f32>,
}

impl Sgd {
    /// Plain SGD (`momentum = 0`).
    pub fn new(lr: f32) -> Self {
        Sgd::with_momentum(lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum` in `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd { lr, momentum, v: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, mlp: &mut Mlp) {
        if self.v.is_empty() {
            self.v = vec![0.0; mlp.num_params()];
        }
        let (lr, mu) = (self.lr, self.momentum);
        let v = &mut self.v;
        let mut off = 0usize;
        mlp.visit_params(|params, grads| {
            for ((p, &g), vi) in params.iter_mut().zip(grads).zip(&mut v[off..off + grads.len()]) {
                *vi = mu * *vi + g;
                *p -= lr * *vi;
            }
            off += params.len();
        });
        assert_eq!(off, v.len(), "parameter count changed between steps");
    }

    fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// A learning-rate schedule evaluated per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant,
    /// Multiply by `factor` every `every` epochs.
    StepDecay { every: usize, factor: f32 },
    /// Cosine annealing from the initial rate down to `min_lr` over the
    /// full epoch budget.
    Cosine { min_lr: f32 },
}

impl LrSchedule {
    /// The learning rate to use at `epoch` (0-based) of `total` epochs,
    /// given the configured base rate.
    pub fn rate_at(&self, base: f32, epoch: usize, total: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, factor } => {
                base * factor.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Cosine { min_lr } => {
                let t = epoch as f32 / total.max(1) as f32;
                min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::Loss;
    use crate::tensor::Matrix;

    #[test]
    fn adam_reduces_loss_on_linear_regression() {
        // y = 2x - 1 learned by a 1-layer "MLP".
        let mut mlp = Mlp::new(&[1, 1], Activation::Identity, Activation::Identity, 0);
        let xs: Vec<f32> = (0..64).map(|i| i as f32 / 32.0 - 1.0).collect();
        let x = Matrix::from_vec(64, 1, xs.clone());
        let t = Matrix::from_vec(64, 1, xs.iter().map(|v| 2.0 * v - 1.0).collect());
        let mut opt = Adam::new(0.05);
        let loss = Loss::Mse;
        let initial = loss.value(&mlp.forward(&x), &t);
        for _ in 0..400 {
            let y = mlp.forward(&x);
            let g = loss.grad(&y, &t);
            mlp.zero_grad();
            mlp.backward(&g);
            opt.step(&mut mlp);
        }
        let final_loss = loss.value(&mlp.forward(&x), &t);
        assert!(final_loss < initial / 100.0, "initial={initial} final={final_loss}");
        // Parameters approach (2, -1).
        assert!((mlp.layers()[0].w.get(0, 0) - 2.0).abs() < 0.1);
        assert!((mlp.layers()[0].b[0] + 1.0).abs() < 0.1);
    }

    #[test]
    fn adam_fits_nonlinear_function() {
        // y = sin(3x): requires the hidden layer to do work.
        let mut mlp =
            Mlp::new(&[1, 24, 24, 1], Activation::LeakyRelu(0.01), Activation::Identity, 7);
        let xs: Vec<f32> = (0..128).map(|i| i as f32 / 64.0 - 1.0).collect();
        let x = Matrix::from_vec(128, 1, xs.clone());
        let t = Matrix::from_vec(128, 1, xs.iter().map(|v| (3.0 * v).sin()).collect());
        let mut opt = Adam::new(0.01);
        let loss = Loss::Huber(1.0);
        for _ in 0..600 {
            let y = mlp.forward(&x);
            let g = loss.grad(&y, &t);
            mlp.zero_grad();
            mlp.backward(&g);
            opt.step(&mut mlp);
        }
        let final_loss = loss.value(&mlp.forward(&x), &t);
        assert!(final_loss < 5e-3, "final={final_loss}");
    }

    #[test]
    fn sgd_momentum_converges_on_linear_regression() {
        let mut mlp = Mlp::new(&[1, 1], Activation::Identity, Activation::Identity, 0);
        let xs: Vec<f32> = (0..64).map(|i| i as f32 / 32.0 - 1.0).collect();
        let x = Matrix::from_vec(64, 1, xs.clone());
        let t = Matrix::from_vec(64, 1, xs.iter().map(|v| -1.5 * v + 0.25).collect());
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let loss = Loss::Mse;
        let initial = loss.value(&mlp.forward(&x), &t);
        for _ in 0..300 {
            let y = mlp.forward(&x);
            let g = loss.grad(&y, &t);
            mlp.zero_grad();
            mlp.backward(&g);
            Optimizer::step(&mut opt, &mut mlp);
        }
        let final_loss = loss.value(&mlp.forward(&x), &t);
        assert!(final_loss < initial / 50.0, "initial={initial} final={final_loss}");
    }

    #[test]
    fn momentum_accelerates_plain_sgd() {
        let run = |momentum: f32| {
            let mut mlp = Mlp::new(&[1, 1], Activation::Identity, Activation::Identity, 3);
            let xs: Vec<f32> = (0..32).map(|i| i as f32 / 16.0 - 1.0).collect();
            let x = Matrix::from_vec(32, 1, xs.clone());
            let t = Matrix::from_vec(32, 1, xs.iter().map(|v| 3.0 * v).collect());
            let mut opt = Sgd::with_momentum(0.01, momentum);
            for _ in 0..60 {
                let y = mlp.forward(&x);
                let g = Loss::Mse.grad(&y, &t);
                mlp.zero_grad();
                mlp.backward(&g);
                Optimizer::step(&mut opt, &mut mlp);
            }
            Loss::Mse.value(&mlp.forward(&x), &t)
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn lr_schedules() {
        let base = 1.0f32;
        assert_eq!(LrSchedule::Constant.rate_at(base, 50, 100), 1.0);
        let step = LrSchedule::StepDecay { every: 10, factor: 0.5 };
        assert_eq!(step.rate_at(base, 0, 100), 1.0);
        assert_eq!(step.rate_at(base, 10, 100), 0.5);
        assert_eq!(step.rate_at(base, 25, 100), 0.25);
        let cos = LrSchedule::Cosine { min_lr: 0.1 };
        assert!((cos.rate_at(base, 0, 100) - 1.0).abs() < 1e-6);
        assert!(cos.rate_at(base, 50, 100) < cos.rate_at(base, 10, 100));
        assert!(cos.rate_at(base, 99, 100) >= 0.1 - 1e-6);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn invalid_momentum_rejected() {
        let _ = Sgd::with_momentum(0.1, 1.0);
    }

    #[test]
    fn step_counter_advances() {
        let mut mlp = Mlp::new(&[2, 2], Activation::Identity, Activation::Identity, 0);
        let mut opt = Adam::new(0.001);
        let x = Matrix::zeros(1, 2);
        let t = Matrix::zeros(1, 2);
        let y = mlp.forward(&x);
        let g = Loss::Mse.grad(&y, &t);
        mlp.backward(&g);
        opt.step(&mut mlp);
        opt.step(&mut mlp);
        assert_eq!(opt.steps(), 2);
    }
}
