//! Property tests for the neural-network library.

use pmr_nn::{Activation, Dataset, Loss, Matrix, Mlp, Standardizer};
use proptest::prelude::*;

fn arb_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1e3f32..1e3, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn mlp_from_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Mlp::from_bytes(&bytes);
    }

    #[test]
    fn mlp_bytes_mutation_never_panics(
        seed in any::<u64>(),
        flip in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mlp = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Identity, seed);
        let mut bytes = mlp.to_bytes();
        let i = flip.index(bytes.len());
        bytes[i] = byte;
        if let Some(mut rt) = Mlp::from_bytes(&bytes) {
            if rt.input_dim() == 3 {
                let _ = rt.predict_row(&[0.1, 0.2, 0.3]);
            }
        }
    }

    #[test]
    fn standardizer_from_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Standardizer::from_bytes(&bytes);
    }

    #[test]
    fn standardizer_roundtrip_rows(m in arb_matrix(12, 6), probe in proptest::collection::vec(-1e3f32..1e3, 6)) {
        let s = Standardizer::fit(&m);
        if s.dim() == probe.len() {
            let mut row = probe.clone();
            s.transform_row(&mut row);
            prop_assert!(row.iter().all(|v| v.is_finite()));
            s.inverse_row(&mut row);
            for (a, b) in probe.iter().zip(&row) {
                prop_assert!((a - b).abs() <= 1e-2 * (1.0 + a.abs()), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn huber_between_scaled_mae_and_mse(e in -100f32..100.0, delta in 0.01f32..10.0) {
        // Huber is quadratic below delta, linear above, continuous at the
        // boundary, and never exceeds the MSE value.
        let h = Loss::Huber(delta);
        let v = h.pointwise(e);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= Loss::Mse.pointwise(e) + 1e-4);
        if e.abs() < delta {
            prop_assert!((v - 0.5 * e * e).abs() < 1e-3);
        } else {
            prop_assert!((v - delta * (e.abs() - 0.5 * delta)).abs() < 1e-2);
        }
        // Gradient is bounded by delta.
        prop_assert!(h.pointwise_grad(e).abs() <= delta + 1e-6);
    }

    #[test]
    fn losses_are_minimised_at_zero_residual(e in -50f32..50.0) {
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber(1.0)] {
            prop_assert!(loss.pointwise(e) >= loss.pointwise(0.0));
            // Gradient sign matches the residual sign.
            let g = loss.pointwise_grad(e);
            if e > 1e-3 {
                prop_assert!(g > 0.0);
            } else if e < -1e-3 {
                prop_assert!(g < 0.0);
            }
        }
    }

    #[test]
    fn forward_is_deterministic_and_finite(m in arb_matrix(8, 3), seed in any::<u64>()) {
        let mut mlp = Mlp::new(&[3, 6, 2], Activation::LeakyRelu(0.01), Activation::Identity, seed);
        if m.cols() == 3 {
            let y1 = mlp.forward(&m);
            let y2 = mlp.forward(&m);
            prop_assert_eq!(&y1, &y2);
            prop_assert!(y1.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn matmul_associates_with_identity(m in arb_matrix(6, 6)) {
        let n = m.cols();
        let mut eye = Matrix::zeros(n, n);
        for i in 0..n {
            eye.set(i, i, 1.0);
        }
        let prod = m.matmul(&eye);
        prop_assert_eq!(prod, m);
    }

    #[test]
    fn dataset_split_preserves_rows(n in 2usize..40, frac in 0.1f64..0.9, seed in any::<u64>()) {
        let x = Matrix::from_vec(n, 1, (0..n).map(|i| i as f32).collect());
        let d = Dataset::new(x.clone(), x);
        let (tr, te) = d.shuffle_split(frac, seed);
        prop_assert_eq!(tr.len() + te.len(), n);
        let mut all: Vec<f32> = tr.x.data().iter().chain(te.x.data()).copied().collect();
        all.sort_by(f32::total_cmp);
        prop_assert_eq!(all, (0..n).map(|i| i as f32).collect::<Vec<_>>());
    }
}
