//! Persisted finding baselines for `pmrtool analyze --diff`.
//!
//! A baseline is the set of *known* findings, stored as fingerprints (see
//! [`crate::report`]): `analyze --diff analyze-baseline.json` fails only
//! when a finding appears that is not in the set, so CI can gate new debt
//! while the existing set burns down. Fingerprints are line-number-free,
//! which keeps a baseline valid across rebases and unrelated edits; the
//! file is versioned, sorted, and deduped so regeneration is byte-stable.

use crate::report::{escape, Report, Violation};
use pmr_error::PmrError;
use std::collections::BTreeSet;

/// Serialize the current violations as a baseline document.
pub fn to_json(report: &Report) -> String {
    let fps: BTreeSet<&str> = report.violations.iter().map(|v| v.fingerprint.as_str()).collect();
    let mut s = String::from("{\n  \"version\": 1,\n  \"fingerprints\": [");
    for (i, fp) in fps.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str("    \"");
        s.push_str(&escape(fp));
        s.push('"');
    }
    if !fps.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Parse a baseline document. Strict: anything but the exact shape
/// `{"version": 1, "fingerprints": ["…", …]}` is an error — a half-read
/// baseline would silently un-gate the diff.
pub fn parse(text: &str) -> Result<BTreeSet<String>, PmrError> {
    let mut p = Scanner { s: text.as_bytes(), i: 0 };
    let malformed = |msg: &str| PmrError::malformed("analyze baseline", msg.to_string());
    p.ws();
    p.expect(b'{').map_err(|()| malformed("expected `{`"))?;
    let mut fingerprints: Option<BTreeSet<String>> = None;
    let mut saw_version = false;
    loop {
        p.ws();
        let key = p.string().map_err(|()| malformed("expected object key"))?;
        p.ws();
        p.expect(b':').map_err(|()| malformed("expected `:`"))?;
        p.ws();
        match key.as_str() {
            "version" => {
                let n = p.number().map_err(|()| malformed("expected version number"))?;
                if n != 1 {
                    return Err(malformed("unsupported baseline version"));
                }
                saw_version = true;
            }
            "fingerprints" => {
                p.expect(b'[').map_err(|()| malformed("expected `[`"))?;
                let mut set = BTreeSet::new();
                p.ws();
                if !p.peek(b']') {
                    loop {
                        p.ws();
                        set.insert(p.string().map_err(|()| malformed("expected fingerprint"))?);
                        p.ws();
                        if p.peek(b',') {
                            p.i += 1;
                            continue;
                        }
                        break;
                    }
                }
                p.ws();
                p.expect(b']').map_err(|()| malformed("expected `]`"))?;
                fingerprints = Some(set);
            }
            other => return Err(malformed(&format!("unknown key `{other}`"))),
        }
        p.ws();
        if p.peek(b',') {
            p.i += 1;
            continue;
        }
        break;
    }
    p.ws();
    p.expect(b'}').map_err(|()| malformed("expected `}`"))?;
    if !saw_version {
        return Err(malformed("missing `version`"));
    }
    fingerprints.ok_or_else(|| malformed("missing `fingerprints`"))
}

/// Violations in `report` whose fingerprint is not in `baseline` — the
/// findings a `--diff` run fails on.
pub fn new_findings<'r>(report: &'r Report, baseline: &BTreeSet<String>) -> Vec<&'r Violation> {
    report.violations.iter().filter(|v| !baseline.contains(&v.fingerprint)).collect()
}

struct Scanner<'a> {
    s: &'a [u8],
    i: usize,
}

impl Scanner<'_> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self, b: u8) -> bool {
        self.s.get(self.i) == Some(&b)
    }

    fn expect(&mut self, b: u8) -> Result<(), ()> {
        if self.peek(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(())
        }
    }

    fn string(&mut self) -> Result<String, ()> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i] != b'"' {
            if self.s[self.i] == b'\\' {
                return Err(()); // fingerprints never need escapes
            }
            self.i += 1;
        }
        let out = String::from_utf8(self.s[start..self.i].to_vec()).map_err(|_| ())?;
        self.expect(b'"')?;
        Ok(out)
    }

    fn number(&mut self) -> Result<u64, ()> {
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err(());
        }
        std::str::from_utf8(&self.s[start..self.i]).map_err(|_| ())?.parse().map_err(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(fps: &[&str]) -> Report {
        let mut r = Report::default();
        for (i, _) in fps.iter().enumerate() {
            r.violations.push(Violation::new("panic_path", format!("f{i}.rs"), 1, "m", "s"));
        }
        r.finalize();
        for (v, fp) in r.violations.iter_mut().zip(fps) {
            v.fingerprint = (*fp).to_string();
        }
        r
    }

    #[test]
    fn round_trips_and_sorts() {
        let r = report_with(&["panic_path:02", "panic_path:01"]);
        let json = to_json(&r);
        let set = parse(&json).expect("parses");
        assert_eq!(set.len(), 2);
        assert!(set.contains("panic_path:01"));
        // Emission is sorted regardless of violation order.
        assert!(json.find("panic_path:01").unwrap() < json.find("panic_path:02").unwrap());
        assert_eq!(to_json(&r), json);
    }

    #[test]
    fn diff_reports_only_new_findings() {
        let r = report_with(&["a:1", "b:2"]);
        let baseline: BTreeSet<String> = ["a:1".to_string()].into();
        let new = new_findings(&r, &baseline);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].fingerprint, "b:2");
        let full: BTreeSet<String> = ["a:1".to_string(), "b:2".to_string()].into();
        assert!(new_findings(&r, &full).is_empty());
    }

    #[test]
    fn empty_report_yields_empty_baseline() {
        let json = to_json(&Report::default());
        assert_eq!(parse(&json).expect("parses").len(), 0);
        assert!(json.contains("\"fingerprints\": []"));
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse("").is_err());
        assert!(parse("{}").is_err());
        assert!(parse("{\"version\": 2, \"fingerprints\": []}").is_err());
        assert!(parse("{\"version\": 1}").is_err());
        assert!(parse("{\"version\": 1, \"fingerprints\": [1]}").is_err());
        assert!(parse("{\"version\": 1, \"bogus\": [], \"fingerprints\": []}").is_err());
    }
}
