//! `pmr-analyze` — workspace-wide static analysis for the error contract.
//!
//! The paper's value proposition is a *guarantee*: retrieval promises the
//! reconstruction error stays under the user's bound. `pmr-conformance`
//! checks that guarantee dynamically and `pmr-storage`'s fault machinery
//! keeps it honest under I/O failure; this crate is the static layer that
//! keeps whole classes of contract-breaking bugs from landing at all.
//!
//! The analysis runs in three phases:
//!
//! 1. **Per-file** (parallel, scoped threads): lex, parse the item tree
//!    ([`parse`]), run the lexical lints ([`lints`]), collect waivers.
//! 2. **Interprocedural** (whole workspace): build the module-aware call
//!    graph ([`callgraph`]) and run `panic_reach`, `error_swallow`, and
//!    `lock_order` ([`dataflow`]) over it.
//! 3. **Suppression & staleness**: apply the `analyze.toml` allowlist and
//!    inline waivers, then flag every suppression that matched nothing as
//!    a `stale_suppression` hard error.
//!
//! Run it as `pmrtool analyze [--report out.json] [--sarif out.sarif]
//! [--diff analyze-baseline.json | --write-baseline <path>]`; it exits
//! nonzero when any unallowlisted violation exists (or, under `--diff`,
//! when a violation is missing from the baseline). Scoping and the
//! allowlist live in `analyze.toml` at the workspace root (see
//! [`config::AnalyzeConfig`]); the lint catalogue is documented on
//! [`lints`].

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod report;
pub mod sarif;

pub use config::{AllowEntry, AnalyzeConfig};
pub use report::{Allowed, Report, Timing, Violation};

use lints::Waiver;
use parse::ParsedFile;
use pmr_error::PmrError;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Per-file output of analysis phase 1.
struct FileOut {
    parsed: ParsedFile,
    raw: Vec<Violation>,
    waivers: Vec<Waiver>,
}

/// Analyze a set of in-memory sources through the full pipeline (lexical +
/// interprocedural + staleness). The unit the fixture tests drive.
pub fn analyze_sources<'a>(
    sources: impl IntoIterator<Item = (&'a str, &'a str)>,
    cfg: &AnalyzeConfig,
) -> Report {
    let inputs: Vec<(String, String)> =
        sources.into_iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    analyze_files(inputs, cfg)
}

/// Lint every Rust source of the workspace at `root`: `src/` and each
/// `crates/*/src/` tree. Test, bench, and example trees are out of scope by
/// construction — the lints guard *library* code on the data path.
pub fn analyze_workspace(root: &Path, cfg: &AnalyzeConfig) -> Result<Report, PmrError> {
    let started = std::time::Instant::now();
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for member in sorted_dir(&crates_dir)? {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut inputs = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(&path).map_err(|e| PmrError::io_at(&path, e))?;
        inputs.push((rel_slash(root, &path), src));
    }
    let mut report = analyze_files(inputs, cfg);
    let wall = started.elapsed();
    let wall_ms = u64::try_from(wall.as_millis()).unwrap_or(u64::MAX);
    let secs = wall.as_secs_f64();
    report.timing = Some(Timing {
        wall_ms,
        files_per_sec: if secs > 0.0 { report.files_scanned as f64 / secs } else { 0.0 },
    });
    Ok(report)
}

/// The full three-phase pipeline over `(rel_path, source)` pairs.
fn analyze_files(mut inputs: Vec<(String, String)>, cfg: &AnalyzeConfig) -> Report {
    inputs.sort_by(|a, b| a.0.cmp(&b.0));

    // Phase 1 — per-file work, parallel over contiguous chunks. Results
    // are reassembled in chunk order, so the outcome is independent of
    // thread scheduling (and of whether threads are used at all).
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
        .min(inputs.len().max(1));
    let phase1 = |pair: &(String, String)| -> FileOut {
        let parsed = parse::parse_file(&pair.0, &pair.1);
        let raw = lints::lexical_raw(&parsed, cfg);
        let waivers = lints::collect_waivers(&parsed.toks);
        FileOut { parsed, raw, waivers }
    };
    let mut outs: Vec<FileOut> = if threads <= 1 {
        inputs.iter().map(phase1).collect()
    } else {
        let chunk = inputs.len().div_ceil(threads);
        let mut chunk_outs: Vec<Vec<FileOut>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(chunk)
                .map(|files| scope.spawn(move || files.iter().map(phase1).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                match h.join() {
                    Ok(outs) => chunk_outs.push(outs),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        chunk_outs.into_iter().flatten().collect()
    };

    // Phase 2 — interprocedural lints over the whole file set. The call
    // graph wants a contiguous `&[ParsedFile]`, so split the per-file
    // outputs apart first; findings are then routed back to their file's
    // raw list so suppression (phase 3) treats every lint uniformly.
    let mut parsed_files: Vec<ParsedFile> = Vec::with_capacity(outs.len());
    let mut raws: Vec<Vec<Violation>> = Vec::with_capacity(outs.len());
    let mut waivers: Vec<Vec<Waiver>> = Vec::with_capacity(outs.len());
    for o in outs.drain(..) {
        parsed_files.push(o.parsed);
        raws.push(o.raw);
        waivers.push(o.waivers);
    }
    let index_of: BTreeMap<&str, usize> =
        parsed_files.iter().enumerate().map(|(i, p)| (p.rel_path.as_str(), i)).collect();
    let graph = callgraph::CallGraph::build(&parsed_files);
    let mut inter: Vec<Violation> = Vec::new();
    inter.extend(callgraph::panic_reach(&parsed_files, &graph, cfg));
    inter.extend(dataflow::error_swallow(&parsed_files, &graph, cfg));
    inter.extend(dataflow::lock_order(&parsed_files, &graph, cfg));
    for v in inter {
        if let Some(&i) = index_of.get(v.file.as_str()) {
            raws[i].push(v);
        }
    }

    // Phase 3 — suppression with global hit counting, then staleness.
    let mut report = Report { files_scanned: parsed_files.len(), ..Report::default() };
    let mut allow_hits = vec![0usize; cfg.allow.len()];
    for (i, parsed) in parsed_files.iter().enumerate() {
        let s = lints::apply_suppressions(
            std::mem::take(&mut raws[i]),
            &parsed.rel_path,
            &waivers[i],
            cfg,
        );
        for (k, h) in s.allow_hits.iter().enumerate() {
            allow_hits[k] += h;
        }
        report.violations.extend(s.violations);
        report.allowed.extend(s.allowed);
        for (w, hits) in waivers[i].iter().zip(&s.waiver_hits) {
            if *hits == 0 {
                report.violations.push(Violation::new(
                    "stale_suppression",
                    parsed.rel_path.as_str(),
                    w.line,
                    format!(
                        "inline waiver `lint:allow({})` matches no finding; remove it \
                         (suppressions must not outlive what they suppress)",
                        w.lints.join(", ")
                    ),
                    parsed.snippet(w.line),
                ));
            }
        }
    }
    for (entry, hits) in cfg.allow.iter().zip(&allow_hits) {
        if *hits == 0 {
            report.violations.push(Violation::new(
                "stale_suppression",
                "analyze.toml",
                entry.line,
                format!(
                    "allowlist entry (lint `{}`, path `{}`) matches no finding; remove it \
                     (suppressions must not outlive what they suppress)",
                    entry.lint, entry.path
                ),
                format!("[[allow]] lint = \"{}\", path = \"{}\"", entry.lint, entry.path),
            ));
        }
    }
    report.finalize();
    report
}

/// Recursively collect `.rs` files under `dir` (missing dirs are fine).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), PmrError> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Directory entries in deterministic (sorted) order.
fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, PmrError> {
    let rd = std::fs::read_dir(dir).map_err(|e| PmrError::io_at(dir, e))?;
    let mut entries = Vec::new();
    for entry in rd {
        entries.push(entry.map_err(|e| PmrError::io_at(dir, e))?.path());
    }
    entries.sort();
    Ok(entries)
}

/// Workspace-relative path with forward slashes (report paths must not
/// depend on the host OS).
fn rel_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_sources_aggregates_and_sorts() {
        let cfg = AnalyzeConfig {
            panic_paths: vec!["crates".into()],
            cast_paths: vec![],
            nondet_paths: vec![],
            ..AnalyzeConfig::default()
        };
        let report = analyze_sources(
            [
                ("crates/b/src/lib.rs", "fn f(x: Option<u8>) { x.unwrap(); }"),
                ("crates/a/src/lib.rs", "fn g() { panic!(\"boom\"); }"),
            ],
            &cfg,
        );
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.violations[0].file, "crates/a/src/lib.rs");
        assert!(!report.is_clean());
    }

    #[test]
    fn pipeline_is_deterministic_across_runs() {
        let cfg = AnalyzeConfig::default();
        let sources = [
            (
                "crates/core/src/lib.rs",
                "pub fn execute() { helper(); }\nfn helper(x: Option<u8>) { x.unwrap(); }",
            ),
            (
                "crates/mgard/src/lib.rs",
                "fn save() -> Result<(), E> { Ok(()) }\npub fn compress() { let _ = save(); }",
            ),
        ];
        let r1 = analyze_sources(sources, &cfg);
        let r2 = analyze_sources(sources, &cfg);
        assert_eq!(r1.to_json(), r2.to_json());
        assert_eq!(r1.count("panic_reach"), 1);
        assert_eq!(r1.count("error_swallow"), 1);
    }

    #[test]
    fn stale_allowlist_entry_is_a_hard_error() {
        let mut cfg = AnalyzeConfig::default();
        cfg.allow.push(AllowEntry {
            lint: "panic_path".into(),
            path: "crates/nowhere".into(),
            reason: "left over from a deleted module".into(),
            line: 7,
        });
        let report = analyze_sources([("crates/a/src/lib.rs", "fn ok() {}")], &cfg);
        assert_eq!(report.count("stale_suppression"), 1);
        let v = &report.violations[0];
        assert_eq!(v.file, "analyze.toml");
        assert_eq!(v.line, 7);
        assert!(!report.is_clean());
    }

    #[test]
    fn stale_inline_waiver_is_a_hard_error() {
        let cfg = AnalyzeConfig::default();
        let src = "// lint:allow(lossy_cast): no cast here anymore\nfn ok() {}";
        let report = analyze_sources([("crates/mgard/src/lib.rs", src)], &cfg);
        assert_eq!(report.count("stale_suppression"), 1);
        assert_eq!(report.violations[0].line, 1);
    }

    #[test]
    fn live_suppressions_are_not_stale() {
        let mut cfg = AnalyzeConfig::default();
        cfg.allow.push(AllowEntry {
            lint: "panic_path".into(),
            path: "crates/mgard/src".into(),
            reason: "audited".into(),
            line: 1,
        });
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n// lint:allow(lossy_cast): bounded\nfn g(k: usize) -> u32 { k as u32 }";
        let report = analyze_sources([("crates/mgard/src/lib.rs", src)], &cfg);
        assert_eq!(report.count("stale_suppression"), 0);
        assert_eq!(report.allowed.len(), 2);
        // x.unwrap() is allowlisted for panic_path… but still reachable?
        // No entry prefix matches `f`/`g`, so panic_reach stays quiet.
        assert!(report.is_clean(), "{}", report.summary());
    }
}
