//! `pmr-analyze` — workspace-wide static analysis for the error contract.
//!
//! The paper's value proposition is a *guarantee*: retrieval promises the
//! reconstruction error stays under the user's bound. `pmr-conformance`
//! checks that guarantee dynamically and `pmr-storage`'s fault machinery
//! keeps it honest under I/O failure; this crate is the static layer that
//! keeps whole classes of contract-breaking bugs from landing at all —
//! panics mid-retrieval, undocumented `unsafe`, silently wrapping casts in
//! the codec, and nondeterminism in anything that produces artifacts.
//!
//! Run it as `pmrtool analyze [--report out.json]`; it exits nonzero when
//! any unallowlisted violation exists. Scoping and the allowlist live in
//! `analyze.toml` at the workspace root (see [`config::AnalyzeConfig`]);
//! the lint catalogue is documented on [`lints`].

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;

pub use config::{AllowEntry, AnalyzeConfig};
pub use report::{Allowed, Report, Violation};

use pmr_error::PmrError;
use std::path::{Path, PathBuf};

/// Lint a set of in-memory sources. The unit the fixture tests drive.
pub fn analyze_sources<'a>(
    sources: impl IntoIterator<Item = (&'a str, &'a str)>,
    cfg: &AnalyzeConfig,
) -> Report {
    let mut report = Report::default();
    for (rel_path, src) in sources {
        let findings = lints::lint_file(rel_path, src, cfg);
        report.files_scanned += 1;
        report.violations.extend(findings.violations);
        report.allowed.extend(findings.allowed);
    }
    report.finalize();
    report
}

/// Lint every Rust source of the workspace at `root`: `src/` and each
/// `crates/*/src/` tree. Test, bench, and example trees are out of scope by
/// construction — the lints guard *library* code on the data path.
pub fn analyze_workspace(root: &Path, cfg: &AnalyzeConfig) -> Result<Report, PmrError> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for member in sorted_dir(&crates_dir)? {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let src = std::fs::read_to_string(&path).map_err(|e| PmrError::io_at(&path, e))?;
        let rel = rel_slash(root, &path);
        let findings = lints::lint_file(&rel, &src, cfg);
        report.files_scanned += 1;
        report.violations.extend(findings.violations);
        report.allowed.extend(findings.allowed);
    }
    report.finalize();
    Ok(report)
}

/// Recursively collect `.rs` files under `dir` (missing dirs are fine).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), PmrError> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Directory entries in deterministic (sorted) order.
fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, PmrError> {
    let rd = std::fs::read_dir(dir).map_err(|e| PmrError::io_at(dir, e))?;
    let mut entries = Vec::new();
    for entry in rd {
        entries.push(entry.map_err(|e| PmrError::io_at(dir, e))?.path());
    }
    entries.sort();
    Ok(entries)
}

/// Workspace-relative path with forward slashes (report paths must not
/// depend on the host OS).
fn rel_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_sources_aggregates_and_sorts() {
        let cfg = AnalyzeConfig {
            panic_paths: vec!["crates".into()],
            cast_paths: vec![],
            nondet_paths: vec![],
            allow: vec![],
        };
        let report = analyze_sources(
            [
                ("crates/b/src/lib.rs", "fn f(x: Option<u8>) { x.unwrap(); }"),
                ("crates/a/src/lib.rs", "fn g() { panic!(\"boom\"); }"),
            ],
            &cfg,
        );
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.violations[0].file, "crates/a/src/lib.rs");
        assert!(!report.is_clean());
    }
}
