//! A minimal Rust token scanner.
//!
//! The lints in this crate are lexical: they look for panic-capable calls,
//! `unsafe` keywords without `// SAFETY:` comments, suspicious `as` casts,
//! and nondeterminism sources. None of that needs a full parse tree — it
//! needs a token stream that *correctly* skips string literals and keeps
//! comments (with line numbers) so waivers and SAFETY annotations can be
//! matched to the code they cover. The workspace builds offline with no
//! `syn`, so this scanner is self-contained; it understands every literal
//! form the workspace uses (raw strings, byte strings, raw identifiers,
//! nested block comments, lifetimes vs. char literals).

/// Classification of one lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident` forms, prefix kept).
    Ident,
    /// Numeric literal, suffix included (`0xAA_u64`, `1.5e-3`).
    Num,
    /// String, byte-string, or raw-string literal.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character.
    Punct,
    /// `// …` comment (doc comments included), text kept for waiver lookup.
    LineComment,
    /// `/* … */` comment (nesting handled), text kept for waiver lookup.
    BlockComment,
}

/// One token with its source text and 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// Whether this token carries meaning for the lints (not a comment).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Tokenize `src`. Unterminated literals and comments are tolerated (the
/// remainder of the file becomes one token): the linter must never panic on
/// the code it audits, even mid-edit code.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i] as char;
        let start_line = line;
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&b'/') {
            let end = memchr_newline(b, i);
            toks.push(tok(TokKind::LineComment, &src[i..end], start_line));
            i = end;
        } else if c == '/' && b.get(i + 1) == Some(&b'*') {
            let (end, newlines) = block_comment_end(b, i);
            toks.push(tok(TokKind::BlockComment, &src[i..end], start_line));
            line += newlines;
            i = end;
        } else if c == '"' {
            let (end, newlines) = string_end(b, i + 1);
            toks.push(tok(TokKind::Str, &src[i..end], start_line));
            line += newlines;
            i = end;
        } else if c == '\'' {
            let (kind, end) = char_or_lifetime(b, i);
            toks.push(tok(kind, &src[i..end], start_line));
            i = end;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            let word = &src[i..j];
            // String-ish prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
            if matches!(word, "r" | "b" | "br" | "rb") {
                match b.get(j) {
                    Some(&b'"') => {
                        let raw = word != "b";
                        let (end, newlines) =
                            if raw { raw_string_end(b, j, 0) } else { string_end(b, j + 1) };
                        toks.push(tok(TokKind::Str, &src[i..end], start_line));
                        line += newlines;
                        i = end;
                        continue;
                    }
                    Some(&b'#') if word != "b" => {
                        let mut hashes = 0usize;
                        let mut k = j;
                        while b.get(k) == Some(&b'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if b.get(k) == Some(&b'"') {
                            let (end, newlines) = raw_string_end(b, k, hashes);
                            toks.push(tok(TokKind::Str, &src[i..end], start_line));
                            line += newlines;
                            i = end;
                            continue;
                        }
                        // `r#ident` raw identifier: fall through after
                        // consuming the hash and the identifier body.
                        if word == "r" && hashes == 1 {
                            let mut m = k;
                            while m < b.len() && (b[m].is_ascii_alphanumeric() || b[m] == b'_') {
                                m += 1;
                            }
                            toks.push(tok(TokKind::Ident, &src[i..m], start_line));
                            i = m;
                            continue;
                        }
                    }
                    Some(&b'\'') if word == "b" => {
                        let (_, end) = char_or_lifetime(b, j);
                        toks.push(tok(TokKind::Char, &src[i..end], start_line));
                        i = end;
                        continue;
                    }
                    _ => {}
                }
            }
            toks.push(tok(TokKind::Ident, word, start_line));
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len() {
                let d = b[j];
                let part_of_number = d.is_ascii_alphanumeric()
                    || d == b'_'
                    || (d == b'.' && b.get(j + 1).is_some_and(u8::is_ascii_digit))
                    || ((d == b'+' || d == b'-')
                        && matches!(b.get(j - 1), Some(&b'e') | Some(&b'E')));
                if !part_of_number {
                    break;
                }
                j += 1;
            }
            toks.push(tok(TokKind::Num, &src[i..j], start_line));
            i = j;
        } else {
            toks.push(tok(TokKind::Punct, &src[i..i + c.len_utf8()], start_line));
            i += c.len_utf8();
        }
    }
    toks
}

fn tok(kind: TokKind, text: &str, line: usize) -> Tok {
    Tok { kind, text: text.to_string(), line }
}

/// Index of the `\n` ending the line starting at `i`, or `len`.
fn memchr_newline(b: &[u8], i: usize) -> usize {
    b[i..].iter().position(|&c| c == b'\n').map_or(b.len(), |p| i + p)
}

/// End offset (exclusive) of a possibly-nested `/* … */` comment starting at
/// `i`, plus the number of newlines inside it.
fn block_comment_end(b: &[u8], i: usize) -> (usize, usize) {
    let mut depth = 0usize;
    let mut j = i;
    let mut newlines = 0usize;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
            j += 1;
        } else if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
            depth += 1;
            j += 2;
        } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
            depth -= 1;
            j += 2;
            if depth == 0 {
                return (j, newlines);
            }
        } else {
            j += 1;
        }
    }
    (b.len(), newlines)
}

/// End offset (exclusive) of a `"…"` literal whose body starts at `i`, plus
/// contained newlines. Handles `\"` and `\\` escapes.
fn string_end(b: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    let mut newlines = 0usize;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, newlines),
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (b.len(), newlines)
}

/// End offset of a raw string whose opening quote is at `i` and which closes
/// with `"` followed by `hashes` `#`s, plus contained newlines.
fn raw_string_end(b: &[u8], i: usize, hashes: usize) -> (usize, usize) {
    let mut j = i + 1;
    let mut newlines = 0usize;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
            j += 1;
        } else if b[j] == b'"'
            && b[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
        {
            return (j + 1 + hashes, newlines);
        } else {
            j += 1;
        }
    }
    (b.len(), newlines)
}

/// Disambiguate `'a` (lifetime) from `'x'` / `'\n'` (char literal) starting
/// at the quote `i`; returns the kind and end offset.
fn char_or_lifetime(b: &[u8], i: usize) -> (TokKind, usize) {
    // Lifetime: quote, ident-start, ident chars, and *no* closing quote.
    let is_ident_start = |c: &u8| c.is_ascii_alphabetic() || *c == b'_';
    if b.get(i + 1).is_some_and(is_ident_start) && b.get(i + 2) != Some(&b'\'') {
        let mut j = i + 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        // `'static'` can't occur; anything quote-terminated here is a char
        // like `'a'`, caught by the i+2 check above for 1-char bodies.
        return (TokKind::Lifetime, j);
    }
    let mut j = i + 1;
    if b.get(j) == Some(&b'\\') {
        j += 2;
        // Multi-char escapes: \x7f, \u{…}.
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
    } else if j < b.len() {
        j += 1;
    }
    while j < b.len() && b[j] != b'\'' {
        j += 1;
    }
    (TokKind::Char, (j + 1).min(b.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_tokens() {
        let ts = kinds("fn x() -> u32 { 1 }");
        assert_eq!(ts[0], (TokKind::Ident, "fn".into()));
        assert_eq!(ts[1], (TokKind::Ident, "x".into()));
        assert!(ts.iter().any(|t| t.0 == TokKind::Num && t.1 == "1"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let ts = kinds(r#"let s = "x.unwrap() /* not a comment */";"#);
        assert!(ts.iter().all(|t| t.0 != TokKind::LineComment && t.0 != TokKind::BlockComment));
        assert!(ts.iter().any(|t| t.0 == TokKind::Str));
        // The unwrap inside the string must not surface as an ident.
        assert!(!ts.iter().any(|t| t.0 == TokKind::Ident && t.1 == "unwrap"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let ts = kinds(r##"let s = r#"a "quoted" b"#; let t = "esc \" q";"##);
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Str).count(), 2);
    }

    #[test]
    fn byte_and_raw_identifiers() {
        let ts = kinds(r#"let b1 = b"bytes"; let k = r#type; let c = b'x';"#);
        assert!(ts.iter().any(|t| t.0 == TokKind::Str));
        assert!(ts.iter().any(|t| t.0 == TokKind::Ident && t.1 == "r#type"));
        assert!(ts.iter().any(|t| t.0 == TokKind::Char));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let n = '\\n'; }");
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Lifetime).count(), 2);
        assert_eq!(ts.iter().filter(|t| t.0 == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let src = "a\n/* one /* two */ still */\nb // tail\nc";
        let ts = lex(src);
        let b = ts.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
        let c = ts.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(c.line, 4);
        assert_eq!(ts.iter().filter(|t| t.kind == TokKind::BlockComment).count(), 1);
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let ts = kinds("let a = 0xAAAA_u64; let b = 1.5e-3; let c = 1..5;");
        assert!(ts.iter().any(|t| t.0 == TokKind::Num && t.1 == "0xAAAA_u64"));
        assert!(ts.iter().any(|t| t.0 == TokKind::Num && t.1 == "1.5e-3"));
        // Range stays three tokens: 1, .., 5.
        assert!(ts.iter().any(|t| t.0 == TokKind::Num && t.1 == "1"));
        assert!(ts.iter().any(|t| t.0 == TokKind::Num && t.1 == "5"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b'"] {
            let _ = lex(src);
        }
    }
}
