//! Workspace-wide, module-aware call graph, and the `panic_reach` lint.
//!
//! Resolution is deliberately *asymmetric* in its approximation: a missed
//! edge only weakens a lint (a finding not reported), while an invented
//! edge produces false findings that erode trust in the gate. So names are
//! resolved conservatively — exact type-qualified matches first, then
//! module-suffix matches, then a uniqueness fallback — with one designed
//! exception: a method call whose receiver we cannot type (`store.fetch(…)`
//! through a `dyn SegmentStore`) fans out to *every* workspace impl of that
//! method, because trait dispatch on the storage path is exactly where
//! panic-reachability matters most. Methods whose names collide with the
//! standard library (`get`, `len`, `write`, …) are excluded from that
//! fan-out; they resolve only against the caller's own type.

use crate::config::AnalyzeConfig;
use crate::parse::{Call, Callee, ParsedFile};
use crate::report::Violation;
use std::collections::{BTreeMap, VecDeque};

/// Method names too generic to fan out to unrelated impls: a call through
/// an untyped receiver to one of these is left unresolved rather than
/// over-approximated (exact same-type matches still resolve).
const COMMON_METHODS: [&str; 58] = [
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "to_string",
    "to_vec",
    "to_owned",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "write",
    "write_all",
    "read",
    "read_to_end",
    "flush",
    "clear",
    "extend",
    "sort",
    "min",
    "max",
    "abs",
    "sqrt",
    "sum",
    "count",
    "collect",
    "filter",
    "fold",
    "zip",
    "rev",
    "take",
    "skip",
    "last",
    "first",
    "position",
    "find",
    "any",
    "all",
    "eq",
    "fmt",
];

/// How many distinct impl types an untyped method call may fan out to
/// before we declare it unresolvable (guards against flagging half the
/// workspace through one `.process()` name).
const MAX_DISPATCH_FANOUT: usize = 6;

/// One function node in the graph.
#[derive(Debug)]
pub struct Node {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Index into `files[file].fns`.
    pub fn_idx: usize,
    pub qual: String,
    pub name: String,
    pub self_type: Option<String>,
    pub returns_result: bool,
    pub is_test: bool,
    pub rel_path: String,
    pub line: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// Sorted, deduped adjacency (caller → callees), non-test nodes only.
    pub edges: Vec<Vec<usize>>,
    /// Per-node, per-call resolved targets, parallel to
    /// `files[node.file].fns[node.fn_idx].calls`.
    pub call_targets: Vec<Vec<Vec<usize>>>,
}

/// Multi-source BFS result: distance and parent pointers for shortest
/// entry→node chains.
pub struct Reach {
    pub dist: Vec<Option<u32>>,
    parent: Vec<Option<usize>>,
}

impl CallGraph {
    /// Build the graph over `files` (already sorted by `rel_path` — node
    /// and edge order inherit that determinism).
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for (k, func) in f.fns.iter().enumerate() {
                nodes.push(Node {
                    file: fi,
                    fn_idx: k,
                    qual: func.qual(&f.module),
                    name: func.name.clone(),
                    self_type: func.self_type.clone(),
                    returns_result: func.returns_result,
                    is_test: func.is_test,
                    rel_path: f.rel_path.clone(),
                    line: func.line,
                });
            }
        }

        // Name indexes over non-test nodes.
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if n.is_test {
                continue;
            }
            by_qual.entry(n.qual.as_str()).or_default().push(i);
            match &n.self_type {
                None => free_by_name.entry(n.name.as_str()).or_default().push(i),
                Some(t) => {
                    method_by_name.entry(n.name.as_str()).or_default().push(i);
                    type_method.entry((t.as_str(), n.name.as_str())).or_default().push(i);
                }
            }
        }

        // Per-file use maps: alias → path segments.
        let use_maps: Vec<BTreeMap<&str, &[String]>> = files
            .iter()
            .map(|f| {
                f.uses
                    .iter()
                    .map(|u| (u.alias.as_str(), u.path.as_slice()))
                    .collect::<BTreeMap<_, _>>()
            })
            .collect();

        let ix = Indexes { free_by_name, method_by_name, type_method, by_qual, use_maps };

        let mut edges = vec![Vec::new(); nodes.len()];
        let mut call_targets = vec![Vec::new(); nodes.len()];
        for i in 0..nodes.len() {
            if nodes[i].is_test {
                let ncalls = files[nodes[i].file].fns[nodes[i].fn_idx].calls.len();
                call_targets[i] = vec![Vec::new(); ncalls];
                continue;
            }
            let func = &files[nodes[i].file].fns[nodes[i].fn_idx];
            let mut per_call = Vec::with_capacity(func.calls.len());
            for call in &func.calls {
                let targets = resolve(&nodes, &ix, files, i, call);
                edges[i].extend(targets.iter().copied());
                per_call.push(targets);
            }
            edges[i].sort_unstable();
            edges[i].dedup();
            call_targets[i] = per_call;
        }
        CallGraph { nodes, edges, call_targets }
    }

    /// Entry-point node ids for the panic-reachability walk, sorted.
    pub fn entries(&self, cfg: &AnalyzeConfig) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| {
                let n = &self.nodes[i];
                !n.is_test
                    && cfg.entry_paths.iter().any(|p| n.rel_path.starts_with(p.as_str()))
                    && cfg.entry_prefixes.iter().any(|p| n.name.starts_with(p.as_str()))
            })
            .collect()
    }

    /// Multi-source BFS from `entries` (must be sorted for determinism).
    pub fn reachable_from(&self, entries: &[usize]) -> Reach {
        let mut dist = vec![None; self.nodes.len()];
        let mut parent = vec![None; self.nodes.len()];
        let mut q = VecDeque::new();
        for &e in entries {
            if dist[e].is_none() {
                dist[e] = Some(0);
                q.push_back(e);
            }
        }
        while let Some(n) = q.pop_front() {
            let d = dist[n].unwrap_or(0);
            for &m in &self.edges[n] {
                if dist[m].is_none() {
                    dist[m] = Some(d + 1);
                    parent[m] = Some(n);
                    q.push_back(m);
                }
            }
        }
        Reach { dist, parent }
    }

    /// The shortest entry→…→`node` chain, rendered as ` → `-joined quals
    /// (middle elided past five hops).
    pub fn chain(&self, reach: &Reach, node: usize) -> String {
        let mut ids = vec![node];
        let mut cur = node;
        while let Some(p) = reach.parent[cur] {
            ids.push(p);
            cur = p;
        }
        ids.reverse();
        let quals: Vec<&str> = ids.iter().map(|&i| self.nodes[i].qual.as_str()).collect();
        if quals.len() <= 5 {
            quals.join(" → ")
        } else {
            format!(
                "{} → {} → … → {} → {}",
                quals[0],
                quals[1],
                quals[quals.len() - 2],
                quals[quals.len() - 1]
            )
        }
    }
}

struct Indexes<'a> {
    free_by_name: BTreeMap<&'a str, Vec<usize>>,
    method_by_name: BTreeMap<&'a str, Vec<usize>>,
    type_method: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    by_qual: BTreeMap<&'a str, Vec<usize>>,
    use_maps: Vec<BTreeMap<&'a str, &'a [String]>>,
}

fn resolve(
    nodes: &[Node],
    ix: &Indexes<'_>,
    files: &[ParsedFile],
    caller: usize,
    call: &Call,
) -> Vec<usize> {
    match &call.callee {
        Callee::Method { name, recv } => resolve_method(nodes, ix, caller, name, recv.as_deref()),
        Callee::Free(name) => {
            // A `use`-imported function shadows same-file lookup.
            if let Some(path) = ix.use_maps[nodes[caller].file].get(name.as_str()) {
                let segs: Vec<String> = path.to_vec();
                let r = resolve_path(nodes, ix, files, caller, &segs);
                if !r.is_empty() {
                    return r;
                }
            }
            // Same-file free functions first (the overwhelmingly common
            // helper pattern), then a workspace-unique fallback.
            let candidates = ix.free_by_name.get(name.as_str()).map_or(&[][..], Vec::as_slice);
            let local: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| nodes[i].file == nodes[caller].file)
                .collect();
            if !local.is_empty() {
                return local;
            }
            if candidates.len() == 1 {
                return candidates.to_vec();
            }
            Vec::new()
        }
        Callee::Path(segs) => resolve_path(nodes, ix, files, caller, segs),
    }
}

fn resolve_method(
    nodes: &[Node],
    ix: &Indexes<'_>,
    caller: usize,
    name: &str,
    recv: Option<&str>,
) -> Vec<usize> {
    let Some(candidates) = ix.method_by_name.get(name) else { return Vec::new() };
    // `self.method()` resolves against the caller's own impl type first.
    if recv == Some("self") {
        if let Some(t) = &nodes[caller].self_type {
            if let Some(exact) = ix.type_method.get(&(t.as_str(), name)) {
                return exact.clone();
            }
        }
    }
    if COMMON_METHODS.contains(&name) {
        return Vec::new();
    }
    // Untyped receiver: fan out to every impl of this method name, unless
    // the name is so widely implemented the fan-out would be noise.
    let mut types: Vec<&str> =
        candidates.iter().filter_map(|&i| nodes[i].self_type.as_deref()).collect();
    types.sort_unstable();
    types.dedup();
    if types.len() <= MAX_DISPATCH_FANOUT {
        candidates.clone()
    } else {
        Vec::new()
    }
}

fn resolve_path(
    nodes: &[Node],
    ix: &Indexes<'_>,
    files: &[ParsedFile],
    caller: usize,
    segs: &[String],
) -> Vec<usize> {
    if segs.is_empty() {
        return Vec::new();
    }
    let file = &files[nodes[caller].file];
    // Expand the leading segment: `crate`/`self`/`super` or a use alias.
    let mut full: Vec<String> = Vec::new();
    match segs[0].as_str() {
        "crate" => {
            full.extend(file.module.first().cloned());
            full.extend(segs[1..].iter().cloned());
        }
        "self" => {
            full.extend(file.module.iter().cloned());
            full.extend(segs[1..].iter().cloned());
        }
        "super" => {
            let keep = file.module.len().saturating_sub(1);
            full.extend(file.module[..keep].iter().cloned());
            full.extend(segs[1..].iter().cloned());
        }
        first => {
            if let Some(mapped) = ix.use_maps[nodes[caller].file].get(first) {
                full.extend(mapped.iter().cloned());
                full.extend(segs[1..].iter().cloned());
            } else {
                full.extend(segs.iter().cloned());
            }
        }
    }
    if full.is_empty() {
        return Vec::new();
    }
    let name = full.last().cloned().unwrap_or_default();
    // `Type::method` / `Self::method`: second-to-last segment capitalized.
    if full.len() >= 2 {
        let qualifier = full[full.len() - 2].clone();
        if qualifier.chars().next().is_some_and(char::is_uppercase) {
            let ty = if qualifier == "Self" {
                match &nodes[caller].self_type {
                    Some(t) => t.clone(),
                    None => return Vec::new(),
                }
            } else {
                qualifier
            };
            return ix.type_method.get(&(ty.as_str(), name.as_str())).cloned().unwrap_or_default();
        }
    }
    // Free function: exact qual, then module-suffix, then unique-name.
    let joined = full.join("::");
    if let Some(exact) = ix.by_qual.get(joined.as_str()) {
        let frees: Vec<usize> =
            exact.iter().copied().filter(|&i| nodes[i].self_type.is_none()).collect();
        if !frees.is_empty() {
            return frees;
        }
    }
    if full.len() >= 2 {
        let suffix = format!("::{}::{}", full[full.len() - 2], name);
        let matches: Vec<usize> = ix
            .free_by_name
            .get(name.as_str())
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .copied()
            .filter(|&i| nodes[i].qual.ends_with(&suffix))
            .collect();
        if !matches.is_empty() {
            return matches;
        }
    }
    let candidates = ix.free_by_name.get(name.as_str()).map_or(&[][..], Vec::as_slice);
    if candidates.len() == 1 {
        return candidates.to_vec();
    }
    Vec::new()
}

/// The `panic_reach` lint: every panic-capable site in a function
/// transitively reachable from a configured entry point, reported at the
/// site with the shortest entry chain.
pub fn panic_reach(files: &[ParsedFile], graph: &CallGraph, cfg: &AnalyzeConfig) -> Vec<Violation> {
    let entries = graph.entries(cfg);
    let reach = graph.reachable_from(&entries);
    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.is_test || reach.dist[i].is_none() {
            continue;
        }
        let f = &files[node.file];
        for site in &f.fns[node.fn_idx].panics {
            out.push(Violation::new(
                "panic_reach",
                f.rel_path.as_str(),
                site.line,
                format!(
                    "panic-capable `{}` is reachable from retrieval entry points: {}",
                    site.form,
                    graph.chain(&reach, i)
                ),
                f.snippet(site.line),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn build(sources: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph) {
        let mut files: Vec<ParsedFile> = sources.iter().map(|(p, s)| parse_file(p, s)).collect();
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let graph = CallGraph::build(&files);
        (files, graph)
    }

    fn node(g: &CallGraph, qual: &str) -> usize {
        g.nodes.iter().position(|n| n.qual == qual).unwrap_or_else(|| panic!("no node {qual}"))
    }

    #[test]
    fn cross_crate_free_call_resolves_via_use() {
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "use pmr_b::helper;\nfn go() { helper(); }"),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let go = node(&g, "pmr_a::go");
        let helper = node(&g, "pmr_b::helper");
        assert_eq!(g.edges[go], vec![helper]);
    }

    #[test]
    fn module_path_call_resolves_by_suffix() {
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn go() { io::save(1); }"),
            ("crates/b/src/io.rs", "pub fn save(x: u32) {}"),
        ]);
        assert_eq!(g.edges[node(&g, "pmr_a::go")], vec![node(&g, "pmr_b::io::save")]);
    }

    #[test]
    fn untyped_method_call_fans_out_to_all_impls() {
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn go(s: &dyn Store) { s.fetch(0); }"),
            (
                "crates/b/src/lib.rs",
                "impl Mem { fn fetch(&self, k: u32) {} }\nimpl Disk { fn fetch(&self, k: u32) {} }",
            ),
        ]);
        let go = node(&g, "pmr_a::go");
        assert_eq!(g.edges[go].len(), 2);
    }

    #[test]
    fn common_method_names_do_not_fan_out() {
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn go(v: &Thing) { v.get(0); }"),
            ("crates/b/src/lib.rs", "impl Other { fn get(&self, k: u32) {} }"),
        ]);
        assert!(g.edges[node(&g, "pmr_a::go")].is_empty());
    }

    #[test]
    fn self_method_resolves_to_own_impl_even_for_common_names() {
        let (_, g) = build(&[(
            "crates/a/src/lib.rs",
            "impl T { fn get(&self, k: u32) {} fn go(&self) { self.get(1); } }",
        )]);
        assert_eq!(g.edges[node(&g, "pmr_a::T::go")], vec![node(&g, "pmr_a::T::get")]);
    }

    #[test]
    fn panic_reach_reports_transitive_sites_with_chain() {
        let cfg = AnalyzeConfig::default();
        let (files, g) = build(&[
            (
                "crates/core/src/lib.rs",
                "pub fn execute() { step(); }\nfn step() { helper(); }\nfn helper(x: Option<u8>) { x.unwrap(); }",
            ),
            // Not reachable from any entry: no finding.
            ("crates/core/src/other.rs", "fn lonely() { panic!(\"x\"); }"),
        ]);
        let v = panic_reach(&files, &g, &cfg);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "panic_reach");
        assert!(v[0].message.contains("pmr_core::execute → pmr_core::step → pmr_core::helper"));
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn entries_respect_paths_and_prefixes() {
        let cfg = AnalyzeConfig::default();
        let (_, g) = build(&[
            ("crates/core/src/lib.rs", "pub fn execute() {}\npub fn other() {}"),
            ("crates/nn/src/lib.rs", "pub fn execute_model() {}"),
        ]);
        let entries = g.entries(&cfg);
        // core execute qualifies; core other (name) and nn (path) do not.
        assert_eq!(entries, vec![node(&g, "pmr_core::execute")]);
    }
}
