//! Statement-level dataflow lints on top of the call graph:
//! `error_swallow` (a `Result` silently dropped on the data path) and
//! `lock_order` (deadlock-capable lock acquisition patterns).
//!
//! Both work on the same per-function body scan: a linear pass that
//! assigns every code token its enclosing statement start, brace depth,
//! and paren/bracket depth. That is enough to answer the questions these
//! lints ask — "is this call the whole statement?", "is this `let _ =`?",
//! "how long does this guard live?" — without a full expression parser,
//! and it degrades conservatively: a construct the scan cannot shape is
//! skipped, not guessed at.

use crate::callgraph::CallGraph;
use crate::config::AnalyzeConfig;
use crate::parse::{Callee, ParsedFile};
use crate::report::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// Loop-body call names that mark a retry/backoff loop.
const RETRY_MARKERS: [&str; 3] = ["sleep", "retry", "backoff"];

// ---------------------------------------------------------------------------
// Shared body scan

/// Per-token structural facts for one function body.
struct BodyScan {
    /// First code index inside the body (just after the opening `{`).
    off: usize,
    /// `stmt[ci - off]`: code index where the enclosing statement starts.
    stmt: Vec<usize>,
    /// `depth[ci - off]`: brace depth relative to the body (opening `{` of
    /// the body itself not counted; a closing `}` records the depth of the
    /// block it returns to).
    depth: Vec<usize>,
}

impl BodyScan {
    fn new(p: &ParsedFile, body: (usize, usize)) -> BodyScan {
        let off = body.0 + 1;
        let n = body.1.saturating_sub(off);
        let mut stmt = vec![off; n];
        let mut depth = vec![0usize; n];
        let mut d = 0usize;
        let mut pd = 0usize;
        let mut cur_start = off;
        let mut cur_pd = 0usize;
        // Saved (stmt_start, stmt_pd) per enclosing brace.
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for ci in off..body.1 {
            let t = p.ct(ci);
            if t.is_punct('}') {
                d = d.saturating_sub(1);
                if let Some((s, spd)) = stack.pop() {
                    cur_start = s;
                    cur_pd = spd;
                }
            }
            stmt[ci - off] = cur_start;
            depth[ci - off] = d;
            if t.is_punct('{') {
                d += 1;
                stack.push((cur_start, cur_pd));
                cur_start = ci + 1;
                cur_pd = pd;
            } else if t.is_punct('(') || t.is_punct('[') {
                pd += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                pd = pd.saturating_sub(1);
            } else if t.is_punct(';') && pd == cur_pd {
                cur_start = ci + 1;
            }
        }
        BodyScan { off, stmt, depth }
    }

    fn stmt_of(&self, ci: usize) -> usize {
        self.stmt.get(ci.wrapping_sub(self.off)).copied().unwrap_or(self.off)
    }

    fn depth_of(&self, ci: usize) -> usize {
        self.depth.get(ci.wrapping_sub(self.off)).copied().unwrap_or(0)
    }

    fn end(&self) -> usize {
        self.off + self.stmt.len()
    }
}

/// Walk back from the callee name token to the start of the call's
/// receiver/path expression, or `None` if the shape isn't a simple
/// `a.b.name` / `a::b::name` / `name` chain.
fn expr_start(ci: usize, callee: &Callee) -> Option<usize> {
    match callee {
        Callee::Free(_) => Some(ci),
        Callee::Path(segs) => ci.checked_sub(2 * (segs.len() - 1)),
        Callee::Method { recv, .. } => {
            let chain = recv.as_deref()?;
            let segs = chain.split('.').count();
            ci.checked_sub(2 * segs)
        }
    }
}

// ---------------------------------------------------------------------------
// error_swallow

/// The `error_swallow` lint: `let _ = fallible()`, `.ok();` with the value
/// dropped, and bare `fallible();` statements. Resolution comes from the
/// call graph, so only calls known to return `Result` are flagged.
pub fn error_swallow(
    files: &[ParsedFile],
    graph: &CallGraph,
    cfg: &AnalyzeConfig,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if node.is_test
            || !cfg.swallow_paths.iter().any(|px| node.rel_path.starts_with(px.as_str()))
        {
            continue;
        }
        let f = &files[node.file];
        let func = &f.fns[node.fn_idx];
        let scan = BodyScan::new(f, func.body);
        let mut flagged_stmts: BTreeSet<usize> = BTreeSet::new();

        for (k, call) in func.calls.iter().enumerate() {
            let targets = &graph.call_targets[ni][k];
            let fallible = targets.iter().any(|&t| graph.nodes[t].returns_result);
            if !fallible {
                continue;
            }
            let s = scan.stmt_of(call.ci);
            // `let _ = fallible_expr();` — the binding exists to discard.
            let is_let_underscore = f.ct(s).is_ident("let")
                && f.code.get(s + 1).is_some_and(|&ti| f.toks[ti].text == "_")
                && f.code.get(s + 2).is_some_and(|&ti| f.toks[ti].is_punct('='));
            if is_let_underscore && flagged_stmts.insert(s) {
                let line = f.ct(s).line;
                out.push(Violation::new(
                    "error_swallow",
                    f.rel_path.as_str(),
                    line,
                    format!(
                        "`let _ = …` discards the `Result` of `{}`; handle it or propagate with `?`",
                        first_qual(graph, targets)
                    ),
                    f.snippet(line),
                ));
                continue;
            }
            // Bare `fallible();` statement: the call *is* the statement and
            // nothing consumes its value.
            let Some(s0) = expr_start(call.ci, &call.callee) else { continue };
            if s0 != s {
                continue;
            }
            let Some(close) = matching_close(f, call.ci + 1) else { continue };
            if f.code.get(close + 1).is_some_and(|&ti| f.toks[ti].is_punct(';'))
                && flagged_stmts.insert(s)
            {
                out.push(Violation::new(
                    "error_swallow",
                    f.rel_path.as_str(),
                    call.line,
                    format!(
                        "`{}` returns a `Result` that is silently discarded; use `?` or handle the error",
                        first_qual(graph, targets)
                    ),
                    f.snippet(call.line),
                ));
            }
        }

        // `.ok();` — converts the error to `None` and drops it, no
        // resolution needed: the form itself is the swallow.
        for ci in (func.body.0 + 1)..func.body.1 {
            let t = f.ct(ci);
            if t.is_ident("ok")
                && !f.in_test(ci)
                && ci.checked_sub(1).is_some_and(|i| f.ct(i).is_punct('.'))
                && f.code.get(ci + 1).is_some_and(|&ti| f.toks[ti].is_punct('('))
                && f.code.get(ci + 2).is_some_and(|&ti| f.toks[ti].is_punct(')'))
                && f.code.get(ci + 3).is_some_and(|&ti| f.toks[ti].is_punct(';'))
                && flagged_stmts.insert(scan.stmt_of(ci))
            {
                out.push(Violation::new(
                    "error_swallow",
                    f.rel_path.as_str(),
                    t.line,
                    "`.ok();` drops the error on the floor; handle it, log it, or propagate with `?`",
                    f.snippet(t.line),
                ));
            }
        }
    }
    out
}

fn first_qual(graph: &CallGraph, targets: &[usize]) -> String {
    targets.first().map_or_else(|| "<unresolved>".into(), |&t| graph.nodes[t].qual.clone())
}

/// Code index of the `)` matching the `(` at `open`, scanning forward.
fn matching_close(p: &ParsedFile, open: usize) -> Option<usize> {
    if !p.code.get(open).map(|&ti| &p.toks[ti]).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let mut depth = 0usize;
    for ci in open..p.code.len() {
        let t = p.ct(ci);
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(ci);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// lock_order

/// One lock acquisition site inside a function body.
struct Acquisition {
    /// Normalized lock identity: `Type.field` for `self.field.lock()`
    /// (comparable across functions), `fn_qual::chain` for locals.
    id: String,
    /// Code index of the `lock`/`try_lock` ident.
    ci: usize,
    line: usize,
    /// End (exclusive code index) of the guard's live range.
    live_end: usize,
    /// Whether the guard is `let`-bound (named, outlives the statement).
    let_bound: bool,
}

/// The `lock_order` lint: cyclic acquisition orders across the workspace,
/// same-lock re-entry, guards held across `fetch*` calls, and guards held
/// across retry/backoff loops.
pub fn lock_order(files: &[ParsedFile], graph: &CallGraph, cfg: &AnalyzeConfig) -> Vec<Violation> {
    let in_scope = |n: &crate::callgraph::Node| {
        cfg.lock_paths.iter().any(|px| n.rel_path.starts_with(px.as_str()))
    };

    // Per-node direct acquisitions (order of discovery = source order).
    let acqs: Vec<Vec<Acquisition>> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(ni, node)| {
            if node.is_test || !in_scope(node) {
                return Vec::new();
            }
            collect_acquisitions(&files[node.file], graph, ni)
        })
        .collect();

    // Transitive lock sets and fetch-reachability, to fixpoint.
    let mut lock_sets: Vec<BTreeSet<String>> =
        acqs.iter().map(|a| a.iter().map(|x| x.id.clone()).collect()).collect();
    let mut reaches_fetch: Vec<bool> =
        graph.nodes.iter().map(|n| !n.is_test && n.name.starts_with("fetch")).collect();
    loop {
        let mut changed = false;
        for i in 0..graph.nodes.len() {
            for &m in &graph.edges[i] {
                if reaches_fetch[m] && !reaches_fetch[i] {
                    reaches_fetch[i] = true;
                    changed = true;
                }
                if !lock_sets[m].is_empty() {
                    let add: Vec<String> = lock_sets[m]
                        .iter()
                        .filter(|s| !lock_sets[i].contains(*s))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        lock_sets[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    // Ordered acquisition edges: (held, acquired) → first witness site.
    let mut order_edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();

    for (ni, node) in graph.nodes.iter().enumerate() {
        if node.is_test || !in_scope(node) {
            continue;
        }
        let f = &files[node.file];
        let func = &f.fns[node.fn_idx];
        let call_at: BTreeMap<usize, usize> =
            func.calls.iter().enumerate().map(|(k, c)| (c.ci, k)).collect();

        for a in &acqs[ni] {
            for ci in (a.ci + 1)..a.live_end {
                let t = f.ct(ci);
                // Guard explicitly dropped: liveness truly ends here.
                if t.is_ident("drop") && a.let_bound {
                    break;
                }
                // Nested direct acquisition.
                if let Some(b) = acqs[ni].iter().find(|b| b.ci == ci) {
                    if b.id == a.id {
                        out.push(Violation::new(
                            "lock_order",
                            f.rel_path.as_str(),
                            b.line,
                            format!(
                                "`{}` re-acquired while its guard is still held (self-deadlock)",
                                a.id
                            ),
                            f.snippet(b.line),
                        ));
                    } else {
                        order_edges.entry((a.id.clone(), b.id.clone())).or_insert((
                            f.rel_path.clone(),
                            b.line,
                            f.snippet(b.line),
                        ));
                    }
                    continue;
                }
                let Some(&k) = call_at.get(&ci) else { continue };
                let callee_name = func.calls[k].callee.name();
                if callee_name == "lock" || callee_name == "try_lock" {
                    continue; // handled as an acquisition (or unresolvable)
                }
                let targets = &graph.call_targets[ni][k];
                // Guard held across a segment fetch (direct or transitive).
                if callee_name.starts_with("fetch") || targets.iter().any(|&tg| reaches_fetch[tg]) {
                    let line = f.ct(ci).line;
                    out.push(Violation::new(
                        "lock_order",
                        f.rel_path.as_str(),
                        line,
                        format!(
                            "mutex guard on `{}` is held across segment fetch `{}`; \
                             drop the guard before I/O",
                            a.id, callee_name
                        ),
                        f.snippet(line),
                    ));
                    continue;
                }
                // Locks acquired transitively by the callee.
                for id2 in targets.iter().flat_map(|&tg| lock_sets[tg].iter()) {
                    if *id2 == a.id {
                        let line = f.ct(ci).line;
                        out.push(Violation::new(
                            "lock_order",
                            f.rel_path.as_str(),
                            line,
                            format!(
                                "guard on `{}` held across call to `{}`, which acquires \
                                 `{}` again (deadlock)",
                                a.id,
                                first_qual(graph, targets),
                                a.id
                            ),
                            f.snippet(line),
                        ));
                    } else {
                        order_edges.entry((a.id.clone(), id2.clone())).or_insert((
                            f.rel_path.clone(),
                            f.ct(ci).line,
                            f.snippet(f.ct(ci).line),
                        ));
                    }
                }
            }
            // Retry/backoff loop inside the guard's live range.
            if a.let_bound {
                if let Some((line, marker)) = retry_loop_in(f, &call_at, a.ci + 1, a.live_end) {
                    out.push(Violation::new(
                        "lock_order",
                        f.rel_path.as_str(),
                        line,
                        format!(
                            "mutex guard on `{}` is held across a retry/backoff loop \
                             (`{marker}` in the loop body); drop it before waiting",
                            a.id
                        ),
                        f.snippet(line),
                    ));
                }
            }
        }
    }

    // Cyclic orders: edge (a, b) participates in a cycle iff b reaches a.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in order_edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    for ((a, b), (file, line, snippet)) in &order_edges {
        if lock_reaches(&adj, b, a) {
            out.push(Violation::new(
                "lock_order",
                file.as_str(),
                *line,
                format!(
                    "lock-order cycle: `{a}` is held while acquiring `{b}` here, but an \
                     opposite ordering exists elsewhere in the workspace"
                ),
                snippet.as_str(),
            ));
        }
    }
    out
}

fn lock_reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if seen.insert(n) {
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
    }
    false
}

fn collect_acquisitions(f: &ParsedFile, graph: &CallGraph, ni: usize) -> Vec<Acquisition> {
    let node = &graph.nodes[ni];
    let func = &f.fns[node.fn_idx];
    let scan = BodyScan::new(f, func.body);
    let mut out = Vec::new();
    for call in &func.calls {
        let Callee::Method { name, recv } = &call.callee else { continue };
        if name != "lock" && name != "try_lock" {
            continue;
        }
        let Some(chain) = recv.as_deref() else { continue };
        if f.in_test(call.ci) {
            continue;
        }
        let id = normalize_lock_id(chain, node);
        let s = scan.stmt_of(call.ci);
        let let_bound = f.ct(s).is_ident("let") && {
            let name_at = if f.code.get(s + 1).is_some_and(|&ti| f.toks[ti].is_ident("mut")) {
                s + 2
            } else {
                s + 1
            };
            f.code.get(name_at).is_some_and(|&ti| {
                f.toks[ti].kind == crate::lexer::TokKind::Ident && f.toks[ti].text != "_"
            }) && f.code.get(name_at + 1).is_some_and(|&ti| f.toks[ti].is_punct('='))
        };
        let live_end = if let_bound {
            // Until the enclosing block closes.
            let d = scan.depth_of(s);
            (call.ci + 1..scan.end())
                .find(|&cj| scan.depth_of(cj) < d)
                .unwrap_or_else(|| scan.end())
        } else {
            // Temporary guard: to the end of the statement (first
            // statement-level `;`, or the enclosing block close for
            // `if let Ok(g) = m.try_lock()`-style headers).
            let d = scan.depth_of(s);
            (call.ci + 1..scan.end())
                .find(|&cj| {
                    (f.ct(cj).is_punct(';') && scan.depth_of(cj) == d && scan.stmt_of(cj) != s)
                        || (f.ct(cj).is_punct(';') && scan.stmt_of(cj) == s)
                        || scan.depth_of(cj) < d
                })
                .unwrap_or_else(|| scan.end())
        };
        out.push(Acquisition { id, ci: call.ci, line: call.line, live_end, let_bound });
    }
    out
}

/// Normalize a receiver chain to a lock identity. `self.field` becomes
/// `Type.field` (comparable across methods of the type); anything else is
/// prefixed with the function qual so distinct locals never unify.
fn normalize_lock_id(chain: &str, node: &crate::callgraph::Node) -> String {
    if let Some(rest) = chain.strip_prefix("self") {
        if let Some(t) = &node.self_type {
            return format!("{t}{rest}");
        }
    }
    format!("{}::{chain}", node.qual)
}

/// Find a `loop`/`while`/`for` whose body (within `[from, to)`) contains a
/// retry marker call (`sleep`/`*retry*`/`*backoff*`). Returns the marker
/// call's line and name.
fn retry_loop_in(
    f: &ParsedFile,
    call_at: &BTreeMap<usize, usize>,
    from: usize,
    to: usize,
) -> Option<(usize, String)> {
    for ci in from..to {
        let t = f.ct(ci);
        if !(t.is_ident("loop") || t.is_ident("while") || t.is_ident("for")) {
            continue;
        }
        // The loop body: first `{` after the keyword, to its match.
        let open = (ci + 1..to).find(|&cj| f.ct(cj).is_punct('{'))?;
        let mut depth = 0usize;
        let mut close = open;
        for cj in open..f.code.len() {
            let u = f.ct(cj);
            if u.is_punct('{') {
                depth += 1;
            } else if u.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = cj;
                    break;
                }
            }
        }
        for cj in open..close.min(to) {
            if !call_at.contains_key(&cj) {
                continue;
            }
            let name = f.ct(cj).text.as_str();
            if RETRY_MARKERS.iter().any(|m| name.contains(m)) {
                return Some((f.ct(cj).line, name.to_string()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run_both(sources: &[(&str, &str)]) -> (Vec<Violation>, Vec<Violation>) {
        let mut files: Vec<ParsedFile> = sources.iter().map(|(p, s)| parse_file(p, s)).collect();
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let graph = CallGraph::build(&files);
        let cfg = AnalyzeConfig::default();
        (error_swallow(&files, &graph, &cfg), lock_order(&files, &graph, &cfg))
    }

    #[test]
    fn let_underscore_on_fallible_call_fires() {
        let (es, _) = run_both(&[(
            "crates/mgard/src/lib.rs",
            "fn save() -> Result<(), E> { Ok(()) }\nfn go() { let _ = save(); }",
        )]);
        assert_eq!(es.len(), 1);
        assert!(es[0].message.contains("pmr_mgard::save"));
    }

    #[test]
    fn bare_discarded_fallible_call_fires() {
        let (es, _) = run_both(&[(
            "crates/mgard/src/lib.rs",
            "fn save() -> Result<(), E> { Ok(()) }\nfn go() { save(); }",
        )]);
        assert_eq!(es.len(), 1);
        assert!(es[0].message.contains("silently discarded"));
    }

    #[test]
    fn consumed_or_propagated_results_do_not_fire() {
        let (es, _) = run_both(&[(
            "crates/mgard/src/lib.rs",
            "fn save() -> Result<(), E> { Ok(()) }\nfn go() -> Result<(), E> { save()?; let r = save(); r }",
        )]);
        assert!(es.is_empty(), "{es:?}");
    }

    #[test]
    fn dot_ok_dropped_fires_infallible_call_does_not() {
        let (es, _) = run_both(&[(
            "crates/storage/src/lib.rs",
            "fn hint() {}\nfn go(file: &File) { file.sync_all().ok(); hint(); }",
        )]);
        assert_eq!(es.len(), 1);
        assert!(es[0].message.contains(".ok()"));
    }

    #[test]
    fn swallow_scope_is_respected() {
        let (es, _) = run_both(&[(
            "crates/nn/src/lib.rs",
            "fn save() -> Result<(), E> { Ok(()) }\nfn go() { let _ = save(); }",
        )]);
        assert!(es.is_empty());
    }

    #[test]
    fn guard_across_fetch_fires() {
        let (_, lo) = run_both(&[(
            "crates/storage/src/lib.rs",
            "impl Exec {\n fn fetch_segment(&self, k: u32) {}\n fn go(&self) { let g = self.state.lock().unwrap_or_default(); self.fetch_segment(1); }\n}",
        )]);
        assert_eq!(lo.len(), 1, "{lo:?}");
        assert!(lo[0].message.contains("held across segment fetch"));
        assert!(lo[0].message.contains("Exec.state"));
    }

    #[test]
    fn guard_dropped_before_fetch_is_clean() {
        let (_, lo) = run_both(&[(
            "crates/storage/src/lib.rs",
            "impl Exec {\n fn fetch_segment(&self, k: u32) {}\n fn go(&self) { { let g = self.state.lock().unwrap_or_default(); } self.fetch_segment(1); }\n}",
        )]);
        assert!(lo.is_empty(), "{lo:?}");
    }

    #[test]
    fn cyclic_lock_order_fires_on_both_edges() {
        let (_, lo) = run_both(&[(
            "crates/core/src/lib.rs",
            "impl S {\n fn ab(&self) { let g = self.a.lock().x(); let h = self.b.lock().x(); }\n fn ba(&self) { let g = self.b.lock().x(); let h = self.a.lock().x(); }\n}",
        )]);
        let cycles: Vec<_> = lo.iter().filter(|v| v.message.contains("lock-order cycle")).collect();
        assert_eq!(cycles.len(), 2, "{lo:?}");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let (_, lo) = run_both(&[(
            "crates/core/src/lib.rs",
            "impl S {\n fn ab(&self) { let g = self.a.lock().x(); let h = self.b.lock().x(); }\n fn ab2(&self) { let g = self.a.lock().x(); let h = self.b.lock().x(); }\n}",
        )]);
        assert!(lo.is_empty(), "{lo:?}");
    }

    #[test]
    fn self_deadlock_fires() {
        let (_, lo) = run_both(&[(
            "crates/core/src/lib.rs",
            "impl S { fn go(&self) { let g = self.a.lock().x(); let h = self.a.lock().x(); } }",
        )]);
        assert_eq!(lo.len(), 1);
        assert!(lo[0].message.contains("self-deadlock"));
    }

    #[test]
    fn guard_across_retry_loop_fires() {
        let (_, lo) = run_both(&[(
            "crates/storage/src/lib.rs",
            "fn sleep_ms(n: u64) {}\nimpl S { fn go(&self) { let g = self.a.lock().x(); loop { sleep_ms(5); } } }",
        )]);
        assert_eq!(lo.len(), 1, "{lo:?}");
        assert!(lo[0].message.contains("retry/backoff loop"));
    }

    #[test]
    fn transitive_lock_through_callee_builds_an_edge() {
        let (_, lo) = run_both(&[(
            "crates/core/src/lib.rs",
            "impl S {\n fn inner(&self) { let g = self.b.lock().x(); }\n fn outer(&self) { let g = self.a.lock().x(); self.inner(); }\n fn rev(&self) { let g = self.b.lock().x(); let h = self.a.lock().x(); }\n}",
        )]);
        let cycles: Vec<_> = lo.iter().filter(|v| v.message.contains("lock-order cycle")).collect();
        assert_eq!(cycles.len(), 2, "{lo:?}");
    }
}
