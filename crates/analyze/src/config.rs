//! `analyze.toml` — lint scoping and the violation allowlist.
//!
//! The workspace builds offline with no TOML dependency, so this module
//! parses exactly the subset the config uses: `[section]` headers,
//! `[[allow]]` array-of-table headers, `key = "string"` and
//! `key = ["a", "b"]` assignments, and `#` comments. Anything else is a
//! hard error — a config that silently half-parses would silently un-gate
//! lints.

use pmr_error::PmrError;
use std::path::Path;

/// One allowlist entry: suppress `lint` in files under `path`, with a
/// mandatory human justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub lint: String,
    /// Workspace-relative path prefix (a file or a directory).
    pub path: String,
    pub reason: String,
    /// 1-based `analyze.toml` line of the `[[allow]]` header — where a
    /// stale-suppression finding points when the entry matches nothing.
    pub line: usize,
}

/// Scoping and allowlist for one analysis run.
///
/// Path fields are workspace-relative prefixes; a file is in scope for a
/// lint when its path starts with any of the lint's prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeConfig {
    /// L1 `panic_path`: library code that must route failures through
    /// `PmrError` instead of panicking.
    pub panic_paths: Vec<String>,
    /// L3 `lossy_cast`: crates whose integer arithmetic feeds persisted
    /// artifacts and must use checked conversions.
    pub cast_paths: Vec<String>,
    /// L4 `nondeterminism`: code that produces artifacts, plans, or fault
    /// schedules and must be bit-reproducible.
    pub nondet_paths: Vec<String>,
    /// `panic_reach`: crates whose public entry points anchor the
    /// interprocedural panic-reachability walk.
    pub entry_paths: Vec<String>,
    /// `panic_reach`: function-name prefixes that mark an entry point
    /// (e.g. `retrieve` matches `retrieve_tolerant`).
    pub entry_prefixes: Vec<String>,
    /// `error_swallow`: data-path crates where a discarded `Result` is a
    /// contract violation, not a style nit.
    pub swallow_paths: Vec<String>,
    /// `lock_order`: where the lock-acquisition graph is built.
    pub lock_paths: Vec<String>,
    /// Violations accepted with a written justification.
    pub allow: Vec<AllowEntry>,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            panic_paths: vec![
                "crates/codec/src".into(),
                "crates/mgard/src".into(),
                "crates/storage/src".into(),
                "crates/blockcodec/src".into(),
                "crates/core/src".into(),
            ],
            cast_paths: vec![
                "crates/codec/src".into(),
                "crates/mgard/src".into(),
                "crates/storage/src".into(),
            ],
            nondet_paths: vec![
                "crates/codec/src".into(),
                "crates/mgard/src".into(),
                "crates/storage/src".into(),
                "crates/blockcodec/src".into(),
                "crates/core/src".into(),
                "crates/conformance/src".into(),
            ],
            entry_paths: vec![
                "crates/core/src".into(),
                "crates/mgard/src".into(),
                "crates/storage/src".into(),
                "crates/sim/src".into(),
            ],
            entry_prefixes: vec![
                "compress".into(),
                "retrieve".into(),
                "fetch".into(),
                "execute".into(),
            ],
            swallow_paths: vec![
                "crates/codec/src".into(),
                "crates/mgard/src".into(),
                "crates/storage/src".into(),
                "crates/blockcodec/src".into(),
                "crates/core/src".into(),
                "crates/sim/src".into(),
            ],
            lock_paths: vec!["crates".into(), "src".into()],
            allow: Vec::new(),
        }
    }
}

impl AnalyzeConfig {
    /// Parse the `analyze.toml` subset. Unknown sections or keys are errors.
    pub fn parse(text: &str) -> Result<AnalyzeConfig, PmrError> {
        let mut cfg = AnalyzeConfig::default();
        let mut section = String::new();
        let mut pending_allow: Option<AllowEntry> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| {
                PmrError::malformed("analyze.toml", format!("line {}: {msg}", lineno + 1))
            };
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                if header.trim() != "allow" {
                    return Err(err(format!("unknown array-of-tables [[{header}]]")));
                }
                if let Some(entry) = pending_allow.take() {
                    cfg.push_allow(entry)?;
                }
                pending_allow = Some(AllowEntry {
                    lint: String::new(),
                    path: String::new(),
                    reason: String::new(),
                    line: lineno + 1,
                });
                section = "allow".into();
            } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if let Some(entry) = pending_allow.take() {
                    cfg.push_allow(entry)?;
                }
                section = header.trim().to_string();
                match section.as_str() {
                    "lints.panic_path"
                    | "lints.lossy_cast"
                    | "lints.nondeterminism"
                    | "lints.panic_reach"
                    | "lints.error_swallow"
                    | "lints.lock_order" => {}
                    other => return Err(err(format!("unknown section [{other}]"))),
                }
            } else if let Some((key, value)) = line.split_once('=') {
                let key = key.trim();
                let value = value.trim();
                match (section.as_str(), key) {
                    ("lints.panic_path", "paths") => cfg.panic_paths = parse_list(value, &err)?,
                    ("lints.lossy_cast", "paths") => cfg.cast_paths = parse_list(value, &err)?,
                    ("lints.nondeterminism", "paths") => {
                        cfg.nondet_paths = parse_list(value, &err)?
                    }
                    ("lints.panic_reach", "entry_paths") => {
                        cfg.entry_paths = parse_list(value, &err)?
                    }
                    ("lints.panic_reach", "entry_prefixes") => {
                        cfg.entry_prefixes = parse_list(value, &err)?
                    }
                    ("lints.error_swallow", "paths") => {
                        cfg.swallow_paths = parse_list(value, &err)?
                    }
                    ("lints.lock_order", "paths") => cfg.lock_paths = parse_list(value, &err)?,
                    ("allow", "lint") => {
                        entry_mut(&mut pending_allow, &err)?.lint = parse_str(value, &err)?
                    }
                    ("allow", "path") => {
                        entry_mut(&mut pending_allow, &err)?.path = parse_str(value, &err)?
                    }
                    ("allow", "reason") => {
                        entry_mut(&mut pending_allow, &err)?.reason = parse_str(value, &err)?
                    }
                    (s, k) => return Err(err(format!("unknown key {k} in section [{s}]"))),
                }
            } else {
                return Err(err(format!("unparseable line: {line}")));
            }
        }
        if let Some(entry) = pending_allow.take() {
            cfg.push_allow(entry)?;
        }
        Ok(cfg)
    }

    /// Load from a file; a missing file yields the built-in defaults.
    pub fn load(path: &Path) -> Result<AnalyzeConfig, PmrError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(AnalyzeConfig::default()),
            Err(e) => Err(PmrError::io_at(path, e)),
        }
    }

    fn push_allow(&mut self, entry: AllowEntry) -> Result<(), PmrError> {
        if entry.lint.is_empty() || entry.path.is_empty() {
            return Err(PmrError::malformed(
                "analyze.toml",
                "[[allow]] entry needs both `lint` and `path`",
            ));
        }
        if entry.reason.trim().is_empty() {
            return Err(PmrError::malformed(
                "analyze.toml",
                format!(
                    "[[allow]] entry for {} at {} has no `reason`: every suppression \
                     must carry a written justification",
                    entry.lint, entry.path
                ),
            ));
        }
        self.allow.push(entry);
        Ok(())
    }
}

fn entry_mut<'a>(
    pending: &'a mut Option<AllowEntry>,
    err: &dyn Fn(String) -> PmrError,
) -> Result<&'a mut AllowEntry, PmrError> {
    pending.as_mut().ok_or_else(|| err("allow key outside [[allow]] table".into()))
}

/// Drop a trailing `# comment`, respecting `"` string boundaries.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_str(value: &str, err: &dyn Fn(String) -> PmrError) -> Result<String, PmrError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| err(format!("expected quoted string, got {value}")))
}

fn parse_list(value: &str, err: &dyn Fn(String) -> PmrError) -> Result<Vec<String>, PmrError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| err(format!("expected [\"…\", …] list, got {value}")))?;
    inner.split(',').map(str::trim).filter(|s| !s.is_empty()).map(|s| parse_str(s, err)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = AnalyzeConfig::parse(
            r#"
# comment
[lints.panic_path]
paths = ["crates/a/src", "src"]

[lints.lossy_cast]
paths = ["crates/a/src"]

[[allow]]
lint = "send_sync_impl"
path = "crates/a/src/exec.rs"
reason = "disjoint line scatter, audited 2026-08"
"#,
        )
        .unwrap();
        assert_eq!(cfg.panic_paths, vec!["crates/a/src".to_string(), "src".to_string()]);
        assert_eq!(cfg.cast_paths, vec!["crates/a/src".to_string()]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].lint, "send_sync_impl");
    }

    #[test]
    fn parses_interprocedural_sections_and_allow_lines() {
        let cfg = AnalyzeConfig::parse(
            "[lints.panic_reach]\nentry_paths = [\"crates/core/src\"]\nentry_prefixes = [\"execute\"]\n\n[lints.error_swallow]\npaths = [\"crates/mgard/src\"]\n\n[lints.lock_order]\npaths = [\"crates\"]\n\n[[allow]]\nlint = \"panic_reach\"\npath = \"crates/core/src/lib.rs\"\nreason = \"bootstrap assert\"\n",
        )
        .unwrap();
        assert_eq!(cfg.entry_paths, vec!["crates/core/src".to_string()]);
        assert_eq!(cfg.entry_prefixes, vec!["execute".to_string()]);
        assert_eq!(cfg.swallow_paths, vec!["crates/mgard/src".to_string()]);
        assert_eq!(cfg.lock_paths, vec!["crates".to_string()]);
        // The [[allow]] header sits on line 11 of the literal above.
        assert_eq!(cfg.allow[0].line, 11);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let e = AnalyzeConfig::parse("[[allow]]\nlint = \"x\"\npath = \"y\"\n").unwrap_err();
        assert!(e.to_string().contains("reason"), "{e}");
    }

    #[test]
    fn unknown_section_is_rejected() {
        assert!(AnalyzeConfig::parse("[lints.bogus]\npaths = []\n").is_err());
        assert!(AnalyzeConfig::parse("[lints.panic_path]\nbogus = \"x\"\n").is_err());
        assert!(AnalyzeConfig::parse("just text\n").is_err());
    }

    #[test]
    fn missing_file_yields_defaults() {
        let cfg = AnalyzeConfig::load(Path::new("/nonexistent/analyze.toml")).unwrap();
        assert_eq!(cfg, AnalyzeConfig::default());
        assert!(cfg.allow.is_empty());
    }
}
