//! SARIF 2.1.0 output for tooling interop (code-scanning upload, IDE
//! ingestion). One run, one driver (`pmr-analyze`), every lint as a rule.
//!
//! Violations are emitted as `error`-level results; allowlisted/waived
//! findings are emitted as `note`-level results carrying a `suppressions`
//! entry with the written justification, so the audit surface survives the
//! format conversion. Output is fully deterministic: it reuses the
//! report's canonical ordering and fingerprints (as
//! `partialFingerprints."pmrFingerprint/v1"`) and records nothing
//! environment-dependent — the golden snapshot test pins the bytes.

use crate::lints::LINT_IDS;
use crate::report::{escape, Report, Violation};
use std::fmt::Write as _;

/// Short per-rule descriptions for the SARIF rule catalogue.
fn rule_desc(lint: &str) -> &'static str {
    match lint {
        "panic_path" => "No panic-capable call on an error-contract path",
        "panic_reach" => "No panic-capable call reachable from a retrieval entry point",
        "error_swallow" => "No silently discarded Result on the data path",
        "lock_order" => "No deadlock-capable lock acquisition pattern",
        "unsafe_safety" => "Every unsafe block carries a SAFETY comment",
        "send_sync_impl" => "unsafe impl Send/Sync only via the audited allowlist",
        "lossy_cast" => "No silently wrapping or truncating as cast",
        "nondeterminism" => "No nondeterminism source in artifact-producing code",
        "stale_suppression" => "Every allowlist entry and inline waiver still matches a finding",
        _ => "pmr-analyze finding",
    }
}

/// Render the report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"pmr-analyze\",\n");
    let _ = writeln!(s, "          \"version\": \"{}\",", env!("CARGO_PKG_VERSION"));
    s.push_str("          \"rules\": [\n");
    for (i, lint) in LINT_IDS.iter().enumerate() {
        let _ = write!(
            s,
            "            {{ \"id\": \"{lint}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}",
            escape(rule_desc(lint))
        );
        s.push_str(if i + 1 == LINT_IDS.len() { "\n" } else { ",\n" });
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    let total = report.violations.len() + report.allowed.len();
    let mut emitted = 0usize;
    for v in &report.violations {
        emit_result(&mut s, v, "error", None, &mut emitted, total);
    }
    for a in &report.allowed {
        emit_result(&mut s, &a.violation, "note", Some(&a.reason), &mut emitted, total);
    }
    if total > 0 {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

fn emit_result(
    s: &mut String,
    v: &Violation,
    level: &str,
    justification: Option<&str>,
    emitted: &mut usize,
    _total: usize,
) {
    s.push_str(if *emitted == 0 { "\n" } else { ",\n" });
    *emitted += 1;
    s.push_str("        {\n");
    let _ = writeln!(s, "          \"ruleId\": \"{}\",", v.lint);
    let _ = writeln!(s, "          \"level\": \"{level}\",");
    let _ = writeln!(s, "          \"message\": {{ \"text\": \"{}\" }},", escape(&v.message));
    s.push_str("          \"locations\": [ { \"physicalLocation\": { ");
    let _ = write!(
        s,
        "\"artifactLocation\": {{ \"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\" }}, \
         \"region\": {{ \"startLine\": {} }}",
        escape(&v.file),
        v.line.max(1)
    );
    s.push_str(" } } ],\n");
    let _ = write!(
        s,
        "          \"partialFingerprints\": {{ \"pmrFingerprint/v1\": \"{}\" }}",
        escape(&v.fingerprint)
    );
    if let Some(reason) = justification {
        s.push_str(",\n");
        let _ = write!(
            s,
            "          \"suppressions\": [ {{ \"kind\": \"external\", \"justification\": \"{}\" }} ]",
            escape(reason)
        );
    }
    s.push_str("\n        }");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Allowed;

    #[test]
    fn sarif_is_deterministic_and_carries_rules() {
        let mut r = Report::default();
        r.violations.push(Violation::new("panic_path", "crates/a/src/lib.rs", 3, "msg", "snip"));
        r.allowed.push(Allowed {
            violation: Violation::new("lossy_cast", "crates/b/src/lib.rs", 9, "m2", "s2"),
            reason: "bounded by construction".to_string(),
        });
        r.finalize();
        let s1 = to_sarif(&r);
        let s2 = to_sarif(&r);
        assert_eq!(s1, s2);
        assert!(s1.contains("\"version\": \"2.1.0\""));
        for lint in LINT_IDS {
            assert!(s1.contains(&format!("\"id\": \"{lint}\"")), "missing rule {lint}");
        }
        assert!(s1.contains("\"level\": \"error\""));
        assert!(s1.contains("\"level\": \"note\""));
        assert!(s1.contains("bounded by construction"));
        assert!(s1.contains("pmrFingerprint/v1"));
    }

    #[test]
    fn empty_report_has_empty_results() {
        let mut r = Report::default();
        r.finalize();
        assert!(to_sarif(&r).contains("\"results\": []"));
    }
}
