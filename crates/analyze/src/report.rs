//! Machine-readable analysis report.
//!
//! The JSON is hand-written (the workspace builds offline with no serde
//! feature surface for this) and **deterministic**: same tree in, same
//! findings out — violations and allowed entries are sorted by
//! `(file, line, lint)`, keys are emitted in fixed order, and each finding
//! carries a stable FNV-1a fingerprint that survives line drift (it hashes
//! the lint, file, and snippet, not the line number), so `analyze --diff`
//! can match findings across rebases. The only environment-dependent field
//! is the optional `timing` block, which the CLI attaches for humans and
//! which diff/baseline logic never reads.

use crate::lints::LINT_IDS;
use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Lint identifier (one of [`LINT_IDS`]).
    pub lint: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    pub message: String,
    /// The trimmed source line, for human triage without opening the file.
    pub snippet: String,
    /// Stable identity for baseline diffing, filled in by
    /// [`Report::finalize`]: `lint:fnv1a64(lint, file, snippet, dup-index)`.
    pub fingerprint: String,
}

impl Violation {
    pub fn new(
        lint: &'static str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
        snippet: impl Into<String>,
    ) -> Self {
        Violation {
            lint,
            file: file.into(),
            line,
            message: message.into(),
            snippet: snippet.into(),
            fingerprint: String::new(),
        }
    }
}

/// A finding suppressed by the allowlist or an inline waiver — kept in the
/// report so the audit surface stays visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowed {
    pub violation: Violation,
    pub reason: String,
}

/// Wall-clock measurements of one analysis run. Attached only by the CLI
/// (the library's fixture/golden paths stay byte-stable without it), and
/// never part of a finding's identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    pub wall_ms: u64,
    pub files_per_sec: f64,
}

/// The result of analysing a workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub allowed: Vec<Allowed>,
    pub timing: Option<Timing>,
}

impl Report {
    /// Sort contents into the canonical report order and assign fingerprints.
    pub fn finalize(&mut self) {
        let key = |v: &Violation| (v.file.clone(), v.line, v.lint);
        self.violations.sort_by_key(key);
        self.allowed.sort_by_key(|a| key(&a.violation));
        assign_fingerprints(self.violations.iter_mut());
        assign_fingerprints(self.allowed.iter_mut().map(|a| &mut a.violation));
    }

    /// Whether the workspace is clean (no unallowlisted violations).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Count of hard violations for `lint`.
    pub fn count(&self, lint: &str) -> usize {
        self.violations.iter().filter(|v| v.lint == lint).count()
    }

    /// Human-readable summary block.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "pmr-analyze: {} files scanned", self.files_scanned);
        for lint in LINT_IDS {
            let _ = writeln!(
                out,
                "  {lint:<16} {:>3} violation(s), {:>3} allowed",
                self.count(lint),
                self.allowed.iter().filter(|a| a.violation.lint == lint).count()
            );
        }
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.lint, v.message);
            let _ = writeln!(out, "    {}", v.snippet);
        }
        out
    }

    /// The stable JSON document (plus the volatile `timing` block when the
    /// caller attached one — strip it before byte-comparing two runs).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 2,\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        if let Some(t) = self.timing {
            let _ = writeln!(
                s,
                "  \"timing\": {{ \"wall_ms\": {}, \"files_per_sec\": {:.1} }},",
                t.wall_ms, t.files_per_sec
            );
        }
        s.push_str("  \"summary\": {");
        for (i, lint) in LINT_IDS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, " \"{lint}\": {}", self.count(lint));
        }
        s.push_str(" },\n");
        s.push_str("  \"violations\": [");
        write_items(&mut s, &self.violations, |s, v| write_violation(s, v, None));
        s.push_str("],\n");
        s.push_str("  \"allowed\": [");
        write_items(&mut s, &self.allowed, |s, a| {
            write_violation(s, &a.violation, Some(&a.reason))
        });
        s.push_str("]\n}\n");
        s
    }
}

/// Assign each violation its stable identity. Violations must already be in
/// canonical order: duplicates (same lint, file, snippet — e.g. two
/// identical casts on different lines) are disambiguated by their ordinal,
/// so identity is insensitive to line renumbering but still unique.
fn assign_fingerprints<'a>(violations: impl Iterator<Item = &'a mut Violation>) {
    let mut seen: std::collections::BTreeMap<(String, String, String), usize> =
        std::collections::BTreeMap::new();
    for v in violations {
        let k = (v.lint.to_string(), v.file.clone(), v.snippet.clone());
        let n = seen.entry(k).or_insert(0);
        v.fingerprint = format!("{}:{:016x}", v.lint, fnv1a64(v, *n));
        *n += 1;
    }
}

/// 64-bit FNV-1a over the identity fields, NUL-separated.
fn fnv1a64(v: &Violation, ordinal: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        // Field bytes, then a NUL separator so field boundaries can't alias.
        for &b in bytes.iter().chain(std::iter::once(&0u8)) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(v.lint.as_bytes());
    eat(v.file.as_bytes());
    eat(v.snippet.as_bytes());
    eat(ordinal.to_string().as_bytes());
    h
}

fn write_items<T>(s: &mut String, items: &[T], mut one: impl FnMut(&mut String, &T)) {
    for (i, item) in items.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str("    ");
        one(s, item);
    }
    if !items.is_empty() {
        s.push_str("\n  ");
    }
}

fn write_violation(s: &mut String, v: &Violation, reason: Option<&str>) {
    let _ = write!(
        s,
        "{{ \"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"fingerprint\": \"{}\", \"message\": \"{}\", \"snippet\": \"{}\"",
        v.lint,
        escape(&v.file),
        v.line,
        escape(&v.fingerprint),
        escape(&v.message),
        escape(&v.snippet)
    );
    if let Some(r) = reason {
        let _ = write!(s, ", \"reason\": \"{}\"", escape(r));
    }
    s.push_str(" }");
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: usize, lint: &'static str) -> Violation {
        Violation::new(lint, file, line, "m", "let x = \"q\";")
    }

    #[test]
    fn json_is_stable_and_sorted() {
        let mut r = Report {
            files_scanned: 2,
            violations: vec![v("b.rs", 3, "panic_path"), v("a.rs", 9, "lossy_cast")],
            allowed: vec![],
            timing: None,
        };
        r.finalize();
        assert_eq!(r.violations[0].file, "a.rs");
        let j1 = r.to_json();
        let j2 = r.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"summary\""));
        assert!(j1.contains("\"panic_path\": 1"));
        // Embedded quotes are escaped.
        assert!(j1.contains("\\\"q\\\""));
    }

    #[test]
    fn empty_report_is_clean() {
        let mut r = Report::default();
        r.finalize();
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"violations\": []"));
    }

    #[test]
    fn fingerprints_survive_line_drift_but_split_duplicates() {
        let mut r1 = Report { violations: vec![v("a.rs", 9, "lossy_cast")], ..Report::default() };
        r1.finalize();
        let mut r2 = Report { violations: vec![v("a.rs", 42, "lossy_cast")], ..Report::default() };
        r2.finalize();
        // Same finding moved to another line: identical fingerprint.
        assert_eq!(r1.violations[0].fingerprint, r2.violations[0].fingerprint);
        assert!(r1.violations[0].fingerprint.starts_with("lossy_cast:"));
        // Two identical snippets in one run get distinct ordinals.
        let mut r3 = Report {
            violations: vec![v("a.rs", 9, "lossy_cast"), v("a.rs", 10, "lossy_cast")],
            ..Report::default()
        };
        r3.finalize();
        assert_ne!(r3.violations[0].fingerprint, r3.violations[1].fingerprint);
        assert_eq!(r3.violations[0].fingerprint, r1.violations[0].fingerprint);
    }

    #[test]
    fn timing_is_emitted_only_when_attached() {
        let mut r = Report::default();
        r.finalize();
        assert!(!r.to_json().contains("timing"));
        r.timing = Some(Timing { wall_ms: 12, files_per_sec: 410.0 });
        let j = r.to_json();
        assert!(j.contains("\"wall_ms\": 12"));
        assert!(j.contains("\"files_per_sec\": 410.0"));
    }
}
