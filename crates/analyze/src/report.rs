//! Machine-readable analysis report.
//!
//! The JSON is hand-written (the workspace builds offline with no serde
//! feature surface for this) and **byte-stable**: same tree in, same bytes
//! out — violations and allowed entries are sorted by `(file, line, lint)`,
//! keys are emitted in fixed order, and nothing time- or environment-
//! dependent is recorded. CI diffs two runs to assert exactly that.

use crate::lints::LINT_IDS;
use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Lint identifier (one of [`LINT_IDS`]).
    pub lint: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    pub message: String,
    /// The trimmed source line, for human triage without opening the file.
    pub snippet: String,
}

/// A finding suppressed by the allowlist or an inline waiver — kept in the
/// report so the audit surface stays visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowed {
    pub violation: Violation,
    pub reason: String,
}

/// The result of analysing a workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub allowed: Vec<Allowed>,
}

impl Report {
    /// Sort contents into the canonical report order.
    pub fn finalize(&mut self) {
        let key = |v: &Violation| (v.file.clone(), v.line, v.lint);
        self.violations.sort_by_key(key);
        self.allowed.sort_by_key(|a| key(&a.violation));
    }

    /// Whether the workspace is clean (no unallowlisted violations).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Count of hard violations for `lint`.
    pub fn count(&self, lint: &str) -> usize {
        self.violations.iter().filter(|v| v.lint == lint).count()
    }

    /// Human-readable summary block.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "pmr-analyze: {} files scanned", self.files_scanned);
        for lint in LINT_IDS {
            let _ = writeln!(
                out,
                "  {lint:<16} {:>3} violation(s), {:>3} allowed",
                self.count(lint),
                self.allowed.iter().filter(|a| a.violation.lint == lint).count()
            );
        }
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.lint, v.message);
            let _ = writeln!(out, "    {}", v.snippet);
        }
        out
    }

    /// The stable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        s.push_str("  \"summary\": {");
        for (i, lint) in LINT_IDS.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, " \"{lint}\": {}", self.count(lint));
        }
        s.push_str(" },\n");
        s.push_str("  \"violations\": [");
        write_items(&mut s, &self.violations, |s, v| write_violation(s, v, None));
        s.push_str("],\n");
        s.push_str("  \"allowed\": [");
        write_items(&mut s, &self.allowed, |s, a| {
            write_violation(s, &a.violation, Some(&a.reason))
        });
        s.push_str("]\n}\n");
        s
    }
}

fn write_items<T>(s: &mut String, items: &[T], mut one: impl FnMut(&mut String, &T)) {
    for (i, item) in items.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str("    ");
        one(s, item);
    }
    if !items.is_empty() {
        s.push_str("\n  ");
    }
}

fn write_violation(s: &mut String, v: &Violation, reason: Option<&str>) {
    let _ = write!(
        s,
        "{{ \"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"",
        v.lint,
        escape(&v.file),
        v.line,
        escape(&v.message),
        escape(&v.snippet)
    );
    if let Some(r) = reason {
        let _ = write!(s, ", \"reason\": \"{}\"", escape(r));
    }
    s.push_str(" }");
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: usize, lint: &'static str) -> Violation {
        Violation {
            lint,
            file: file.into(),
            line,
            message: "m".into(),
            snippet: "let x = \"q\";".into(),
        }
    }

    #[test]
    fn json_is_stable_and_sorted() {
        let mut r = Report {
            files_scanned: 2,
            violations: vec![v("b.rs", 3, "panic_path"), v("a.rs", 9, "lossy_cast")],
            allowed: vec![],
        };
        r.finalize();
        assert_eq!(r.violations[0].file, "a.rs");
        let j1 = r.to_json();
        let j2 = r.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"summary\""));
        assert!(j1.contains("\"panic_path\": 1"));
        // Embedded quotes are escaped.
        assert!(j1.contains("\\\"q\\\""));
    }

    #[test]
    fn empty_report_is_clean() {
        let mut r = Report { files_scanned: 0, violations: vec![], allowed: vec![] };
        r.finalize();
        assert!(r.is_clean());
        assert!(r.to_json().contains("\"violations\": []"));
    }
}
