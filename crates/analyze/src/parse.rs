//! A lightweight Rust item parser built on [`crate::lexer`].
//!
//! The interprocedural lints (panic reachability, error-swallowing
//! dataflow, lock ordering) need more than a token stream: they need to
//! know *which function* a token belongs to, what that function calls, and
//! what it returns. This module produces exactly that — a per-file item
//! tree of functions with their call sites, panic-capable sites, and
//! enclosing module/impl context — without pulling in `syn` (the workspace
//! builds offline). It is deliberately a *recognizer*, not a full parser:
//! constructs it does not understand are skipped, never mis-attributed,
//! so the analysis stays conservative (it may miss an edge, it does not
//! invent one).

use crate::lexer::{lex, Tok, TokKind};

/// One parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Module path of the file itself, e.g. `["pmr_mgard", "compress"]`.
    /// Derived from the path: `crates/<dir>/src/foo.rs` → `pmr_<dir>::foo`.
    pub module: Vec<String>,
    /// The full token stream (comments included, for waiver lookup).
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the code tokens (comments stripped).
    pub code: Vec<usize>,
    /// Per-`toks`-index mask of `#[cfg(test)]` / `#[test]` regions.
    pub test_mask: Vec<bool>,
    /// Every function (free fns, methods, trait default methods).
    pub fns: Vec<FnInfo>,
    /// `use` imports: alias → full path segments.
    pub uses: Vec<UseImport>,
    /// Trimmed source lines, for violation snippets (index = line - 1).
    pub lines: Vec<String>,
}

/// One `use` leaf: `use a::b::c as d` records alias `d` → `[a, b, c]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    pub alias: String,
    pub path: Vec<String>,
}

/// One function item with everything the interprocedural lints consume.
#[derive(Debug)]
pub struct FnInfo {
    pub name: String,
    /// The `impl`/`trait` type the fn is defined on, if any.
    pub self_type: Option<String>,
    /// Inline `mod` path inside the file (excludes the file module path).
    pub mods: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// The declared return type mentions `Result`.
    pub returns_result: bool,
    /// Code-index range of the body, `[open_brace, close_brace]` inclusive.
    pub body: (usize, usize),
    /// Calls made inside the body, in source order.
    pub calls: Vec<Call>,
    /// Direct panic-capable sites inside the body, in source order.
    pub panics: Vec<PanicSite>,
}

impl FnInfo {
    /// Fully qualified display name: `module::Type::name` or `module::name`.
    pub fn qual(&self, file_module: &[String]) -> String {
        let mut segs: Vec<&str> = file_module.iter().map(String::as_str).collect();
        segs.extend(self.mods.iter().map(String::as_str));
        if let Some(t) = &self.self_type {
            segs.push(t);
        }
        segs.push(&self.name);
        segs.join("::")
    }
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct Call {
    pub callee: Callee,
    /// Code-token index of the callee name token.
    pub ci: usize,
    pub line: usize,
}

/// How the callee is written at the call site.
#[derive(Debug)]
pub enum Callee {
    /// `foo(...)` — a bare name.
    Free(String),
    /// `a::b::foo(...)` — path segments, `foo` last.
    Path(Vec<String>),
    /// `recv.foo(...)` — `recv` is the receiver chain when it is a simple
    /// `self.a.b` / `name` chain, `None` for computed receivers.
    Method { name: String, recv: Option<String> },
}

impl Callee {
    pub fn name(&self) -> &str {
        match self {
            Callee::Free(n) => n,
            Callee::Path(p) => p.last().map_or("", String::as_str),
            Callee::Method { name, .. } => name,
        }
    }
}

/// A direct panic-capable site: `panic!`-family macro or `.unwrap()` /
/// `.expect()`.
#[derive(Debug)]
pub struct PanicSite {
    /// The form, e.g. `panic!` or `.unwrap()`.
    pub form: String,
    pub ci: usize,
    pub line: usize,
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Words that can precede `(` without being a call.
const NON_CALL_WORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "let", "in", "as", "move", "ref", "loop", "else",
    "where", "fn",
];

/// Derive the module path of a file from its workspace-relative path.
/// `crates/mgard/src/compress.rs` → `["pmr_mgard", "compress"]`;
/// `src/lib.rs` → `["pmr"]`; `mod.rs` and `lib.rs` add no segment.
pub fn module_path_of(rel_path: &str) -> Vec<String> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (krate, rest) = if parts.first() == Some(&"crates") && parts.get(2) == Some(&"src") {
        (format!("pmr_{}", parts.get(1).copied().unwrap_or("unknown")), &parts[3..])
    } else if parts.first() == Some(&"src") {
        ("pmr".to_string(), &parts[1..])
    } else {
        ("pmr_unknown".to_string(), &parts[..0])
    };
    let mut module = vec![krate];
    for (i, part) in rest.iter().enumerate() {
        let is_file = i + 1 == rest.len();
        if is_file {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "mod" && stem != "main" {
                module.push(stem.to_string());
            }
        } else {
            module.push((*part).to_string());
        }
    }
    module
}

/// Parse one file into its item tree.
pub fn parse_file(rel_path: &str, src: &str) -> ParsedFile {
    let toks = lex(src);
    let test_mask = test_region_mask(&toks);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
    let lines: Vec<String> = src.lines().map(|l| l.trim().to_string()).collect();

    let mut p = Parser {
        toks: &toks,
        code: &code,
        test_mask: &test_mask,
        fns: Vec::new(),
        uses: Vec::new(),
    };
    p.run();

    ParsedFile {
        rel_path: rel_path.to_string(),
        module: module_path_of(rel_path),
        fns: p.fns,
        uses: p.uses,
        toks,
        code,
        test_mask,
        lines,
    }
}

impl ParsedFile {
    /// The code token at code index `ci`.
    pub fn ct(&self, ci: usize) -> &Tok {
        &self.toks[self.code[ci]]
    }

    /// Trimmed source line `line` (1-based), empty if out of range.
    pub fn snippet(&self, line: usize) -> String {
        self.lines.get(line.saturating_sub(1)).cloned().unwrap_or_default()
    }

    /// Whether the code token at code index `ci` sits in a test region.
    pub fn in_test(&self, ci: usize) -> bool {
        self.code.get(ci).is_some_and(|&ti| self.test_mask[ti])
    }
}

/// What an item header has announced, pending its `{`.
enum Pending {
    Mod(String),
    Type(String),
    Fn(Box<FnHeader>),
    /// `impl` of a type we could not name (e.g. `impl Trait for &mut T`).
    AnonType,
}

struct FnHeader {
    name: String,
    line: usize,
    returns_result: bool,
    is_test: bool,
}

/// One open brace on the scope stack.
enum Frame {
    Mod(String),
    Type(String),
    /// Index into `fns`; body close is recorded on pop.
    Fn(usize),
    Plain,
}

struct Parser<'a> {
    toks: &'a [Tok],
    code: &'a [usize],
    test_mask: &'a [bool],
    fns: Vec<FnInfo>,
    uses: Vec<UseImport>,
}

impl Parser<'_> {
    fn ct(&self, ci: usize) -> Option<&Tok> {
        self.code.get(ci).map(|&ti| &self.toks[ti])
    }

    fn is_test_at(&self, ci: usize) -> bool {
        self.code.get(ci).is_some_and(|&ti| self.test_mask[ti])
    }

    fn run(&mut self) {
        let mut stack: Vec<Frame> = Vec::new();
        let mut pending: Option<Pending> = None;
        // Stack of indices into `fns` for currently-open fn bodies
        // (innermost last); nested fns attribute sites to the innermost.
        let mut open_fns: Vec<usize> = Vec::new();
        let mut ci = 0usize;
        while let Some(t) = self.ct(ci) {
            // Attributes never contain calls we care about; skip to `]`.
            if t.is_punct('#') && self.ct(ci + 1).is_some_and(|n| n.is_punct('[')) {
                let mut depth = 0usize;
                let mut j = ci + 1;
                while let Some(t) = self.ct(j) {
                    if t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                ci = j + 1;
                continue;
            }

            if t.kind == TokKind::Ident && open_fns.is_empty() {
                match t.text.as_str() {
                    "use" => {
                        ci = self.parse_use(ci);
                        continue;
                    }
                    "mod" => {
                        if let Some(name) = self.ct(ci + 1).filter(|n| n.kind == TokKind::Ident) {
                            pending = Some(Pending::Mod(name.text.clone()));
                            ci += 2;
                            continue;
                        }
                    }
                    "impl" | "trait" => {
                        let (p, next) = self.parse_type_header(ci);
                        pending = Some(p);
                        ci = next;
                        continue;
                    }
                    _ => {}
                }
            }
            if t.is_ident("fn") && self.ct(ci + 1).is_some_and(|n| n.kind == TokKind::Ident) {
                let (header, next) = self.parse_fn_header(ci);
                pending = Some(Pending::Fn(Box::new(header)));
                ci = next;
                continue;
            }

            if t.is_punct('{') {
                let frame = match pending.take() {
                    Some(Pending::Mod(m)) => Frame::Mod(m),
                    Some(Pending::Type(t)) => Frame::Type(t),
                    Some(Pending::AnonType) => Frame::Plain,
                    Some(Pending::Fn(h)) => {
                        let self_type = stack.iter().rev().find_map(|f| match f {
                            Frame::Type(t) => Some(t.clone()),
                            _ => None,
                        });
                        let mods = stack
                            .iter()
                            .filter_map(|f| match f {
                                Frame::Mod(m) => Some(m.clone()),
                                _ => None,
                            })
                            .collect();
                        self.fns.push(FnInfo {
                            name: h.name,
                            self_type,
                            mods,
                            line: h.line,
                            is_test: h.is_test,
                            returns_result: h.returns_result,
                            body: (ci, ci),
                            calls: Vec::new(),
                            panics: Vec::new(),
                        });
                        open_fns.push(self.fns.len() - 1);
                        Frame::Fn(self.fns.len() - 1)
                    }
                    None => Frame::Plain,
                };
                stack.push(frame);
                ci += 1;
                continue;
            }
            if t.is_punct('}') {
                if let Some(Frame::Fn(idx)) = stack.pop() {
                    self.fns[idx].body.1 = ci;
                    open_fns.pop();
                }
                ci += 1;
                continue;
            }
            if t.is_punct(';') {
                pending = None; // bodyless item: `mod x;`, trait fn decl
                ci += 1;
                continue;
            }

            // Inside a fn body: record calls and panic-capable sites.
            if let Some(&fi) = open_fns.last() {
                if t.kind == TokKind::Ident {
                    self.scan_site(ci, fi);
                }
            }
            ci += 1;
        }
    }

    /// Record a call or panic site at ident code-index `ci` for fn `fi`.
    fn scan_site(&mut self, ci: usize, fi: usize) {
        let t = self.ct(ci).expect("caller checked");
        let line = t.line;
        let name = t.text.clone();
        let next_is = |c: char| self.ct(ci + 1).is_some_and(|n| n.is_punct(c));
        let prev_is =
            |c: char| ci.checked_sub(1).and_then(|i| self.ct(i)).is_some_and(|p| p.is_punct(c));

        // Panic-capable macros: `panic!(`, `unreachable!(`, ...
        if PANIC_MACROS.contains(&name.as_str()) && next_is('!') && !self.is_test_at(ci) {
            self.fns[fi].panics.push(PanicSite { form: format!("{name}!"), ci, line });
            return;
        }
        if !next_is('(') {
            return;
        }
        if NON_CALL_WORDS.contains(&name.as_str()) {
            return;
        }
        if prev_is('.') {
            if matches!(name.as_str(), "unwrap" | "expect") && !self.is_test_at(ci) {
                self.fns[fi].panics.push(PanicSite { form: format!(".{name}()"), ci, line });
            }
            let recv = self.receiver_chain(ci);
            self.fns[fi].calls.push(Call { callee: Callee::Method { name, recv }, ci, line });
            return;
        }
        if prev_is(':') && ci >= 2 && self.ct(ci - 2).is_some_and(|p| p.is_punct(':')) {
            let mut segs = vec![name];
            let mut j = ci;
            while j >= 2
                && self.ct(j - 1).is_some_and(|p| p.is_punct(':'))
                && self.ct(j - 2).is_some_and(|p| p.is_punct(':'))
            {
                // Generic turbofish (`Vec::<u8>::new`) or a non-ident head
                // ends the chain.
                match j.checked_sub(3).and_then(|i| self.ct(i)) {
                    Some(p) if p.kind == TokKind::Ident => {
                        segs.push(p.text.clone());
                        j -= 3;
                    }
                    _ => break,
                }
            }
            segs.reverse();
            self.fns[fi].calls.push(Call { callee: Callee::Path(segs), ci, line });
            return;
        }
        self.fns[fi].calls.push(Call { callee: Callee::Free(name), ci, line });
    }

    /// The receiver chain of a method call whose name token is at `ci`:
    /// `self.attempts.lock()` → `Some("self.attempts")`. `None` when the
    /// receiver is computed (`foo().bar()`, `(a + b).c()`, indexing, ...).
    fn receiver_chain(&self, ci: usize) -> Option<String> {
        let mut segs: Vec<String> = Vec::new();
        let mut j = ci.checked_sub(1)?; // the `.` before the name
        loop {
            if !self.ct(j).is_some_and(|p| p.is_punct('.')) {
                break;
            }
            let prev = j.checked_sub(1).and_then(|i| self.ct(i))?;
            if prev.kind != TokKind::Ident {
                return None; // `)`, `]`, literal — computed receiver
            }
            segs.push(prev.text.clone());
            match j.checked_sub(2) {
                Some(i) => j = i,
                None => break,
            }
        }
        // The chain must start at an identifier boundary, not continue a
        // path/field of something computed (`x().y.z()` is caught above).
        segs.reverse();
        if segs.is_empty() {
            None
        } else {
            Some(segs.join("."))
        }
    }

    /// Parse `use a::b::{c, d as e};` starting at the `use` keyword; returns
    /// the code index just past the terminating `;`.
    fn parse_use(&mut self, ci: usize) -> usize {
        // Collect the token span of the statement.
        let mut end = ci;
        while let Some(t) = self.ct(end) {
            if t.is_punct(';') {
                break;
            }
            end += 1;
        }
        let mut imports = Vec::new();
        self.use_tree(ci + 1, end, &mut Vec::new(), &mut imports);
        self.uses.extend(imports);
        end + 1
    }

    /// Recursive descent over a use tree in code-index range `[i, end)`,
    /// with `prefix` segments accumulated so far.
    fn use_tree(
        &self,
        mut i: usize,
        end: usize,
        prefix: &mut Vec<String>,
        out: &mut Vec<UseImport>,
    ) {
        let depth0 = prefix.len();
        let mut last: Option<String> = None;
        while i < end {
            let Some(t) = self.ct(i) else { break };
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "pub" | "crate" | "self" | "super" => {}
                    "as" => {
                        // `x as y`: alias is the next ident.
                        if let Some(alias) = self.ct(i + 1).filter(|n| n.kind == TokKind::Ident) {
                            if let Some(l) = last.take() {
                                prefix.push(l);
                                out.push(UseImport {
                                    alias: alias.text.clone(),
                                    path: prefix.clone(),
                                });
                                prefix.pop();
                            }
                            i += 2;
                            continue;
                        }
                    }
                    _ => last = Some(t.text.clone()),
                }
                i += 1;
                continue;
            }
            if t.is_punct(':') {
                // `::` — push the pending segment onto the prefix.
                if let Some(l) = last.take() {
                    prefix.push(l);
                }
                i += 1;
                continue;
            }
            if t.is_punct(',') {
                if let Some(l) = last.take() {
                    prefix.push(l);
                    out.push(UseImport {
                        alias: prefix.last().cloned().unwrap_or_default(),
                        path: prefix.clone(),
                    });
                    prefix.pop();
                }
                prefix.truncate(depth0);
                i += 1;
                continue;
            }
            if t.is_punct('{') {
                // Group: recurse over the braced range with current prefix.
                let mut depth = 0usize;
                let mut j = i;
                while j < end {
                    let Some(t) = self.ct(j) else { break };
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                self.group_items(i + 1, j, prefix, out);
                i = j + 1;
                last = None;
                continue;
            }
            i += 1; // `*` globs and anything else: skip (not resolvable)
        }
        if let Some(l) = last.take() {
            prefix.push(l);
            out.push(UseImport {
                alias: prefix.last().cloned().unwrap_or_default(),
                path: prefix.clone(),
            });
            prefix.pop();
        }
    }

    /// Comma-separated items of a `{...}` use group in `[i, end)`.
    fn group_items(
        &self,
        mut i: usize,
        end: usize,
        prefix: &mut Vec<String>,
        out: &mut Vec<UseImport>,
    ) {
        while i < end {
            // Find this item's extent: up to a comma at depth 0.
            let mut depth = 0usize;
            let mut j = i;
            while j < end {
                let Some(t) = self.ct(j) else { break };
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if t.is_punct(',') && depth == 0 {
                    break;
                }
                j += 1;
            }
            let plen = prefix.len();
            // `self` inside a group imports the prefix itself.
            if j == i + 1 && self.ct(i).is_some_and(|t| t.is_ident("self")) {
                if let Some(alias) = prefix.last().cloned() {
                    out.push(UseImport { alias, path: prefix.clone() });
                }
            } else {
                self.use_tree(i, j, prefix, out);
            }
            prefix.truncate(plen);
            i = j + 1;
        }
    }

    /// Parse an `impl`/`trait` header at `ci`; returns the pending frame and
    /// the code index of the body `{` (or of the `;`/end for bodyless forms).
    fn parse_type_header(&self, ci: usize) -> (Pending, usize) {
        let is_trait = self.ct(ci).is_some_and(|t| t.is_ident("trait"));
        let mut j = ci + 1;
        let mut angle = 0usize;
        let mut current: Option<String> = None;
        while let Some(t) = self.ct(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = angle.saturating_sub(1);
            } else if angle == 0 {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_ident("for") {
                    // `impl Trait for Type` — the `for` target is the self
                    // type, so discard the trait name seen so far.
                    current = None;
                } else if t.is_ident("where") {
                    // where-clause: scan to the body brace.
                } else if t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "pub" | "unsafe" | "const" | "dyn")
                {
                    current = Some(t.text.clone());
                }
                if is_trait && current.is_some() && self.ct(j + 1).is_some_and(|n| n.is_punct(':'))
                {
                    // `trait Name: Bound` — the name is fixed; bounds follow.
                    let name = current.clone().unwrap_or_default();
                    // Scan on to the `{`.
                    let mut k = j + 1;
                    while let Some(t) = self.ct(k) {
                        if t.is_punct('{') || t.is_punct(';') {
                            break;
                        }
                        k += 1;
                    }
                    return (Pending::Type(name), k);
                }
            }
            j += 1;
        }
        match current {
            Some(name) => (Pending::Type(name), j),
            None => (Pending::AnonType, j),
        }
    }

    /// Parse a fn header starting at the `fn` keyword; returns the header
    /// and the code index of the body `{` or terminating `;`.
    fn parse_fn_header(&self, ci: usize) -> (FnHeader, usize) {
        let name_tok = self.ct(ci + 1).expect("caller checked");
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let is_test = self.is_test_at(ci);
        // Skip generics, then the argument list.
        let mut j = ci + 2;
        let mut angle = 0usize;
        while let Some(t) = self.ct(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle = angle.saturating_sub(1);
            } else if t.is_punct('(') && angle == 0 {
                break;
            } else if t.is_punct('{') || t.is_punct(';') {
                // Malformed (no arg list); bail where we are.
                return (FnHeader { name, line, returns_result: false, is_test }, j);
            }
            j += 1;
        }
        let mut paren = 0usize;
        while let Some(t) = self.ct(j) {
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            j += 1;
        }
        // Return type region: from after `)` to the body `{`, `;`, or
        // `where` — `Result` anywhere in it marks the fn fallible.
        let mut returns_result = false;
        j += 1;
        while let Some(t) = self.ct(j) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_ident("where") {
                // Scan the where clause through to the body.
                while let Some(t) = self.ct(j) {
                    if t.is_punct('{') || t.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                break;
            }
            if t.is_ident("Result") {
                returns_result = true;
            }
            j += 1;
        }
        (FnHeader { name, line, returns_result, is_test }, j)
    }
}

/// Token mask marking test-only regions: the braced body (and attributes)
/// of any item annotated `#[cfg(test)]`, `#[cfg(any(test, …))]`, or
/// `#[test]`. `#[cfg(not(test))]` guards production code and is *not*
/// masked. (Moved here from `lints` so both lexical and interprocedural
/// passes share one definition.)
pub fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
    let mut c = 0usize;
    while c < code.len() {
        if toks[code[c]].is_punct('#') && code.get(c + 1).is_some_and(|&i| toks[i].is_punct('[')) {
            // Scan the attribute to its matching `]`.
            let mut depth = 0usize;
            let mut idents: Vec<&str> = Vec::new();
            let mut end = c + 1;
            for (k, &ti) in code.iter().enumerate().skip(c + 1) {
                let t = &toks[ti];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                } else if t.kind == TokKind::Ident {
                    idents.push(&t.text);
                }
            }
            let is_test_attr = idents.contains(&"test")
                && !idents.contains(&"not")
                && (idents[0] == "cfg" || idents == ["test"]);
            if is_test_attr {
                // Mark from the attribute through the end of the annotated
                // item: its braced body, or the trailing `;` for bodyless
                // items (`mod tests;`).
                let mut brace_depth = 0usize;
                let mut k = end + 1;
                while k < code.len() {
                    let t = &toks[code[k]];
                    if t.is_punct('{') {
                        brace_depth += 1;
                    } else if t.is_punct('}') {
                        brace_depth -= 1;
                        if brace_depth == 0 {
                            break;
                        }
                    } else if t.is_punct(';') && brace_depth == 0 {
                        break;
                    }
                    k += 1;
                }
                let from = code[c];
                let to = code.get(k).copied().unwrap_or(toks.len() - 1);
                for m in &mut mask[from..=to] {
                    *m = true;
                }
                c = k + 1;
                continue;
            }
            c = end + 1;
            continue;
        }
        c += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/lib.rs", src)
    }

    #[test]
    fn fn_items_with_impl_context() {
        let p = parse(
            "impl Store {\n pub fn fetch(&self, k: u32) -> Result<u8, E> { self.inner.get(k) }\n}\nfn helper() {}\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "fetch");
        assert_eq!(p.fns[0].self_type.as_deref(), Some("Store"));
        assert!(p.fns[0].returns_result);
        assert_eq!(p.fns[0].qual(&p.module), "pmr_x::Store::fetch");
        assert_eq!(p.fns[1].name, "helper");
        assert!(p.fns[1].self_type.is_none());
        assert!(!p.fns[1].returns_result);
    }

    #[test]
    fn trait_impl_records_the_for_type() {
        let p = parse("impl SegmentStore for MemStore {\n fn fetch(&self) {}\n}\n");
        assert_eq!(p.fns[0].self_type.as_deref(), Some("MemStore"));
    }

    #[test]
    fn calls_are_classified() {
        let p = parse("fn f(s: &Store) { helper(); io::save(1); s.fetch(2); self.cache.lock(); }");
        let calls = &p.fns[0].calls;
        assert!(matches!(&calls[0].callee, Callee::Free(n) if n == "helper"));
        assert!(
            matches!(&calls[1].callee, Callee::Path(p) if p == &vec!["io".to_string(), "save".to_string()])
        );
        assert!(
            matches!(&calls[2].callee, Callee::Method { name, recv } if name == "fetch" && recv.as_deref() == Some("s"))
        );
        assert!(
            matches!(&calls[3].callee, Callee::Method { name, recv } if name == "lock" && recv.as_deref() == Some("self.cache"))
        );
    }

    #[test]
    fn panic_sites_are_collected_outside_tests() {
        let p = parse(
            "fn f(x: Option<u8>) { x.unwrap(); panic!(\"no\"); }\n#[cfg(test)]\nmod t { fn g(y: Option<u8>) { y.unwrap(); } }\n",
        );
        assert_eq!(p.fns[0].panics.len(), 2);
        assert_eq!(p.fns[0].panics[0].form, ".unwrap()");
        assert_eq!(p.fns[0].panics[1].form, "panic!");
        let test_fn = p.fns.iter().find(|f| f.name == "g").expect("parsed");
        assert!(test_fn.is_test);
        assert!(test_fn.panics.is_empty());
    }

    #[test]
    fn use_imports_with_groups_and_aliases() {
        let p = parse("use pmr_field::{io, Field as F};\nuse std::sync::Mutex;\n");
        assert!(p
            .uses
            .iter()
            .any(|u| u.alias == "io" && u.path == vec!["pmr_field".to_string(), "io".to_string()]));
        assert!(p.uses.iter().any(|u| u.alias == "F" && u.path.last().unwrap() == "Field"));
        assert!(p.uses.iter().any(|u| u.alias == "Mutex"));
    }

    #[test]
    fn module_paths_derive_from_file_paths() {
        assert_eq!(module_path_of("crates/mgard/src/compress.rs"), vec!["pmr_mgard", "compress"]);
        assert_eq!(module_path_of("crates/field/src/lib.rs"), vec!["pmr_field"]);
        assert_eq!(module_path_of("src/lib.rs"), vec!["pmr"]);
        assert_eq!(module_path_of("crates/core/src/sub/mod.rs"), vec!["pmr_core", "sub"]);
    }

    #[test]
    fn nested_fn_sites_attach_to_the_inner_fn() {
        let p = parse("fn outer() { fn inner(x: Option<u8>) { x.unwrap(); } inner(None); }");
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.panics.is_empty());
        assert_eq!(inner.panics.len(), 1);
        assert!(outer.calls.iter().any(|c| c.callee.name() == "inner"));
    }

    #[test]
    fn method_chain_receiver_of_computed_expr_is_none() {
        let p = parse("fn f() { g().h(); (a + b).k(); }");
        for c in &p.fns[0].calls {
            if let Callee::Method { name, recv } = &c.callee {
                if name == "h" || name == "k" {
                    assert!(recv.is_none(), "{name} receiver should be computed");
                }
            }
        }
    }
}
