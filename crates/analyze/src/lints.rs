//! The four domain lints.
//!
//! All four protect the same thing: the retriever's *error-bound contract*.
//! A panic mid-retrieval, a data race in the parallel transforms, a wrapped
//! plane-length cast, or a nondeterministic fault schedule are not style
//! problems — each one lets the system hand back data whose claimed bound
//! is silently wrong. The lints are lexical (see [`crate::lexer`]) and
//! deliberately conservative: they flag *forms*, and every accepted
//! occurrence must carry a written justification, either inline
//! (`// lint:allow(<id>): reason`) or in `analyze.toml`.
//!
//! | id | scope | rule |
//! |----|-------|------|
//! | `panic_path` | compress/retrieve/fetch paths | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code; failures must surface as `PmrError`. Contract `assert!`s on caller invariants are permitted. |
//! | `unsafe_safety` | whole workspace | every `unsafe` carries a `// SAFETY:` comment within the three lines above it |
//! | `send_sync_impl` | whole workspace | `unsafe impl Send`/`Sync` only in files registered in the allowlist (inline waivers are *not* accepted) |
//! | `lossy_cast` | codec/mgard/storage | no `as` casts to narrow integers and no evident float→int `as` casts; use `try_from`/checked helpers |
//! | `nondeterminism` | artifact-producing code | no `SystemTime::now`/`Instant::now`/`thread_rng`/`from_entropy`, no `HashMap`/`HashSet` (iteration order feeds persisted output) |

use crate::config::AnalyzeConfig;
use crate::lexer::{lex, Tok, TokKind};
use crate::report::{Allowed, Violation};

/// Lint identifiers, in report order.
pub const LINT_IDS: [&str; 5] =
    ["panic_path", "unsafe_safety", "send_sync_impl", "lossy_cast", "nondeterminism"];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
const WIDE_INTS: [&str; 6] = ["u64", "i64", "u128", "i128", "usize", "isize"];
const FLOAT_TO_INT_FNS: [&str; 4] = ["round", "floor", "ceil", "trunc"];

/// Outcome of linting one file: hard violations plus suppressed-but-audited
/// occurrences.
#[derive(Debug, Default)]
pub struct FileFindings {
    pub violations: Vec<Violation>,
    pub allowed: Vec<Allowed>,
}

/// Run every applicable lint on one file. `rel_path` uses forward slashes
/// and is workspace-relative; scoping and the allowlist match against it.
pub fn lint_file(rel_path: &str, src: &str, cfg: &AnalyzeConfig) -> FileFindings {
    let toks = lex(src);
    let test_mask = test_region_mask(&toks);
    let waivers = collect_waivers(&toks);
    let safety_lines: Vec<usize> = toks
        .iter()
        .filter(|t| !t.is_code() && t.text.contains("SAFETY:"))
        .map(|t| t.line)
        .collect();
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: usize| -> String {
        lines.get(line.saturating_sub(1)).map_or(String::new(), |l| l.trim().to_string())
    };

    let mut raw: Vec<Violation> = Vec::new();
    let in_scope = |paths: &[String]| paths.iter().any(|p| rel_path.starts_with(p.as_str()));

    let code: Vec<(usize, &Tok)> = toks.iter().enumerate().filter(|(_, t)| t.is_code()).collect();
    // `next`/`prev` in code-token space; `ci` indexes into `code`.
    for ci in 0..code.len() {
        let (ti, t) = code[ci];
        if test_mask[ti] || t.kind != TokKind::Ident {
            continue;
        }
        let next = |k: usize| code.get(ci + k).map(|&(_, t)| t);
        let prev = |k: usize| ci.checked_sub(k).map(|i| code[i].1);

        // L1 — panic-capable calls on the compress/retrieve/fetch paths.
        if in_scope(&cfg.panic_paths) {
            if PANIC_MACROS.contains(&t.text.as_str()) && next(1).is_some_and(|n| n.is_punct('!')) {
                raw.push(Violation {
                    lint: "panic_path",
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}!` in library code on an error-contract path; return `PmrError` instead",
                        t.text
                    ),
                    snippet: snippet(t.line),
                });
            }
            if matches!(t.text.as_str(), "unwrap" | "expect")
                && prev(1).is_some_and(|p| p.is_punct('.'))
                && next(1).is_some_and(|n| n.is_punct('('))
            {
                raw.push(Violation {
                    lint: "panic_path",
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "`.{}()` can panic mid-retrieval; route the failure through `PmrError`",
                        t.text
                    ),
                    snippet: snippet(t.line),
                });
            }
        }

        // L2 — unsafe audit (whole workspace).
        if t.text == "unsafe" {
            let documented =
                safety_lines.iter().any(|&l| l <= t.line && t.line.saturating_sub(l) <= 3);
            if !documented {
                raw.push(Violation {
                    lint: "unsafe_safety",
                    file: rel_path.to_string(),
                    line: t.line,
                    message: "`unsafe` without a `// SAFETY:` comment in the 3 lines above it"
                        .to_string(),
                    snippet: snippet(t.line),
                });
            }
            if next(1).is_some_and(|n| n.is_ident("impl")) {
                let trait_name = (2..40)
                    .map_while(&next)
                    .take_while(|n| !n.is_punct('{') && !n.is_ident("for"))
                    .find(|n| n.is_ident("Send") || n.is_ident("Sync"))
                    .map(|n| n.text.clone());
                if let Some(name) = trait_name {
                    raw.push(Violation {
                        lint: "send_sync_impl",
                        file: rel_path.to_string(),
                        line: t.line,
                        message: format!(
                            "`unsafe impl {name}` asserts thread safety the compiler cannot \
                             check; the file must be registered in the analyze.toml allowlist \
                             with a justification"
                        ),
                        snippet: snippet(t.line),
                    });
                }
            }
        }

        // L3 — lossy casts in the codec/artifact crates.
        if t.text == "as" && in_scope(&cfg.cast_paths) {
            if let Some(target) = next(1).filter(|n| n.kind == TokKind::Ident) {
                let narrow = NARROW_INTS.contains(&target.text.as_str());
                let wide = WIDE_INTS.contains(&target.text.as_str());
                if narrow || wide {
                    let float_src = cast_source_is_float(&code, ci);
                    if narrow || float_src {
                        let kind = if float_src {
                            "float→int `as` cast saturates and drops fractions silently"
                        } else {
                            "integer `as` cast to a narrower type wraps silently"
                        };
                        raw.push(Violation {
                            lint: "lossy_cast",
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "{kind}; use `try_from`/checked conversion (cast to `{}`)",
                                target.text
                            ),
                            snippet: snippet(t.line),
                        });
                    }
                }
            }
        }

        // L4 — nondeterminism sources in artifact-producing code.
        if in_scope(&cfg.nondet_paths) {
            let clock = matches!(t.text.as_str(), "SystemTime" | "Instant")
                && next(1).is_some_and(|n| n.is_punct(':'))
                && next(2).is_some_and(|n| n.is_punct(':'))
                && next(3).is_some_and(|n| n.is_ident("now"));
            let rng = matches!(t.text.as_str(), "thread_rng" | "from_entropy");
            let hash = matches!(t.text.as_str(), "HashMap" | "HashSet");
            if clock || rng || hash {
                let what = if clock {
                    format!("`{}::now()` makes artifacts differ run to run", t.text)
                } else if rng {
                    format!("`{}` seeds from the OS; use an explicit seed", t.text)
                } else {
                    format!(
                        "`{}` iteration order is nondeterministic; use `BTreeMap`/`Vec` \
                         where order can reach persisted output",
                        t.text
                    )
                };
                raw.push(Violation {
                    lint: "nondeterminism",
                    file: rel_path.to_string(),
                    line: t.line,
                    message: what,
                    snippet: snippet(t.line),
                });
            }
        }
    }

    // Split raw findings into violations vs. justified suppressions.
    let mut out = FileFindings::default();
    'next_violation: for v in raw {
        for entry in &cfg.allow {
            if entry.lint == v.lint && rel_path.starts_with(entry.path.as_str()) {
                out.allowed.push(Allowed { violation: v, reason: entry.reason.clone() });
                continue 'next_violation;
            }
        }
        // Inline waivers never excuse a Send/Sync impl: those must be
        // centrally registered so the whole unsafe surface is in one file.
        if v.lint != "send_sync_impl" {
            if let Some(reason) = waivers.iter().find_map(|w| {
                (w.lints.iter().any(|l| l == v.lint) && (w.line == v.line || w.line + 1 == v.line))
                    .then(|| w.reason.clone())
            }) {
                out.allowed.push(Allowed { violation: v, reason });
                continue 'next_violation;
            }
        }
        out.violations.push(v);
    }
    out
}

/// Does the `as` at code index `ci` cast an evidently-float expression?
/// Recognizes a float literal (`1.5 as i64`) and a trailing
/// `.round()/.floor()/.ceil()/.trunc()` call chain.
fn cast_source_is_float(code: &[(usize, &Tok)], ci: usize) -> bool {
    let Some(i) = ci.checked_sub(1) else { return false };
    let prev = code[i].1;
    if prev.kind == TokKind::Num {
        let t = &prev.text;
        return t.contains('.') || t.ends_with("f32") || t.ends_with("f64");
    }
    if prev.is_punct(')') {
        // Walk back over the argument list to the matching `(`.
        let mut depth = 0usize;
        let mut j = i;
        loop {
            let t = code[j].1;
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            let Some(nj) = j.checked_sub(1) else { return false };
            j = nj;
        }
        // `<expr>.round( … ) as` — ident directly before the `(`.
        if let Some(k) = j.checked_sub(1) {
            return FLOAT_TO_INT_FNS.contains(&code[k].1.text.as_str())
                && k.checked_sub(1).is_some_and(|d| code[d].1.is_punct('.'));
        }
    }
    false
}

/// An inline waiver parsed from a comment: `// lint:allow(a, b): reason`.
/// Covers findings on the comment's own line and the line below it.
struct Waiver {
    line: usize,
    lints: Vec<String>,
    reason: String,
}

fn collect_waivers(toks: &[Tok]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in toks {
        if t.is_code() {
            continue;
        }
        let Some(pos) = t.text.find("lint:allow(") else { continue };
        let rest = &t.text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let lints: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let reason = rest[close + 1..]
            .trim_start_matches([':', '-', '—', ' '])
            .trim_end_matches("*/")
            .trim()
            .to_string();
        // A waiver with no reason is no waiver: the violation stays.
        if !lints.is_empty() && !reason.is_empty() {
            out.push(Waiver { line: t.line, lints, reason });
        }
    }
    out
}

/// Token mask marking test-only regions: the braced body (and attributes) of
/// any item annotated `#[cfg(test)]`, `#[cfg(any(test, …))]`, or `#[test]`.
/// `#[cfg(not(test))]` guards production code and is *not* masked.
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| toks[i].is_code()).collect();
    let mut c = 0usize;
    while c < code.len() {
        if toks[code[c]].is_punct('#') && code.get(c + 1).is_some_and(|&i| toks[i].is_punct('[')) {
            // Scan the attribute to its matching `]`.
            let mut depth = 0usize;
            let mut idents: Vec<&str> = Vec::new();
            let mut end = c + 1;
            for (k, &ti) in code.iter().enumerate().skip(c + 1) {
                let t = &toks[ti];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                } else if t.kind == TokKind::Ident {
                    idents.push(&t.text);
                }
            }
            let is_test_attr = idents.contains(&"test")
                && !idents.contains(&"not")
                && (idents[0] == "cfg" || idents == ["test"]);
            if is_test_attr {
                // Mark from the attribute through the end of the annotated
                // item: its braced body, or the trailing `;` for bodyless
                // items (`mod tests;`).
                let mut brace_depth = 0usize;
                let mut k = end + 1;
                while k < code.len() {
                    let t = &toks[code[k]];
                    if t.is_punct('{') {
                        brace_depth += 1;
                    } else if t.is_punct('}') {
                        brace_depth -= 1;
                        if brace_depth == 0 {
                            break;
                        }
                    } else if t.is_punct(';') && brace_depth == 0 {
                        break;
                    }
                    k += 1;
                }
                let from = code[c];
                let to = code.get(k).copied().unwrap_or(toks.len() - 1);
                for m in &mut mask[from..=to] {
                    *m = true;
                }
                c = k + 1;
                continue;
            }
            c = end + 1;
            continue;
        }
        c += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all() -> AnalyzeConfig {
        AnalyzeConfig {
            panic_paths: vec![String::new()],
            cast_paths: vec![String::new()],
            nondet_paths: vec![String::new()],
            allow: Vec::new(),
        }
    }

    fn lints_of(src: &str) -> Vec<&'static str> {
        lint_file("crates/x/src/lib.rs", src, &cfg_all())
            .violations
            .iter()
            .map(|v| v.lint)
            .collect()
    }

    #[test]
    fn panic_forms_fire() {
        assert_eq!(lints_of("fn f(x: Option<u8>) { x.unwrap(); }"), vec!["panic_path"]);
        assert_eq!(lints_of("fn f() { panic!(\"boom\"); }"), vec!["panic_path"]);
        assert_eq!(lints_of("fn f(x: Option<u8>) { x.expect(\"y\"); }"), vec!["panic_path"]);
        // Non-panicking relatives do not fire.
        assert!(lints_of("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); panic!(); }\n}\n";
        assert!(lints_of(src).is_empty());
        let src = "#[test]\nfn t() { x.unwrap(); }\n";
        assert!(lints_of(src).is_empty());
        // #[cfg(not(test))] guards production code: still linted.
        let src = "#[cfg(not(test))]\nfn g() { x.unwrap(); }\n";
        assert_eq!(lints_of(src), vec!["panic_path"]);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        assert_eq!(lints_of("fn f() { unsafe { g() } }"), vec!["unsafe_safety"]);
        let ok = "fn f() {\n // SAFETY: g has no preconditions\n unsafe { g() } }";
        assert!(lints_of(ok).is_empty());
        // Comment too far above does not count.
        let far = "// SAFETY: stale\n\n\n\n\nfn f() { unsafe { g() } }";
        assert_eq!(lints_of(far), vec!["unsafe_safety"]);
    }

    #[test]
    fn send_sync_impl_needs_allowlist() {
        let src = "// SAFETY: disjoint writes\nunsafe impl Send for P {}";
        assert_eq!(lints_of(src), vec!["send_sync_impl"]);
        // Inline waivers are refused for this lint.
        let waived = "// SAFETY: x\n// lint:allow(send_sync_impl): nope\nunsafe impl Sync for P {}";
        assert_eq!(lints_of(waived), vec!["send_sync_impl"]);
        // Other unsafe impls (e.g. of an unsafe trait) pass.
        let other = "// SAFETY: contract upheld\nunsafe impl Searcher for P {}";
        assert!(lints_of(other).is_empty());
    }

    #[test]
    fn lossy_casts_fire_and_wide_lossless_do_not() {
        assert_eq!(lints_of("fn f(x: u64) -> u32 { x as u32 }"), vec!["lossy_cast"]);
        assert_eq!(lints_of("fn f(x: f64) -> i64 { x.round() as i64 }"), vec!["lossy_cast"]);
        assert_eq!(lints_of("fn f() -> i64 { 1.5 as i64 }"), vec!["lossy_cast"]);
        // Widening and same-width casts to 64-bit/usize are not flagged.
        assert!(lints_of("fn f(x: u32) -> u64 { x as u64 }").is_empty());
        assert!(lints_of("fn f(x: u32) -> usize { x as usize }").is_empty());
        // Casts to float are fine.
        assert!(lints_of("fn f(x: usize) -> f64 { x as f64 }").is_empty());
    }

    #[test]
    fn nondeterminism_sources_fire() {
        assert_eq!(lints_of("fn f() { let t = SystemTime::now(); }"), vec!["nondeterminism"]);
        assert_eq!(lints_of("fn f() { let r = thread_rng(); }"), vec!["nondeterminism"]);
        assert_eq!(lints_of("use std::collections::HashMap;"), vec!["nondeterminism"]);
        // Deterministic relatives pass.
        assert!(lints_of("use std::collections::BTreeMap;").is_empty());
        // Instant without ::now (e.g. a type in a signature) passes.
        assert!(lints_of("fn f(t: Instant) {}").is_empty());
    }

    #[test]
    fn inline_waiver_with_reason_suppresses() {
        let src = "// lint:allow(lossy_cast): k < 64 planes by construction\nfn f(k: usize) -> u32 { k as u32 }";
        let f = lint_file("crates/x/src/lib.rs", src, &cfg_all());
        assert!(f.violations.is_empty());
        assert_eq!(f.allowed.len(), 1);
        assert_eq!(f.allowed[0].reason, "k < 64 planes by construction");
        // Same-line waiver works too.
        let src = "fn f(k: usize) -> u32 { k as u32 } // lint:allow(lossy_cast): bounded";
        assert!(lint_file("crates/x/src/lib.rs", src, &cfg_all()).violations.is_empty());
    }

    #[test]
    fn waiver_without_reason_is_ignored() {
        let src = "// lint:allow(lossy_cast)\nfn f(k: usize) -> u32 { k as u32 }";
        let f = lint_file("crates/x/src/lib.rs", src, &cfg_all());
        assert_eq!(f.violations.len(), 1);
    }

    #[test]
    fn allowlist_entry_suppresses_send_sync() {
        let mut cfg = cfg_all();
        cfg.allow.push(crate::config::AllowEntry {
            lint: "send_sync_impl".into(),
            path: "crates/x/src".into(),
            reason: "audited: disjoint element scatter".into(),
        });
        let src = "// SAFETY: disjoint\nunsafe impl Send for P {}";
        let f = lint_file("crates/x/src/lib.rs", src, &cfg);
        assert!(f.violations.is_empty());
        assert_eq!(f.allowed.len(), 1);
    }

    #[test]
    fn scoping_limits_lints_to_their_paths() {
        let cfg = AnalyzeConfig {
            panic_paths: vec!["crates/hot".into()],
            cast_paths: vec!["crates/hot".into()],
            nondet_paths: vec!["crates/hot".into()],
            allow: Vec::new(),
        };
        let src = "fn f(x: Option<u8>, y: u64) { x.unwrap(); let _ = y as u32; }";
        assert!(lint_file("crates/cold/src/lib.rs", src, &cfg).violations.is_empty());
        assert_eq!(lint_file("crates/hot/src/lib.rs", src, &cfg).violations.len(), 2);
        // unsafe_safety is workspace-wide regardless of scoping.
        let u = "fn f() { unsafe { g() } }";
        assert_eq!(lint_file("crates/cold/src/lib.rs", u, &cfg).violations.len(), 1);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"fn f() { let s = "x.unwrap() panic! HashMap"; } // x.unwrap()"#;
        assert!(lints_of(src).is_empty());
    }
}
