//! The lint catalogue: lexical lints plus the suppression machinery shared
//! with the interprocedural passes in [`crate::callgraph`] and
//! [`crate::dataflow`].
//!
//! Every lint protects the same thing: the retriever's *error-bound
//! contract*. A panic mid-retrieval, a silently dropped `Result`, a lock
//! held across a segment fetch, a wrapped plane-length cast, or a
//! nondeterministic fault schedule are not style problems — each one lets
//! the system hand back data whose claimed bound is silently wrong. The
//! lints are deliberately conservative: they flag *forms* (and, for the
//! interprocedural ones, call-graph over-approximations), and every
//! accepted occurrence must carry a written justification, either inline
//! (`// lint:allow(<id>): reason`) or in `analyze.toml`.
//!
//! | id | scope | rule |
//! |----|-------|------|
//! | `panic_path` | compress/retrieve/fetch paths | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code; failures must surface as `PmrError`. Contract `assert!`s on caller invariants are permitted. |
//! | `panic_reach` | workspace-wide | no panic-capable call transitively reachable from a configured entry point (`compress*`/`retrieve*`/`fetch*`/`execute*`); reported at the panic site with the shortest call chain |
//! | `error_swallow` | data-path crates | no `let _ = fallible()`, no `.ok();` discarding a `Result`, no bare `fallible();` statement whose `Result` is dropped |
//! | `lock_order` | workspace-wide | no cyclic lock-acquisition order, no guard re-acquiring its own lock, no guard held across a `fetch*` call or a retry/backoff loop |
//! | `unsafe_safety` | whole workspace | every `unsafe` carries a `// SAFETY:` comment within the three lines above it |
//! | `send_sync_impl` | whole workspace | `unsafe impl Send`/`Sync` only in files registered in the allowlist (inline waivers are *not* accepted) |
//! | `lossy_cast` | codec/mgard/storage | no `as` casts to narrow integers and no evident float→int `as` casts; use `try_from`/checked helpers |
//! | `nondeterminism` | artifact-producing code | no `SystemTime::now`/`Instant::now`/`thread_rng`/`from_entropy`, no `HashMap`/`HashSet` (iteration order feeds persisted output) |
//! | `stale_suppression` | config + sources | every `analyze.toml` allowlist entry and every inline waiver must still match at least one finding; dead suppressions are hard errors and cannot themselves be suppressed |

use crate::config::AnalyzeConfig;
use crate::lexer::{Tok, TokKind};
use crate::parse::{parse_file, ParsedFile};
use crate::report::{Allowed, Violation};

/// Lint identifiers, in report order.
pub const LINT_IDS: [&str; 9] = [
    "panic_path",
    "panic_reach",
    "error_swallow",
    "lock_order",
    "unsafe_safety",
    "send_sync_impl",
    "lossy_cast",
    "nondeterminism",
    "stale_suppression",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
const WIDE_INTS: [&str; 6] = ["u64", "i64", "u128", "i128", "usize", "isize"];
const FLOAT_TO_INT_FNS: [&str; 4] = ["round", "floor", "ceil", "trunc"];

/// Outcome of linting one file: hard violations plus suppressed-but-audited
/// occurrences.
#[derive(Debug, Default)]
pub struct FileFindings {
    pub violations: Vec<Violation>,
    pub allowed: Vec<Allowed>,
}

/// Raw (pre-suppression) lexical findings for one file. `rel_path` comes
/// from the parsed file; scoping matches against it.
pub fn lexical_raw(p: &ParsedFile, cfg: &AnalyzeConfig) -> Vec<Violation> {
    let rel_path = p.rel_path.as_str();
    let safety_lines: Vec<usize> = p
        .toks
        .iter()
        .filter(|t| !t.is_code() && t.text.contains("SAFETY:"))
        .map(|t| t.line)
        .collect();

    let mut raw: Vec<Violation> = Vec::new();
    let in_scope = |paths: &[String]| paths.iter().any(|px| rel_path.starts_with(px.as_str()));

    for ci in 0..p.code.len() {
        let t = p.ct(ci);
        if p.in_test(ci) || t.kind != TokKind::Ident {
            continue;
        }
        let next = |k: usize| p.code.get(ci + k).map(|&ti| &p.toks[ti]);
        let prev = |k: usize| ci.checked_sub(k).map(|i| p.ct(i));

        // L1 — panic-capable calls on the compress/retrieve/fetch paths.
        if in_scope(&cfg.panic_paths) {
            if PANIC_MACROS.contains(&t.text.as_str()) && next(1).is_some_and(|n| n.is_punct('!')) {
                raw.push(Violation::new(
                    "panic_path",
                    rel_path,
                    t.line,
                    format!(
                        "`{}!` in library code on an error-contract path; return `PmrError` instead",
                        t.text
                    ),
                    p.snippet(t.line),
                ));
            }
            if matches!(t.text.as_str(), "unwrap" | "expect")
                && prev(1).is_some_and(|pv| pv.is_punct('.'))
                && next(1).is_some_and(|n| n.is_punct('('))
            {
                raw.push(Violation::new(
                    "panic_path",
                    rel_path,
                    t.line,
                    format!(
                        "`.{}()` can panic mid-retrieval; route the failure through `PmrError`",
                        t.text
                    ),
                    p.snippet(t.line),
                ));
            }
        }

        // L2 — unsafe audit (whole workspace).
        if t.text == "unsafe" {
            let documented =
                safety_lines.iter().any(|&l| l <= t.line && t.line.saturating_sub(l) <= 3);
            if !documented {
                raw.push(Violation::new(
                    "unsafe_safety",
                    rel_path,
                    t.line,
                    "`unsafe` without a `// SAFETY:` comment in the 3 lines above it",
                    p.snippet(t.line),
                ));
            }
            if next(1).is_some_and(|n| n.is_ident("impl")) {
                let trait_name = (2..40)
                    .map_while(&next)
                    .take_while(|n| !n.is_punct('{') && !n.is_ident("for"))
                    .find(|n| n.is_ident("Send") || n.is_ident("Sync"))
                    .map(|n| n.text.clone());
                if let Some(name) = trait_name {
                    raw.push(Violation::new(
                        "send_sync_impl",
                        rel_path,
                        t.line,
                        format!(
                            "`unsafe impl {name}` asserts thread safety the compiler cannot \
                             check; the file must be registered in the analyze.toml allowlist \
                             with a justification"
                        ),
                        p.snippet(t.line),
                    ));
                }
            }
        }

        // L3 — lossy casts in the codec/artifact crates.
        if t.text == "as" && in_scope(&cfg.cast_paths) {
            if let Some(target) = next(1).filter(|n| n.kind == TokKind::Ident) {
                let narrow = NARROW_INTS.contains(&target.text.as_str());
                let wide = WIDE_INTS.contains(&target.text.as_str());
                if narrow || wide {
                    let float_src = cast_source_is_float(p, ci);
                    if narrow || float_src {
                        let kind = if float_src {
                            "float→int `as` cast saturates and drops fractions silently"
                        } else {
                            "integer `as` cast to a narrower type wraps silently"
                        };
                        raw.push(Violation::new(
                            "lossy_cast",
                            rel_path,
                            t.line,
                            format!(
                                "{kind}; use `try_from`/checked conversion (cast to `{}`)",
                                target.text
                            ),
                            p.snippet(t.line),
                        ));
                    }
                }
            }
        }

        // L4 — nondeterminism sources in artifact-producing code.
        if in_scope(&cfg.nondet_paths) {
            let clock = matches!(t.text.as_str(), "SystemTime" | "Instant")
                && next(1).is_some_and(|n| n.is_punct(':'))
                && next(2).is_some_and(|n| n.is_punct(':'))
                && next(3).is_some_and(|n| n.is_ident("now"));
            let rng = matches!(t.text.as_str(), "thread_rng" | "from_entropy");
            let hash = matches!(t.text.as_str(), "HashMap" | "HashSet");
            if clock || rng || hash {
                let what = if clock {
                    format!("`{}::now()` makes artifacts differ run to run", t.text)
                } else if rng {
                    format!("`{}` seeds from the OS; use an explicit seed", t.text)
                } else {
                    format!(
                        "`{}` iteration order is nondeterministic; use `BTreeMap`/`Vec` \
                         where order can reach persisted output",
                        t.text
                    )
                };
                raw.push(Violation::new(
                    "nondeterminism",
                    rel_path,
                    t.line,
                    what,
                    p.snippet(t.line),
                ));
            }
        }
    }
    raw
}

/// The suppression outcome for one file, with per-suppression hit counts so
/// the caller can detect stale entries across the whole workspace.
#[derive(Debug, Default)]
pub struct Suppressed {
    pub violations: Vec<Violation>,
    pub allowed: Vec<Allowed>,
    /// Hit count per `cfg.allow` index, for this file's findings.
    pub allow_hits: Vec<usize>,
    /// Hit count per entry of the `waivers` slice passed in.
    pub waiver_hits: Vec<usize>,
}

/// Split raw findings into violations vs. justified suppressions, counting
/// every suppression that matched (even redundantly) so dead entries can be
/// flagged. `stale_suppression` findings are never suppressible: the whole
/// point is that rot cannot hide itself.
pub fn apply_suppressions(
    raw: Vec<Violation>,
    rel_path: &str,
    waivers: &[Waiver],
    cfg: &AnalyzeConfig,
) -> Suppressed {
    let mut out = Suppressed {
        allow_hits: vec![0; cfg.allow.len()],
        waiver_hits: vec![0; waivers.len()],
        ..Suppressed::default()
    };
    'next_violation: for v in raw {
        if v.lint == "stale_suppression" {
            out.violations.push(v);
            continue;
        }
        let mut allow_reason: Option<String> = None;
        for (i, entry) in cfg.allow.iter().enumerate() {
            if entry.lint == v.lint && rel_path.starts_with(entry.path.as_str()) {
                out.allow_hits[i] += 1;
                allow_reason.get_or_insert_with(|| entry.reason.clone());
            }
        }
        if let Some(reason) = allow_reason {
            out.allowed.push(Allowed { violation: v, reason });
            continue 'next_violation;
        }
        // Inline waivers never excuse a Send/Sync impl: those must be
        // centrally registered so the whole unsafe surface is in one file
        // (an unmatched waiver then fails the run as stale — loudly).
        let mut waiver_reason: Option<String> = None;
        if v.lint != "send_sync_impl" {
            for (i, w) in waivers.iter().enumerate() {
                if w.lints.iter().any(|l| l == v.lint) && (w.line == v.line || w.line + 1 == v.line)
                {
                    out.waiver_hits[i] += 1;
                    waiver_reason.get_or_insert_with(|| w.reason.clone());
                }
            }
        }
        if let Some(reason) = waiver_reason {
            out.allowed.push(Allowed { violation: v, reason });
            continue 'next_violation;
        }
        out.violations.push(v);
    }
    out
}

/// Convenience single-file entry point (fixture tests and simple callers):
/// parse, run the lexical lints, apply suppressions. Interprocedural lints
/// and stale-suppression detection need the whole workspace and live in
/// [`crate::analyze_sources`] / [`crate::analyze_workspace`].
pub fn lint_file(rel_path: &str, src: &str, cfg: &AnalyzeConfig) -> FileFindings {
    let parsed = parse_file(rel_path, src);
    let raw = lexical_raw(&parsed, cfg);
    let waivers = collect_waivers(&parsed.toks);
    let s = apply_suppressions(raw, rel_path, &waivers, cfg);
    FileFindings { violations: s.violations, allowed: s.allowed }
}

/// Does the `as` at code index `ci` cast an evidently-float expression?
/// Recognizes a float literal (`1.5 as i64`) and a trailing
/// `.round()/.floor()/.ceil()/.trunc()` call chain.
fn cast_source_is_float(p: &ParsedFile, ci: usize) -> bool {
    let Some(i) = ci.checked_sub(1) else { return false };
    let prev = p.ct(i);
    if prev.kind == TokKind::Num {
        let t = &prev.text;
        return t.contains('.') || t.ends_with("f32") || t.ends_with("f64");
    }
    if prev.is_punct(')') {
        // Walk back over the argument list to the matching `(`.
        let mut depth = 0usize;
        let mut j = i;
        loop {
            let t = p.ct(j);
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            let Some(nj) = j.checked_sub(1) else { return false };
            j = nj;
        }
        // `<expr>.round( … ) as` — ident directly before the `(`.
        if let Some(k) = j.checked_sub(1) {
            return FLOAT_TO_INT_FNS.contains(&p.ct(k).text.as_str())
                && k.checked_sub(1).is_some_and(|d| p.ct(d).is_punct('.'));
        }
    }
    false
}

/// An inline waiver parsed from a comment: `// lint:allow(a, b): reason`.
/// Covers findings on the comment's own line and the line below it.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub line: usize,
    pub lints: Vec<String>,
    pub reason: String,
}

pub fn collect_waivers(toks: &[Tok]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in toks {
        if t.is_code() {
            continue;
        }
        let Some(pos) = t.text.find("lint:allow(") else { continue };
        let rest = &t.text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let lints: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let reason = rest[close + 1..]
            .trim_start_matches([':', '-', '—', ' '])
            .trim_end_matches("*/")
            .trim()
            .to_string();
        // A waiver with no reason is no waiver: the violation stays. And
        // only known lint ids count — prose that merely *mentions* the
        // syntax (`lint:allow(<id>)`) must not parse as a suppression.
        // A typo'd id is still loud: the finding it meant to waive fires.
        if !lints.is_empty()
            && !reason.is_empty()
            && lints.iter().all(|l| LINT_IDS.contains(&l.as_str()))
        {
            out.push(Waiver { line: t.line, lints, reason });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all() -> AnalyzeConfig {
        AnalyzeConfig {
            panic_paths: vec![String::new()],
            cast_paths: vec![String::new()],
            nondet_paths: vec![String::new()],
            ..AnalyzeConfig::default()
        }
    }

    fn lints_of(src: &str) -> Vec<&'static str> {
        lint_file("crates/x/src/lib.rs", src, &cfg_all())
            .violations
            .iter()
            .map(|v| v.lint)
            .collect()
    }

    #[test]
    fn panic_forms_fire() {
        assert_eq!(lints_of("fn f(x: Option<u8>) { x.unwrap(); }"), vec!["panic_path"]);
        assert_eq!(lints_of("fn f() { panic!(\"boom\"); }"), vec!["panic_path"]);
        assert_eq!(lints_of("fn f(x: Option<u8>) { x.expect(\"y\"); }"), vec!["panic_path"]);
        // Non-panicking relatives do not fire.
        assert!(lints_of("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); panic!(); }\n}\n";
        assert!(lints_of(src).is_empty());
        let src = "#[test]\nfn t() { x.unwrap(); }\n";
        assert!(lints_of(src).is_empty());
        // #[cfg(not(test))] guards production code: still linted.
        let src = "#[cfg(not(test))]\nfn g() { x.unwrap(); }\n";
        assert_eq!(lints_of(src), vec!["panic_path"]);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        assert_eq!(lints_of("fn f() { unsafe { g() } }"), vec!["unsafe_safety"]);
        let ok = "fn f() {\n // SAFETY: g has no preconditions\n unsafe { g() } }";
        assert!(lints_of(ok).is_empty());
        // Comment too far above does not count.
        let far = "// SAFETY: stale\n\n\n\n\nfn f() { unsafe { g() } }";
        assert_eq!(lints_of(far), vec!["unsafe_safety"]);
    }

    #[test]
    fn send_sync_impl_needs_allowlist() {
        let src = "// SAFETY: disjoint writes\nunsafe impl Send for P {}";
        assert_eq!(lints_of(src), vec!["send_sync_impl"]);
        // Inline waivers are refused for this lint.
        let waived = "// SAFETY: x\n// lint:allow(send_sync_impl): nope\nunsafe impl Sync for P {}";
        assert_eq!(lints_of(waived), vec!["send_sync_impl"]);
        // Other unsafe impls (e.g. of an unsafe trait) pass.
        let other = "// SAFETY: contract upheld\nunsafe impl Searcher for P {}";
        assert!(lints_of(other).is_empty());
    }

    #[test]
    fn lossy_casts_fire_and_wide_lossless_do_not() {
        assert_eq!(lints_of("fn f(x: u64) -> u32 { x as u32 }"), vec!["lossy_cast"]);
        assert_eq!(lints_of("fn f(x: f64) -> i64 { x.round() as i64 }"), vec!["lossy_cast"]);
        assert_eq!(lints_of("fn f() -> i64 { 1.5 as i64 }"), vec!["lossy_cast"]);
        // Widening and same-width casts to 64-bit/usize are not flagged.
        assert!(lints_of("fn f(x: u32) -> u64 { x as u64 }").is_empty());
        assert!(lints_of("fn f(x: u32) -> usize { x as usize }").is_empty());
        // Casts to float are fine.
        assert!(lints_of("fn f(x: usize) -> f64 { x as f64 }").is_empty());
    }

    #[test]
    fn nondeterminism_sources_fire() {
        assert_eq!(lints_of("fn f() { let t = SystemTime::now(); }"), vec!["nondeterminism"]);
        assert_eq!(lints_of("fn f() { let r = thread_rng(); }"), vec!["nondeterminism"]);
        assert_eq!(lints_of("use std::collections::HashMap;"), vec!["nondeterminism"]);
        // Deterministic relatives pass.
        assert!(lints_of("use std::collections::BTreeMap;").is_empty());
        // Instant without ::now (e.g. a type in a signature) passes.
        assert!(lints_of("fn f(t: Instant) {}").is_empty());
    }

    #[test]
    fn inline_waiver_with_reason_suppresses() {
        let src = "// lint:allow(lossy_cast): k < 64 planes by construction\nfn f(k: usize) -> u32 { k as u32 }";
        let f = lint_file("crates/x/src/lib.rs", src, &cfg_all());
        assert!(f.violations.is_empty());
        assert_eq!(f.allowed.len(), 1);
        assert_eq!(f.allowed[0].reason, "k < 64 planes by construction");
        // Same-line waiver works too.
        let src = "fn f(k: usize) -> u32 { k as u32 } // lint:allow(lossy_cast): bounded";
        assert!(lint_file("crates/x/src/lib.rs", src, &cfg_all()).violations.is_empty());
    }

    #[test]
    fn waiver_without_reason_is_ignored() {
        let src = "// lint:allow(lossy_cast)\nfn f(k: usize) -> u32 { k as u32 }";
        let f = lint_file("crates/x/src/lib.rs", src, &cfg_all());
        assert_eq!(f.violations.len(), 1);
    }

    #[test]
    fn allowlist_entry_suppresses_send_sync() {
        let mut cfg = cfg_all();
        cfg.allow.push(crate::config::AllowEntry {
            lint: "send_sync_impl".into(),
            path: "crates/x/src".into(),
            reason: "audited: disjoint element scatter".into(),
            line: 1,
        });
        let src = "// SAFETY: disjoint\nunsafe impl Send for P {}";
        let f = lint_file("crates/x/src/lib.rs", src, &cfg);
        assert!(f.violations.is_empty());
        assert_eq!(f.allowed.len(), 1);
    }

    #[test]
    fn scoping_limits_lints_to_their_paths() {
        let cfg = AnalyzeConfig {
            panic_paths: vec!["crates/hot".into()],
            cast_paths: vec!["crates/hot".into()],
            nondet_paths: vec!["crates/hot".into()],
            ..AnalyzeConfig::default()
        };
        let src = "fn f(x: Option<u8>, y: u64) { x.unwrap(); let _ = y as u32; }";
        assert!(lint_file("crates/cold/src/lib.rs", src, &cfg).violations.is_empty());
        assert_eq!(lint_file("crates/hot/src/lib.rs", src, &cfg).violations.len(), 2);
        // unsafe_safety is workspace-wide regardless of scoping.
        let u = "fn f() { unsafe { g() } }";
        assert_eq!(lint_file("crates/cold/src/lib.rs", u, &cfg).violations.len(), 1);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"fn f() { let s = "x.unwrap() panic! HashMap"; } // x.unwrap()"#;
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn suppression_hits_are_counted_per_entry() {
        let mut cfg = cfg_all();
        cfg.allow.push(crate::config::AllowEntry {
            lint: "lossy_cast".into(),
            path: "crates/x/src".into(),
            reason: "bounded".into(),
            line: 1,
        });
        cfg.allow.push(crate::config::AllowEntry {
            lint: "panic_path".into(),
            path: "crates/other".into(),
            reason: "never matches here".into(),
            line: 5,
        });
        let src = "// lint:allow(nondeterminism): display only\nfn f(k: usize) -> u32 { let t = SystemTime::now(); k as u32 }";
        let parsed = parse_file("crates/x/src/lib.rs", src);
        let raw = lexical_raw(&parsed, &cfg);
        let waivers = collect_waivers(&parsed.toks);
        let s = apply_suppressions(raw, "crates/x/src/lib.rs", &waivers, &cfg);
        assert!(s.violations.is_empty());
        assert_eq!(s.allowed.len(), 2);
        assert_eq!(s.allow_hits, vec![1, 0]);
        assert_eq!(s.waiver_hits, vec![1]);
    }
}
