//! Fixture-driven lint tests: every lint must fire on its positive fixture
//! and stay quiet (or report the occurrence as *allowed*) on its negative.
//!
//! Fixtures live under `tests/fixtures/` and are fed to the analyzer under
//! synthetic workspace-relative paths so the path scoping in
//! `AnalyzeConfig::default()` applies exactly as it does in the real run.

use pmr_analyze::{analyze_sources, AllowEntry, AnalyzeConfig, Report};

/// Lint one fixture as if it lived at `rel_path` in the workspace.
fn lint(rel_path: &str, src: &str, cfg: &AnalyzeConfig) -> Report {
    analyze_sources([(rel_path, src)], cfg)
}

fn count(report: &Report, lint: &str) -> usize {
    report.violations.iter().filter(|v| v.lint == lint).count()
}

fn count_allowed(report: &Report, lint: &str) -> usize {
    report.allowed.iter().filter(|a| a.violation.lint == lint).count()
}

// ---- L1: panic_path ----

#[test]
fn panic_path_fires_on_unwrap_expect_and_panic() {
    let src = include_str!("fixtures/panic_path_positive.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "panic_path"), 3, "unwrap + panic! + expect: {:#?}", r.violations);
}

#[test]
fn panic_path_respects_tests_waivers_and_asserts() {
    let src = include_str!("fixtures/panic_path_negative.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "panic_path"), 0, "spurious: {:#?}", r.violations);
    // The waived expect is audited, not silently dropped.
    assert_eq!(count_allowed(&r, "panic_path"), 1);
}

#[test]
fn panic_path_is_scoped_to_configured_paths() {
    let src = include_str!("fixtures/panic_path_positive.rs");
    let r = lint("crates/nn/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "panic_path"), 0, "nn is off the data path");
}

// ---- L2: unsafe_safety + send_sync_impl ----

#[test]
fn unsafe_without_safety_comment_fires() {
    let src = include_str!("fixtures/unsafe_safety_positive.rs");
    let r = lint("crates/nn/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "unsafe_safety"), 1, "{:#?}", r.violations);
    assert_eq!(count(&r, "send_sync_impl"), 1, "{:#?}", r.violations);
}

#[test]
fn documented_unsafe_is_clean() {
    let src = include_str!("fixtures/unsafe_safety_negative.rs");
    let r = lint("crates/nn/src/fixture.rs", src, &AnalyzeConfig::default());
    assert!(r.is_clean(), "{:#?}", r.violations);
}

#[test]
fn send_sync_impl_is_allowlist_only() {
    // Even an inline waiver must NOT excuse an `unsafe impl Send` — only a
    // central analyze.toml entry may.
    let src = "// SAFETY: sole owner\n// lint:allow(send_sync_impl): trust me\nunsafe impl Send for H {}\npub struct H(*mut u8);\n";
    let r = lint("crates/nn/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "send_sync_impl"), 1, "inline waiver must not apply");

    let mut cfg = AnalyzeConfig::default();
    cfg.allow.push(AllowEntry {
        lint: "send_sync_impl".into(),
        path: "crates/nn/src/fixture.rs".into(),
        reason: "raw pointer owned exclusively; audited".into(),
    });
    let r = lint("crates/nn/src/fixture.rs", src, &cfg);
    assert_eq!(count(&r, "send_sync_impl"), 0);
    assert_eq!(count_allowed(&r, "send_sync_impl"), 1);
}

// ---- L3: lossy_cast ----

#[test]
fn lossy_casts_fire_and_widening_does_not() {
    let src = include_str!("fixtures/lossy_cast_positive.rs");
    let r = lint("crates/codec/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "lossy_cast"), 2, "narrowing + float→int only: {:#?}", r.violations);
}

#[test]
fn waived_lossy_cast_is_reported_as_allowed() {
    let src = include_str!("fixtures/lossy_cast_negative.rs");
    let r = lint("crates/codec/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "lossy_cast"), 0, "{:#?}", r.violations);
    assert_eq!(count_allowed(&r, "lossy_cast"), 1);
}

#[test]
fn lossy_cast_is_scoped_to_codec_crates() {
    let src = include_str!("fixtures/lossy_cast_positive.rs");
    let r = lint("crates/core/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "lossy_cast"), 0, "core is not a cast-lint path");
}

// ---- L4: nondeterminism ----

#[test]
fn nondeterminism_sources_fire() {
    let src = include_str!("fixtures/nondet_positive.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    // SystemTime::now plus the HashMap mentions (the import counts too —
    // the type's presence is what lets order leak into output).
    assert!(count(&r, "nondeterminism") >= 2, "{:#?}", r.violations);
}

#[test]
fn ordered_containers_are_clean() {
    let src = include_str!("fixtures/nondet_negative.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "nondeterminism"), 0, "{:#?}", r.violations);
}

// ---- report plumbing ----

#[test]
fn summary_and_json_agree_with_violations() {
    let src = include_str!("fixtures/panic_path_positive.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    assert!(!r.is_clean());
    let json = r.to_json();
    assert!(json.contains("\"panic_path\": 3"), "{json}");
    // Serialization is deterministic.
    assert_eq!(json, r.to_json());
}
