//! Fixture-driven lint tests: every lint must fire on its positive fixture
//! and stay quiet (or report the occurrence as *allowed*) on its negative.
//!
//! Fixtures live under `tests/fixtures/` and are fed to the analyzer under
//! synthetic workspace-relative paths so the path scoping in
//! `AnalyzeConfig::default()` applies exactly as it does in the real run.

use pmr_analyze::{analyze_sources, AllowEntry, AnalyzeConfig, Report};

/// Lint one fixture as if it lived at `rel_path` in the workspace.
fn lint(rel_path: &str, src: &str, cfg: &AnalyzeConfig) -> Report {
    analyze_sources([(rel_path, src)], cfg)
}

fn count(report: &Report, lint: &str) -> usize {
    report.violations.iter().filter(|v| v.lint == lint).count()
}

fn count_allowed(report: &Report, lint: &str) -> usize {
    report.allowed.iter().filter(|a| a.violation.lint == lint).count()
}

// ---- L1: panic_path ----

#[test]
fn panic_path_fires_on_unwrap_expect_and_panic() {
    let src = include_str!("fixtures/panic_path_positive.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "panic_path"), 3, "unwrap + panic! + expect: {:#?}", r.violations);
}

#[test]
fn panic_path_respects_tests_waivers_and_asserts() {
    let src = include_str!("fixtures/panic_path_negative.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "panic_path"), 0, "spurious: {:#?}", r.violations);
    // The waived expect is audited, not silently dropped.
    assert_eq!(count_allowed(&r, "panic_path"), 1);
}

#[test]
fn panic_path_is_scoped_to_configured_paths() {
    let src = include_str!("fixtures/panic_path_positive.rs");
    let r = lint("crates/nn/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "panic_path"), 0, "nn is off the data path");
}

// ---- L2: unsafe_safety + send_sync_impl ----

#[test]
fn unsafe_without_safety_comment_fires() {
    let src = include_str!("fixtures/unsafe_safety_positive.rs");
    let r = lint("crates/nn/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "unsafe_safety"), 1, "{:#?}", r.violations);
    assert_eq!(count(&r, "send_sync_impl"), 1, "{:#?}", r.violations);
}

#[test]
fn documented_unsafe_is_clean() {
    let src = include_str!("fixtures/unsafe_safety_negative.rs");
    let r = lint("crates/nn/src/fixture.rs", src, &AnalyzeConfig::default());
    assert!(r.is_clean(), "{:#?}", r.violations);
}

#[test]
fn send_sync_impl_is_allowlist_only() {
    // Even an inline waiver must NOT excuse an `unsafe impl Send` — only a
    // central analyze.toml entry may.
    let src = "// SAFETY: sole owner\n// lint:allow(send_sync_impl): trust me\nunsafe impl Send for H {}\npub struct H(*mut u8);\n";
    let r = lint("crates/nn/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "send_sync_impl"), 1, "inline waiver must not apply");

    let mut cfg = AnalyzeConfig::default();
    cfg.allow.push(AllowEntry {
        lint: "send_sync_impl".into(),
        path: "crates/nn/src/fixture.rs".into(),
        reason: "raw pointer owned exclusively; audited".into(),
        line: 1,
    });
    let r = lint("crates/nn/src/fixture.rs", src, &cfg);
    assert_eq!(count(&r, "send_sync_impl"), 0);
    assert_eq!(count_allowed(&r, "send_sync_impl"), 1);
}

// ---- L3: lossy_cast ----

#[test]
fn lossy_casts_fire_and_widening_does_not() {
    let src = include_str!("fixtures/lossy_cast_positive.rs");
    let r = lint("crates/codec/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "lossy_cast"), 2, "narrowing + float→int only: {:#?}", r.violations);
}

#[test]
fn waived_lossy_cast_is_reported_as_allowed() {
    let src = include_str!("fixtures/lossy_cast_negative.rs");
    let r = lint("crates/codec/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "lossy_cast"), 0, "{:#?}", r.violations);
    assert_eq!(count_allowed(&r, "lossy_cast"), 1);
}

#[test]
fn lossy_cast_is_scoped_to_codec_crates() {
    let src = include_str!("fixtures/lossy_cast_positive.rs");
    let r = lint("crates/core/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "lossy_cast"), 0, "core is not a cast-lint path");
}

// ---- L4: nondeterminism ----

#[test]
fn nondeterminism_sources_fire() {
    let src = include_str!("fixtures/nondet_positive.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    // SystemTime::now plus the HashMap mentions (the import counts too —
    // the type's presence is what lets order leak into output).
    assert!(count(&r, "nondeterminism") >= 2, "{:#?}", r.violations);
}

#[test]
fn ordered_containers_are_clean() {
    let src = include_str!("fixtures/nondet_negative.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "nondeterminism"), 0, "{:#?}", r.violations);
}

// ---- L5: panic_reach (interprocedural) ----

#[test]
fn panic_reach_fires_through_the_call_graph() {
    let src = include_str!("fixtures/panic_reach_positive.rs");
    // `crates/sim/src` is an entry tree but not a panic_path tree, so the
    // finding below is attributable to reachability alone.
    let r = lint("crates/sim/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "panic_reach"), 1, "{:#?}", r.violations);
    assert_eq!(count(&r, "panic_path"), 0, "sim is off the panic_path scope");
    let v = r.violations.iter().find(|v| v.lint == "panic_reach").expect("finding");
    assert!(v.message.contains("retrieve_snapshot"), "chain names the entry: {}", v.message);
    assert!(v.message.contains("decode_width"), "chain names the sink: {}", v.message);
}

#[test]
fn panic_reach_ignores_unreachable_panics() {
    let src = include_str!("fixtures/panic_reach_negative.rs");
    let r = lint("crates/sim/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "panic_reach"), 0, "{:#?}", r.violations);
}

#[test]
fn panic_reach_waiver_at_the_panic_site_applies() {
    let src = "pub fn retrieve_x(k: usize) -> usize { decode(k) }\n\
               fn decode(k: usize) -> usize {\n\
               // lint:allow(panic_reach): bound checked by the header parser\n\
               if k > 64 { panic!(\"width\"); }\n\
               k }\n";
    let r = lint("crates/sim/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "panic_reach"), 0, "{:#?}", r.violations);
    assert_eq!(count_allowed(&r, "panic_reach"), 1);
    assert_eq!(count(&r, "stale_suppression"), 0, "waiver matched, not stale");
}

// ---- L6: error_swallow (interprocedural) ----

#[test]
fn error_swallow_fires_on_all_three_forms() {
    let src = include_str!("fixtures/error_swallow_positive.rs");
    let r = lint("crates/codec/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "error_swallow"), 3, "let _ / bare / .ok(): {:#?}", r.violations);
}

#[test]
fn error_swallow_negative_is_clean_with_one_waived() {
    let src = include_str!("fixtures/error_swallow_negative.rs");
    let r = lint("crates/codec/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "error_swallow"), 0, "{:#?}", r.violations);
    assert_eq!(count_allowed(&r, "error_swallow"), 1, "the waived prefetch");
    assert_eq!(count(&r, "stale_suppression"), 0);
}

#[test]
fn error_swallow_is_scoped_to_data_path_crates() {
    let src = include_str!("fixtures/error_swallow_positive.rs");
    let r = lint("crates/nn/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "error_swallow"), 0, "nn is off the swallow scope");
}

// ---- L7: lock_order (interprocedural) ----

#[test]
fn lock_order_fires_on_cycle_and_guard_across_fetch() {
    let src = include_str!("fixtures/lock_order_positive.rs");
    let r = lint("crates/storage/src/fixture.rs", src, &AnalyzeConfig::default());
    // Both directions of the a/b cycle plus the guard held across fetch.
    assert_eq!(count(&r, "lock_order"), 3, "{:#?}", r.violations);
}

#[test]
fn lock_order_negative_is_clean() {
    let src = include_str!("fixtures/lock_order_negative.rs");
    let r = lint("crates/storage/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "lock_order"), 0, "{:#?}", r.violations);
}

#[test]
fn lock_order_allowlist_entry_suppresses_and_is_not_stale() {
    let src = include_str!("fixtures/lock_order_positive.rs");
    let mut cfg = AnalyzeConfig::default();
    cfg.allow.push(AllowEntry {
        lint: "lock_order".into(),
        path: "crates/storage/src/fixture.rs".into(),
        reason: "fixture: known ordering, audited".into(),
        line: 1,
    });
    let r = lint("crates/storage/src/fixture.rs", src, &cfg);
    assert_eq!(count(&r, "lock_order"), 0, "{:#?}", r.violations);
    assert_eq!(count_allowed(&r, "lock_order"), 3);
    assert_eq!(count(&r, "stale_suppression"), 0);
}

// ---- stale suppressions ----

#[test]
fn unmatched_waiver_is_a_stale_suppression_finding() {
    let src = "// lint:allow(panic_path): nothing panics here anymore\npub fn calm() {}\n";
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    assert_eq!(count(&r, "stale_suppression"), 1, "{:#?}", r.violations);
}

// ---- report plumbing ----

#[test]
fn summary_and_json_agree_with_violations() {
    let src = include_str!("fixtures/panic_path_positive.rs");
    let r = lint("crates/mgard/src/fixture.rs", src, &AnalyzeConfig::default());
    assert!(!r.is_clean());
    let json = r.to_json();
    assert!(json.contains("\"panic_path\": 3"), "{json}");
    // Serialization is deterministic.
    assert_eq!(json, r.to_json());
}
