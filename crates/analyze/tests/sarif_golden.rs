//! Golden snapshot for the SARIF exporter: a fixed fixture workspace must
//! serialize to byte-identical SARIF on every run, on every machine.
//!
//! To regenerate after an intentional format change:
//! `PMR_UPDATE_GOLDEN=1 cargo test -p pmr-analyze --test sarif_golden`
//! and review the diff of `tests/golden/analyze.sarif` like any other code.

use pmr_analyze::{analyze_sources, sarif, AnalyzeConfig};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/analyze.sarif");

#[test]
fn sarif_output_matches_the_golden_snapshot() {
    let report = analyze_sources(
        [
            ("crates/sim/src/fixture.rs", include_str!("fixtures/panic_reach_positive.rs")),
            ("crates/codec/src/fixture.rs", include_str!("fixtures/error_swallow_negative.rs")),
            ("crates/storage/src/fixture.rs", include_str!("fixtures/lock_order_positive.rs")),
        ],
        &AnalyzeConfig::default(),
    );
    let got = sarif::to_sarif(&report);
    if std::env::var_os("PMR_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing; regenerate with PMR_UPDATE_GOLDEN=1 and review the diff");
    assert_eq!(got, want, "SARIF drifted from the golden snapshot");
}
