//! L1 fixture: none of these may fire `panic_path` — the unwrap sits in a
//! test region, the expect carries an inline waiver, and asserts are
//! contract checks, not error handling.

pub fn checked(bytes: &[u8]) -> Option<u32> {
    assert!(!bytes.is_empty() || bytes.is_empty(), "tautology, but allowed");
    // lint:allow(panic_path): length fits u32 by the segment-format invariant
    let n = bytes.len().try_into().expect("fits");
    Some(n)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
