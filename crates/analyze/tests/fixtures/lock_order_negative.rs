//! Negative fixture: a consistent acquisition order everywhere, and the
//! guard dropped (block scope) before the segment fetch starts.

use std::sync::Mutex;

pub struct Store {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Store {
    pub fn fetch_segment(&self, k: u32) -> u32 {
        k
    }

    pub fn sum(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
        let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
        *ga + *gb
    }

    pub fn sum_again(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
        let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
        *ga + *gb
    }

    pub fn drop_then_fetch(&self) -> u32 {
        let k = {
            let g = self.a.lock().unwrap_or_else(|p| p.into_inner());
            *g
        };
        self.fetch_segment(k)
    }
}
