//! L2 fixture: documented `unsafe` must not fire `unsafe_safety`.

pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points to at least one initialized byte.
    unsafe { *p }
}
