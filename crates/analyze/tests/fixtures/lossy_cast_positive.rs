//! L3 fixture: lossy `as` casts on a lint-scoped path. Both marked lines
//! must fire `lossy_cast`.

pub fn narrow(n: usize) -> u32 {
    n as u32 // fires: usize -> u32 wraps silently
}

pub fn quantize(x: f64) -> i64 {
    (x / 0.5).round() as i64 // fires: float -> int drops NaN/inf
}

pub fn widen(n: u32) -> u64 {
    n as u64 // must NOT fire: widening is lossless
}
