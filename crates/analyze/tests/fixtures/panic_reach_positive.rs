//! Positive fixture: a panic two hops below an entry point. Linted as
//! `crates/sim/src/fixture.rs`, which is an entry tree but *not* a
//! `panic_path` tree — only `panic_reach` should fire.

pub fn retrieve_snapshot(k: usize) -> usize {
    budget_for(k)
}

fn budget_for(k: usize) -> usize {
    decode_width(k)
}

fn decode_width(k: usize) -> usize {
    if k > 64 {
        panic!("plane width out of range: {k}");
    }
    k
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_never_count() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
