//! Positive fixture: a lock-order cycle (`a` before `b` in one function,
//! `b` before `a` in another) plus a guard held across a segment fetch.

use std::sync::Mutex;

pub struct Store {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Store {
    pub fn fetch_segment(&self, k: u32) -> u32 {
        k
    }

    pub fn swap_ab(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
        let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
        *ga + *gb
    }

    pub fn swap_ba(&self) -> u32 {
        let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
        *ga + *gb
    }

    pub fn held_across_fetch(&self) -> u32 {
        let g = self.a.lock().unwrap_or_else(|p| p.into_inner());
        self.fetch_segment(*g)
    }
}
