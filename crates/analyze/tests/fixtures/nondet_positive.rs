//! L4 fixture: nondeterminism sources in artifact-producing code. All
//! three marked lines must fire `nondeterminism`.

use std::collections::HashMap;
use std::time::SystemTime;

pub fn stamp() -> u64 {
    let t = SystemTime::now(); // fires: wall clock in artifact code
    let _ = t;
    let m: HashMap<u32, u32> = HashMap::new(); // fires twice: hash order
    m.len() as u64
}
