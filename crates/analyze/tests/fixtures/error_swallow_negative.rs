//! Negative fixture: every Result is propagated, bound, or deliberately
//! waived with a written reason.

fn persist(v: &[u8]) -> Result<(), String> {
    if v.is_empty() {
        Err("empty".to_string())
    } else {
        Ok(())
    }
}

pub fn flush_all(v: &[u8]) -> Result<(), String> {
    persist(v)?;
    let outcome = persist(v);
    outcome
}

pub fn latest(v: &[u8]) -> Option<()> {
    // `.ok()` in value position is a conversion, not a swallow.
    persist(v).ok()
}

pub fn best_effort(v: &[u8]) {
    // lint:allow(error_swallow): advisory prefetch; a miss is re-fetched on demand
    let _ = persist(v);
}
