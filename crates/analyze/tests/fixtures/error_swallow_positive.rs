//! Positive fixture: all three error-swallowing forms. Linted as
//! `crates/codec/src/fixture.rs` (a swallow path).

fn persist(v: &[u8]) -> Result<(), String> {
    if v.is_empty() {
        Err("empty".to_string())
    } else {
        Ok(())
    }
}

pub fn flush_all(v: &[u8]) {
    // Form A: `let _ =` on a fallible call.
    let _ = persist(v);
    // Form C: bare statement whose Result is dropped.
    persist(v);
}

pub fn probe(v: &[u8]) {
    // Form B: `.ok()` with the Option itself discarded.
    persist(v).ok();
}
