//! L1 fixture: panic-capable calls in library code on a lint-scoped path.
//! Every marked line must fire `panic_path`.

pub fn decode(bytes: &[u8]) -> u32 {
    let first = bytes.first().unwrap(); // fires: .unwrap()
    if *first == 0 {
        panic!("zero prefix"); // fires: panic!
    }
    let len: u32 = bytes.len().try_into().expect("fits"); // fires: .expect()
    len
}
