//! L2 fixture: `unsafe` without a `// SAFETY:` comment must fire
//! `unsafe_safety`, and `unsafe impl Send/Sync` must fire `send_sync_impl`
//! unless the file is registered in the allowlist.

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p } // fires: no SAFETY comment
}

pub struct Handle(*mut u8);

// SAFETY: the raw pointer is owned exclusively by the handle.
unsafe impl Send for Handle {} // fires send_sync_impl: not allowlisted
