//! L3 fixture: a bounded cast with an inline waiver must be reported as
//! allowed, not as a violation.

pub fn plane_shift(k: usize) -> u32 {
    // lint:allow(lossy_cast): k < 64 bit-planes by construction
    k as u32
}
