//! Negative fixture: the entry point propagates errors; the one panic in
//! the file sits in a helper no entry point can reach.

pub fn retrieve_snapshot(k: usize) -> Result<usize, String> {
    budget_for(k)
}

fn budget_for(k: usize) -> Result<usize, String> {
    if k > 64 {
        Err(format!("plane width out of range: {k}"))
    } else {
        Ok(k)
    }
}

/// Diagnostic helper, never called from an entry point.
pub fn dump_or_die(k: usize) -> usize {
    if k > 64 {
        panic!("diagnostic overflow");
    }
    k
}
