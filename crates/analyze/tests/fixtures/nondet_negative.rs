//! L4 fixture: ordered containers and seeded generators are the approved
//! alternatives — nothing here may fire `nondeterminism`.

use std::collections::BTreeMap;

pub fn deterministic(seed: u64) -> u64 {
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    m.insert(seed, seed.wrapping_mul(6364136223846793005));
    m.values().sum()
}
