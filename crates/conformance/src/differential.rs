//! Differential checks: two paths that must agree, and invariants that
//! must hold as a knob turns.
//!
//! * **Serial vs parallel bit-identity** — compressing and retrieving with
//!   one thread must produce byte-identical artifacts and bit-identical
//!   reconstructions to the multi-threaded path. The parallel data path is
//!   pure work-partitioning; any divergence is a race or a
//!   nondeterministic reduction.
//! * **Batch vs per-item equivalence** — `compress_many`/`retrieve_many`
//!   must match looping the single-item APIs.
//! * **SIMD vs scalar bit-identity** — every bit-plane kernel
//!   ([`PlaneKernel`]) must produce byte-identical artifacts and
//!   bit-identical reconstructions; the legacy scalar path is the oracle.
//!   Checked end-to-end over the full field catalogue (including the
//!   NaN-laced class) and at the codec layer over adversarial coefficient
//!   arrays (all-zero planes, alternating sign, inf/NaN-laced, subnormal,
//!   ragged counts that are not a multiple of the 64-lane tile).
//! * **Monotonicity** — under the theory planner, a tighter bound never
//!   fetches fewer bytes (exact: the greedy pick sequence is
//!   bound-independent, the bound only moves the stopping point), and more
//!   bit-planes never increase the reconstruction error *in stride-4
//!   aggregate* (per-plane max error can wiggle locally: negabinary
//!   truncation error is not pointwise monotone — value 6 = `11010₂̄`
//!   has err 6 after 0 planes but 10 after 1).

use crate::fields::{catalogue, FieldClass};
use crate::sweep::{SWEEP_LEVELS, SWEEP_PLANES};
use pmr_field::Field;
use pmr_mgard::{
    persist, CompressConfig, Compressed, DecodeOptions, ExecPolicy, LevelEncoding, PlaneKernel,
    RetrievalPlan,
};

fn compress_cfg(threads: usize) -> CompressConfig {
    CompressConfig {
        levels: SWEEP_LEVELS,
        num_planes: SWEEP_PLANES,
        threads,
        ..CompressConfig::default()
    }
}

fn bits(field: &Field) -> Vec<u64> {
    field.data().iter().map(|v| v.to_bits()).collect()
}

/// The differential corpus: every finite synthetic class (the NaN-laced
/// class is covered by the robustness checks in [`crate::sweep`]).
fn finite_corpus(seed: u64) -> Vec<Field> {
    catalogue(seed)
        .into_iter()
        .filter(|(class, _)| class.is_finite() && *class != FieldClass::Constant)
        .map(|(_, f)| f)
        .collect()
}

/// Serial and parallel execution must be bit-identical end to end.
pub fn check_serial_parallel_identity(seed: u64, failures: &mut Vec<String>) {
    for field in finite_corpus(seed) {
        let serial = Compressed::compress_with(&field, &compress_cfg(1), &ExecPolicy::serial());
        let parallel =
            Compressed::compress_with(&field, &compress_cfg(4), &ExecPolicy::with_threads(4));
        // Compare as `Result<_, String>` so a serialization failure on one
        // side also reads as a divergence instead of aborting the sweep.
        let serial_bytes = persist::to_bytes(&serial).map_err(|e| e.to_string());
        let parallel_bytes = persist::to_bytes(&parallel).map_err(|e| e.to_string());
        if serial_bytes != parallel_bytes {
            failures.push(format!(
                "differential: {} serial vs parallel compression artifacts differ",
                field.name()
            ));
            continue;
        }
        for rel in [1e-2, 1e-4] {
            let plan = serial.plan_theory(serial.absolute_bound(rel));
            let a = serial
                .decode_plan(&plan, &DecodeOptions::with_exec(ExecPolicy::serial()))
                .expect("theory plan matches its artifact");
            let b = parallel
                .decode_plan(&plan, &DecodeOptions::with_exec(ExecPolicy::with_threads(4)))
                .expect("theory plan matches its artifact");
            if bits(&a) != bits(&b) {
                failures.push(format!(
                    "differential: {} serial vs parallel retrieval differs at rel {rel}",
                    field.name()
                ));
            }
        }
    }
}

/// `compress_many` / `retrieve_many` must equal per-item loops.
pub fn check_batch_equivalence(seed: u64, failures: &mut Vec<String>) {
    let fields = finite_corpus(seed);
    let cfg = compress_cfg(0);
    let batch = Compressed::compress_many(&fields, &cfg);
    let single: Vec<Compressed> = fields.iter().map(|f| Compressed::compress(f, &cfg)).collect();
    for (f, (b, s)) in fields.iter().zip(batch.iter().zip(&single)) {
        if persist::to_bytes(b).map_err(|e| e.to_string())
            != persist::to_bytes(s).map_err(|e| e.to_string())
        {
            failures.push(format!(
                "differential: {} compress_many differs from per-item compress",
                f.name()
            ));
        }
    }

    let plans: Vec<RetrievalPlan> =
        single.iter().map(|c| c.plan_theory(c.absolute_bound(1e-3))).collect();
    let items: Vec<(&Compressed, &RetrievalPlan)> = single.iter().zip(&plans).collect();
    let batch_out = pmr_mgard::retrieve_many(&items);
    for (f, ((c, plan), out)) in fields.iter().zip(items.iter().zip(&batch_out)) {
        let one = c.retrieve(plan);
        if bits(&one) != bits(out) {
            failures.push(format!(
                "differential: {} retrieve_many differs from per-item retrieve",
                f.name()
            ));
        }
    }
}

/// Every bit-plane kernel must be bit-identical to the legacy scalar path.
///
/// End-to-end: compressing the full catalogue (NaN-laced included) under
/// each explicit kernel must yield byte-identical artifacts and
/// bit-identical retrievals. Codec-level: `LevelEncoding` over adversarial
/// coefficient arrays must match the scalar oracle exactly — serialized
/// bytes, error rows, and every decode prefix.
pub fn check_kernel_identity(seed: u64, failures: &mut Vec<String>) {
    let kernels = [PlaneKernel::Auto, PlaneKernel::Simd, PlaneKernel::Swar];
    let scalar_exec = ExecPolicy::serial().with_kernel(PlaneKernel::Scalar);

    // End-to-end over the catalogue — kernel invariance must hold on
    // non-finite inputs too, so no `is_finite` filter here.
    for (_, field) in catalogue(seed) {
        let cfg = compress_cfg(1);
        let oracle = Compressed::compress_with(&field, &cfg, &scalar_exec);
        let oracle_bytes = persist::to_bytes(&oracle).map_err(|e| e.to_string());
        let plan = oracle.plan_theory(oracle.absolute_bound(1e-4));
        let oracle_out = oracle
            .decode_plan(&plan, &DecodeOptions::with_exec(scalar_exec))
            .expect("theory plan matches its artifact");
        for kernel in kernels {
            let exec = ExecPolicy::serial().with_kernel(kernel);
            let tiled = Compressed::compress_with(&field, &cfg, &exec);
            if persist::to_bytes(&tiled).map_err(|e| e.to_string()) != oracle_bytes {
                failures.push(format!(
                    "differential: {} {} kernel artifact differs from scalar oracle",
                    field.name(),
                    kernel.name()
                ));
                continue;
            }
            let out = tiled
                .decode_plan(&plan, &DecodeOptions::with_exec(exec))
                .expect("theory plan matches its artifact");
            if bits(&out) != bits(&oracle_out) {
                failures.push(format!(
                    "differential: {} {} kernel retrieval differs from scalar oracle",
                    field.name(),
                    kernel.name()
                ));
            }
        }
    }

    // Codec-level adversarial corpus. 200 is deliberately not a multiple of
    // the 64-lane tile so every case also exercises the ragged tail.
    let adversarial: Vec<(&str, Vec<f64>)> = vec![
        ("all-zero", vec![0.0; 200]),
        ("alternating-sign", (0..200).map(|i| if i % 2 == 0 { 1.5 } else { -1.5 }).collect()),
        ("tiny-uniform", vec![f64::MIN_POSITIVE; 200]),
        ("subnormal", (0..200).map(|i| f64::from_bits(1 + (i as u64 % 7))).collect()),
        (
            "nan-laced",
            (0..200).map(|i| if i % 37 == 0 { f64::NAN } else { (i as f64).sin() }).collect(),
        ),
        (
            "inf-laced",
            (0..200)
                .map(|i| if i % 53 == 0 { f64::INFINITY } else { (i as f64).cos() * 8.0 })
                .collect(),
        ),
        ("single", vec![3.75]),
        ("tile-aligned", (0..128).map(|i| (i as f64) * 0.375 - 20.0).collect()),
    ];
    for (name, coeffs) in &adversarial {
        for planes in [3, 17, SWEEP_PLANES] {
            let oracle = LevelEncoding::encode_with(coeffs, planes, &scalar_exec);
            let obytes = oracle.to_bytes().map_err(|e| e.to_string());
            for kernel in kernels {
                let exec = ExecPolicy::serial().with_kernel(kernel);
                let enc = LevelEncoding::encode_with(coeffs, planes, &exec);
                if enc.to_bytes().map_err(|e| e.to_string()) != obytes {
                    failures.push(format!(
                        "differential: adversarial {name}/{planes} {} encode differs from scalar",
                        kernel.name()
                    ));
                    continue;
                }
                for b in [0, 1, planes / 2, planes] {
                    let got: Vec<u64> =
                        enc.decode_with(b, &exec).iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u64> =
                        oracle.decode_with(b, &scalar_exec).iter().map(|v| v.to_bits()).collect();
                    if got != want {
                        failures.push(format!(
                            "differential: adversarial {name}/{planes} {} decode({b}) differs",
                            kernel.name()
                        ));
                    }
                }
            }
        }
    }
}

/// Monotonicity invariants under the theory planner.
pub fn check_monotonicity(seed: u64, failures: &mut Vec<String>) {
    for field in finite_corpus(seed) {
        let c = Compressed::compress(&field, &compress_cfg(0));

        // Bytes are non-decreasing as the bound tightens — exact.
        let rels = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6];
        let mut last_bytes = 0u64;
        for rel in rels {
            let plan = c.plan_theory(c.absolute_bound(rel));
            let bytes = c.retrieved_bytes(&plan);
            if bytes < last_bytes {
                failures.push(format!(
                    "differential: {} bytes decreased when tightening to rel {rel}",
                    field.name()
                ));
            }
            last_bytes = bytes;
        }

        // More planes → error non-increasing, checked at stride 4 with a
        // small slack for the local negabinary wiggle.
        let mut last_err = f64::INFINITY;
        for planes in (0..=SWEEP_PLANES).step_by(4) {
            let plan = RetrievalPlan::from_planes(vec![planes; c.num_levels()]);
            let out = c.decode_plan(&plan, &DecodeOptions::default()).expect("uniform plan");
            let achieved = pmr_field::error::max_abs_error(field.data(), out.data());
            if achieved > last_err * 1.05 + 1e-12 {
                failures.push(format!(
                    "differential: {} error rose from {last_err:.3e} to {:.3e} at {planes} planes",
                    field.name(),
                    achieved
                ));
            }
            last_err = achieved;
        }
    }
}

/// Run every differential check over the seeded corpus; returns the list
/// of failures (empty = pass).
pub fn run_differential(seed: u64) -> Vec<String> {
    let mut failures = Vec::new();
    check_serial_parallel_identity(seed, &mut failures);
    check_kernel_identity(seed, &mut failures);
    check_batch_equivalence(seed, &mut failures);
    check_monotonicity(seed, &mut failures);
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_checks_pass_on_seeded_corpus() {
        let failures = run_differential(11);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
