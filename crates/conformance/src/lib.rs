//! Error-bound conformance and differential testing for the progressive
//! retrieval pipeline.
//!
//! The paper's entire value proposition is an error contract: a retrieval
//! planned for bound `e` must reconstruct the field to within `e` (Theory,
//! provably) or close to it at a much smaller retrieval size (the learned
//! strategies, statistically). This crate audits that contract end to end:
//!
//! * [`fields`] — a seeded corpus of synthetic fields (smooth, turbulent,
//!   discontinuous, constant, NaN/inf-laced) in 1-D/2-D/3-D plus short
//!   Gray–Scott and WarpX runs from `pmr-sim`.
//! * [`sweep`] — every retrieval strategy × a tolerance grid over that
//!   corpus, asserting Theory's soundness on claimed points (hard failure)
//!   and auditing the learned strategies' violation rates and overshoot
//!   histograms against a configurable [`sweep::ViolationBudget`].
//! * [`differential`] — serial-vs-parallel bit-identity, batch-vs-per-item
//!   equivalence, and monotonicity invariants (tighter bound ⇒ no fewer
//!   bytes; more planes ⇒ no more error in stride aggregate).
//! * [`faults`] — a seeded fault grid (schedules × seeds × tolerances over
//!   the corpus) asserting the degraded-retrieval contract: no panic, and
//!   the reconstruction always satisfies the bound the reader reports.
//! * [`golden`] — small checked-in compressed blobs whose bytes, plans,
//!   fetch sizes and achieved-error *bits* must stay identical until the
//!   format intentionally changes.
//! * [`json`] — the dependency-free JSON writer/parser backing the golden
//!   index and the machine-readable conformance report.
//!
//! `pmrtool conformance` drives all of it from the command line; the CI
//! workflow runs the quick grid per PR and the full 81-bound grid on a
//! schedule.

pub mod differential;
pub mod faults;
pub mod fields;
pub mod golden;
pub mod json;
pub mod sweep;

pub use faults::{fault_report_json, run_fault_grid, FaultGridConfig, FaultReport, FaultSchedule};
pub use fields::{catalogue, sim_slices, synthetic, FieldClass};
pub use golden::{regenerate as regenerate_golden, verify as verify_golden};
pub use sweep::{
    run_sweep, ConformanceReport, StrategyReport, SweepConfig, ToleranceGrid, ViolationBudget,
};

use json::Json;

/// Run the conformance sweep *and* the differential checks, folding the
/// differential failures into the sweep report. This is what the CLI and
/// the CI job execute.
pub fn run_all(cfg: &SweepConfig) -> ConformanceReport {
    let mut report = run_sweep(cfg);
    report.failures.extend(differential::run_differential(cfg.seed));
    report
}

/// The machine-readable report the scheduled CI job uploads.
pub fn report_json(report: &ConformanceReport, grid_name: &str) -> String {
    Json::obj(vec![("grid", Json::str(grid_name)), ("report", report.to_json())]).to_pretty()
}
