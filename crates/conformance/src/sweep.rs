//! The error-bound conformance sweep.
//!
//! Runs every retrieval strategy over the seeded corpus across a tolerance
//! grid and audits what each strategy promised against what the
//! reconstruction achieved:
//!
//! * **Theory** is provably sound: on every *claimed* point (its own
//!   estimate meets the bound) the achieved error must not exceed the
//!   bound. Any such violation is a hard failure.
//! * **Learned strategies** (D-MGARD, E-MGARD, combined) trade the proof
//!   for retrieval size; the sweep records their violation rates and
//!   overshoot histograms and fails only when a configurable
//!   [`ViolationBudget`] is exceeded.
//!
//! Bounds below the quantization floor are unreachable by *any* strategy —
//! a property of the encoding, not of the planner — so learned violation
//! rates are measured over the points Theory itself could reach.
//!
//! Non-finite fields are excluded from error conformance entirely: a NaN
//! or ±inf value contaminates multilevel coefficients across levels, so no
//! error bound over the finite sites is meaningful (the policy is pinned in
//! `pmr_mgard::bitplane`). The NaN-laced class instead gets robustness
//! checks: compression never panics, the reconstruction is always finite,
//! and artifacts survive a byte roundtrip.

use crate::fields::{catalogue, finite_value_range, sim_slices, FieldClass};
use crate::json::Json;
use pmr_core::features::retrieval_features;
use pmr_core::{
    collect_records_many, sweep_strategy, AnyRetriever, Combined, DMgard, DMgardConfig, EMgard,
    EMgardConfig, Retriever, SweepPoint, Theory,
};
use pmr_field::Field;
use pmr_mgard::{persist, CompressConfig, Compressed};

/// Levels every sweep artifact is compressed with. Shared across the whole
/// corpus because the chained D-MGARD predictor requires one level count.
pub const SWEEP_LEVELS: usize = 4;
/// Bit-planes per level for every sweep artifact.
pub const SWEEP_PLANES: u32 = 16;

/// The relative error bounds a sweep visits.
#[derive(Debug, Clone)]
pub struct ToleranceGrid {
    pub rel_bounds: Vec<f64>,
}

impl ToleranceGrid {
    /// Twelve log-spaced bounds in `[1e-6, 1e-1]` — the PR-gate grid.
    pub fn quick() -> Self {
        let rel_bounds = (0..12).map(|i| 10f64.powf(-1.0 - 5.0 * i as f64 / 11.0)).collect();
        ToleranceGrid { rel_bounds }
    }

    /// The paper's 81 relative bounds — the scheduled full grid.
    pub fn full() -> Self {
        ToleranceGrid { rel_bounds: pmr_core::standard_rel_bounds() }
    }
}

/// Acceptable slack for the learned strategies, measured over the points
/// Theory could reach. Defaults were calibrated empirically on the seeded
/// corpus (seed 1, quick grid) with headroom for seed drift; the scheduled
/// full-grid CI run reports the observed rates so regressions surface as
/// diffs long before they breach the budget.
#[derive(Debug, Clone)]
pub struct ViolationBudget {
    /// Max violation rate for D-MGARD (plane prediction, no estimator).
    pub dmgard_rate: f64,
    /// Max violation rate for E-MGARD (learned constants + greedy).
    pub emgard_rate: f64,
    /// Max violation rate for the combined retriever.
    pub combined_rate: f64,
    /// Max `achieved / bound` any learned strategy may reach on a
    /// reachable point.
    pub max_overshoot: f64,
}

impl Default for ViolationBudget {
    fn default() -> Self {
        // Observed on seed 1 / quick grid: D-MGARD 0.16, E-MGARD 0.22,
        // DE-MGARD 0.31, max overshoot 2.7. Budgets sit ~1.5-2x above so
        // they catch regressions, not seed noise.
        ViolationBudget {
            dmgard_rate: 0.35,
            emgard_rate: 0.40,
            combined_rate: 0.45,
            max_overshoot: 16.0,
        }
    }
}

/// Everything one conformance run needs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub seed: u64,
    pub grid: ToleranceGrid,
    pub budget: ViolationBudget,
    /// Also sweep the Gray–Scott / WarpX slices from `pmr-sim`.
    pub include_sim: bool,
}

impl SweepConfig {
    pub fn quick() -> Self {
        SweepConfig {
            seed: 1,
            grid: ToleranceGrid::quick(),
            budget: ViolationBudget::default(),
            include_sim: true,
        }
    }

    pub fn full() -> Self {
        SweepConfig { grid: ToleranceGrid::full(), ..SweepConfig::quick() }
    }
}

/// Per-strategy aggregate over all sweep points.
#[derive(Debug, Clone)]
pub struct StrategyReport {
    pub strategy: String,
    /// Total points swept.
    pub points: usize,
    /// Points where the strategy's own estimator claimed the bound.
    pub claimed: usize,
    /// Points Theory could reach (the denominator for violation rates).
    pub reachable: usize,
    /// Reachable points whose achieved error exceeded the bound.
    pub violations: usize,
    /// Overshoot histogram over all points: `≤1`, `(1,1.5]`, `(1.5,2]`,
    /// `(2,4]`, `(4,8]`, `>8`.
    pub overshoot_hist: [usize; 6],
    /// Largest `achieved / bound` seen on a reachable point.
    pub max_overshoot: f64,
    /// Mean fraction of the artifact fetched.
    pub mean_fraction_fetched: f64,
}

impl StrategyReport {
    /// Violations per reachable point.
    pub fn violation_rate(&self) -> f64 {
        if self.reachable == 0 {
            0.0
        } else {
            self.violations as f64 / self.reachable as f64
        }
    }

    fn from_points(strategy: &str, points: &[SweepPoint], reachable: &[bool]) -> Self {
        let mut report = StrategyReport {
            strategy: strategy.to_string(),
            points: points.len(),
            claimed: 0,
            reachable: 0,
            violations: 0,
            overshoot_hist: [0; 6],
            max_overshoot: 0.0,
            mean_fraction_fetched: 0.0,
        };
        let mut fetched = 0.0;
        for (p, &reach) in points.iter().zip(reachable) {
            let o = p.overshoot();
            let bucket = match o {
                o if o <= 1.0 => 0,
                o if o <= 1.5 => 1,
                o if o <= 2.0 => 2,
                o if o <= 4.0 => 3,
                o if o <= 8.0 => 4,
                _ => 5,
            };
            report.overshoot_hist[bucket] += 1;
            fetched += p.fraction_fetched();
            if p.claimed() {
                report.claimed += 1;
            }
            if reach {
                report.reachable += 1;
                if p.violated() {
                    report.violations += 1;
                }
                report.max_overshoot = report.max_overshoot.max(o);
            }
        }
        if !points.is_empty() {
            report.mean_fraction_fetched = fetched / points.len() as f64;
        }
        report
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("strategy", Json::str(&self.strategy)),
            ("points", Json::Num(self.points as f64)),
            ("claimed", Json::Num(self.claimed as f64)),
            ("reachable", Json::Num(self.reachable as f64)),
            ("violations", Json::Num(self.violations as f64)),
            ("violation_rate", Json::Num(self.violation_rate())),
            (
                "overshoot_hist",
                Json::Arr(self.overshoot_hist.iter().map(|&n| Json::Num(n as f64)).collect()),
            ),
            ("max_overshoot", Json::Num(self.max_overshoot)),
            ("mean_fraction_fetched", Json::Num(self.mean_fraction_fetched)),
        ])
    }
}

/// The outcome of a conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    pub strategies: Vec<StrategyReport>,
    /// Human-readable descriptions of every failed check; empty = pass.
    pub failures: Vec<String>,
    /// Artifacts swept (for the report header).
    pub artifacts: usize,
    /// Bounds per artifact.
    pub bounds: usize,
}

impl ConformanceReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// A terminal-friendly summary table plus the failure list.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "conformance sweep: {} artifacts x {} bounds\n",
            self.artifacts, self.bounds
        ));
        out.push_str("strategy    points  claimed  reach  viol   rate   max-over  mean-fetch\n");
        for s in &self.strategies {
            out.push_str(&format!(
                "{:<11} {:>6}  {:>7}  {:>5}  {:>4}  {:>5.3}  {:>8.2}  {:>10.3}\n",
                s.strategy,
                s.points,
                s.claimed,
                s.reachable,
                s.violations,
                s.violation_rate(),
                s.max_overshoot,
                s.mean_fraction_fetched,
            ));
        }
        if self.failures.is_empty() {
            out.push_str("PASS: all conformance checks held\n");
        } else {
            out.push_str(&format!("FAIL: {} check(s) violated\n", self.failures.len()));
            for f in &self.failures {
                out.push_str(&format!("  - {f}\n"));
            }
        }
        out
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("artifacts", Json::Num(self.artifacts as f64)),
            ("bounds", Json::Num(self.bounds as f64)),
            ("passed", Json::Bool(self.passed())),
            (
                "strategies",
                Json::Arr(self.strategies.iter().map(StrategyReport::to_json).collect()),
            ),
            ("failures", Json::Arr(self.failures.iter().map(Json::str).collect())),
        ])
    }
}

/// Bound scale for a field: its value range, falling back to the largest
/// finite magnitude for constant fields (range 0) so relative bounds stay
/// meaningful.
fn bound_scale(field: &Field) -> f64 {
    let range = finite_value_range(field);
    if range > 0.0 {
        return range;
    }
    let max_mag =
        field.data().iter().filter(|v| v.is_finite()).fold(0.0f64, |m, &v| m.max(v.abs()));
    if max_mag > 0.0 {
        max_mag
    } else {
        1.0
    }
}

struct SweepItem {
    class: Option<FieldClass>,
    field: Field,
    compressed: Compressed,
    features: Vec<f32>,
}

impl SweepItem {
    /// Learned retrievers train and sweep only on the classes with full
    /// multi-scale structure; constant fields have degenerate features.
    fn trainable(&self) -> bool {
        match self.class {
            None => true, // sim slices
            Some(c) => c.is_finite() && !matches!(c, FieldClass::Constant),
        }
    }
}

fn sweep_corpus(cfg: &SweepConfig) -> (Vec<SweepItem>, Vec<Field>) {
    let compress_cfg = CompressConfig {
        levels: SWEEP_LEVELS,
        num_planes: SWEEP_PLANES,
        ..CompressConfig::default()
    };
    let mut items = Vec::new();
    let mut nan_laced = Vec::new();
    let mut fields: Vec<(Option<FieldClass>, Field)> =
        catalogue(cfg.seed).into_iter().map(|(class, field)| (Some(class), field)).collect();
    if cfg.include_sim {
        fields.extend(sim_slices().into_iter().map(|f| (None, f)));
    }
    for (class, field) in fields {
        if class == Some(FieldClass::NanLaced) {
            nan_laced.push(field);
            continue;
        }
        let compressed = Compressed::compress(&field, &compress_cfg);
        assert_eq!(
            compressed.num_levels(),
            SWEEP_LEVELS,
            "corpus shape {:?} does not support {SWEEP_LEVELS} levels",
            field.shape()
        );
        let features = retrieval_features(&field, &compressed);
        items.push(SweepItem { class, field, compressed, features });
    }
    (items, nan_laced)
}

/// Train the learned retrievers on the trainable part of the corpus.
fn train_retrievers(items: &[SweepItem]) -> (DMgard, EMgard) {
    let train_items: Vec<(&Field, &Compressed)> =
        items.iter().filter(|i| i.trainable()).map(|i| (&i.field, &i.compressed)).collect();
    assert!(!train_items.is_empty(), "no trainable artifacts in corpus");

    // Every third of the paper's 81 bounds: enough coverage to train on
    // without tripling the sweep's runtime.
    let train_bounds: Vec<f64> = pmr_core::standard_rel_bounds().into_iter().step_by(3).collect();
    let records: Vec<_> =
        collect_records_many(&train_items, &train_bounds).into_iter().flatten().collect();
    let d_cfg = DMgardConfig {
        hidden: vec![24, 24],
        train: pmr_nn_train_config(),
        ..DMgardConfig::default()
    };
    let (dmgard, _) = DMgard::train(&records, SWEEP_LEVELS, SWEEP_PLANES, &d_cfg);

    let e_cfg = EMgardConfig {
        hidden: vec![32, 8],
        epochs: 60,
        samples_per_artifact: 16,
        ..EMgardConfig::default()
    };
    let samples: Vec<_> = train_items
        .iter()
        .enumerate()
        .flat_map(|(i, (f, c))| pmr_core::emgard::build_samples(f, c, &e_cfg, 100 + i as u64))
        .collect();
    let (emgard, _) = EMgard::train(&samples, &e_cfg);
    (dmgard, emgard)
}

fn pmr_nn_train_config() -> pmr_nn::TrainConfig {
    pmr_nn::TrainConfig { epochs: 60, batch_size: 32, lr: 3e-3, ..Default::default() }
}

/// Robustness checks for the non-finite (NaN/inf-laced) fields: these are
/// excluded from error conformance — see the module docs — but must never
/// panic, must reconstruct to finite values, and must survive a byte
/// roundtrip.
fn check_nan_robustness(fields: &[Field], failures: &mut Vec<String>) {
    let compress_cfg = CompressConfig {
        levels: SWEEP_LEVELS,
        num_planes: SWEEP_PLANES,
        ..CompressConfig::default()
    };
    for field in fields {
        let c = Compressed::compress(field, &compress_cfg);
        let full = c.retrieve(&c.plan_full());
        if !full.data().iter().all(|v| v.is_finite()) {
            failures.push(format!(
                "nan-robustness: {} reconstruction contains non-finite values",
                field.name()
            ));
        }
        let bytes = match persist::to_bytes(&c) {
            Ok(b) => b,
            Err(e) => {
                failures.push(format!(
                    "nan-robustness: {} artifact failed to serialize: {e}",
                    field.name()
                ));
                continue;
            }
        };
        match persist::from_bytes(&bytes) {
            Err(e) => failures.push(format!(
                "nan-robustness: {} artifact failed byte roundtrip: {e}",
                field.name()
            )),
            Ok(back) => {
                if persist::to_bytes(&back).ok().as_ref() != Some(&bytes) {
                    failures
                        .push(format!("nan-robustness: {} artifact not byte-stable", field.name()));
                }
            }
        }
    }
}

/// Run the full conformance sweep: build the corpus, train the learned
/// retrievers, sweep every strategy over the tolerance grid, and audit the
/// results against the soundness contract and the violation budget.
pub fn run_sweep(cfg: &SweepConfig) -> ConformanceReport {
    let (items, nan_laced) = sweep_corpus(cfg);
    let (dmgard, emgard) = train_retrievers(&items);
    let combined = Combined { dmgard: dmgard.clone(), emgard: emgard.clone() };
    let learned: Vec<AnyRetriever> = vec![
        AnyRetriever::DMgard(dmgard),
        AnyRetriever::EMgard(emgard),
        AnyRetriever::Combined(combined),
    ];

    let mut failures = Vec::new();
    let mut theory_points: Vec<SweepPoint> = Vec::new();
    let mut theory_reachable: Vec<bool> = Vec::new();
    let mut learned_points: Vec<Vec<SweepPoint>> = vec![Vec::new(); learned.len()];
    let mut learned_reachable: Vec<Vec<bool>> = vec![Vec::new(); learned.len()];

    for item in &items {
        let abs_bounds: Vec<f64> = {
            let scale = bound_scale(&item.field);
            cfg.grid.rel_bounds.iter().map(|r| r * scale).collect()
        };
        let points = match sweep_strategy(
            &item.field,
            &item.compressed,
            &item.features,
            &Theory,
            &abs_bounds,
        ) {
            Ok(pts) => pts,
            Err(e) => {
                // A plan/artifact mismatch is itself a conformance failure.
                failures.push(format!(
                    "theory sweep failed: {} t{}: {e}",
                    item.field.name(),
                    item.field.timestep()
                ));
                continue;
            }
        };
        // Theory's own claim is the reachability oracle for this artifact.
        let reachable: Vec<bool> = points.iter().map(SweepPoint::claimed).collect();
        for p in &points {
            if p.claimed() && p.violated() {
                failures.push(format!(
                    "theory violation: {} t{} bound {:.3e}: achieved {:.3e} (estimated {:.3e})",
                    p.field_name, p.timestep, p.abs_bound, p.achieved_err, p.estimated_err
                ));
            }
        }
        if item.trainable() {
            for (i, retriever) in learned.iter().enumerate() {
                match sweep_strategy(
                    &item.field,
                    &item.compressed,
                    &item.features,
                    retriever,
                    &abs_bounds,
                ) {
                    Ok(pts) => {
                        learned_reachable[i].extend(&reachable);
                        learned_points[i].extend(pts);
                    }
                    Err(e) => failures.push(format!(
                        "{} sweep failed: {} t{}: {e}",
                        retriever.name(),
                        item.field.name(),
                        item.field.timestep()
                    )),
                }
            }
        }
        theory_points.extend(points);
        theory_reachable.extend(reachable);
    }

    check_nan_robustness(&nan_laced, &mut failures);

    let mut strategies =
        vec![StrategyReport::from_points("MGARD", &theory_points, &theory_reachable)];
    for (i, retriever) in learned.iter().enumerate() {
        let report = StrategyReport::from_points(
            retriever.name(),
            &learned_points[i],
            &learned_reachable[i],
        );
        let rate_budget = match retriever.name() {
            "D-MGARD" => cfg.budget.dmgard_rate,
            "E-MGARD" => cfg.budget.emgard_rate,
            _ => cfg.budget.combined_rate,
        };
        if report.violation_rate() > rate_budget {
            failures.push(format!(
                "budget: {} violation rate {:.3} exceeds budget {:.3}",
                report.strategy,
                report.violation_rate(),
                rate_budget
            ));
        }
        if report.max_overshoot > cfg.budget.max_overshoot {
            failures.push(format!(
                "budget: {} max overshoot {:.1} exceeds budget {:.1}",
                report.strategy, report.max_overshoot, cfg.budget.max_overshoot
            ));
        }
        strategies.push(report);
    }

    ConformanceReport {
        strategies,
        failures,
        artifacts: items.len(),
        bounds: cfg.grid.rel_bounds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_grids_are_well_formed() {
        let quick = ToleranceGrid::quick();
        assert_eq!(quick.rel_bounds.len(), 12);
        assert!(quick.rel_bounds.windows(2).all(|w| w[1] < w[0]));
        assert!((quick.rel_bounds[0] - 1e-1).abs() < 1e-12);
        assert!((quick.rel_bounds[11] - 1e-6).abs() < 1e-16);
        assert_eq!(ToleranceGrid::full().rel_bounds.len(), 81);
    }

    #[test]
    fn bound_scale_handles_degenerate_fields() {
        use pmr_field::Shape;
        let constant = Field::new("c", 0, Shape::d1(8), vec![-3.5; 8]);
        assert_eq!(bound_scale(&constant), 3.5);
        let zero = Field::new("z", 0, Shape::d1(8), vec![0.0; 8]);
        assert_eq!(bound_scale(&zero), 1.0);
        let normal = Field::new("n", 0, Shape::d1(4), vec![0.0, 1.0, 2.0, 4.0]);
        assert_eq!(bound_scale(&normal), 4.0);
    }
}
