//! The seeded field corpus the conformance harness sweeps.
//!
//! Five synthetic classes — smooth, turbulent, discontinuous, constant and
//! NaN/inf-laced — in one, two and three dimensions, plus short Gray–Scott
//! and WarpX runs from `pmr-sim`. Every generator is a pure function of
//! `(class, shape, seed)` driven by an xorshift counter, so the corpus is
//! reproducible across runs, platforms, and CI machines.

use pmr_field::{Field, Shape};
use pmr_sim::{warpx_field, GrayScott, GrayScottConfig, GsSpecies, WarpXConfig, WarpXField};

/// One of the synthetic field classes of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldClass {
    /// Slowly varying trigonometric waves — the best case for progressive
    /// coding (high planes carry nearly everything).
    Smooth,
    /// Multi-octave noise — energy at every scale, the adversarial case for
    /// the learned retrievers.
    Turbulent,
    /// A smooth background cut by an axis-aligned jump — exercises the
    /// transform's behaviour at sharp features.
    Discontinuous,
    /// A single constant value — zero detail coefficients, zero value
    /// range; degenerate bound conversion.
    Constant,
    /// A smooth field with NaN and ±inf injected at seeded sites — pins the
    /// non-finite policy documented in `pmr_mgard::bitplane`.
    NanLaced,
}

impl FieldClass {
    /// Every class, in a fixed order.
    pub fn all() -> [FieldClass; 5] {
        [
            FieldClass::Smooth,
            FieldClass::Turbulent,
            FieldClass::Discontinuous,
            FieldClass::Constant,
            FieldClass::NanLaced,
        ]
    }

    /// Short name used in field names and reports.
    pub fn label(self) -> &'static str {
        match self {
            FieldClass::Smooth => "smooth",
            FieldClass::Turbulent => "turbulent",
            FieldClass::Discontinuous => "discontinuous",
            FieldClass::Constant => "constant",
            FieldClass::NanLaced => "nan-laced",
        }
    }

    /// Whether every value of the class is finite. Non-finite classes are
    /// swept with Theory only (achieved error is measured over the finite
    /// sites; the learned retrievers are never trained on NaN features).
    pub fn is_finite(self) -> bool {
        !matches!(self, FieldClass::NanLaced)
    }
}

/// 64-bit xorshift step — the corpus's only randomness source.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Uniform draw in `[0, 1)` from the xorshift stream.
fn unit(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Generate one synthetic field of `class` over `shape`, reproducibly from
/// `seed`. The timestep is folded into the seed so snapshot series differ.
pub fn synthetic(class: FieldClass, shape: Shape, seed: u64, timestep: usize) -> Field {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(timestep as u64)
        .wrapping_mul(0x2545F4914F6CDD1D)
        | 1;
    let name = format!("{}-{}d", class.label(), shape_dims(shape));
    let n = shape.len();
    let data: Vec<f64> = match class {
        FieldClass::Smooth => {
            let fx = 0.05 + unit(&mut state) * 0.25;
            let fy = 0.05 + unit(&mut state) * 0.25;
            let fz = 0.05 + unit(&mut state) * 0.25;
            let phase = unit(&mut state) * std::f64::consts::TAU;
            grid_map(shape, |x, y, z| {
                (x as f64 * fx + phase).sin() * 2.0
                    + (y as f64 * fy).cos()
                    + (z as f64 * fz + phase * 0.5).sin() * 0.5
            })
        }
        FieldClass::Turbulent => {
            let base_fx = 0.1 + unit(&mut state) * 0.3;
            let base_fy = 0.1 + unit(&mut state) * 0.3;
            // Smooth large-scale octave plus pointwise noise octaves whose
            // amplitudes fall off by 1/2 per octave.
            let mut noise_state = xorshift(&mut state) | 1;
            grid_map(shape, |x, y, z| {
                let coarse =
                    (x as f64 * base_fx).sin() + (y as f64 * base_fy + z as f64 * 0.07).cos();
                let fine = (unit(&mut noise_state) - 0.5) * 1.0
                    + (unit(&mut noise_state) - 0.5) * 0.5
                    + (unit(&mut noise_state) - 0.5) * 0.25;
                coarse + fine
            })
        }
        FieldClass::Discontinuous => {
            let cut = (shape.dim(0) as f64 * (0.3 + unit(&mut state) * 0.4)) as usize;
            let jump = 2.0 + unit(&mut state) * 6.0;
            let fy = 0.05 + unit(&mut state) * 0.2;
            grid_map(shape, |x, y, z| {
                let base = (y as f64 * fy).sin() + z as f64 * 0.01;
                if x >= cut {
                    base + jump
                } else {
                    base
                }
            })
        }
        FieldClass::Constant => {
            let value = unit(&mut state) * 10.0 - 5.0;
            vec![value; n]
        }
        FieldClass::NanLaced => {
            let fx = 0.05 + unit(&mut state) * 0.25;
            let fy = 0.05 + unit(&mut state) * 0.25;
            let mut data = grid_map(shape, |x, y, z| {
                (x as f64 * fx).sin() * 3.0 + (y as f64 * fy).cos() + z as f64 * 0.02
            });
            // Lace ~3% of the sites with NaN and one site each with ±inf.
            let laced = (n / 32).max(1);
            for _ in 0..laced {
                let i = (xorshift(&mut state) as usize) % n;
                data[i] = f64::NAN;
            }
            data[(xorshift(&mut state) as usize) % n] = f64::INFINITY;
            data[(xorshift(&mut state) as usize) % n] = f64::NEG_INFINITY;
            data
        }
    };
    Field::new(name, timestep, shape, data)
}

/// Evaluate `f` at every grid point of `shape` in canonical layout order.
fn grid_map(shape: Shape, mut f: impl FnMut(usize, usize, usize) -> f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(shape.len());
    for z in 0..shape.dim(2) {
        for y in 0..shape.dim(1) {
            for x in 0..shape.dim(0) {
                out.push(f(x, y, z));
            }
        }
    }
    out
}

fn shape_dims(shape: Shape) -> usize {
    (0..3).filter(|&d| shape.dim(d) > 1).count().max(1)
}

/// The 1-D/2-D/3-D shapes of the corpus. All of them support at least four
/// decomposition levels, so every artifact in a sweep shares its level
/// count — a requirement of the chained D-MGARD predictor.
pub fn corpus_shapes() -> [Shape; 3] {
    [Shape::d1(65), Shape::d2(17, 13), Shape::d3(9, 9, 9)]
}

/// The full synthetic corpus: every class × every dimensionality.
pub fn catalogue(seed: u64) -> Vec<(FieldClass, Field)> {
    let mut out = Vec::new();
    for class in FieldClass::all() {
        for (d, shape) in corpus_shapes().into_iter().enumerate() {
            out.push((class, synthetic(class, shape, seed.wrapping_add(d as u64), d)));
        }
    }
    out
}

/// Short application runs from `pmr-sim`: one Gray–Scott species snapshot
/// and one synthetic WarpX slice, at corpus-friendly sizes.
pub fn sim_slices() -> Vec<Field> {
    let gs_cfg = GrayScottConfig { size: 12, snapshots: 2, ..Default::default() };
    let mut gs = GrayScott::new(gs_cfg);
    gs.advance_snapshot();
    let gs_field = gs.snapshot(GsSpecies::V, 1);

    let wx_cfg = WarpXConfig { size: 16, snapshots: 2, ..Default::default() };
    let wx = warpx_field(&wx_cfg, WarpXField::Jx, 1);
    vec![gs_field, wx]
}

/// `max - min` over the finite values only (0 when none are finite).
/// The bound scale for non-finite classes, where `Field::value_range`
/// would itself be NaN.
pub fn finite_value_range(field: &Field) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in field.data() {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if hi >= lo {
        hi - lo
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_deterministic() {
        let a = catalogue(7);
        let b = catalogue(7);
        assert_eq!(a.len(), 15);
        for ((ca, fa), (cb, fb)) in a.iter().zip(&b) {
            assert_eq!(ca, cb);
            assert_eq!(
                fa.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fb.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
        let c = catalogue(8);
        assert!(a.iter().zip(&c).any(|((_, fa), (_, fc))| fa.data() != fc.data()));
    }

    #[test]
    fn classes_have_expected_structure() {
        for (class, field) in catalogue(3) {
            match class {
                FieldClass::Constant => {
                    assert!(field.data().windows(2).all(|w| w[0] == w[1]));
                }
                FieldClass::NanLaced => {
                    assert!(field.data().iter().any(|v| v.is_nan()));
                    assert!(field.data().iter().any(|v| v.is_infinite()));
                    assert!(finite_value_range(&field) > 0.0);
                }
                _ => {
                    assert!(field.data().iter().all(|v| v.is_finite()), "{}", class.label());
                }
            }
        }
    }

    #[test]
    fn sim_slices_are_usable() {
        for f in sim_slices() {
            assert!(f.data().iter().all(|v| v.is_finite()), "{}", f.name());
            assert!(f.value_range() > 0.0, "{}", f.name());
        }
    }
}
