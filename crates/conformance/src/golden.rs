//! Golden compressed artifacts: small checked-in blobs that pin the
//! on-disk format and the numeric behaviour of the whole pipeline.
//!
//! Each golden artifact is compressed from a field generated with *pure
//! arithmetic only* — an xorshift stream plus polynomial terms, no libm
//! calls — so regeneration is bit-identical on every platform and
//! toolchain. [`verify`] checks, per artifact:
//!
//! 1. the blob's length and FNV-1a 64 checksum match the metadata,
//! 2. the blob parses and re-serialises byte-identically (format
//!    stability),
//! 3. re-compressing the regenerated source field reproduces the blob
//!    byte-for-byte (compressor stability),
//! 4. recorded retrieval probes — plane counts, fetched bytes, and the
//!    achieved error down to the exact f64 bits — still hold (decoder and
//!    error-accounting stability).
//!
//! Retrieval probes run under the serial [`ExecPolicy`] so the recorded
//! bits never depend on the machine's core count, and each probe decode is
//! repeated through the legacy scalar bit-plane kernel
//! ([`PlaneKernel::Scalar`]) — a checked-in blob must reconstruct to the
//! same bits no matter which kernel the host resolves, so a SIMD/SWAR
//! divergence fails golden verification, not just the differential sweep.
//! Regenerate with `pmrtool conformance --regen-golden` after an
//! *intentional* format change, and say so in the commit message.

use crate::json::{parse, Json};
use crate::sweep::{SWEEP_LEVELS, SWEEP_PLANES};
use pmr_field::{Field, Shape};
use pmr_mgard::{persist, CompressConfig, Compressed, DecodeOptions, ExecPolicy, PlaneKernel};
use std::path::Path;

/// Bump when the golden corpus itself changes shape (not when blobs are
/// legitimately regenerated). Version 2: blobs carry the `PMRC2` per-plane
/// checksum table.
pub const GOLDEN_VERSION: u32 = 2;

/// Metadata file name inside the golden directory.
pub const GOLDEN_INDEX: &str = "golden.json";

/// Relative bounds probed per artifact.
const PROBE_RELS: [f64; 3] = [1e-2, 1e-4, 1e-6];

struct GoldenSpec {
    name: &'static str,
    shape: Shape,
    seed: u64,
}

fn specs() -> [GoldenSpec; 3] {
    [
        GoldenSpec { name: "poly-1d", shape: Shape::d1(65), seed: 0x5EED_0001 },
        GoldenSpec { name: "ridge-2d", shape: Shape::d2(17, 13), seed: 0x5EED_0002 },
        GoldenSpec { name: "blob-3d", shape: Shape::d3(9, 9, 9), seed: 0x5EED_0003 },
    ]
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Pure-arithmetic field: a smooth polynomial ridge plus bounded xorshift
/// noise. Every operation is IEEE-exact — additions, multiplications and
/// integer bit mixing only — so the data is reproducible to the bit.
fn golden_field(spec: &GoldenSpec) -> Field {
    let mut state = spec.seed | 1;
    let (nx, ny, nz) = (spec.shape.dim(0), spec.shape.dim(1), spec.shape.dim(2));
    let mut data = Vec::with_capacity(spec.shape.len());
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let u = x as f64 / nx as f64 - 0.5;
                let v = y as f64 / ny.max(2) as f64 - 0.5;
                let w = z as f64 / nz.max(2) as f64 - 0.5;
                let ridge = 4.0 * u * u - 2.0 * v * v + u * v * 3.0 + w * (1.0 - w) * 2.0;
                let noise =
                    ((xorshift(&mut state) >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.25;
                data.push(ridge + noise);
            }
        }
    }
    Field::new(spec.name, 0, spec.shape, data)
}

pub use pmr_mgard::checksum::fnv1a64;

fn compress_golden(field: &Field) -> Compressed {
    let cfg = CompressConfig {
        levels: SWEEP_LEVELS,
        num_planes: SWEEP_PLANES,
        threads: 1,
        ..CompressConfig::default()
    };
    Compressed::compress_with(field, &cfg, &ExecPolicy::serial())
}

fn probe_json(field: &Field, c: &Compressed) -> Json {
    let probes = PROBE_RELS
        .iter()
        .map(|&rel| {
            let abs = c.absolute_bound(rel);
            let plan = c.plan_theory(abs);
            let m = {
                let out = c
                    .decode_plan(&plan, &DecodeOptions::with_exec(ExecPolicy::serial()))
                    .expect("theory plan matches its artifact");
                let err = pmr_field::error::max_abs_error(field.data(), out.data());
                (c.retrieved_bytes(&plan), err)
            };
            Json::obj(vec![
                ("abs_bound_bits", Json::str(format!("{:016x}", abs.to_bits()))),
                ("planes", Json::Arr(plan.planes.iter().map(|&p| Json::Num(p as f64)).collect())),
                ("bytes", Json::Num(m.0 as f64)),
                ("achieved_bits", Json::str(format!("{:016x}", m.1.to_bits()))),
            ])
        })
        .collect();
    Json::Arr(probes)
}

/// Write (or rewrite) the golden blobs and index into `dir`.
pub fn regenerate(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut artifacts = Vec::new();
    for spec in specs() {
        let field = golden_field(&spec);
        let c = compress_golden(&field);
        let blob =
            persist::to_bytes(&c).map_err(|e| format!("golden: {}: serialize: {e}", spec.name))?;
        let file = format!("{}.pmr", spec.name);
        std::fs::write(dir.join(&file), &blob).map_err(|e| format!("write {file}: {e}"))?;
        artifacts.push(Json::obj(vec![
            ("name", Json::str(spec.name)),
            ("file", Json::str(&file)),
            ("shape", Json::Arr((0..3).map(|d| Json::Num(spec.shape.dim(d) as f64)).collect())),
            ("seed", Json::Num(spec.seed as f64)),
            ("bytes", Json::Num(blob.len() as f64)),
            ("fnv1a64", Json::str(format!("{:016x}", fnv1a64(&blob)))),
            ("levels", Json::Num(SWEEP_LEVELS as f64)),
            ("planes", Json::Num(SWEEP_PLANES as f64)),
            ("probes", probe_json(&field, &c)),
        ]));
    }
    let index = Json::obj(vec![
        ("version", Json::Num(GOLDEN_VERSION as f64)),
        ("artifacts", Json::Arr(artifacts)),
    ]);
    std::fs::write(dir.join(GOLDEN_INDEX), index.to_pretty())
        .map_err(|e| format!("write {GOLDEN_INDEX}: {e}"))
}

fn hex_bits(j: Option<&Json>) -> Option<f64> {
    j.and_then(Json::as_str).and_then(|s| u64::from_str_radix(s, 16).ok()).map(f64::from_bits)
}

/// Verify every golden artifact in `dir`; returns failure descriptions
/// (empty = all checks held).
pub fn verify(dir: &Path) -> Vec<String> {
    let mut failures = Vec::new();
    let index_path = dir.join(GOLDEN_INDEX);
    let text = match std::fs::read_to_string(&index_path) {
        Ok(t) => t,
        Err(e) => return vec![format!("golden: read {}: {e}", index_path.display())],
    };
    let index = match parse(&text) {
        Ok(j) => j,
        Err(e) => return vec![format!("golden: parse {GOLDEN_INDEX}: {e}")],
    };
    if index.get("version").and_then(Json::as_usize) != Some(GOLDEN_VERSION as usize) {
        failures.push("golden: index version mismatch".to_string());
    }
    let artifacts = index.get("artifacts").and_then(Json::as_arr).unwrap_or(&[]);
    if artifacts.len() != specs().len() {
        failures.push(format!(
            "golden: expected {} artifacts, index lists {}",
            specs().len(),
            artifacts.len()
        ));
    }
    for entry in artifacts {
        let name = entry.get("name").and_then(Json::as_str).unwrap_or("<unnamed>").to_string();
        if let Err(msg) = verify_artifact(dir, entry, &name) {
            failures.push(msg);
        }
    }
    failures
}

fn verify_artifact(dir: &Path, entry: &Json, name: &str) -> Result<(), String> {
    let spec = specs()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("golden: {name}: unknown artifact name"))?;
    let file = entry
        .get("file")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("golden: {name}: missing file entry"))?
        .to_string();
    let blob =
        std::fs::read(dir.join(&file)).map_err(|e| format!("golden: {name}: read {file}: {e}"))?;

    let expected_len = entry.get("bytes").and_then(Json::as_usize);
    if expected_len != Some(blob.len()) {
        return Err(format!(
            "golden: {name}: blob is {} bytes, index says {expected_len:?}",
            blob.len()
        ));
    }
    let expected_sum = entry.get("fnv1a64").and_then(Json::as_str).unwrap_or("");
    let actual_sum = format!("{:016x}", fnv1a64(&blob));
    if expected_sum != actual_sum {
        return Err(format!("golden: {name}: checksum {actual_sum} != recorded {expected_sum}"));
    }

    // Format stability: parse then re-serialise byte-identically.
    let parsed = persist::from_bytes(&blob).map_err(|e| format!("golden: {name}: parse: {e}"))?;
    let reserialized =
        persist::to_bytes(&parsed).map_err(|e| format!("golden: {name}: serialize: {e}"))?;
    if reserialized != blob {
        return Err(format!("golden: {name}: parse→serialise is not byte-identical"));
    }

    // Compressor stability: the regenerated source compresses to the blob.
    let field = golden_field(&spec);
    let recompressed = persist::to_bytes(&compress_golden(&field))
        .map_err(|e| format!("golden: {name}: serialize: {e}"))?;
    if recompressed != blob {
        return Err(format!(
            "golden: {name}: recompressing the source field no longer reproduces the blob"
        ));
    }

    // Decoder and error-accounting stability at the recorded probes.
    let probes = entry.get("probes").and_then(Json::as_arr).unwrap_or(&[]);
    if probes.len() != PROBE_RELS.len() {
        return Err(format!("golden: {name}: expected {} probes", PROBE_RELS.len()));
    }
    for (i, probe) in probes.iter().enumerate() {
        let abs = hex_bits(probe.get("abs_bound_bits"))
            .ok_or_else(|| format!("golden: {name}: probe {i}: bad abs_bound_bits"))?;
        let plan = parsed.plan_theory(abs);
        let recorded_planes: Vec<u32> = probe
            .get("planes")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(|p| p.as_usize().map(|v| v as u32)).collect())
            .unwrap_or_default();
        if plan.planes != recorded_planes {
            return Err(format!(
                "golden: {name}: probe {i}: plan {:?} != recorded {recorded_planes:?}",
                plan.planes
            ));
        }
        let bytes = parsed.retrieved_bytes(&plan);
        if probe.get("bytes").and_then(Json::as_usize) != Some(bytes as usize) {
            return Err(format!("golden: {name}: probe {i}: fetched bytes changed"));
        }
        let out = parsed
            .decode_plan(&plan, &DecodeOptions::with_exec(ExecPolicy::serial()))
            .map_err(|e| format!("golden: {name}: probe {i}: {e}"))?;
        // The serial decode above runs whatever kernel `Auto` resolves on
        // this host; the committed bits must also reproduce through the
        // legacy scalar assembly.
        let scalar_exec = ExecPolicy::serial().with_kernel(PlaneKernel::Scalar);
        let scalar_out = parsed
            .decode_plan(&plan, &DecodeOptions::with_exec(scalar_exec))
            .map_err(|e| format!("golden: {name}: probe {i} (scalar kernel): {e}"))?;
        if out.data().iter().map(|v| v.to_bits()).ne(scalar_out.data().iter().map(|v| v.to_bits()))
        {
            return Err(format!(
                "golden: {name}: probe {i}: scalar and tiled kernels reconstruct different bits"
            ));
        }
        let achieved = pmr_field::error::max_abs_error(field.data(), out.data());
        let recorded = hex_bits(probe.get("achieved_bits"))
            .ok_or_else(|| format!("golden: {name}: probe {i}: bad achieved_bits"))?;
        if achieved.to_bits() != recorded.to_bits() {
            return Err(format!(
                "golden: {name}: probe {i}: achieved error {achieved:?} != recorded {recorded:?} \
                 (bit-exact check)"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn golden_fields_are_deterministic_and_finite() {
        for spec in specs() {
            let a = golden_field(&spec);
            let b = golden_field(&spec);
            assert_eq!(
                a.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert!(a.data().iter().all(|v| v.is_finite()));
            assert!(a.value_range() > 0.0);
        }
    }

    #[test]
    fn regenerate_then_verify_roundtrips() {
        let dir = std::env::temp_dir().join(format!("pmr-golden-test-{}", std::process::id()));
        regenerate(&dir).expect("regenerate");
        let failures = verify(&dir);
        assert!(failures.is_empty(), "{failures:?}");

        // Tamper with a blob: verify must name the damage.
        let blob_path = dir.join("poly-1d.pmr");
        let mut blob = std::fs::read(&blob_path).expect("read blob");
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        std::fs::write(&blob_path, &blob).expect("write tampered blob");
        let failures = verify(&dir);
        assert!(failures.iter().any(|f| f.contains("checksum")), "{failures:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
