//! Fault-injection conformance: the degraded-retrieval contract under a
//! seeded fault grid.
//!
//! The fault-tolerant reader in `pmr-storage` promises exactly one thing:
//! whatever a seeded schedule throws at it — transients, timeouts,
//! truncated reads, bit flips, permanently lost segments — the retrieval
//! finishes without panicking and the reconstruction satisfies the bound
//! the reader *reports* (the requested bound when clean, the honest
//! re-estimated achievable bound when degraded). This module sweeps that
//! promise over the synthetic corpus × named fault schedules × seeds ×
//! tolerances, measuring every reconstruction against ground truth, and
//! re-runs one cell per schedule twice to pin seed-determinism.

use crate::fields::{catalogue, FieldClass};
use crate::json::Json;
use crate::sweep::{SWEEP_LEVELS, SWEEP_PLANES};
use pmr_field::{error::max_abs_error, Field};
use pmr_mgard::{CompressConfig, Compressed};
use pmr_storage::{
    fetch_plan_tolerant, FaultConfig, FaultInjector, MemStore, RetryPolicy, TolerantConfig,
};

/// A named fault schedule of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// No faults: the tolerant path must match direct retrieval exactly.
    Clean,
    /// Retryable noise only (transients, timeouts, latency spikes).
    Flaky,
    /// Corrupting reads (truncations, bit flips) that checksums must catch.
    Corrupting,
    /// Permanent segment loss: degradation is expected and must be honest.
    Lossy,
    /// Everything at once.
    Chaos,
}

impl FaultSchedule {
    pub fn all() -> [FaultSchedule; 5] {
        [
            FaultSchedule::Clean,
            FaultSchedule::Flaky,
            FaultSchedule::Corrupting,
            FaultSchedule::Lossy,
            FaultSchedule::Chaos,
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            FaultSchedule::Clean => "clean",
            FaultSchedule::Flaky => "flaky",
            FaultSchedule::Corrupting => "corrupting",
            FaultSchedule::Lossy => "lossy",
            FaultSchedule::Chaos => "chaos",
        }
    }

    /// The injector configuration of this schedule for one fault seed.
    pub fn config(self, seed: u64) -> FaultConfig {
        let quiet = FaultConfig::quiet(seed);
        match self {
            FaultSchedule::Clean => quiet,
            FaultSchedule::Flaky => FaultConfig {
                transient: 0.25,
                timeout: 0.08,
                latency_spike: 0.15,
                spike_s: 0.02,
                ..quiet
            },
            FaultSchedule::Corrupting => FaultConfig { truncate: 0.15, bit_flip: 0.2, ..quiet },
            FaultSchedule::Lossy => FaultConfig { permanent: 0.12, transient: 0.1, ..quiet },
            FaultSchedule::Chaos => FaultConfig {
                permanent: 0.08,
                transient: 0.2,
                timeout: 0.05,
                truncate: 0.1,
                bit_flip: 0.1,
                latency_spike: 0.1,
                spike_s: 0.02,
                ..quiet
            },
        }
    }
}

/// Grid dimensions of a fault-conformance run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultGridConfig {
    /// Master seed: corpus fields and fault seeds derive from it.
    pub seed: u64,
    /// Fault seeds tried per (field, schedule).
    pub seeds_per_schedule: usize,
    /// Relative error bounds requested per cell.
    pub rel_bounds: Vec<f64>,
    /// Synthetic fields taken from the corpus.
    pub max_fields: usize,
}

impl FaultGridConfig {
    /// The per-PR CI grid: small but covering every schedule.
    pub fn quick(seed: u64) -> Self {
        FaultGridConfig { seed, seeds_per_schedule: 2, rel_bounds: vec![1e-2, 1e-4], max_fields: 3 }
    }

    /// The exhaustive grid for scheduled runs.
    pub fn full(seed: u64) -> Self {
        FaultGridConfig {
            seed,
            seeds_per_schedule: 6,
            rel_bounds: vec![1e-1, 1e-2, 1e-3, 1e-4, 1e-5],
            max_fields: 9,
        }
    }
}

/// Aggregate result of a fault-grid run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// `(field, schedule, fault seed, bound)` cells executed.
    pub cells: usize,
    /// Cells that returned a degraded retrieval.
    pub degraded: usize,
    /// Degraded cells whose achievable bound still met the request
    /// (re-planning compensated fully).
    pub recovered: usize,
    /// Segments abandoned across the grid.
    pub lost_segments: u64,
    /// Retries performed across the grid.
    pub retries: u64,
    /// Verified-corrupt reads caught by checksums across the grid.
    pub corruptions_caught: u64,
    /// Every violated invariant; empty = pass.
    pub failures: Vec<String>,
}

impl FaultReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    pub fn summary(&self) -> String {
        format!(
            "fault grid: {} cells, {} degraded ({} recovered), {} lost segments, \
             {} retries, {} corruptions caught, {} failures",
            self.cells,
            self.degraded,
            self.recovered,
            self.lost_segments,
            self.retries,
            self.corruptions_caught,
            self.failures.len()
        )
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cells", Json::Num(self.cells as f64)),
            ("degraded", Json::Num(self.degraded as f64)),
            ("recovered", Json::Num(self.recovered as f64)),
            ("lost_segments", Json::Num(self.lost_segments as f64)),
            ("retries", Json::Num(self.retries as f64)),
            ("corruptions_caught", Json::Num(self.corruptions_caught as f64)),
            ("passed", Json::Bool(self.passed())),
            ("failures", Json::Arr(self.failures.iter().map(|f| Json::str(f.clone())).collect())),
        ])
    }
}

fn grid_corpus(cfg: &FaultGridConfig) -> Vec<Field> {
    catalogue(cfg.seed)
        .into_iter()
        .filter(|(class, _)| class.is_finite() && *class != FieldClass::Constant)
        .map(|(_, f)| f)
        .take(cfg.max_fields)
        .collect()
}

fn compress(field: &Field) -> Compressed {
    let cfg =
        CompressConfig { levels: SWEEP_LEVELS, num_planes: SWEEP_PLANES, ..Default::default() };
    Compressed::compress(field, &cfg)
}

/// Run the grid. Every cell checks the reported-bound contract against the
/// measured reconstruction error; per (field, schedule) one cell is re-run
/// with a fresh injector to assert the seed fully determines the outcome.
pub fn run_fault_grid(cfg: &FaultGridConfig) -> FaultReport {
    let mut report = FaultReport::default();
    let tolerant = TolerantConfig {
        policy: RetryPolicy { max_attempts: 6, ..RetryPolicy::default() },
        ..TolerantConfig::default()
    };
    for (fi, field) in grid_corpus(cfg).iter().enumerate() {
        let c = compress(field);
        for schedule in FaultSchedule::all() {
            for si in 0..cfg.seeds_per_schedule {
                let fault_seed = cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((fi as u64) << 24)
                    .wrapping_add(si as u64);
                for (bi, &rel) in cfg.rel_bounds.iter().enumerate() {
                    let bound = c.absolute_bound(rel);
                    let cell = format!(
                        "field {} schedule {} seed {fault_seed:#x} rel {rel}",
                        field.name(),
                        schedule.label()
                    );
                    report.cells += 1;
                    let run = || {
                        let inj = FaultInjector::new(
                            MemStore::from_compressed(&c),
                            schedule.config(fault_seed),
                        )
                        .expect("schedule configs are valid");
                        let out = fetch_plan_tolerant(
                            &c,
                            &inj,
                            &c.plan_theory(bound),
                            bound,
                            &tolerant,
                            None,
                        );
                        (out, inj.log())
                    };
                    let (outcome, log) = run();
                    let out = match outcome {
                        Ok(out) => out,
                        Err(e) => {
                            report.failures.push(format!("{cell}: hard failure: {e}"));
                            continue;
                        }
                    };
                    report.lost_segments += out.stats.lost_segments;
                    report.retries += out.stats.retries;
                    report.corruptions_caught += out.stats.corruptions;
                    let measured = max_abs_error(field.data(), out.field.data());
                    match &out.degraded {
                        None => {
                            if measured > bound {
                                report.failures.push(format!(
                                    "{cell}: clean retrieval violated requested bound: \
                                     {measured:e} > {bound:e}"
                                ));
                            }
                            if schedule == FaultSchedule::Clean && out.stats.retries > 0 {
                                report
                                    .failures
                                    .push(format!("{cell}: retries on a fault-free store"));
                            }
                        }
                        Some(deg) => {
                            report.degraded += 1;
                            if deg.bound_recovered() {
                                report.recovered += 1;
                            }
                            if measured > deg.achievable_bound {
                                report.failures.push(format!(
                                    "{cell}: degraded retrieval violated its reported bound: \
                                     {measured:e} > {:e}",
                                    deg.achievable_bound
                                ));
                            }
                            // Flaky/Corrupting can degrade legitimately: a
                            // bounded RetryPolicy exhausts on a long-enough
                            // run of transient faults or repeated corrupt
                            // reads. Only a fault-free store must never
                            // degrade.
                            if schedule == FaultSchedule::Clean {
                                report.failures.push(format!(
                                    "{cell}: fault-free store degraded (lost {:?})",
                                    deg.lost_segments
                                ));
                            }
                        }
                    }
                    // Determinism: re-run the first bound of each (field,
                    // schedule, seed) cell from scratch and require the
                    // identical outcome, fault log included.
                    if bi == 0 {
                        let (outcome2, log2) = run();
                        match outcome2 {
                            Ok(out2) => {
                                if out2.planes != out.planes
                                    || out2.degraded != out.degraded
                                    || out2.stats != out.stats
                                    || log2 != log
                                {
                                    report.failures.push(format!(
                                        "{cell}: same seed produced a different outcome"
                                    ));
                                }
                            }
                            Err(e) => report
                                .failures
                                .push(format!("{cell}: determinism re-run failed hard: {e}")),
                        }
                    }
                }
            }
        }
    }
    report
}

/// Machine-readable report for `pmrtool faultsim` and the CI job.
pub fn fault_report_json(report: &FaultReport, grid_name: &str, seed: u64) -> String {
    Json::obj(vec![
        ("grid", Json::str(grid_name)),
        ("seed", Json::Num(seed as f64)),
        ("report", report.to_json()),
    ])
    .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_passes() {
        let report = run_fault_grid(&FaultGridConfig::quick(0xFA_017));
        assert!(report.passed(), "failures: {:#?}", report.failures);
        assert!(report.cells > 0);
        // The grid genuinely exercises the fault machinery.
        assert!(report.retries > 0, "flaky schedules must force retries");
        assert!(report.corruptions_caught > 0, "corrupting schedules must be caught");
        assert!(report.degraded > 0, "lossy schedules must degrade");
        assert!(report.lost_segments > 0);
    }

    #[test]
    fn report_json_shape() {
        let report = run_fault_grid(&FaultGridConfig {
            seed: 7,
            seeds_per_schedule: 1,
            rel_bounds: vec![1e-2],
            max_fields: 1,
        });
        let json = fault_report_json(&report, "quick", 7);
        let parsed = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(parsed.get("grid").and_then(Json::as_str), Some("quick"));
        let inner = parsed.get("report").expect("report key");
        assert!(inner.get("cells").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        assert!(inner.get("failures").and_then(Json::as_arr).is_some());
    }
}
