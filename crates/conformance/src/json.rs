//! A minimal JSON value type with a writer and a strict parser.
//!
//! The golden-artifact metadata and the conformance report need structured,
//! human-diffable serialization, and the workspace has no JSON dependency;
//! this module covers exactly the subset both sides emit. Floats are
//! written with `{:?}` (Rust's shortest-roundtrip formatting) so a
//! write→parse→write cycle is a fixed point.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as usize)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n:?}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Strict: rejects trailing garbage, trailing
/// commas, and unknown escapes, with a byte offset in the error message.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_fixed_point() {
        let doc = Json::obj(vec![
            ("name", Json::str("smooth-2d \"quoted\"\n")),
            ("bytes", Json::Num(1234.0)),
            ("ratio", Json::Num(0.1)),
            ("planes", Json::Arr(vec![Json::Num(16.0), Json::Num(7.0)])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.to_pretty();
        let parsed = parse(&text).expect("parse own output");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_pretty(), text);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "[1] garbage", "\"\\q\"", "nul", "+", "--3"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_structure() {
        let doc = parse(r#"{"a": {"b": [1, 2.5, "x"]}, "n": 3}"#).expect("parse");
        assert_eq!(doc.get("n").and_then(Json::as_usize), Some(3));
        let arr = doc.get("a").and_then(|a| a.get("b")).and_then(Json::as_arr).expect("arr");
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(arr[1].as_usize(), None);
        assert!(doc.get("missing").is_none());
    }
}
