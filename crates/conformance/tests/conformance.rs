//! End-to-end conformance run: the quick grid over the seeded corpus,
//! including training both learned retrievers, plus the differential
//! checks. This is the PR-gate version of what `pmrtool conformance`
//! runs; CI's scheduled job sweeps the full 81-bound grid.

use pmr_conformance::{run_all, ConformanceReport, SweepConfig};

fn report() -> ConformanceReport {
    run_all(&SweepConfig::quick())
}

#[test]
fn quick_grid_conformance_passes() {
    let report = report();
    println!("{}", report.summary());
    assert!(report.passed(), "{:?}", report.failures);

    // Theory must be flawless on the points it claims.
    let theory = report.strategies.iter().find(|s| s.strategy == "MGARD").expect("theory row");
    assert_eq!(theory.violations, 0, "theory soundness is a hard guarantee");
    assert!(theory.claimed > 0, "grid must contain reachable bounds");
    assert!(theory.max_overshoot <= 1.0, "claimed theory points may not overshoot");

    // All four strategies swept, each with real coverage.
    assert_eq!(report.strategies.len(), 4);
    for s in &report.strategies {
        assert!(s.points > 0, "{} swept no points", s.strategy);
    }

    // The learned strategies exist to fetch less than theory at comparable
    // accuracy; the corpus-level means should reflect that.
    let theory_fetch = theory.mean_fraction_fetched;
    let emgard = report.strategies.iter().find(|s| s.strategy == "E-MGARD").expect("emgard row");
    assert!(
        emgard.mean_fraction_fetched <= theory_fetch * 1.05,
        "E-MGARD fetched {} vs theory {}",
        emgard.mean_fraction_fetched,
        theory_fetch
    );
}

#[test]
fn report_serialises_to_parseable_json() {
    let report = report();
    let text = pmr_conformance::report_json(&report, "quick");
    let parsed = pmr_conformance::json::parse(&text).expect("report JSON must parse");
    assert_eq!(parsed.get("grid").and_then(|g| g.as_str()), Some("quick"));
    let inner = parsed.get("report").expect("report object");
    assert_eq!(inner.get("strategies").and_then(|s| s.as_arr()).map(|a| a.len()), Some(4));
}
