//! Figure 3: the number of bit-planes MGARD retrieves versus (a) simulation
//! timestep, (b) relative error bound, (c) laser duration, (d) electron
//! density — demonstrating that retrieval volume is a non-linear function
//! of many variables, which motivates the DNN approach.
//!
//! At bench scale the coarse levels hold only a handful of coefficients, so
//! the greedy retriever saturates their planes almost for free and the
//! *total* plane count compresses its dynamic range; we therefore report
//! the finest-level plane count and the retrieved bytes alongside it (the
//! bytes carry the same shape the paper's plane counts show at 512^3).

use pmr_bench::{bench_size, bench_timesteps, datasets, human_bytes, output, sci};
use pmr_mgard::{CompressConfig, Compressed};
use pmr_sim::WarpXField;

struct PlanStats {
    total_planes: u32,
    finest_planes: u32,
    bytes: u64,
}

fn stats(c: &Compressed, rel: f64) -> PlanStats {
    let plan = c.plan_theory(c.absolute_bound(rel));
    PlanStats {
        total_planes: plan.planes.iter().sum(),
        finest_planes: *plan.planes.last().unwrap(),
        bytes: c.retrieved_bytes(&plan),
    }
}

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let ccfg = CompressConfig::default();
    let fixed_rel = 1e-4;

    // (a) planes vs timestep, three fields.
    let base = datasets::warpx_cfg(size, ts);
    let mut rows_a = Vec::new();
    for t in (0..ts).step_by((ts / 16).max(1)) {
        let mut row = vec![t.to_string()];
        for wf in WarpXField::all() {
            let field = datasets::warpx(&base, wf, t);
            let c = Compressed::compress(&field, &ccfg);
            let s = stats(&c, fixed_rel);
            row.push(format!("{}/{}", s.total_planes, s.finest_planes));
            row.push(human_bytes(s.bytes));
        }
        rows_a.push(row);
    }
    output::print_table(
        &format!("Fig 3a: #bit-planes (total/finest) and bytes vs timestep (rel {fixed_rel:.0e})"),
        &["t", "B_x planes", "B_x bytes", "E_x planes", "E_x bytes", "J_x planes", "J_x bytes"],
        &rows_a,
    );
    output::write_csv(
        "fig03a_planes_vs_timestep.csv",
        &["t", "bx_planes", "bx_bytes", "ex_planes", "ex_bytes", "jx_planes", "jx_bytes"],
        &rows_a,
    );

    // (b) planes vs relative error bound at a fixed timestep.
    let t = ts / 2;
    let mut rows_b = Vec::new();
    let fields: Vec<(WarpXField, Compressed)> = WarpXField::all()
        .into_iter()
        .map(|wf| {
            let f = datasets::warpx(&base, wf, t);
            (wf, Compressed::compress(&f, &ccfg))
        })
        .collect();
    for k in -9i32..=-1 {
        for m in [1.0, 3.0] {
            let rel = m * 10f64.powi(k);
            let mut row = vec![sci(rel)];
            for (_, c) in &fields {
                let s = stats(c, rel);
                row.push(format!("{}/{}", s.total_planes, s.finest_planes));
                row.push(human_bytes(s.bytes));
            }
            rows_b.push(row);
        }
    }
    output::print_table(
        &format!("Fig 3b: #bit-planes (total/finest) and bytes vs relative error bound (t={t})"),
        &[
            "rel_bound",
            "B_x planes",
            "B_x bytes",
            "E_x planes",
            "E_x bytes",
            "J_x planes",
            "J_x bytes",
        ],
        &rows_b,
    );
    output::write_csv(
        "fig03b_planes_vs_bound.csv",
        &["rel_bound", "bx_planes", "bx_bytes", "ex_planes", "ex_bytes", "jx_planes", "jx_bytes"],
        &rows_b,
    );

    // (c) planes vs laser duration (J_x, fixed bound and timestep).
    let mut rows_c = Vec::new();
    for i in 0..8 {
        let tau = 0.02 + 0.015 * i as f64;
        let cfg = pmr_sim::WarpXConfig { laser_duration: tau, ..base };
        let field = datasets::warpx(&cfg, WarpXField::Jx, t);
        let c = Compressed::compress(&field, &ccfg);
        let s = stats(&c, fixed_rel);
        rows_c.push(vec![
            format!("{tau:.3}"),
            s.total_planes.to_string(),
            s.finest_planes.to_string(),
            s.bytes.to_string(),
        ]);
    }
    output::print_table(
        &format!("Fig 3c: retrieval vs laser duration (J_x, t={t}, rel {fixed_rel:.0e})"),
        &["laser_duration", "total_planes", "finest_planes", "bytes"],
        &rows_c,
    );
    output::write_csv(
        "fig03c_planes_vs_duration.csv",
        &["laser_duration", "total_planes", "finest_planes", "bytes"],
        &rows_c,
    );

    // (d) planes vs electron density.
    let mut rows_d = Vec::new();
    for i in 0..8 {
        let ne = 0.5 + 0.5 * i as f64;
        let cfg = pmr_sim::WarpXConfig { electron_density: ne, ..base };
        let field = datasets::warpx(&cfg, WarpXField::Jx, t);
        let c = Compressed::compress(&field, &ccfg);
        let s = stats(&c, fixed_rel);
        rows_d.push(vec![
            format!("{ne:.2}"),
            s.total_planes.to_string(),
            s.finest_planes.to_string(),
            s.bytes.to_string(),
        ]);
    }
    output::print_table(
        &format!("Fig 3d: retrieval vs electron density (J_x, t={t}, rel {fixed_rel:.0e})"),
        &["electron_density", "total_planes", "finest_planes", "bytes"],
        &rows_d,
    );
    output::write_csv(
        "fig03d_planes_vs_density.csv",
        &["electron_density", "total_planes", "finest_planes", "bytes"],
        &rows_d,
    );

    println!(
        "\nPaper: plane counts behave non-linearly in every dimension of this sweep,\n\
         motivating a data-driven (DNN) predictor over closed-form modelling."
    );
}
