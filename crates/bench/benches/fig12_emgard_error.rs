//! Figure 12: E-MGARD achieved maximum error vs the original MGARD and the
//! input error bound (WarpX at t = mid, x-axis = PSNR under original MGARD
//! error control).
//!
//! Expected shape: E-MGARD's achieved error lies between the theory
//! baseline's (far below the bound) and the input bound — i.e. closer to
//! what the user asked for.

use pmr_bench::{bench_size, bench_timesteps, datasets, output, sci, setup};
use pmr_core::emgard::{build_samples, EMgard};
use pmr_core::{retrieve, Backend, Dataset, RetrievalRequest, Theory};
use pmr_mgard::Compressed;
use pmr_sim::WarpXField;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let t = ts / 2;
    let wcfg = datasets::warpx_cfg(size, ts);
    let cfg = setup::experiment_config();

    println!("Training E-MGARD on J_x timesteps 0..{}...", ts / 2);
    let mut samples = Vec::new();
    for tt in 0..ts / 2 {
        let field = datasets::warpx(&wcfg, WarpXField::Jx, tt);
        let compressed = Compressed::compress(&field, &cfg.compress);
        samples.extend(build_samples(&field, &compressed, &cfg.emgard, tt as u64));
    }
    let (emgard, history) = EMgard::train(&samples, &cfg.emgard);
    println!(
        "  training loss: {:.4} -> {:.4} over {} epochs",
        history[0],
        history.last().unwrap(),
        history.len()
    );

    let field = datasets::warpx(&wcfg, WarpXField::Jx, t);
    let c = Compressed::compress(&field, &cfg.compress);
    let constants = emgard.predict_constants(&c);
    println!("  learned constants: {constants:?}");
    println!("  theory  constants: {:?}", c.theory_constants());

    let mut rows = Vec::new();
    let mut closer = 0usize;
    let mut total = 0usize;
    for &rel in &setup::sparse_rel_bounds() {
        let abs = c.absolute_bound(rel);
        let ds = Dataset::new(&c).with_original(&field);
        let req = RetrievalRequest::abs(abs).measured();
        let tout =
            retrieve(&ds, &Theory, &req, &Backend::Direct).expect("theory plan matches artifact");
        let eout =
            retrieve(&ds, &emgard, &req, &Backend::Direct).expect("emgard plan matches artifact");
        let t_err = tout.achieved_error.unwrap_or(f64::NAN);
        let e_err = eout.achieved_error.unwrap_or(f64::NAN);
        // Distance from the input bound in log space (smaller = better
        // error control).
        let dt = (abs / t_err.max(1e-300)).log10().abs();
        let de = (abs / e_err.max(1e-300)).log10().abs();
        if de <= dt + 1e-12 {
            closer += 1;
        }
        total += 1;
        rows.push(vec![
            format!("{:.1}", tout.psnr.unwrap_or(f64::NAN)),
            sci(abs),
            sci(t_err),
            sci(e_err),
        ]);
    }
    output::print_table(
        &format!("Fig 12: achieved max error vs PSNR (J_x, t={t}; PSNR under original MGARD)"),
        &["psnr_db", "input_bound", "mgard_achieved", "emgard_achieved"],
        &rows,
    );
    output::write_csv(
        "fig12_emgard_error.csv",
        &["psnr_db", "input_bound", "mgard_achieved", "emgard_achieved"],
        &rows,
    );
    println!(
        "\nE-MGARD achieved error is at least as close to the input bound as original\n\
         MGARD on {closer}/{total} bounds.\n\
         Paper: E-MGARD errors lie closer to the user-requested error (better control)."
    );
    assert!(
        closer * 2 >= total,
        "E-MGARD should improve error control on at least half of the bounds"
    );
}
