//! Figure 10: D-MGARD prediction-error distribution on Gray-Scott.
//!
//! Train on the first half of `D_u`; evaluate on the later half of `D_u`
//! and on all timesteps of `D_v`.

use pmr_bench::{bench_size, bench_timesteps, datasets, setup};
use pmr_core::experiment::{dmgard_prediction_errors, train_models};
use pmr_sim::GsSpecies;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let gcfg = datasets::grayscott_cfg(size, ts);
    let cfg = setup::experiment_config();

    println!("Simulating Gray-Scott {}^3 x {} snapshots (cached after first run)...", size, ts);
    datasets::cache().ensure_gray_scott(&gcfg);

    println!("Training D-MGARD on D_u timesteps 0..{}...", ts / 2);
    let train_fields = (0..ts / 2).map(|t| datasets::grayscott(&gcfg, GsSpecies::U, t));
    let (models, _) = train_models(train_fields, &cfg);

    let eval_sets: [(&str, GsSpecies, Box<dyn Iterator<Item = usize>>); 2] = [
        ("D_u (later half)", GsSpecies::U, Box::new(ts / 2..ts)),
        ("D_v (all timesteps)", GsSpecies::V, Box::new((0..ts).step_by(2))),
    ];

    let mut within1_du = 0.0;
    for (label, sp, range) in eval_sets {
        let mut records = Vec::new();
        for t in range {
            let field = datasets::grayscott(&gcfg, sp, t);
            records.extend(setup::records_for(&field, &cfg));
        }
        let per_level = dmgard_prediction_errors(&records, &models.dmgard);
        let w1 = setup::report_prediction_errors(
            &format!("Fig 10: D-MGARD prediction error distribution — {label}"),
            &format!(
                "fig10_dmgard_grayscott_{}.csv",
                label.split_whitespace().next().unwrap().replace('_', "").to_lowercase()
            ),
            &per_level,
        );
        if label.starts_with("D_u") {
            within1_du = w1;
        }
    }

    println!("\nPaper: >60% of predictions on lower levels are exact.");
    assert!(
        within1_du > 0.3,
        "D-MGARD failed to generalise across timesteps (within-1 fraction {within1_du:.2})"
    );
}
