//! Figure 5: MGARD retrieval behaviour across relative error bounds on the
//! WarpX dataset — (a) the correlation matrix of per-level plane counts,
//! (b) planes retrieved per level vs bound, (c) the per-level share of the
//! retrieved bytes.
//!
//! Expected shape (paper): plane counts are strongly correlated across
//! levels; the coarsest level (level_0) contributes the most planes; the
//! finest level contributes the fewest planes but the largest share of the
//! bytes except at the loosest bounds.

use pmr_bench::{bench_size, bench_timesteps, datasets, output, sci};
use pmr_core::standard_rel_bounds;
use pmr_mgard::{CompressConfig, Compressed};
use pmr_sim::WarpXField;

/// Pearson correlation; `None` when either series is constant (at bench
/// scale the cheapest coarse levels saturate at `B` planes for every bound
/// — a scale artifact called out in EXPERIMENTS.md).
fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let ccfg = CompressConfig::default();
    let base = datasets::warpx_cfg(size, ts);

    // Collect plane counts across fields x timesteps x bounds. The sweep
    // extends past the paper's loosest bound (to rel 1e+1): at bench scale
    // the coarse levels are tiny enough that the greedy retriever saturates
    // them everywhere inside [1e-9, 9e-1]; the looser tail is where their
    // counts move (see EXPERIMENTS.md on scale artifacts).
    let mut bounds = standard_rel_bounds();
    for k in 0i32..=1 {
        for m in 1..=9u32 {
            bounds.push(m as f64 * 10f64.powi(k));
        }
    }
    let mut per_level_series: Vec<Vec<f64>> = Vec::new();
    let mut num_levels = 0;
    for wf in WarpXField::all() {
        for t in (0..ts).step_by((ts / 4).max(1)) {
            let field = datasets::warpx(&base, wf, t);
            let c = Compressed::compress(&field, &ccfg);
            num_levels = c.num_levels();
            if per_level_series.is_empty() {
                per_level_series = vec![Vec::new(); num_levels];
            }
            for &rel in &bounds {
                let plan = c.plan_theory(c.absolute_bound(rel));
                for (l, &b) in plan.planes.iter().enumerate() {
                    per_level_series[l].push(b as f64);
                }
            }
        }
    }

    // (a) correlation matrix ("n/a" for saturated levels whose counts never
    // move at this scale).
    let mut rows_a = Vec::new();
    for i in 0..num_levels {
        let mut row = vec![format!("level_{i}")];
        for j in 0..num_levels {
            row.push(match pearson(&per_level_series[i], &per_level_series[j]) {
                Some(r) => format!("{r:.3}"),
                None => "n/a".to_string(),
            });
        }
        rows_a.push(row);
    }
    let mut headers_a: Vec<String> = vec!["".to_string()];
    headers_a.extend((0..num_levels).map(|l| format!("level_{l}")));
    let headers_a_ref: Vec<&str> = headers_a.iter().map(String::as_str).collect();
    output::print_table(
        "Fig 5a: correlation matrix of per-level plane counts",
        &headers_a_ref,
        &rows_a,
    );
    output::write_csv("fig05a_correlation.csv", &headers_a_ref, &rows_a);
    println!(
        "  (n/a = level saturated at B planes across the whole sweep; at bench scale\n\
         \u{20}  the coarsest levels cost a few bytes per plane, so the greedy retriever\n\
         \u{20}  always fetches them fully — see EXPERIMENTS.md, scale artifacts)"
    );

    // (b) + (c): per-level planes and size share vs bound at t = ts/2.
    let t = ts / 2;
    let field = datasets::warpx(&base, WarpXField::Jx, t);
    let c = Compressed::compress(&field, &ccfg);
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for k in -9i32..=-1 {
        let rel = 10f64.powi(k);
        let plan = c.plan_theory(c.absolute_bound(rel));
        let total: u64 = c.retrieved_bytes(&plan);
        let mut row_b = vec![sci(rel)];
        let mut row_c = vec![sci(rel)];
        for (l, (&b, lvl)) in plan.planes.iter().zip(c.levels()).enumerate() {
            row_b.push(b.to_string());
            let share = if total > 0 {
                lvl.size_of_first(plan.planes[l]) as f64 / total as f64 * 100.0
            } else {
                0.0
            };
            row_c.push(format!("{share:.1}%"));
        }
        rows_b.push(row_b);
        rows_c.push(row_c);
    }
    let mut headers_bc: Vec<String> = vec!["rel_bound".to_string()];
    headers_bc.extend((0..num_levels).map(|l| format!("level_{l}")));
    let headers_bc_ref: Vec<&str> = headers_bc.iter().map(String::as_str).collect();
    output::print_table(
        &format!("Fig 5b: planes retrieved per level vs bound (J_x, t={t})"),
        &headers_bc_ref,
        &rows_b,
    );
    output::write_csv("fig05b_planes_per_level.csv", &headers_bc_ref, &rows_b);
    output::print_table(
        &format!("Fig 5c: retrieval size share per level vs bound (J_x, t={t})"),
        &headers_bc_ref,
        &rows_c,
    );
    output::write_csv("fig05c_size_share.csv", &headers_bc_ref, &rows_c);

    // Shape checks mirroring the paper's observations.
    let tight = c.plan_theory(c.absolute_bound(1e-9));
    assert!(
        tight.planes[0] >= tight.planes[num_levels - 1],
        "coarsest level should contribute at least as many planes as the finest"
    );
    println!(
        "\nPaper: level_0 (coarsest) contributes the most planes; the finest level\n\
         holds the largest byte share at all but the loosest bounds."
    );
}
