//! Figure 9: D-MGARD prediction-error distribution on WarpX.
//!
//! Protocol (paper §IV-B): train on the first half of the `J_x` timesteps;
//! evaluate the per-level plane-count prediction error on (a) the later
//! half of `J_x`, (b) all timesteps of `B_x`, (c) all timesteps of `E_x`.
//!
//! Expected shape: the majority of predictions land within one bit-plane of
//! the truth, improving toward the finer levels.

use pmr_bench::{bench_size, bench_timesteps, datasets, setup};
use pmr_core::experiment::{dmgard_prediction_errors, train_models};
use pmr_sim::WarpXField;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let wcfg = datasets::warpx_cfg(size, ts);
    let cfg = setup::experiment_config();

    println!("Training D-MGARD on J_x timesteps 0..{} ({}^3)...", ts / 2, size);
    let train_fields = (0..ts / 2).map(|t| datasets::warpx(&wcfg, WarpXField::Jx, t));
    let (models, _) = train_models(train_fields, &cfg);

    let eval_sets: [(&str, WarpXField, Box<dyn Iterator<Item = usize>>); 3] = [
        ("J_x (later half)", WarpXField::Jx, Box::new(ts / 2..ts)),
        ("B_x (all timesteps)", WarpXField::Bx, Box::new((0..ts).step_by(2))),
        ("E_x (all timesteps)", WarpXField::Ex, Box::new((0..ts).step_by(2))),
    ];

    let mut within1_jx = 0.0;
    for (label, wf, range) in eval_sets {
        let mut records = Vec::new();
        for t in range {
            let field = datasets::warpx(&wcfg, wf, t);
            records.extend(setup::records_for(&field, &cfg));
        }
        let per_level = dmgard_prediction_errors(&records, &models.dmgard);
        let w1 = setup::report_prediction_errors(
            &format!("Fig 9: D-MGARD prediction error distribution — {label}"),
            &format!(
                "fig09_dmgard_warpx_{}.csv",
                label.split_whitespace().next().unwrap().replace('_', "").to_lowercase()
            ),
            &per_level,
        );
        if label.starts_with("J_x") {
            within1_jx = w1;
        }
    }

    println!("\nPaper: >60% of J_x predictions are exact on levels 1-4, ~80% within one plane.");
    assert!(
        within1_jx > 0.3,
        "D-MGARD failed to generalise across timesteps (within-1 fraction {within1_jx:.2})"
    );
}
