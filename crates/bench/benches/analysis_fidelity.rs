//! Extension bench: analysis fidelity per byte.
//!
//! The paper's motivation (§I) is that post-hoc analytics is I/O-bound;
//! progressive retrieval lets an analysis pay only for the accuracy it
//! needs. This bench quantifies that in *analysis* terms: how do
//! histograms, isosurface activity, quantiles and total variation of the
//! retrieved data converge toward the originals as the error bound
//! tightens — and what does a coarse-resolution retrieval (reduced degrees
//! of freedom) buy for nearly free?

use pmr_analysis as analysis;
use pmr_bench::{bench_size, bench_timesteps, datasets, human_bytes, output, sci};
use pmr_field::ops::downsample;
use pmr_mgard::{CompressConfig, Compressed, DecodeOptions, RetrievalPlan};
use pmr_sim::WarpXField;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let t = ts / 2;
    let field = datasets::warpx(&datasets::warpx_cfg(size, ts), WarpXField::Ex, t);
    let c = Compressed::compress(&field, &CompressConfig::default());

    let mut rows = Vec::new();
    let mut prev_hist = f64::INFINITY;
    for k in (-7i32..=-1).rev() {
        let rel = 10f64.powi(k);
        let plan = c.plan_theory(c.absolute_bound(rel));
        let approx = c.retrieve(&plan);
        let r = analysis::fidelity(&field, &approx);
        rows.push(vec![
            sci(rel),
            human_bytes(c.retrieved_bytes(&plan)),
            format!("{:.4}", r.histogram_l1),
            format!("{:.4}", r.isosurface_rel_err),
            format!("{:.5}", r.total_variation_rel_err),
            format!("{:.2e}", r.quantile_rel_err),
        ]);
        if rel <= 1e-3 {
            assert!(
                r.histogram_l1 <= prev_hist + 0.05,
                "histogram fidelity should improve with tighter bounds"
            );
            prev_hist = r.histogram_l1;
        }
    }
    output::print_table(
        &format!("Analysis fidelity vs error bound (E_x, t={t}, {size}^3)"),
        &["rel_bound", "bytes", "hist_L1", "iso_rel_err", "tv_rel_err", "quantile_err"],
        &rows,
    );
    output::write_csv(
        "analysis_fidelity.csv",
        &["rel_bound", "bytes", "hist_l1", "iso_rel_err", "tv_rel_err", "quantile_err"],
        &rows,
    );

    // Coarse-resolution analysis: a histogram/quantile pass often does not
    // need the full grid at all. Compare the analysis of a level-k coarse
    // retrieval against the analysis of the downsampled original.
    let mut rows2 = Vec::new();
    for target in 0..c.num_levels() - 1 {
        let steps = c.num_levels() - 1 - target;
        let stride = 1usize << steps;
        // Plan: fetch only levels <= target at moderate precision.
        let mut planes = vec![0u32; c.num_levels()];
        for p in planes.iter_mut().take(target + 1) {
            *p = 24;
        }
        let plan = RetrievalPlan::from_planes(planes);
        let coarse = c.decode_plan(&plan, &DecodeOptions::at_level(target)).expect("coarse plan");
        let reference = downsample(&field, stride);
        let r = analysis::fidelity(&reference, &coarse);
        rows2.push(vec![
            format!("level_{target} ({})", coarse.shape()),
            human_bytes(c.retrieved_bytes(&plan)),
            format!("{:.4}", r.histogram_l1),
            format!("{:.2e}", r.quantile_rel_err),
        ]);
    }
    output::print_table(
        "Coarse-resolution analysis (vs downsampled original)",
        &["grid", "bytes", "hist_L1", "quantile_err"],
        &rows2,
    );
    output::write_csv(
        "analysis_fidelity_coarse.csv",
        &["grid", "bytes", "hist_l1", "quantile_err"],
        &rows2,
    );
    println!(
        "\nA distribution-level analysis is served by kilobytes of coarse levels;\n\
         only feature-hunting at full resolution needs the deep planes — the paper's\n\
         motivating progressive-analytics scenario."
    );
}
