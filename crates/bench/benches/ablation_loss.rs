//! Ablation (paper §III-C): loss-function choice for D-MGARD.
//!
//! The paper argues MAE leaves long tails (outliers under-penalised), MSE
//! inflates the average error (small errors under-penalised), and Huber(1)
//! wins. This bench trains three otherwise-identical D-MGARD stacks and
//! compares the prediction-error distributions.

use pmr_bench::{bench_timesteps, datasets, output, setup};
use pmr_core::experiment::{dmgard_prediction_errors, train_models};
use pmr_nn::Loss;
use pmr_sim::WarpXField;

fn main() {
    let size = 17usize; // ablations run at reduced scale
    let ts = bench_timesteps().min(16);
    let wcfg = datasets::warpx_cfg(size, ts);

    let mut rows = Vec::new();
    for (name, loss) in [("Huber(1)", Loss::Huber(1.0)), ("MSE", Loss::Mse), ("MAE", Loss::Mae)] {
        let mut cfg = setup::experiment_config();
        cfg.dmgard.train.loss = loss;
        // Harden the task so the losses differentiate: include the noisy
        // statistical features (which drift between train and test) and
        // give the optimizer a tight epoch budget.
        cfg.dmgard.use_stat_features = true;
        cfg.dmgard.train.epochs = 35;
        let train_fields = (0..ts / 2).map(|t| datasets::warpx(&wcfg, WarpXField::Jx, t));
        let (models, _) = train_models(train_fields, &cfg);

        let mut records = Vec::new();
        for t in ts / 2..ts {
            let field = datasets::warpx(&wcfg, WarpXField::Jx, t);
            records.extend(setup::records_for(&field, &cfg));
        }
        let per_level = dmgard_prediction_errors(&records, &models.dmgard);
        let all: Vec<i64> = per_level.iter().flatten().copied().collect();
        let mean_abs = all.iter().map(|e| e.abs() as f64).sum::<f64>() / all.len() as f64;
        let within1 = output::fraction_within(&all, 1);
        let tail = 1.0 - output::fraction_within(&all, 2);
        rows.push(vec![
            name.to_string(),
            format!("{mean_abs:.3}"),
            format!("{:.1}%", within1 * 100.0),
            format!("{:.1}%", tail * 100.0),
        ]);
    }
    output::print_table(
        "Ablation: D-MGARD loss function (J_x, test half)",
        &["loss", "mean_abs_err(planes)", "within_1", "tail(|e|>=3)"],
        &rows,
    );
    output::write_csv("ablation_loss.csv", &["loss", "mean_abs_err", "within_1", "tail"], &rows);
    println!("\nPaper: Huber combines MSE's outlier control with MAE's average accuracy.");
}
