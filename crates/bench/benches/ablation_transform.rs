//! Ablation (DESIGN.md §3): interpolation-only vs L2-projected multilevel
//! transform.
//!
//! The L2 correction is what MGARD's approximation theory rests on, but it
//! is also what makes the absolute-row-sum constants grow (5^d vs 2^d per
//! level). This bench quantifies both sides: reconstruction quality at a
//! fixed plane budget, and the pessimism gap of the theory estimator.

use pmr_bench::{bench_size, bench_timesteps, datasets, output, sci};
use pmr_field::error::max_abs_error;
use pmr_mgard::{CompressConfig, Compressed, RetrievalPlan, TransformMode};
use pmr_sim::WarpXField;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let t = ts / 2;
    let field = datasets::warpx(&datasets::warpx_cfg(size, ts), WarpXField::Jx, t);

    let mut rows = Vec::new();
    for (name, mode) in [
        ("Interpolation", TransformMode::Interpolation),
        ("L2Projection", TransformMode::L2Projection),
    ] {
        let cfg = CompressConfig { mode, ..Default::default() };
        let c = Compressed::compress(&field, &cfg);

        // Reconstruction error at a fixed uniform plane budget.
        let budget_plan = RetrievalPlan::from_planes(vec![12; c.num_levels()]);
        let rec = c.retrieve(&budget_plan);
        let err_at_budget = max_abs_error(field.data(), rec.data());
        let bytes_at_budget = c.retrieved_bytes(&budget_plan);

        // Pessimism gap at a mid bound.
        let abs = c.absolute_bound(1e-5);
        let plan = c.plan_theory(abs);
        let rec2 = c.retrieve(&plan);
        let achieved = max_abs_error(field.data(), rec2.data());
        let gap = abs / achieved.max(1e-300);

        rows.push(vec![
            name.to_string(),
            format!("{:?}", c.theory_constants().iter().map(|v| *v as u64).collect::<Vec<_>>()),
            sci(err_at_budget),
            bytes_at_budget.to_string(),
            format!("{gap:.0}x"),
            c.retrieved_bytes(&plan).to_string(),
        ]);
    }
    output::print_table(
        &format!("Ablation: transform mode (J_x, t={t}, {size}^3)"),
        &[
            "mode",
            "theory_constants",
            "err@12planes",
            "bytes@12planes",
            "pessimism_gap@1e-5",
            "bytes@1e-5",
        ],
        &rows,
    );
    output::write_csv(
        "ablation_transform.csv",
        &["mode", "constants", "err_at_budget", "bytes_at_budget", "gap", "bytes_at_bound"],
        &rows,
    );
    println!(
        "\nThe L2 correction buys reconstruction quality per plane at the cost of a\n\
         larger provable constant — more theory pessimism for the DNNs to reclaim."
    );
}
