//! Baseline comparison (paper §V): the MGARD-style multilevel progressive
//! path vs a ZFP-like block-transform codec with truncation-based
//! progressive decoding.
//!
//! Two comparisons are reported:
//!
//! 1. **Matched requested bound** — each codec plans with its own
//!    conservative error control. The block path's single-stage bound is
//!    far less pessimistic than the multilevel theory constants, so it can
//!    read fewer bytes at loose tolerances (while achieving errors much
//!    closer to the bound).
//! 2. **Matched achieved error** — the quality-for-bytes frontier. Here
//!    the multilevel path should win: per-level plane control spends bits
//!    unevenly across scales, which whole-stream truncation cannot.

use pmr_bench::{bench_size, bench_timesteps, datasets, human_bytes, output, sci};
use pmr_blockcodec::{BlockCompressed, BlockConfig};
use pmr_field::error::max_abs_error;
use pmr_mgard::{CompressConfig, Compressed};
use pmr_sim::WarpXField;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let t = ts / 2;
    let field = datasets::warpx(&datasets::warpx_cfg(size, ts), WarpXField::Jx, t);
    let raw = (field.len() * 8) as u64;

    let ml = Compressed::compress(&field, &CompressConfig::default());
    let bc = BlockCompressed::compress(&field, &BlockConfig::default());
    println!(
        "payloads: multilevel {} | block {} | raw {}",
        human_bytes(ml.total_bytes()),
        human_bytes(bc.total_bytes()),
        human_bytes(raw)
    );

    let mut rows = Vec::new();
    let mut ml_wins = 0usize;
    let mut total = 0usize;
    for k in -8i32..=-1 {
        let rel = 10f64.powi(k);
        let abs = ml.absolute_bound(rel);
        // Multilevel: theory plan.
        let mplan = ml.plan_theory(abs);
        let mrec = ml.retrieve(&mplan);
        let merr = max_abs_error(field.data(), mrec.data());
        let mbytes = ml.retrieved_bytes(&mplan);
        // Block codec: plane prefix via its own (also pessimistic) bound.
        let b = bc.plan(abs);
        let brec = bc.retrieve(b);
        let berr = max_abs_error(field.data(), brec.data());
        let bbytes = bc.bytes_for(b);
        if mbytes <= bbytes {
            ml_wins += 1;
        }
        total += 1;
        rows.push(vec![
            sci(rel),
            human_bytes(mbytes),
            sci(merr),
            human_bytes(bbytes),
            sci(berr),
            format!("{:.2}x", bbytes as f64 / mbytes.max(1) as f64),
        ]);
    }
    output::print_table(
        &format!("Baseline 1: matched requested bound, own error control (J_x, t={t}, {size}^3)"),
        &["rel_bound", "mgard_bytes", "mgard_err", "block_bytes", "block_err", "block/mgard"],
        &rows,
    );
    output::write_csv(
        "baseline_block_bound.csv",
        &["rel_bound", "mgard_bytes", "mgard_err", "block_bytes", "block_err", "ratio"],
        &rows,
    );
    println!(
        "  (multilevel cheaper on {ml_wins}/{total} bounds — the block path's tighter\n\
         \u{20}  single-stage bound wins at loose tolerances, at much looser achieved error)"
    );

    // Comparison 2: bytes at matched *achieved* error. For each multilevel
    // operating point, find the cheapest block prefix that reaches at
    // least that quality.
    let mut rows2 = Vec::new();
    let mut ml_frontier_wins = 0usize;
    let mut total2 = 0usize;
    for k in -7i32..=-1 {
        let rel = 10f64.powi(k);
        let mplan = ml.plan_theory(ml.absolute_bound(rel));
        let mrec = ml.retrieve(&mplan);
        let merr = max_abs_error(field.data(), mrec.data());
        let mbytes = ml.retrieved_bytes(&mplan);
        // Cheapest block prefix achieving err <= merr.
        let mut bbytes = None;
        for b in 0..=bc.num_planes() {
            let rec = bc.retrieve(b);
            if max_abs_error(field.data(), rec.data()) <= merr {
                bbytes = Some(bc.bytes_for(b));
                break;
            }
        }
        let (bb, ratio) = match bbytes {
            Some(bb) => (human_bytes(bb), format!("{:.2}x", bb as f64 / mbytes.max(1) as f64)),
            None => ("unreachable".to_string(), "-".to_string()),
        };
        if bbytes.is_none_or(|bb| bb >= mbytes) {
            ml_frontier_wins += 1;
        }
        total2 += 1;
        rows2.push(vec![sci(merr), human_bytes(mbytes), bb, ratio]);
    }
    output::print_table(
        "Baseline 2: bytes at matched achieved error",
        &["achieved_err", "mgard_bytes", "block_bytes", "block/mgard"],
        &rows2,
    );
    output::write_csv(
        "baseline_block_matched.csv",
        &["achieved_err", "mgard_bytes", "block_bytes", "ratio"],
        &rows2,
    );
    println!(
        "\nOn the quality-for-bytes frontier the multilevel path wins \
         {ml_frontier_wins}/{total2} points:\nper-level plane control spends bits unevenly \
         across scales; stream truncation cannot."
    );
}
