//! Figure 2: requested error tolerance vs the error achieved by the
//! theory-based retrieval (fields `J_x` from WarpX and `D_u` from
//! Gray-Scott).
//!
//! Expected shape: the achieved error sits *below* the requested tolerance
//! by one to three orders of magnitude across the sweep — the
//! over-pessimism that motivates the whole paper.

use pmr_bench::{bench_size, bench_timesteps, datasets, output, sci, setup};
use pmr_core::collect_records;
use pmr_field::Field;
use pmr_mgard::{CompressConfig, Compressed};
use pmr_sim::{GsSpecies, WarpXField};

fn series(field: &Field, label: &str, rows: &mut Vec<Vec<String>>) -> (f64, f64) {
    let c = Compressed::compress(field, &CompressConfig::default());
    let bounds = setup::sparse_rel_bounds();
    let recs = collect_records(field, &c, &bounds);
    let mut min_gap = f64::INFINITY;
    let mut max_gap = 0.0f64;
    for r in &recs {
        let gap = if r.achieved_err > 0.0 { r.abs_bound / r.achieved_err } else { f64::INFINITY };
        if gap.is_finite() {
            min_gap = min_gap.min(gap);
            max_gap = max_gap.max(gap);
        }
        rows.push(vec![
            label.to_string(),
            sci(r.rel_bound),
            sci(r.abs_bound),
            sci(r.achieved_err),
            if gap.is_finite() { format!("{gap:.1}x") } else { "inf".to_string() },
        ]);
    }
    (min_gap, max_gap)
}

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let t = ts / 2;

    let jx = datasets::warpx(&datasets::warpx_cfg(size, ts), WarpXField::Jx, t);
    let du = datasets::grayscott(&datasets::grayscott_cfg(size, ts), GsSpecies::U, t);

    let mut rows = Vec::new();
    let (jx_min, jx_max) = series(&jx, "J_x", &mut rows);
    let (du_min, du_max) = series(&du, "D_u", &mut rows);

    output::print_table(
        &format!("Fig 2: requested vs achieved error (t={t}, {size}^3)"),
        &["field", "rel_bound", "requested_abs", "achieved_abs", "gap"],
        &rows,
    );
    output::write_csv(
        "fig02_error_gap.csv",
        &["field", "rel_bound", "requested_abs", "achieved_abs", "gap"],
        &rows,
    );

    println!("\nPessimism gap (requested / achieved):");
    println!("  J_x: {jx_min:.1}x .. {jx_max:.1}x");
    println!("  D_u: {du_min:.1}x .. {du_max:.1}x");
    println!("Paper: achieved error is constantly below requested, often by orders of magnitude.");
    assert!(jx_max > 5.0, "expected a significant pessimism gap for J_x");
    assert!(du_max > 5.0, "expected a significant pessimism gap for D_u");
}
