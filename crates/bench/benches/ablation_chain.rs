//! Ablation (paper §III-C, Fig. 5a/6): chained multi-output regression vs
//! independent per-level MLPs.
//!
//! The per-level plane counts are strongly correlated; CMOR feeds
//! `b_0..b_{l-1}` into model `l` to exploit that. This bench trains both
//! variants and compares accuracy.

use pmr_bench::{bench_timesteps, datasets, output, setup};
use pmr_core::experiment::{dmgard_prediction_errors, train_models};
use pmr_sim::WarpXField;

fn main() {
    let size = 17usize;
    let ts = bench_timesteps().min(16);
    let wcfg = datasets::warpx_cfg(size, ts);

    let mut rows = Vec::new();
    for (name, chained) in [("CMOR (chained)", true), ("independent MLPs", false)] {
        let mut cfg = setup::experiment_config();
        cfg.dmgard.chained = chained;
        let train_fields = (0..ts / 2).map(|t| datasets::warpx(&wcfg, WarpXField::Jx, t));
        let (models, _) = train_models(train_fields, &cfg);

        let mut records = Vec::new();
        for t in ts / 2..ts {
            let field = datasets::warpx(&wcfg, WarpXField::Jx, t);
            records.extend(setup::records_for(&field, &cfg));
        }
        let per_level = dmgard_prediction_errors(&records, &models.dmgard);
        let all: Vec<i64> = per_level.iter().flatten().copied().collect();
        let mean_abs = all.iter().map(|e| e.abs() as f64).sum::<f64>() / all.len() as f64;
        let within1 = output::fraction_within(&all, 1);
        // The paper stresses the finest level matters most for bytes.
        let finest = per_level.last().unwrap();
        let finest_within1 = output::fraction_within(finest, 1);
        rows.push(vec![
            name.to_string(),
            format!("{mean_abs:.3}"),
            format!("{:.1}%", within1 * 100.0),
            format!("{:.1}%", finest_within1 * 100.0),
        ]);
    }
    output::print_table(
        "Ablation: chained (CMOR) vs independent per-level regressors (J_x)",
        &["model", "mean_abs_err(planes)", "within_1", "finest_level_within_1"],
        &rows,
    );
    output::write_csv(
        "ablation_chain.csv",
        &["model", "mean_abs_err", "within_1", "finest_within_1"],
        &rows,
    );
    println!("\nPaper: the chain exploits inter-level correlation; independent MLPs\nsuffer lower accuracy [22].");
}
