//! codec_throughput — committed perf trajectory for the bit-plane codec.
//!
//! Measures single-thread `LevelEncoding::encode_with` / `decode_with`
//! throughput under every [`PlaneKernel`] (the legacy scalar oracle, the
//! portable SWAR tile kernel, and the SIMD tile kernel when the host ISA
//! supports one) on a synthetic 512³-scale coefficient array, and writes the
//! results as `BENCH_codec.json`.  The committed copy of that file at the
//! repo root is the perf trajectory: CI re-runs this bench at a reduced size
//! and fails the PR if the tiled-kernel speedup over the scalar baseline
//! regresses by more than 10 % against the committed value.
//!
//! Environment knobs (all optional):
//!
//! - `PMR_CODEC_BENCH_SIZE`  — `512cube`, `64cube`, or `both` (default `both`;
//!   CI uses `64cube` so the job stays fast).
//! - `PMR_CODEC_BENCH_OUT`   — output path (default `BENCH_codec.json` in the
//!   current directory; pass `-` to print to stdout only).
//! - `PMR_CODEC_BENCH_BASELINE` — path to a committed `BENCH_codec.json`;
//!   when set, the run compares its kernel-vs-scalar speedups against the
//!   baseline entry with the same size label and exits non-zero on a >10 %
//!   regression.  Speedup ratios — not absolute GB/s — are compared so the
//!   gate is portable across runner hardware.
//!
//! Run with `cargo bench --bench codec_throughput`.

use pmr_codec::transpose;
use pmr_mgard::{ExecPolicy, LevelEncoding, PlaneKernel};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Cargo runs benches with the package dir as cwd; anchor relative paths at
/// the workspace root so `BENCH_codec.json` means the same thing everywhere.
fn from_repo_root(path: &str) -> PathBuf {
    let p = Path::new(path);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .join(p)
}

const NUM_PLANES: u32 = 32;
/// Decode prefixes reported in the per-run breakdown (planes retrieved).
const PREFIXES: [u32; 3] = [8, 16, NUM_PLANES];

/// Deterministic synthetic coefficient field: a smooth multiscale signal with
/// xorshift noise, so every bit plane carries structure (all-zero planes would
/// flatter RLE and overstate throughput).
fn synth_coeffs(n: usize) -> Vec<f64> {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let x = i as f64;
        let smooth = (x * 0.000_31).sin() * 40.0 + (x * 0.017).cos() * 4.0;
        out.push(smooth + noise);
    }
    out
}

struct KernelRun {
    kernel: &'static str,
    encode_s: f64,
    decode_s: f64,
    encode_gbps: f64,
    decode_gbps: f64,
    /// GB/s of reconstructed field per decode prefix, aligned with `PREFIXES`.
    prefix_gbps: [f64; PREFIXES.len()],
    /// Compressed bytes per plane (the per-plane breakdown of the payload).
    plane_bytes: Vec<u64>,
}

/// Minimum wall clock each timed section must accumulate.  The fast kernels
/// finish a 64cube decode in ~1 ms, and on a busy runner a handful of such
/// iterations is far too noisy for the 10 % regression gate — keep batching
/// until the section is long enough to time reliably.
const MIN_TIMED_SECS: f64 = 0.75;

/// Run `f` in batches of `reps` (at least two batches, and until
/// [`MIN_TIMED_SECS`] has elapsed) and return the *fastest* batch's seconds
/// per iteration.  Min-of-batches rather than the mean: the 512³ sections
/// allocate and free ~1 GB per call, and a sporadic kernel-side stall
/// (page-fault storms, THP compaction) in one batch would otherwise swing
/// the reported throughput by multiples.
fn time_section(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    let mut batches = 0u32;
    let start = Instant::now();
    loop {
        let batch = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(batch.elapsed().as_secs_f64() / f64::from(reps));
        batches += 1;
        if batches >= 2 && start.elapsed().as_secs_f64() >= MIN_TIMED_SECS {
            return best;
        }
    }
}

fn bench_kernel(
    kernel: PlaneKernel,
    name: &'static str,
    coeffs: &[f64],
    reps: u32,
) -> (KernelRun, u64) {
    let policy = ExecPolicy::serial().with_kernel(kernel);
    let field_gb = (coeffs.len() * 8) as f64 / 1e9;

    // Warm-up + reference artifact (also used for decode timing below).
    let enc = LevelEncoding::encode_with(coeffs, NUM_PLANES, &policy);
    let encode_s = time_section(reps, || {
        std::hint::black_box(LevelEncoding::encode_with(coeffs, NUM_PLANES, &policy));
    });

    let mut prefix_gbps = [0.0; PREFIXES.len()];
    let mut decode_s = 0.0;
    let mut checksum = 0u64;
    for (slot, &b) in prefix_gbps.iter_mut().zip(&PREFIXES) {
        let out = enc.decode_with(b, &policy);
        let secs = time_section(reps, || {
            std::hint::black_box(enc.decode_with(b, &policy));
        });
        *slot = field_gb / secs;
        if b == NUM_PLANES {
            decode_s = secs;
            checksum = out.iter().fold(0u64, |acc, v| acc.wrapping_add(v.to_bits()).rotate_left(1));
        }
    }

    let plane_bytes = (0..NUM_PLANES).map(|k| enc.plane_size(k)).collect();
    (
        KernelRun {
            kernel: name,
            encode_s,
            decode_s,
            encode_gbps: field_gb / encode_s,
            decode_gbps: field_gb / decode_s,
            prefix_gbps,
            plane_bytes,
        },
        checksum,
    )
}

struct SizeResult {
    label: &'static str,
    n: usize,
    runs: Vec<KernelRun>,
    encode_speedup: f64,
    decode_speedup: f64,
}

fn bench_size(label: &'static str, n: usize, reps: u32) -> SizeResult {
    eprintln!("codec_throughput: {label} (n = {n}, reps = {reps})");
    let coeffs = synth_coeffs(n);

    let mut kernels: Vec<(PlaneKernel, &'static str)> =
        vec![(PlaneKernel::Scalar, "scalar"), (PlaneKernel::Swar, "swar")];
    if transpose::detected_isa().is_some() {
        kernels.push((PlaneKernel::Simd, "simd"));
    }

    let mut runs = Vec::new();
    let mut checksums = Vec::new();
    for (kernel, name) in kernels {
        let (run, checksum) = bench_kernel(kernel, name, &coeffs, reps);
        eprintln!(
            "  {:<6}  encode {:>7.3} GB/s   decode {:>7.3} GB/s",
            name, run.encode_gbps, run.decode_gbps
        );
        runs.push(run);
        checksums.push((name, checksum));
    }
    // The kernels are supposed to be bit-identical; a checksum mismatch here
    // means the numbers above compare different computations.
    for (name, checksum) in &checksums[1..] {
        assert_eq!(*checksum, checksums[0].1, "{name} decode diverged from the scalar oracle");
    }

    // Speedup of the best tiled kernel (what `Auto` resolves to) vs scalar.
    let scalar = &runs[0];
    let best = runs.last().expect("at least the scalar run exists");
    let (best_name, encode_speedup, decode_speedup) =
        (best.kernel, scalar.encode_s / best.encode_s, scalar.decode_s / best.decode_s);
    eprintln!(
        "  speedup vs scalar ({best_name}): encode {encode_speedup:.2}x  decode {decode_speedup:.2}x"
    );
    SizeResult { label, n, encode_speedup, decode_speedup, runs }
}

fn fmt_f64_list(vals: impl Iterator<Item = f64>) -> String {
    let items: Vec<String> = vals.map(|v| format!("{v:.3}")).collect();
    format!("[{}]", items.join(", "))
}

fn to_json(results: &[SizeResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"codec-throughput\",\n");
    let _ = writeln!(s, "  \"isa\": \"{}\",", transpose::detected_isa().unwrap_or("swar-fallback"));
    let _ = writeln!(s, "  \"num_planes\": {NUM_PLANES},");
    s.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        for (j, run) in r.runs.iter().enumerate() {
            let planes: Vec<String> = run.plane_bytes.iter().map(u64::to_string).collect();
            let _ = write!(
                s,
                "    {{\"size\": \"{}\", \"n\": {}, \"kernel\": \"{}\", \
                 \"encode_gbps\": {:.3}, \"decode_gbps\": {:.3}, \
                 \"encode_s\": {:.4}, \"decode_s\": {:.4}, \
                 \"prefix_planes\": [{}], \"prefix_gbps\": {}, \
                 \"plane_bytes\": [{}]}}",
                r.label,
                r.n,
                run.kernel,
                run.encode_gbps,
                run.decode_gbps,
                run.encode_s,
                run.decode_s,
                PREFIXES.map(|p| p.to_string()).join(", "),
                fmt_f64_list(run.prefix_gbps.iter().copied()),
                planes.join(", "),
            );
            let last = i + 1 == results.len() && j + 1 == r.runs.len();
            s.push_str(if last { "\n" } else { ",\n" });
        }
    }
    s.push_str("  ],\n  \"summary\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"size\": \"{}\", \"kernel\": \"{}\", \
             \"encode_speedup\": {:.3}, \"decode_speedup\": {:.3}}}",
            r.label,
            r.runs.last().map_or("scalar", |run| run.kernel),
            r.encode_speedup,
            r.decode_speedup,
        );
        s.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pull `"<key>": <f64>` out of the baseline's summary entry for `label`.
/// The writer above controls the format, so a positional scan is reliable.
fn baseline_field(text: &str, label: &str, key: &str) -> Option<f64> {
    let summary = text.find("\"summary\"")?;
    let entry = text[summary..].find(&format!("\"size\": \"{label}\""))? + summary;
    let field = text[entry..].find(&format!("\"{key}\": "))? + entry;
    let start = field + key.len() + 4;
    let rest = &text[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn check_regression(results: &[SizeResult], baseline_path: &str) -> Result<(), String> {
    let path = from_repo_root(baseline_path);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    for r in results {
        for (key, current) in
            [("encode_speedup", r.encode_speedup), ("decode_speedup", r.decode_speedup)]
        {
            let Some(committed) = baseline_field(&text, r.label, key) else {
                eprintln!("codec_throughput: no baseline entry for {} {key}", r.label);
                continue;
            };
            let floor = committed * 0.9;
            if current < floor {
                return Err(format!(
                    "{} {key} regressed: {current:.3}x vs committed {committed:.3}x \
                     (floor {floor:.3}x)",
                    r.label
                ));
            }
            eprintln!(
                "codec_throughput: {} {key} {current:.3}x >= floor {floor:.3}x (ok)",
                r.label
            );
        }
    }
    Ok(())
}

fn main() {
    // `cargo bench` forwards harness flags like `--bench`; ignore them.
    let size = std::env::var("PMR_CODEC_BENCH_SIZE").unwrap_or_else(|_| "both".into());
    let mut results = Vec::new();
    // Small size first: the 512³ leg drags a ~1 GB working set through the
    // cache hierarchy and depresses a subsequent 64cube leg by ~2x.
    if size == "64cube" || size == "both" {
        results.push(bench_size("64cube", 64 * 64 * 64, 8));
    }
    if size == "512cube" || size == "both" {
        results.push(bench_size("512cube", 512 * 512 * 512, 1));
    }
    assert!(
        !results.is_empty(),
        "PMR_CODEC_BENCH_SIZE must be 512cube, 64cube, or both (got {size})"
    );

    let json = to_json(&results);
    let out = std::env::var("PMR_CODEC_BENCH_OUT").unwrap_or_else(|_| "BENCH_codec.json".into());
    if out == "-" {
        print!("{json}");
    } else {
        let out = from_repo_root(&out);
        if let Err(e) = std::fs::write(&out, &json) {
            eprintln!("codec_throughput: failed to write {}: {e}", out.display());
            std::process::exit(1);
        }
        eprintln!("codec_throughput: wrote {}", out.display());
    }

    if let Ok(baseline) = std::env::var("PMR_CODEC_BENCH_BASELINE") {
        if let Err(msg) = check_regression(&results, &baseline) {
            eprintln!("codec_throughput: REGRESSION: {msg}");
            std::process::exit(1);
        }
    }
}
