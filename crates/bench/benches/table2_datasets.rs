//! Table II: application datasets.
//!
//! Prints the dataset inventory actually used at bench scale next to the
//! paper's original dimensions, and verifies the generated snapshots exist
//! and have the stated shapes.

use pmr_bench::{bench_size, bench_timesteps, datasets, output};
use pmr_sim::{GsSpecies, WarpXField};

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let wx = datasets::warpx_cfg(size, ts);
    let gs = datasets::grayscott_cfg(size, ts);

    // Touch one snapshot per field to verify generation works.
    let du = datasets::grayscott(&gs, GsSpecies::U, 0);
    let dv = datasets::grayscott(&gs, GsSpecies::V, 0);
    let bx = datasets::warpx(&wx, WarpXField::Bx, 0);
    assert_eq!(du.shape().dims(), [size, size, size]);
    assert_eq!(dv.shape().dims(), [size, size, size]);
    assert_eq!(bx.shape().dims(), [size, size, size]);

    let rows = vec![
        vec![
            "Gray-Scott".to_string(),
            "D_u, D_v".to_string(),
            format!("{size}^3 (paper: 512^3)"),
            format!("{ts} (paper: 512)"),
        ],
        vec![
            "WarpX (synthetic)".to_string(),
            "B_x, E_x, J_x".to_string(),
            format!("{size}^3 (paper: 512^3)"),
            format!("{ts} (paper: 512)"),
        ],
    ];
    output::print_table(
        "Table II: application datasets (scaled reproduction)",
        &["Application", "Fields of use", "Dimensions", "# Timesteps"],
        &rows,
    );
    output::write_csv(
        "table2_datasets.csv",
        &["application", "fields", "dimensions", "timesteps"],
        &rows,
    );
    println!("\nAll datasets are double-precision floating-point values, as in the paper.");
}
