//! Figure 1: the I/O cost incurred by the requested tolerance vs the I/O
//! cost incurred by the over-pessimistic error estimation (fields `B_x`
//! and `E_x` from WarpX).
//!
//! "Requested" I/O cost is what an exact error-control oracle would read:
//! the smallest greedy plan whose *actual* reconstruction error still
//! satisfies the bound (found here by bisection over the greedy path).
//! "Achieved" is what the theory estimator actually reads. Expected shape:
//! achieved > requested across the sweep.

use pmr_bench::{bench_size, bench_timesteps, datasets, human_bytes, output, sci, setup};
use pmr_field::{error::max_abs_error, Field};
use pmr_mgard::{CompressConfig, Compressed};
use pmr_sim::WarpXField;

/// Bytes of the smallest theory-path plan whose actual error meets `abs`.
///
/// The greedy path is monotone in the internal target: planning for a
/// looser internal bound fetches a prefix of the tighter plan. Bisect the
/// internal target so the actual error lands just under `abs`.
fn oracle_bytes(field: &Field, c: &Compressed, abs: f64) -> u64 {
    let mut lo = abs; // internal target that certainly satisfies the bound
    let mut hi = abs * 1e6; // hopefully loose enough to violate it
                            // Ensure hi actually violates; otherwise the oracle reads ~nothing.
    for _ in 0..40 {
        let plan = c.plan_theory(hi);
        let err = max_abs_error(field.data(), c.retrieve(&plan).data());
        if err > abs {
            break;
        }
        lo = hi;
        hi *= 8.0;
    }
    for _ in 0..18 {
        let mid = (lo.ln() * 0.5 + hi.ln() * 0.5).exp();
        let plan = c.plan_theory(mid);
        let err = max_abs_error(field.data(), c.retrieve(&plan).data());
        if err <= abs {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    c.retrieved_bytes(&c.plan_theory(lo))
}

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let t = ts / 2;
    let cfg = datasets::warpx_cfg(size, ts);

    let mut rows = Vec::new();
    for wf in [WarpXField::Bx, WarpXField::Ex] {
        let field = datasets::warpx(&cfg, wf, t);
        let c = Compressed::compress(&field, &CompressConfig::default());
        for &rel in &setup::sparse_rel_bounds() {
            let abs = c.absolute_bound(rel);
            let achieved = c.retrieved_bytes(&c.plan_theory(abs));
            let requested = oracle_bytes(&field, &c, abs);
            let overhead =
                if requested > 0 { achieved as f64 / requested as f64 } else { f64::INFINITY };
            rows.push(vec![
                field.name().to_string(),
                sci(rel),
                human_bytes(requested),
                human_bytes(achieved),
                if overhead.is_finite() { format!("{overhead:.2}x") } else { "inf".into() },
            ]);
        }
    }

    output::print_table(
        &format!("Fig 1: I/O cost, requested tolerance vs over-pessimistic estimation (t={t})"),
        &["field", "rel_bound", "requested_io", "achieved_io", "overhead"],
        &rows,
    );
    output::write_csv(
        "fig01_io_cost.csv",
        &["field", "rel_bound", "requested_io", "achieved_io", "overhead"],
        &rows,
    );
    println!("\nPaper: the achieved I/O cost is significantly higher than requested (Fig 1).");
}
