//! Figure 11: D-MGARD across data resolutions.
//!
//! Paper: train on 64^3 `J_x`, test on 128^3 and 256^3; accuracy holds at
//! 2x the training resolution and degrades at 4x. Scaled here: train 17^3,
//! test 33^3 and 49^3 (same 2x / ~3x ratios, same 5-level hierarchy).

use pmr_bench::{bench_timesteps, datasets, setup};
use pmr_core::experiment::{dmgard_prediction_errors, train_models};
use pmr_sim::WarpXField;

fn main() {
    let ts = bench_timesteps();
    let train_size = 17usize;
    let test_sizes = [17usize, 33, 49];
    let cfg = setup::experiment_config();

    println!("Training D-MGARD on J_x at {train_size}^3...");
    let wcfg_train = datasets::warpx_cfg(train_size, ts);
    let train_fields = (0..ts / 2).map(|t| datasets::warpx(&wcfg_train, WarpXField::Jx, t));
    let (models, _) = train_models(train_fields, &cfg);

    let mut within1 = Vec::new();
    for &size in &test_sizes {
        let wcfg = datasets::warpx_cfg(size, ts);
        let mut records = Vec::new();
        for t in (ts / 2..ts).step_by(2) {
            let field = datasets::warpx(&wcfg, WarpXField::Jx, t);
            records.extend(setup::records_for(&field, &cfg));
        }
        let per_level = dmgard_prediction_errors(&records, &models.dmgard);
        let w1 = setup::report_prediction_errors(
            &format!("Fig 11: D-MGARD trained at {train_size}^3, tested at {size}^3"),
            &format!("fig11_dmgard_resolution_{size}.csv"),
            &per_level,
        );
        within1.push((size, w1));
    }

    println!("\nWithin-plus/minus-1-plane fraction by test resolution:");
    for (size, w1) in &within1 {
        println!("  {size}^3: {:.1}%", w1 * 100.0);
    }
    println!(
        "Paper: accuracy holds at 2x the training resolution and drops significantly\n\
         beyond, as higher resolutions manifest local features the model never saw."
    );
    // Shape check: same-resolution accuracy should be the best of the set.
    let same = within1[0].1;
    let far = within1.last().unwrap().1;
    assert!(
        same >= far - 0.05,
        "expected accuracy to be no worse at the training resolution (same={same:.2} far={far:.2})"
    );
}
