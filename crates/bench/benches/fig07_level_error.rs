//! Figure 7: the absolute error of each coefficient level as an increasing
//! number of bit-planes is retrieved (WarpX fields at t = mid).
//!
//! Expected shape: error magnitudes differ across levels by orders of
//! magnitude, which is why one shared mapping constant C biases the error
//! control (the E-MGARD motivation).

use pmr_bench::{bench_size, bench_timesteps, datasets, output, sci};
use pmr_mgard::{CompressConfig, Compressed};
use pmr_sim::WarpXField;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let t = ts / 2;
    let cfg = datasets::warpx_cfg(size, ts);
    let ccfg = CompressConfig::default();

    for wf in WarpXField::all() {
        let field = datasets::warpx(&cfg, wf, t);
        let c = Compressed::compress(&field, &ccfg);
        let mut rows = Vec::new();
        for b in (0..=c.num_planes()).step_by(2) {
            let mut row = vec![b.to_string()];
            for lvl in c.levels() {
                row.push(sci(lvl.error_at(b)));
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["planes".to_string()];
        headers.extend((0..c.num_levels()).map(|l| format!("level_{l}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        output::print_table(
            &format!("Fig 7: per-level absolute error vs #planes ({}, t={t})", field.name()),
            &headers_ref,
            &rows,
        );
        output::write_csv(
            &format!("fig07_level_error_{}.csv", field.name().replace('_', "").to_lowercase()),
            &headers_ref,
            &rows,
        );

        // Shape check: at b=0 the levels differ in magnitude significantly.
        let errs: Vec<f64> = c.levels().iter().map(|l| l.error_at(0)).collect();
        let max = errs.iter().cloned().fold(0.0f64, f64::max);
        let min = errs.iter().cloned().filter(|&e| e > 0.0).fold(f64::INFINITY, f64::min);
        println!(
            "  [{}] level error magnitudes at b=0 span {:.1} orders of magnitude",
            field.name(),
            (max / min).log10()
        );
    }
    println!("\nPaper: per-level error magnitudes differ significantly, so one shared\nmapping constant biases error control toward the coarse levels.");
}
