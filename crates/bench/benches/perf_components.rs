//! Criterion micro-benchmarks of the pipeline components: decomposition,
//! recomposition, bit-plane encoding, greedy planning, retrieval, and the
//! neural-network forward/training steps — each transform/codec stage in a
//! serial and a parallel variant so the speedup of the threaded data path
//! is measured directly (acceptance target: ≥ 1.5× on 48³ at 4+ threads).

use criterion::{criterion_group, criterion_main, Criterion};
use pmr_core::emgard::level_signature;
use pmr_field::{Field, Shape};
use pmr_mgard::{
    retrieve_many, CompressConfig, Compressed, DecodeOptions, Decomposer, ExecPolicy,
    LevelEncoding, PlaneKernel, TransformMode,
};
use pmr_nn::{Activation, Dataset, Matrix, Mlp, TrainConfig};
use std::hint::black_box;

fn test_field(n: usize) -> Field {
    Field::from_fn("bench", 0, Shape::cube(n), |x, y, z| {
        ((x as f64) * 0.31).sin() * ((y as f64) * 0.17).cos() + ((z as f64) * 0.05).sin()
    })
}

/// 4 workers unless the machine has fewer cores.
fn parallel_policy() -> ExecPolicy {
    ExecPolicy::with_threads(ExecPolicy::default().resolved_threads().clamp(1, 4))
}

fn bench_transform(c: &mut Criterion) {
    let field = test_field(33);
    let dec = Decomposer::new(field.shape(), 5, TransformMode::L2Projection);
    c.bench_function("decompose_33cube_l2", |b| {
        b.iter(|| {
            let mut data = field.data().to_vec();
            dec.decompose(black_box(&mut data));
            data
        })
    });
    let mut coeffs = field.data().to_vec();
    dec.decompose(&mut coeffs);
    c.bench_function("recompose_33cube_l2", |b| {
        b.iter(|| {
            let mut data = coeffs.clone();
            dec.recompose(black_box(&mut data));
            data
        })
    });
}

fn bench_transform_parallel(c: &mut Criterion) {
    let field = test_field(48);
    let dec = Decomposer::new(field.shape(), 5, TransformMode::L2Projection);
    let serial = ExecPolicy::serial();
    let par = parallel_policy();
    c.bench_function("decompose_48cube_serial", |b| {
        b.iter(|| {
            let mut data = field.data().to_vec();
            dec.decompose_with(black_box(&mut data), &serial);
            data
        })
    });
    c.bench_function("decompose_48cube_parallel", |b| {
        b.iter(|| {
            let mut data = field.data().to_vec();
            dec.decompose_with(black_box(&mut data), &par);
            data
        })
    });
    let mut coeffs = field.data().to_vec();
    dec.decompose(&mut coeffs);
    c.bench_function("recompose_48cube_serial", |b| {
        b.iter(|| {
            let mut data = coeffs.clone();
            dec.recompose_with(black_box(&mut data), &serial);
            data
        })
    });
    c.bench_function("recompose_48cube_parallel", |b| {
        b.iter(|| {
            let mut data = coeffs.clone();
            dec.recompose_with(black_box(&mut data), &par);
            data
        })
    });
}

fn bench_bitplane(c: &mut Criterion) {
    let field = test_field(33);
    let dec = Decomposer::new(field.shape(), 5, TransformMode::L2Projection);
    let mut data = field.data().to_vec();
    dec.decompose(&mut data);
    let levels = dec.interleave(&data);
    let finest = levels.last().unwrap().clone();
    // Same unified policy API (and kernel names) as `codec_throughput` /
    // `BENCH_codec.json`, so the per-level numbers here compose with the
    // committed trajectory instead of measuring a different entry point.
    let scalar = ExecPolicy::serial().with_kernel(PlaneKernel::Scalar);
    let tiled = ExecPolicy::serial(); // kernel: Auto (SIMD or SWAR)
    c.bench_function("bitplane_encode_finest_level_scalar", |b| {
        b.iter(|| LevelEncoding::encode_with(black_box(&finest), 32, &scalar))
    });
    c.bench_function("bitplane_encode_finest_level_tiled", |b| {
        b.iter(|| LevelEncoding::encode_with(black_box(&finest), 32, &tiled))
    });
    let enc = LevelEncoding::encode_with(&finest, 32, &tiled);
    c.bench_function("bitplane_decode_16_planes_scalar", |b| {
        b.iter(|| enc.decode_with(black_box(16), &scalar))
    });
    c.bench_function("bitplane_decode_16_planes_tiled", |b| {
        b.iter(|| enc.decode_with(black_box(16), &tiled))
    });
    c.bench_function("level_signature", |b| b.iter(|| level_signature(black_box(&finest))));
}

fn bench_bitplane_parallel(c: &mut Criterion) {
    let field = test_field(48);
    let dec = Decomposer::new(field.shape(), 5, TransformMode::L2Projection);
    let mut data = field.data().to_vec();
    dec.decompose(&mut data);
    let finest = dec.interleave(&data).last().unwrap().clone();
    let serial = ExecPolicy::serial();
    let par = parallel_policy();
    c.bench_function("bitplane_encode_48cube_serial", |b| {
        b.iter(|| LevelEncoding::encode_with(black_box(&finest), 32, &serial))
    });
    c.bench_function("bitplane_encode_48cube_parallel", |b| {
        b.iter(|| LevelEncoding::encode_with(black_box(&finest), 32, &par))
    });
    let enc = LevelEncoding::encode(&finest, 32);
    c.bench_function("bitplane_decode_48cube_serial", |b| {
        b.iter(|| enc.decode_with(black_box(16), &serial))
    });
    c.bench_function("bitplane_decode_48cube_parallel", |b| {
        b.iter(|| enc.decode_with(black_box(16), &par))
    });
}

fn bench_batch_retrieval(c: &mut Criterion) {
    let fields: Vec<Field> = (0..8).map(|_| test_field(33)).collect();
    let cfg = CompressConfig::default();
    let artifacts = Compressed::compress_many(&fields, &cfg);
    let plans: Vec<_> = artifacts.iter().map(|a| a.plan_theory(a.absolute_bound(1e-5))).collect();
    let items: Vec<(&Compressed, &pmr_mgard::RetrievalPlan)> =
        artifacts.iter().zip(&plans).collect();
    c.bench_function("retrieve_8x33cube_loop", |b| {
        b.iter(|| {
            items
                .iter()
                .map(|(a, p)| {
                    a.decode_plan(black_box(p), &DecodeOptions::with_exec(ExecPolicy::serial()))
                        .expect("theory plan matches its artifact")
                })
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("retrieve_8x33cube_batch", |b| b.iter(|| retrieve_many(black_box(&items))));
}

fn bench_retrieval(c: &mut Criterion) {
    let field = test_field(33);
    let compressed = Compressed::compress(&field, &CompressConfig::default());
    c.bench_function("compress_33cube", |b| {
        b.iter(|| Compressed::compress(black_box(&field), &CompressConfig::default()))
    });
    let abs = compressed.absolute_bound(1e-5);
    c.bench_function("greedy_plan_1e-5", |b| b.iter(|| compressed.plan_theory(black_box(abs))));
    let plan = compressed.plan_theory(abs);
    c.bench_function("retrieve_1e-5", |b| b.iter(|| compressed.retrieve(black_box(&plan))));
    // The unified `pmr_core::retrieve` entry point, planning and decoding
    // through the same request type the daemon and CLI use.
    let dataset = pmr_core::Dataset::new(&compressed);
    c.bench_function("retrieve_1e-5_unified", |b| {
        b.iter(|| {
            pmr_core::retrieve(
                black_box(&dataset),
                &pmr_core::Theory,
                &pmr_core::RetrievalRequest::abs(abs).with_kernel(pmr_core::PlaneKernel::Auto),
                &pmr_core::Backend::Direct,
            )
            .expect("direct retrieval succeeds")
        })
    });
}

fn bench_nn(c: &mut Criterion) {
    let mut mlp = Mlp::new(
        &[11, 48, 48, 48, 48, 48, 48, 1],
        Activation::LeakyRelu(0.01),
        Activation::Identity,
        0,
    );
    let x = Matrix::from_vec(256, 11, (0..256 * 11).map(|i| (i as f32 * 0.01).sin()).collect());
    c.bench_function("mlp_forward_batch256", |b| b.iter(|| mlp.forward(black_box(&x))));

    let y = Matrix::from_vec(256, 1, (0..256).map(|i| (i % 30) as f32).collect());
    let data = Dataset::new(x.clone(), y);
    c.bench_function("mlp_train_epoch_batch256", |b| {
        b.iter(|| {
            let mut m = mlp.clone();
            let cfg = TrainConfig { epochs: 1, batch_size: 256, lr: 1e-3, ..Default::default() };
            pmr_nn::fit(&mut m, &data, &cfg)
        })
    });
}

criterion_group!(
    benches,
    bench_transform,
    bench_transform_parallel,
    bench_bitplane,
    bench_bitplane_parallel,
    bench_retrieval,
    bench_batch_retrieval,
    bench_nn
);
criterion_main!(benches);
