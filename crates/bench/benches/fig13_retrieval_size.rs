//! Figure 13: total retrieval size of D-MGARD and E-MGARD compared to the
//! original MGARD, accumulated across timesteps (WarpX), plus the
//! percentage of saved retrieval size (Equation 8).
//!
//! Paper headline: D-MGARD reads 5-40% less, E-MGARD 20-80% less, with
//! E-MGARD strongest at low PSNR. As an extension, the paper's future-work
//! combination of the two models (D-initialised, E-refined) is reported in
//! a fourth column.

use pmr_bench::{bench_size, bench_timesteps, datasets, human_bytes, output, setup};
use pmr_core::experiment::{compare_on_field, saving, train_models};
use pmr_sim::WarpXField;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let wcfg = datasets::warpx_cfg(size, ts);
    let cfg = setup::experiment_config();

    println!("Training D-MGARD and E-MGARD on J_x timesteps 0..{} ({}^3)...", ts / 2, size);
    let train_fields = (0..ts / 2).map(|t| datasets::warpx(&wcfg, WarpXField::Jx, t));
    let (models, _) = train_models(train_fields, &cfg);

    // Accumulate retrieval sizes across the test timesteps per bound.
    let bounds = setup::sparse_rel_bounds();
    // (rel, theory, d, e, combined, psnr)
    let mut acc: Vec<(f64, u64, u64, u64, u64, f64)> =
        bounds.iter().map(|&b| (b, 0, 0, 0, 0, 0.0)).collect();
    let test_ts: Vec<usize> = (ts / 2..ts).step_by(2).collect();
    let mut cases = 0usize;
    let mut d_violations = 0usize;
    let mut e_violations = 0usize;
    let mut c_violations = 0usize;
    for &t in &test_ts {
        let field = datasets::warpx(&wcfg, WarpXField::Jx, t);
        let rows = compare_on_field(&field, &models, &cfg, &bounds)
            .expect("trained models match the artifact");
        for (slot, row) in acc.iter_mut().zip(&rows) {
            slot.1 += row.theory.bytes;
            slot.2 += row.dmgard.bytes;
            slot.3 += row.emgard.bytes;
            slot.4 += row.combined.bytes;
            slot.5 += row.theory.psnr / test_ts.len() as f64;
            // Learned retrievers trade the hard guarantee for I/O; count
            // how often the requested bound is actually exceeded (ignoring
            // bounds below the quantization floor, which nothing can meet).
            let floor = row.theory.achieved_err;
            if row.abs_bound > floor {
                cases += 1;
                if row.dmgard.achieved_err > row.abs_bound {
                    d_violations += 1;
                }
                if row.emgard.achieved_err > row.abs_bound {
                    e_violations += 1;
                }
                if row.combined.achieved_err > row.abs_bound {
                    c_violations += 1;
                }
            }
        }
    }

    let mut rows = Vec::new();
    let mut d_savings = Vec::new();
    let mut e_savings = Vec::new();
    let mut c_savings = Vec::new();
    for &(rel, tb, db, eb, cb, psnr) in &acc {
        let sd = saving(tb, db);
        let se = saving(tb, eb);
        let sc = saving(tb, cb);
        d_savings.push(sd);
        e_savings.push(se);
        c_savings.push(sc);
        rows.push(vec![
            format!("{psnr:.1}"),
            format!("{rel:.0e}"),
            human_bytes(tb),
            human_bytes(db),
            human_bytes(eb),
            human_bytes(cb),
            format!("{:.1}%", sd * 100.0),
            format!("{:.1}%", se * 100.0),
            format!("{:.1}%", sc * 100.0),
        ]);
    }
    output::print_table(
        &format!(
            "Fig 13: total retrieval size across {} test timesteps (J_x, {}^3)",
            test_ts.len(),
            size
        ),
        &[
            "psnr_db",
            "rel_bound",
            "mgard",
            "d-mgard",
            "e-mgard",
            "combined",
            "saving_d",
            "saving_e",
            "saving_de",
        ],
        &rows,
    );
    output::write_csv(
        "fig13_retrieval_size.csv",
        &[
            "psnr_db",
            "rel_bound",
            "mgard_bytes",
            "dmgard_bytes",
            "emgard_bytes",
            "combined_bytes",
            "saving_d",
            "saving_e",
            "saving_de",
        ],
        &rows,
    );

    let rng = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(0.0f64, f64::max);
        (lo, hi)
    };
    let (dlo, dhi) = rng(&d_savings);
    let (elo, ehi) = rng(&e_savings);
    let (clo, chi) = rng(&c_savings);
    println!("\nSaved retrieval size (Equation 8):");
    println!("  D-MGARD:  {:.0}% .. {:.0}%   (paper: 5% - 40%)", dlo * 100.0, dhi * 100.0);
    println!("  E-MGARD:  {:.0}% .. {:.0}%   (paper: 20% - 80%)", elo * 100.0, ehi * 100.0);
    println!("  combined: {:.0}% .. {:.0}%   (paper future work)", clo * 100.0, chi * 100.0);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "  mean: D {:.0}%, E {:.0}%, combined {:.0}%  — E-MGARD strongest at low PSNR.",
        mean(&d_savings) * 100.0,
        mean(&e_savings) * 100.0,
        mean(&c_savings) * 100.0
    );
    println!(
        "  bound exceeded (no hard guarantee for learned retrievers): \
         D-MGARD {d_violations}/{cases}, E-MGARD {e_violations}/{cases}, \
         combined {c_violations}/{cases}"
    );
    assert!(ehi > 0.05, "E-MGARD produced no meaningful savings");
    assert!(
        c_violations <= d_violations,
        "the E-refinement should not make D-MGARD's bound violations worse"
    );
}
