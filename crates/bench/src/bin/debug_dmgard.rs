//! Scratch diagnostic for D-MGARD level-4 accuracy (not part of the bench
//! suite): inspects the err->b4 mapping and the model's fit on train vs
//! test records.

use pmr_bench::{bench_size, bench_timesteps, datasets, setup};
use pmr_core::experiment::train_models;
use pmr_sim::WarpXField;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let wcfg = datasets::warpx_cfg(size, ts);
    let cfg = setup::experiment_config();

    let train_fields = (0..ts / 2).map(|t| datasets::warpx(&wcfg, WarpXField::Jx, t));
    let (models, train_records) = train_models(train_fields, &cfg);

    // Fit quality on the training records themselves.
    let mut train_hits = 0usize;
    for r in &train_records {
        let p = models.dmgard.predict(&r.features, r.achieved_err);
        if (p[4] as i64 - r.planes[4] as i64).abs() <= 1 {
            train_hits += 1;
        }
    }
    println!(
        "train within-1 on level 4: {:.1}% ({} records)",
        train_hits as f64 / train_records.len() as f64 * 100.0,
        train_records.len()
    );

    // Show the mapping for one train timestep and one test timestep.
    for (label, t) in [("train t=4", 4usize), ("test t=20", 20)] {
        let field = datasets::warpx(&wcfg, WarpXField::Jx, t);
        let recs = setup::records_for(&field, &cfg);
        println!("\n{label}: rel_bound  log10(err)  b4_actual  b4_pred");
        for r in recs.iter().step_by(9) {
            let p = models.dmgard.predict(&r.features, r.achieved_err);
            println!(
                "  {:>9.0e}  {:>9.2}  {:>9}  {:>7}",
                r.rel_bound,
                r.achieved_err.max(1e-16).log10(),
                r.planes[4],
                p[4]
            );
        }
    }
}
