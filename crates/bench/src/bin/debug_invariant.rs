//! Diagnostics: per-timestep D-MGARD predictions on B_x vs J_x, and the
//! invariant-stat ranges.
use pmr_bench::{bench_size, bench_timesteps, datasets, setup};
use pmr_core::experiment::train_models;
use pmr_core::features;
use pmr_mgard::Compressed;
use pmr_sim::WarpXField;

fn main() {
    let size = bench_size();
    let ts = bench_timesteps();
    let wcfg = datasets::warpx_cfg(size, ts);
    let cfg = setup::experiment_config();
    let train_fields = (0..ts / 2).map(|t| datasets::warpx(&wcfg, WarpXField::Jx, t));
    let (models, _) = train_models(train_fields, &cfg);

    for wf in [WarpXField::Jx, WarpXField::Bx] {
        println!("\n=== {} per timestep at rel 1e-4 / 1e-2 ===", wf.field_name());
        for t in (0..ts).step_by(4) {
            let field = datasets::warpx(&wcfg, wf, t);
            let c = Compressed::compress(&field, &cfg.compress);
            let feats = features::retrieval_features(&field, &c);
            let inv = features::invariant_stats(&feats);
            let recs = pmr_core::collect_records(&field, &c, &[1e-4, 1e-2]);
            let mut line = format!(
                "t={t:>2} skew={:>6.2} kurt={:>7.2} ac={:>5.2} s4={:>8.2e} |",
                inv[0],
                inv[1],
                inv[2],
                10f32.powf(feats[features::NUM_BASE_FEATURES + 4])
            );
            for r in &recs {
                let p = models.dmgard.predict(&r.features, r.achieved_err);
                line += &format!("  b4 act={:>2} pred={:>2}", r.planes[4], p[4]);
            }
            println!("{line}");
        }
    }
}
