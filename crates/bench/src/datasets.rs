//! Scaled dataset configurations shared by all benches.

use pmr_sim::{DatasetCache, GrayScottConfig, GsSpecies, WarpXConfig, WarpXField};

/// WarpX-synthetic configuration at the bench scale.
pub fn warpx_cfg(size: usize, snapshots: usize) -> WarpXConfig {
    WarpXConfig { size, snapshots, ..Default::default() }
}

/// Gray-Scott configuration at the bench scale.
pub fn grayscott_cfg(size: usize, snapshots: usize) -> GrayScottConfig {
    GrayScottConfig { size, snapshots, ..Default::default() }
}

/// The shared on-disk cache for generated snapshots.
pub fn cache() -> DatasetCache {
    DatasetCache::default_cache()
}

/// Convenience: a WarpX snapshot via the cache.
pub fn warpx(cfg: &WarpXConfig, field: WarpXField, t: usize) -> pmr_field::Field {
    cache().warpx(cfg, field, t)
}

/// Convenience: a Gray-Scott snapshot via the cache.
pub fn grayscott(cfg: &GrayScottConfig, species: GsSpecies, t: usize) -> pmr_field::Field {
    cache().gray_scott(cfg, species, t)
}
