//! Shared harness for the figure/table regeneration benches.
//!
//! Every `benches/figNN_*.rs` target is a standalone binary (criterion
//! harness disabled) that regenerates one table or figure of the paper:
//! it prints the same series the paper plots and writes a CSV under
//! `results/`. This crate carries the common plumbing: scaled dataset
//! configurations, experiment setup, and table/CSV output.
//!
//! Scaling knobs (environment variables):
//!
//! * `PMR_BENCH_SIZE` — cube side of the generated grids (default 33;
//!   paper: 512),
//! * `PMR_BENCH_TIMESTEPS` — snapshots per field (default 32; paper: 512),
//! * `PMR_RESULTS_DIR` — where CSVs are written (default `./results`).

pub mod datasets;
pub mod output;
pub mod setup;

/// Cube side used by the benches (env `PMR_BENCH_SIZE`, default 33).
pub fn bench_size() -> usize {
    std::env::var("PMR_BENCH_SIZE").ok().and_then(|v| v.parse().ok()).unwrap_or(33)
}

/// Snapshot count used by the benches (env `PMR_BENCH_TIMESTEPS`,
/// default 32).
pub fn bench_timesteps() -> usize {
    std::env::var("PMR_BENCH_TIMESTEPS").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
}

/// Format a float in compact scientific notation.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.3e}")
    }
}

/// Format a byte count with a binary-unit suffix.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn sci_format() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1e-3), "1.000e-3");
    }

    #[test]
    fn env_defaults() {
        assert!(bench_size() >= 4);
        assert!(bench_timesteps() >= 1);
    }
}
