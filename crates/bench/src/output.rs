//! Table printing and CSV export for the figure benches.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Where CSVs land (env `PMR_RESULTS_DIR`, default `<workspace>/results`).
pub fn results_dir() -> PathBuf {
    std::env::var("PMR_RESULTS_DIR").map(PathBuf::from).unwrap_or_else(|_| {
        // Benches run with CWD = crates/bench; anchor on the manifest so
        // results collect at the workspace root regardless of invocation.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
    })
}

/// Write one CSV file under the results directory.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    let mut out = match fs::File::create(&path) {
        Ok(f) => std::io::BufWriter::new(f),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            return;
        }
    };
    let _ = writeln!(out, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(out, "{}", row.join(","));
    }
    let _ = out.flush();
    println!("[csv] {}", path.display());
}

/// Print an aligned table with a title line.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        s
    };
    println!("{}", line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", line(row));
    }
}

/// A histogram of signed integer prediction errors rendered as the
/// fraction of predictions per bucket (the y-axis of paper Figs. 9–11).
pub fn error_histogram(errors: &[i64]) -> Vec<(i64, f64)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
    for &e in errors {
        *counts.entry(e.clamp(-5, 5)).or_default() += 1;
    }
    let n = errors.len().max(1) as f64;
    counts.into_iter().map(|(k, v)| (k, v as f64 / n)).collect()
}

/// Fraction of errors with |e| <= k.
pub fn fraction_within(errors: &[i64], k: i64) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    errors.iter().filter(|e| e.abs() <= k).count() as f64 / errors.len() as f64
}
