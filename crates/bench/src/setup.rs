//! Common experiment setup used by the DNN benches.

use pmr_core::experiment::ExperimentConfig;
use pmr_core::{DMgardConfig, EMgardConfig};
use pmr_mgard::CompressConfig;
use pmr_nn::{Loss, TrainConfig};

/// Bench-scale experiment configuration: the paper's pipeline with network
/// widths and epoch counts tuned for CPU wall-clock. Architecture shape
/// (six hidden CMOR layers, leaky ReLU, Huber(1), encoder depth with 8-wide
/// latent) matches the paper.
pub fn experiment_config() -> ExperimentConfig {
    ExperimentConfig {
        compress: CompressConfig::default(),
        dmgard: DMgardConfig {
            hidden: vec![48, 48, 48, 48, 48, 48],
            leaky_slope: 0.01,
            train: TrainConfig {
                epochs: 90,
                batch_size: 128,
                lr: 1.5e-3,
                loss: Loss::Huber(1.0),
                seed: 17,
            },
            chained: true,
            use_stat_features: false,
        },
        emgard: EMgardConfig {
            hidden: vec![128, 32, 8],
            epochs: 120,
            batch_size: 64,
            lr: 3e-3,
            huber_delta: 1.0,
            samples_per_artifact: 20,
            seed: 23,
        },
        train_bounds: pmr_core::standard_rel_bounds(),
    }
}

/// Subsample of the 81 bounds used where a fig only needs a sweep shape.
pub fn sparse_rel_bounds() -> Vec<f64> {
    (-9i32..=-1).flat_map(|k| [1.0, 3.0].map(|m| m * 10f64.powi(k))).collect()
}

/// Harvest theory-retrieval records for one snapshot (compress + sweep the
/// configured bounds).
pub fn records_for(
    field: &pmr_field::Field,
    cfg: &ExperimentConfig,
) -> Vec<pmr_core::RetrievalRecord> {
    let c = pmr_mgard::Compressed::compress(field, &cfg.compress);
    pmr_core::collect_records(field, &c, &cfg.train_bounds)
}

/// Print and export a per-level prediction-error distribution in the style
/// of paper Figs. 9–11. Returns the fraction of predictions within ±1
/// plane, aggregated over all levels.
pub fn report_prediction_errors(title: &str, csv_name: &str, per_level: &[Vec<i64>]) -> f64 {
    use crate::output;
    let mut rows = Vec::new();
    for (l, errs) in per_level.iter().enumerate() {
        for (bucket, frac) in output::error_histogram(errs) {
            rows.push(vec![format!("level_{l}"), bucket.to_string(), format!("{:.4}", frac)]);
        }
    }
    output::print_table(title, &["level", "pred_error(planes)", "fraction"], &rows);
    output::write_csv(csv_name, &["level", "pred_error", "fraction"], &rows);
    let all: Vec<i64> = per_level.iter().flatten().copied().collect();
    let w0 = output::fraction_within(&all, 0);
    let w1 = output::fraction_within(&all, 1);
    println!("  exact: {:.1}%   within +/-1 plane: {:.1}%", w0 * 100.0, w1 * 100.0);
    w1
}
