//! Bit-level encoding primitives for progressive bit-plane retrieval.
//!
//! This crate hosts the three encoding layers the MGARD-style pipeline
//! needs, kept free of any knowledge about grids or levels:
//!
//! * [`bitstream`] — MSB-first bit writer/reader used to pack one bit per
//!   coefficient into a bit-plane byte stream,
//! * [`negabinary`] — sign-free base(-2) integer representation; truncating
//!   low digits yields the progressively refinable quantization MGARD uses,
//! * [`rle`] / [`lossless`] — the lossless stage. The paper compresses
//!   bit-planes with ZSTD; ZSTD is outside our allowed dependency set, so we
//!   substitute an escape-coded run-length codec which captures the same
//!   sparsity profile (high planes of negabinary streams are almost all
//!   zero bytes). See DESIGN.md §2,
//! * [`transpose`] — cache-blocked 64×64 bit-matrix transpose kernels
//!   (SWAR + runtime-detected AVX2/NEON) that turn per-bit plane slicing
//!   into whole-word copies. See DESIGN.md §10.

pub mod bitstream;
pub mod lossless;
pub mod negabinary;
pub mod rle;
pub mod transpose;

pub use bitstream::{BitReader, BitWriter};
pub use lossless::Lossless;
pub use negabinary::{from_negabinary, to_negabinary, truncate_low_digits, NEGABINARY_MASK};
pub use transpose::{PlaneKernel, TileImpl};
