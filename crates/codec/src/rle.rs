//! Escape-coded byte run-length encoding.
//!
//! Token format (control byte `c` followed by payload):
//!
//! * `c < 0x80`  — literal run: the next `c + 1` bytes are copied verbatim,
//! * `c >= 0x80` — repeat run: the next byte repeats `c - 0x80 + 3` times
//!   (run lengths 3..=130).
//!
//! Runs shorter than 3 are never worth a repeat token, so the encoder folds
//! them into literals; worst-case expansion is 1/128.

/// Encode `data` (empty input encodes to empty output).
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    // Start index of a pending literal run not yet emitted.
    let mut lit_start = 0;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        let mut s = from;
        while s < to {
            let chunk = (to - s).min(128);
            // `chunk - 1 <= 127` by the min() above; the fallback is the
            // clamp value and is unreachable.
            out.push(u8::try_from(chunk - 1).unwrap_or(127));
            out.extend_from_slice(&data[s..s + chunk]);
            s += chunk;
        }
    };

    while i < data.len() {
        // Measure the run starting at i. Runs cap at 130, so the scan
        // extends by 16-byte block compares (a pair of word compares after
        // the optimizer is done) and finishes byte-wise in the block that
        // breaks the run — same run lengths as the byte-at-a-time scan.
        let b = data[i];
        let rest = &data[i + 1..];
        let limit = rest.len().min(129);
        let pat = [b; 16];
        let mut ext = 0;
        while ext + 16 <= limit && rest[ext..ext + 16] == pat {
            ext += 16;
        }
        while ext < limit && rest[ext] == b {
            ext += 1;
        }
        let run = 1 + ext;
        if run >= 3 {
            flush_literals(&mut out, lit_start, i, data);
            // `run <= 130` by the scan bound, so `run - 3 <= 127`.
            out.push(0x80 + u8::try_from(run - 3).unwrap_or(127));
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, lit_start, data.len(), data);
    out
}

/// Decode a buffer produced by [`encode`]. Returns `None` on malformed input.
pub fn decode(encoded: &[u8]) -> Option<Vec<u8>> {
    decode_bounded(encoded, usize::MAX)
}

/// [`decode`] with an output-size ceiling.
///
/// Repeat tokens expand two encoded bytes into up to 130 decoded bytes, so a
/// few KB of attacker-controlled input can demand hundreds of KB — and a
/// forged length field upstream can turn that into an allocation bomb.
/// Deserializers that feed untrusted bytes through this codec must pass the
/// exact size they expect; decoding stops with `None` the moment the output
/// would exceed `max_len`.
pub fn decode_bounded(encoded: &[u8], max_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity((encoded.len() * 2).min(max_len));
    let mut i = 0;
    while i < encoded.len() {
        let c = encoded[i];
        i += 1;
        if c < 0x80 {
            let n = c as usize + 1;
            if i + n > encoded.len() || out.len() + n > max_len {
                return None;
            }
            out.extend_from_slice(&encoded[i..i + n]);
            i += n;
        } else {
            let n = (c - 0x80) as usize + 3;
            if i >= encoded.len() || out.len() + n > max_len {
                return None;
            }
            let b = encoded[i];
            i += 1;
            out.resize(out.len() + n, b);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        assert!(encode(&[]).is_empty());
        assert_eq!(decode(&[]), Some(vec![]));
    }

    #[test]
    fn all_zeros_compress_well() {
        let data = vec![0u8; 10_000];
        let enc = encode(&data);
        assert!(enc.len() < 200, "encoded {} bytes", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn incompressible_data_bounded_expansion() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let enc = encode(&data);
        assert!(enc.len() <= data.len() + data.len() / 128 + 2);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn mixed_runs_roundtrip() {
        let mut data = Vec::new();
        data.extend_from_slice(&[1, 2, 3]);
        data.extend(std::iter::repeat_n(7u8, 200));
        data.extend_from_slice(&[9, 9]); // short run folded into literals
        data.extend(std::iter::repeat_n(0u8, 3));
        let enc = encode(&data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_input_rejected() {
        let enc = encode(&[5u8; 50]);
        assert!(decode(&enc[..enc.len() - 1]).is_none());
        assert!(decode(&[0x85]).is_none()); // repeat token missing payload
        assert!(decode(&[0x05, 1, 2]).is_none()); // literal run missing bytes
    }

    #[test]
    fn bounded_decode_caps_expansion() {
        let data = vec![42u8; 10_000];
        let enc = encode(&data);
        assert_eq!(decode_bounded(&enc, 10_000).unwrap(), data);
        assert!(decode_bounded(&enc, 9_999).is_none());
        assert!(decode_bounded(&enc, 0).is_none());
        assert_eq!(decode_bounded(&[], 0), Some(vec![]));
    }

    #[test]
    fn long_literal_runs_split() {
        let data: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
