//! MSB-first bit packing.
//!
//! Bit-planes store exactly one bit per coefficient; packing them eight to a
//! byte is what makes the per-plane sizes `S[l][k]` meaningful.

/// Writes individual bits into a growing byte buffer, MSB first.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of bits written so far.
    len: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitWriter { bytes: Vec::with_capacity(bits.div_ceil(8)), len: 0 }
    }

    /// Append a single bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let byte_idx = self.len / 8;
        if byte_idx == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 0x80 >> (self.len % 8);
        }
        self.len += 1;
    }

    /// Number of bits written.
    pub fn bit_len(&self) -> usize {
        self.len
    }

    /// Finish writing and return the packed bytes (final partial byte is
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow the packed bytes without consuming the writer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from `bytes`, starting at the first bit.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Next bit, or `None` when the stream is exhausted.
    #[inline]
    pub fn next_bit(&mut self) -> Option<bool> {
        let byte_idx = self.pos / 8;
        if byte_idx >= self.bytes.len() {
            return None;
        }
        let bit = self.bytes[byte_idx] & (0x80 >> (self.pos % 8)) != 0;
        self.pos += 1;
        Some(bit)
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pattern() {
        let bits: Vec<bool> = (0..37).map(|i| i % 3 == 0).collect();
        let mut w = BitWriter::new();
        for &b in &bits {
            w.push(b);
        }
        assert_eq!(w.bit_len(), 37);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 5); // ceil(37/8)
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            assert_eq!(r.next_bit(), Some(b));
        }
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.push(true);
        for _ in 0..7 {
            w.push(false);
        }
        assert_eq!(w.as_bytes(), &[0x80]);
    }

    #[test]
    fn reader_exhausts() {
        let mut r = BitReader::new(&[0xFF]);
        for _ in 0..8 {
            assert_eq!(r.next_bit(), Some(true));
        }
        assert_eq!(r.next_bit(), None);
        assert_eq!(r.position(), 8);
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }
}
