//! Base(-2) ("negabinary") integer representation.
//!
//! MGARD encodes quantized coefficients in negabinary because it removes the
//! need for a separate sign bit: every digit pattern is a valid number and
//! truncating low digits always yields a nearby value, which is exactly what
//! progressive bit-plane refinement requires.
//!
//! The conversion uses the classic constant-time trick: with the mask
//! `M = 0b…10101010` (weights of the negative powers), `nb = (v + M) ^ M`
//! and back `v = (nb ^ M) - M`.

/// Mask with ones at the odd bit positions — the digits whose base(-2)
/// weight is negative.
pub const NEGABINARY_MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Convert a signed integer to its negabinary digit pattern.
///
/// Valid for the full range where the intermediate `v + M` does not
/// overflow; in this workspace inputs are quantized coefficients that fit
/// comfortably in well under 62 digits.
#[inline]
pub fn to_negabinary(v: i64) -> u64 {
    (v as u64).wrapping_add(NEGABINARY_MASK) ^ NEGABINARY_MASK
}

/// Inverse of [`to_negabinary`].
#[inline]
pub fn from_negabinary(nb: u64) -> i64 {
    (nb ^ NEGABINARY_MASK).wrapping_sub(NEGABINARY_MASK) as i64
}

/// Zero the lowest `drop` digits of a negabinary pattern, i.e. keep only the
/// most significant `total - drop` of `total` digit planes.
#[inline]
pub fn truncate_low_digits(nb: u64, drop: u32) -> u64 {
    if drop >= 64 {
        0
    } else {
        (nb >> drop) << drop
    }
}

/// Number of digits needed to represent `nb` (position of highest set digit
/// plus one); 0 for zero.
#[inline]
pub fn digit_count(nb: u64) -> u32 {
    64 - nb.leading_zeros()
}

/// Largest magnitude representable error when the lowest `drop` digits are
/// zeroed: the worst case is every dropped digit set, alternating weights
/// `1, -2, 4, -8, …`. Both tails are bounded by `2^drop` in magnitude
/// (positive tail `(2^drop·2+1)/3 ≤ …`), so we return the exact maxima.
///
/// Returns `(max_under, max_over)` = (largest value the dropped tail can
/// add, largest it can subtract), both non-negative.
pub fn truncation_error_bounds(drop: u32) -> (i64, i64) {
    // Sum of (-2)^k over even k < drop  (positive contributions)
    // and |sum over odd k < drop| (negative contributions).
    let mut pos: i64 = 0;
    let mut neg: i64 = 0;
    for k in 0..drop.min(62) {
        let w = (-2_i64).pow(k);
        if w > 0 {
            pos += w;
        } else {
            neg += -w;
        }
    }
    (pos, neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slow reference conversion for validation.
    fn reference_to_negabinary(mut v: i64) -> u64 {
        let mut nb = 0u64;
        let mut bit = 0;
        while v != 0 {
            let mut r = v % -2;
            v /= -2;
            if r < 0 {
                r += 2;
                v += 1;
            }
            if r != 0 {
                nb |= 1 << bit;
            }
            bit += 1;
        }
        nb
    }

    #[test]
    fn matches_reference_small_values() {
        for v in -1000..=1000 {
            assert_eq!(to_negabinary(v), reference_to_negabinary(v), "v={v}");
        }
    }

    #[test]
    fn roundtrip_large_values() {
        for &v in &[0i64, 1, -1, 2, -2, 12345678, -987654321, (1 << 40) - 7, -(1 << 40)] {
            assert_eq!(from_negabinary(to_negabinary(v)), v);
        }
    }

    #[test]
    fn known_digit_patterns() {
        // 2 = 110 in base -2 (4 - 2), 3 = 111 (4 - 2 + 1), -1 = 11 (-2 + 1)
        assert_eq!(to_negabinary(2), 0b110);
        assert_eq!(to_negabinary(3), 0b111);
        assert_eq!(to_negabinary(-1), 0b11);
        assert_eq!(to_negabinary(-2), 0b10);
    }

    #[test]
    fn truncation_error_within_bounds() {
        for drop in 0..16u32 {
            let (pos, neg) = truncation_error_bounds(drop);
            for v in -2000..=2000i64 {
                let nb = to_negabinary(v);
                let t = from_negabinary(truncate_low_digits(nb, drop));
                let err = v - t;
                assert!(
                    -neg <= err && err <= pos,
                    "v={v} drop={drop} err={err} bounds=({pos},{neg})"
                );
            }
        }
    }

    #[test]
    fn truncate_zero_digits_is_identity() {
        for v in -100..100 {
            let nb = to_negabinary(v);
            assert_eq!(truncate_low_digits(nb, 0), nb);
        }
    }

    #[test]
    fn truncate_all_digits_is_zero() {
        assert_eq!(truncate_low_digits(u64::MAX, 64), 0);
        assert_eq!(truncate_low_digits(u64::MAX, 100), 0);
    }

    #[test]
    fn digit_count_examples() {
        assert_eq!(digit_count(0), 0);
        assert_eq!(digit_count(1), 1);
        assert_eq!(digit_count(0b110), 3);
    }
}
