//! The lossless compression stage applied to each bit-plane.
//!
//! A one-byte header selects the representation so that incompressible
//! planes (the low, noise-like ones) never expand by more than one byte:
//!
//! * `0x00` — raw passthrough,
//! * `0x01` — RLE ([`crate::rle`]).
//!
//! This stands in for the ZSTD stage of the paper's pipeline; the property
//! that matters downstream is the *monotone size profile* across planes
//! (high planes are nearly free, low planes cost ~1 bit/coefficient), which
//! RLE reproduces.

use crate::rle;
use pmr_error::PmrError;

/// Compression mode chosen for a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lossless {
    Raw,
    Rle,
}

const TAG_RAW: u8 = 0x00;
const TAG_RLE: u8 = 0x01;

/// Compress `data`, picking whichever representation is smaller.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let encoded = rle::encode(data);
    if encoded.len() < data.len() {
        let mut out = Vec::with_capacity(encoded.len() + 1);
        out.push(TAG_RLE);
        out.extend_from_slice(&encoded);
        out
    } else {
        let mut out = Vec::with_capacity(data.len() + 1);
        out.push(TAG_RAW);
        out.extend_from_slice(data);
        out
    }
}

/// Decompress a buffer produced by [`compress`]. `None` on malformed input.
pub fn decompress(buf: &[u8]) -> Option<Vec<u8>> {
    decompress_bounded(buf, usize::MAX)
}

/// [`decompress`] with an output-size ceiling; see [`rle::decode_bounded`]
/// for why callers decoding untrusted bytes must cap the expansion.
pub fn decompress_bounded(buf: &[u8], max_len: usize) -> Option<Vec<u8>> {
    let (&tag, rest) = buf.split_first()?;
    match tag {
        TAG_RAW if rest.len() <= max_len => Some(rest.to_vec()),
        TAG_RAW => None,
        TAG_RLE => rle::decode_bounded(rest, max_len),
        _ => None,
    }
}

/// Decompress untrusted bytes, expecting exactly `expected_len` of output.
///
/// This is the entry point deserializers use: any structural problem —
/// unknown tag, truncated token, or a decoded size other than
/// `expected_len` — comes back as a descriptive [`PmrError::Malformed`]
/// instead of a bare `None`, and the expansion is capped so garbage can
/// never allocate more than the caller budgeted for.
pub fn try_decompress(buf: &[u8], expected_len: usize) -> Result<Vec<u8>, PmrError> {
    let out = decompress_bounded(buf, expected_len).ok_or_else(|| {
        PmrError::malformed(
            "lossless plane",
            format!(
                "{}-byte payload is not a valid stream of <= {expected_len} decoded bytes",
                buf.len()
            ),
        )
    })?;
    if out.len() != expected_len {
        return Err(PmrError::malformed(
            "lossless plane",
            format!("decoded {} bytes, expected {expected_len}", out.len()),
        ));
    }
    Ok(out)
}

/// Which mode a compressed buffer used (for diagnostics).
pub fn mode_of(buf: &[u8]) -> Option<Lossless> {
    match *buf.first()? {
        TAG_RAW => Some(Lossless::Raw),
        TAG_RLE => Some(Lossless::Rle),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_plane_uses_rle() {
        let mut data = vec![0u8; 4096];
        data[100] = 1;
        let c = compress(&data);
        assert_eq!(mode_of(&c), Some(Lossless::Rle));
        assert!(c.len() < 128, "encoded {} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn dense_plane_falls_back_to_raw() {
        let data: Vec<u8> =
            (0..1024u32).map(|i| (i.wrapping_mul(2654435761) % 251) as u8).collect();
        let c = compress(&data);
        assert_eq!(mode_of(&c), Some(Lossless::Raw));
        assert_eq!(c.len(), data.len() + 1);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_roundtrip() {
        let c = compress(&[]);
        assert_eq!(decompress(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(decompress(&[0x7F, 1, 2, 3]).is_none());
        assert!(decompress(&[]).is_none());
    }

    #[test]
    fn bounded_raw_respects_cap() {
        let c = compress(&[1, 2, 3, 4]);
        assert_eq!(mode_of(&c), Some(Lossless::Raw));
        assert_eq!(decompress_bounded(&c, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(decompress_bounded(&c, 3).is_none());
    }

    #[test]
    fn try_decompress_reports_size_mismatch() {
        let c = compress(&[0u8; 64]);
        assert_eq!(try_decompress(&c, 64).unwrap().len(), 64);
        let err = try_decompress(&c, 63).unwrap_err();
        assert!(err.to_string().contains("malformed lossless plane"), "{err}");
        let err = try_decompress(&[0xFF, 0, 0], 2).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }
}
