//! The lossless compression stage applied to each bit-plane.
//!
//! A one-byte header selects the representation so that incompressible
//! planes (the low, noise-like ones) never expand by more than one byte:
//!
//! * `0x00` — raw passthrough,
//! * `0x01` — RLE ([`crate::rle`]).
//!
//! This stands in for the ZSTD stage of the paper's pipeline; the property
//! that matters downstream is the *monotone size profile* across planes
//! (high planes are nearly free, low planes cost ~1 bit/coefficient), which
//! RLE reproduces.

use crate::rle;

/// Compression mode chosen for a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lossless {
    Raw,
    Rle,
}

const TAG_RAW: u8 = 0x00;
const TAG_RLE: u8 = 0x01;

/// Compress `data`, picking whichever representation is smaller.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let encoded = rle::encode(data);
    if encoded.len() < data.len() {
        let mut out = Vec::with_capacity(encoded.len() + 1);
        out.push(TAG_RLE);
        out.extend_from_slice(&encoded);
        out
    } else {
        let mut out = Vec::with_capacity(data.len() + 1);
        out.push(TAG_RAW);
        out.extend_from_slice(data);
        out
    }
}

/// Decompress a buffer produced by [`compress`]. `None` on malformed input.
pub fn decompress(buf: &[u8]) -> Option<Vec<u8>> {
    let (&tag, rest) = buf.split_first()?;
    match tag {
        TAG_RAW => Some(rest.to_vec()),
        TAG_RLE => rle::decode(rest),
        _ => None,
    }
}

/// Which mode a compressed buffer used (for diagnostics).
pub fn mode_of(buf: &[u8]) -> Option<Lossless> {
    match *buf.first()? {
        TAG_RAW => Some(Lossless::Raw),
        TAG_RLE => Some(Lossless::Rle),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_plane_uses_rle() {
        let mut data = vec![0u8; 4096];
        data[100] = 1;
        let c = compress(&data);
        assert_eq!(mode_of(&c), Some(Lossless::Rle));
        assert!(c.len() < 128, "encoded {} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn dense_plane_falls_back_to_raw() {
        let data: Vec<u8> =
            (0..1024u32).map(|i| (i.wrapping_mul(2654435761) % 251) as u8).collect();
        let c = compress(&data);
        assert_eq!(mode_of(&c), Some(Lossless::Raw));
        assert_eq!(c.len(), data.len() + 1);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_roundtrip() {
        let c = compress(&[]);
        assert_eq!(decompress(&c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(decompress(&[0x7F, 1, 2, 3]).is_none());
        assert!(decompress(&[]).is_none());
    }
}
