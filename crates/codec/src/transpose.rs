//! SIMD-transposed bit-plane extraction over 64-wide coefficient tiles.
//!
//! The bit-plane hot path used to touch every (coefficient, plane) pair
//! through a `BitWriter`/`BitReader` — one shift, mask, and bounds check
//! per *bit*. This module replaces that with a cache-blocked layout: 64
//! quantized digit words form a 64×64 bit matrix whose *rows* are
//! coefficients and whose *columns* are planes; one bitwise transpose turns
//! plane extraction into a plain word copy (the movemask trick generalised
//! to all 64 planes at once).
//!
//! # Bit conventions
//!
//! Everything here is MSB-first, matching [`crate::bitstream::BitWriter`]:
//!
//! * input `tile[i]` holds the negabinary digits of coefficient `i`; digit
//!   (plane shift) `s` is bit `s` of the word,
//! * output plane `k` (k = 0 the most significant of `num_planes`) carries
//!   coefficient `i` at bit `63 - i`, so `word.to_be_bytes()` *is* the
//!   packed plane byte layout (coefficient `i` at bit `7 - i % 8` of byte
//!   `i / 8`).
//!
//! With the transpose convention `bit(y[c], 63-r) = bit(x[r], 63-c)`, the
//! word for plane shift `s` lands at `y[63 - s]`, so the `num_planes = B`
//! plane words of a tile are the contiguous block `y[64-B .. 64]`.
//!
//! # Kernels
//!
//! Three implementations produce bit-identical results:
//!
//! * a portable u64-SWAR butterfly (Hacker's Delight §7-3 scaled to 64×64),
//! * an AVX2 path on x86_64, selected by runtime feature detection,
//! * a NEON path on aarch64 (baseline feature on that architecture).
//!
//! [`PlaneKernel`] is the user-facing knob: `Auto` picks the best detected
//! path, `Simd`/`Swar` force one (Simd falls back to Swar when the ISA
//! lacks the needed features), and `Scalar` is honoured a layer *up*, in
//! `pmr-mgard`, where it routes around the tiles entirely and onto the
//! legacy bit-at-a-time path kept as the differential oracle.

use serde::{Deserialize, Serialize};

/// Coefficients per tile: one u64 lane per coefficient.
pub const TILE: usize = 64;

/// Which bit-plane codec implementation the hot path uses.
///
/// Every variant produces bit-identical artifacts; the knob exists for
/// differential testing and benchmarking, not output control.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum PlaneKernel {
    /// Best detected path: AVX2 on x86_64, NEON on aarch64, SWAR otherwise.
    #[default]
    Auto,
    /// Force the `core::arch` SIMD path; falls back to SWAR when the
    /// running CPU lacks the required features.
    Simd,
    /// Force the portable u64-SWAR tile path.
    Swar,
    /// The legacy bit-at-a-time path (no tiles at all) — the differential
    /// oracle. Interpreted by `pmr-mgard`; at this layer it resolves to
    /// SWAR so transpose-level callers never panic on it.
    Scalar,
}

/// A resolved tile implementation: the dispatch decision hoisted out of the
/// per-tile loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileImpl {
    /// `core::arch` SIMD transpose (AVX2 or NEON).
    Simd,
    /// Portable u64-SWAR transpose.
    Swar,
}

/// The SIMD ISA the `Auto`/`Simd` kernels would use on this CPU, if any.
pub fn detected_isa() -> Option<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some("avx2");
        }
        None
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is a baseline feature of every aarch64 Rust target.
        Some("neon")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        None
    }
}

impl PlaneKernel {
    /// Whether this knob selects the legacy scalar (non-tiled) path.
    pub fn is_scalar(self) -> bool {
        matches!(self, PlaneKernel::Scalar)
    }

    /// Resolve to a tile implementation. `Scalar` resolves to [`TileImpl::Swar`]
    /// because the scalar oracle is honoured a layer up — see the module docs.
    pub fn tile_impl(self) -> TileImpl {
        match self {
            PlaneKernel::Auto | PlaneKernel::Simd => {
                if detected_isa().is_some() {
                    TileImpl::Simd
                } else {
                    TileImpl::Swar
                }
            }
            PlaneKernel::Swar | PlaneKernel::Scalar => TileImpl::Swar,
        }
    }

    /// Stable lowercase name (the serde wire form).
    pub fn name(self) -> &'static str {
        match self {
            PlaneKernel::Auto => "auto",
            PlaneKernel::Simd => "simd",
            PlaneKernel::Swar => "swar",
            PlaneKernel::Scalar => "scalar",
        }
    }
}

/// Transpose the 64×64 bit matrix in place: `bit(y[c], 63-r) = bit(x[r], 63-c)`
/// (MSB-first row/column numbering). The operation is an involution.
pub fn transpose64(x: &mut [u64; TILE], imp: TileImpl) {
    match imp {
        TileImpl::Simd => transpose64_simd(x),
        TileImpl::Swar => transpose64_swar(x),
    }
}

#[cfg(target_arch = "x86_64")]
fn transpose64_simd(x: &mut [u64; TILE]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 feature requirement was just verified at runtime.
        unsafe { transpose64_avx2(x) }
    } else {
        transpose64_swar(x);
    }
}

#[cfg(target_arch = "aarch64")]
fn transpose64_simd(x: &mut [u64; TILE]) {
    // SAFETY: NEON is a baseline feature of every aarch64 Rust target.
    unsafe { transpose64_neon(x) }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn transpose64_simd(x: &mut [u64; TILE]) {
    transpose64_swar(x);
}

/// Portable butterfly transpose (Hacker's Delight §7-3 scaled to 64×64):
/// six stages swap `j×j` sub-blocks across the diagonal for
/// `j = 32, 16, …, 1`. Public so differential tests can pin the SIMD paths
/// against it directly.
pub fn transpose64_swar(x: &mut [u64; TILE]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < TILE {
            let t = (x[k] ^ (x[k + j] >> j)) & m;
            x[k] ^= t;
            x[k + j] ^= t << j;
            // Next index with bit `j` clear.
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// AVX2 butterfly: stages `j >= 4` pair four consecutive rows per 256-bit
/// vector; stages `j = 2, 1` stay in-register via lane permutes, computing
/// the exchange term `t` in the low lanes of each pair and re-applying it
/// to the high lanes with a per-lane variable shift.
///
/// # Safety
///
/// The caller must ensure the running CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
// SAFETY: contract fn — callers must verify AVX2 support (see # Safety above).
#[target_feature(enable = "avx2")]
unsafe fn transpose64_avx2(x: &mut [u64; TILE]) {
    use core::arch::x86_64::*;
    let p = x.as_mut_ptr();

    // Stages j = 32, 16, 8, 4: row pairs (k, k+j) with bit j of k clear;
    // those k come in runs of at least four, so four pairs go per vector.
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j >= 4 {
        let mv = _mm256_set1_epi64x(m as i64);
        // lint:allow(lossy_cast): j <= 32 fits losslessly in i32
        let cnt = _mm_cvtsi32_si128(j as i32);
        let mut base = 0usize;
        while base < TILE {
            let mut k = base;
            while k < base + j {
                // SAFETY: k+3 < base+j <= 60 and k+j+3 <= 63, so both
                // 4-element loads/stores stay inside the 64-element array.
                unsafe {
                    let a = _mm256_loadu_si256(p.add(k).cast());
                    let b = _mm256_loadu_si256(p.add(k + j).cast());
                    let t = _mm256_and_si256(_mm256_xor_si256(a, _mm256_srl_epi64(b, cnt)), mv);
                    _mm256_storeu_si256(p.add(k).cast(), _mm256_xor_si256(a, t));
                    _mm256_storeu_si256(
                        p.add(k + j).cast(),
                        _mm256_xor_si256(b, _mm256_sll_epi64(t, cnt)),
                    );
                }
                k += 4;
            }
            base += 2 * j;
        }
        j >>= 1;
        m ^= m << j;
    }

    // Stage j = 2: within [r0 r1 r2 r3] the pairs are (r0,r2) and (r1,r3).
    // Partner vector [r2 r3 r0 r1]; t is valid in lanes 0-1 and re-applied
    // shifted to lanes 2-3.
    {
        let mv = _mm256_set1_epi64x(0x3333_3333_3333_3333_u64 as i64);
        let sh = _mm256_set_epi64x(2, 2, 0, 0);
        let mut k = 0usize;
        while k < TILE {
            // SAFETY: k <= 60, so the 4-element load/store is in bounds.
            unsafe {
                let a = _mm256_loadu_si256(p.add(k).cast());
                let sw = _mm256_permute4x64_epi64::<0x4E>(a);
                let tv = _mm256_and_si256(_mm256_xor_si256(a, _mm256_srli_epi64::<2>(sw)), mv);
                let tb = _mm256_permute4x64_epi64::<0x44>(tv);
                _mm256_storeu_si256(
                    p.add(k).cast(),
                    _mm256_xor_si256(a, _mm256_sllv_epi64(tb, sh)),
                );
            }
            k += 4;
        }
    }

    // Stage j = 1: pairs (r0,r1) and (r2,r3); partner [r1 r0 r3 r2], t valid
    // in even lanes, re-applied shifted-by-one to odd lanes.
    {
        let mv = _mm256_set1_epi64x(0x5555_5555_5555_5555_u64 as i64);
        let sh = _mm256_set_epi64x(1, 0, 1, 0);
        let mut k = 0usize;
        while k < TILE {
            // SAFETY: k <= 60, so the 4-element load/store is in bounds.
            unsafe {
                let a = _mm256_loadu_si256(p.add(k).cast());
                let sw = _mm256_permute4x64_epi64::<0xB1>(a);
                let tv = _mm256_and_si256(_mm256_xor_si256(a, _mm256_srli_epi64::<1>(sw)), mv);
                let tb = _mm256_permute4x64_epi64::<0xA0>(tv);
                _mm256_storeu_si256(
                    p.add(k).cast(),
                    _mm256_xor_si256(a, _mm256_sllv_epi64(tb, sh)),
                );
            }
            k += 4;
        }
    }
}

/// NEON butterfly: stages `j >= 2` pair two consecutive rows per 128-bit
/// vector (right shifts via `vshlq` with a negative count); the `j = 1`
/// stage runs scalar — two rows per exchange leave nothing to vectorize
/// across lanes.
///
/// # Safety
///
/// The caller must ensure the running CPU supports NEON (baseline on
/// aarch64 targets).
#[cfg(target_arch = "aarch64")]
// SAFETY: contract fn — NEON is baseline on aarch64 (see # Safety above).
#[target_feature(enable = "neon")]
unsafe fn transpose64_neon(x: &mut [u64; TILE]) {
    use core::arch::aarch64::*;
    let p = x.as_mut_ptr();
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j >= 2 {
        let mv = vdupq_n_u64(m);
        let right = vdupq_n_s64(-(j as i64));
        let left = vdupq_n_s64(j as i64);
        let mut base = 0usize;
        while base < TILE {
            let mut k = base;
            while k < base + j {
                // SAFETY: k+1 < base+j <= 62 and k+j+1 <= 63, so both
                // 2-element loads/stores stay inside the 64-element array.
                unsafe {
                    let a = vld1q_u64(p.add(k));
                    let b = vld1q_u64(p.add(k + j));
                    let t = vandq_u64(veorq_u64(a, vshlq_u64(b, right)), mv);
                    vst1q_u64(p.add(k), veorq_u64(a, t));
                    vst1q_u64(p.add(k + j), veorq_u64(b, vshlq_u64(t, left)));
                }
                k += 2;
            }
            base += 2 * j;
        }
        j >>= 1;
        m ^= m << j;
    }
    let m = 0x5555_5555_5555_5555_u64;
    let mut k = 0usize;
    while k < TILE {
        let t = (x[k] ^ (x[k + 1] >> 1)) & m;
        x[k] ^= t;
        x[k + 1] ^= t << 1;
        k += 2;
    }
}

/// Extract the `num_planes` most significant bit-planes of one digit tile.
///
/// Writes plane `k` (MSB-first) to `out[k]`; coefficient `i` sits at bit
/// `63 - i`, so `out[k].to_be_bytes()` is the packed plane byte layout.
/// Ragged tiles are handled by zero-padding `tile` past the live
/// coefficients, which yields the same zero fill bits `BitWriter` pads with.
///
/// Caller invariants (asserted): `1 <= num_planes <= 64`,
/// `out.len() >= num_planes`.
pub fn extract_planes(tile: &[u64; TILE], num_planes: usize, out: &mut [u64], imp: TileImpl) {
    assert!((1..=TILE).contains(&num_planes) && out.len() >= num_planes);
    let mut y = *tile;
    transpose64(&mut y, imp);
    out[..num_planes].copy_from_slice(&y[TILE - num_planes..]);
}

/// Inverse of [`extract_planes`]: rebuild a digit tile from the first
/// `words.len()` plane words of a `num_planes`-plane encoding. A strict
/// prefix reproduces progressive truncation — the missing low planes decode
/// as zero digits, exactly as the bit-at-a-time path leaves them.
///
/// Caller invariants (asserted): `1 <= num_planes <= 64`,
/// `words.len() <= num_planes`.
pub fn reassemble_digits(words: &[u64], num_planes: usize, imp: TileImpl) -> [u64; TILE] {
    assert!((1..=TILE).contains(&num_planes) && words.len() <= num_planes);
    let mut y = [0u64; TILE];
    y[TILE - num_planes..TILE - num_planes + words.len()].copy_from_slice(words);
    transpose64(&mut y, imp);
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(64²) bit-loop reference with the documented convention.
    fn transpose64_ref(x: &[u64; TILE]) -> [u64; TILE] {
        let mut y = [0u64; TILE];
        for r in 0..TILE {
            for c in 0..TILE {
                if x[r] >> (63 - c) & 1 == 1 {
                    y[c] |= 1 << (63 - r);
                }
            }
        }
        y
    }

    fn xorshift_tiles(seed: u64, n: usize) -> Vec<[u64; TILE]> {
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        (0..n)
            .map(|_| {
                let mut t = [0u64; TILE];
                for w in t.iter_mut() {
                    *w = next();
                }
                t
            })
            .collect()
    }

    fn adversarial_tiles() -> Vec<[u64; TILE]> {
        let mut tiles = vec![[0u64; TILE], [u64::MAX; TILE]];
        let mut alt = [0u64; TILE];
        for (i, w) in alt.iter_mut().enumerate() {
            *w = if i % 2 == 0 { 0xAAAA_AAAA_AAAA_AAAA } else { 0x5555_5555_5555_5555 };
        }
        tiles.push(alt);
        let mut unit = [0u64; TILE];
        unit[17] = 1 << 42;
        tiles.push(unit);
        let mut diag = [0u64; TILE];
        for (i, w) in diag.iter_mut().enumerate() {
            *w = 1 << (63 - i);
        }
        tiles.push(diag);
        tiles.extend(xorshift_tiles(0x9E37_79B9_7F4A_7C15, 32));
        tiles
    }

    #[test]
    fn swar_matches_reference() {
        for tile in adversarial_tiles() {
            let mut got = tile;
            transpose64_swar(&mut got);
            assert_eq!(got, transpose64_ref(&tile));
        }
    }

    #[test]
    fn simd_matches_reference() {
        for tile in adversarial_tiles() {
            let mut got = tile;
            transpose64(&mut got, TileImpl::Simd);
            assert_eq!(got, transpose64_ref(&tile));
        }
    }

    #[test]
    fn transpose_is_involution() {
        for imp in [TileImpl::Simd, TileImpl::Swar] {
            for tile in adversarial_tiles() {
                let mut got = tile;
                transpose64(&mut got, imp);
                transpose64(&mut got, imp);
                assert_eq!(got, tile, "{imp:?}");
            }
        }
    }

    #[test]
    fn diagonal_is_fixed_point() {
        let mut diag = [0u64; TILE];
        for (i, w) in diag.iter_mut().enumerate() {
            *w = 1 << (63 - i);
        }
        let mut got = diag;
        transpose64_swar(&mut got);
        assert_eq!(got, diag);
    }

    #[test]
    fn extract_reassemble_roundtrip_full_planes() {
        for imp in [TileImpl::Simd, TileImpl::Swar] {
            for b in [1usize, 3, 17, 32, 50, 64] {
                for tile in xorshift_tiles(b as u64 + 7, 4) {
                    // Digits must fit in b planes: mask to the low b bits.
                    let mut digits = tile;
                    let mask = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
                    for d in digits.iter_mut() {
                        *d &= mask;
                    }
                    let mut words = vec![0u64; b];
                    extract_planes(&digits, b, &mut words, imp);
                    assert_eq!(reassemble_digits(&words, b, imp), digits, "b={b} {imp:?}");
                }
            }
        }
    }

    #[test]
    fn plane_prefix_reassembles_truncated_digits() {
        let b = 24usize;
        let tile = xorshift_tiles(99, 1)[0];
        let mut digits = tile;
        for d in digits.iter_mut() {
            *d &= (1u64 << b) - 1;
        }
        let mut words = vec![0u64; b];
        extract_planes(&digits, b, &mut words, TileImpl::Swar);
        for p in 0..=b {
            let got = reassemble_digits(&words[..p], b, TileImpl::Swar);
            // Keeping p of b planes keeps digit bits b-1 ..= b-p.
            let keep = if p == 0 { 0 } else { ((1u64 << p) - 1) << (b - p) };
            for (g, d) in got.iter().zip(&digits) {
                assert_eq!(*g, d & keep, "p={p}");
            }
        }
    }

    #[test]
    fn plane_word_matches_bitwriter_layout() {
        // Plane k of the extraction must match the BitWriter-packed bytes of
        // the same plane bits, for a ragged (non-multiple-of-64) count.
        use crate::bitstream::BitWriter;
        let b = 12usize;
        let count = 41usize;
        let mut tile = [0u64; TILE];
        let mut s = 0xDEAD_BEEFu64;
        for d in tile.iter_mut().take(count) {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *d = s & ((1 << b) - 1);
        }
        let mut words = vec![0u64; b];
        extract_planes(&tile, b, &mut words, TileImpl::Swar);
        for (k, &word) in words.iter().enumerate() {
            let shift = b - 1 - k;
            let mut w = BitWriter::with_capacity(count);
            for d in tile.iter().take(count) {
                w.push(d >> shift & 1 == 1);
            }
            let packed = w.into_bytes();
            assert_eq!(&word.to_be_bytes()[..packed.len()], &packed[..], "plane {k}");
        }
    }
}
