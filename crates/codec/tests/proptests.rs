//! Property tests for the codec layers.

use pmr_codec::{bitstream, lossless, negabinary, rle};
use proptest::prelude::*;

proptest! {
    #[test]
    fn rle_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(rle::decode(&rle::encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_roundtrip_runny(runs in proptest::collection::vec((any::<u8>(), 1usize..300), 0..32)) {
        let mut data = Vec::new();
        for (b, n) in runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        prop_assert_eq!(rle::decode(&rle::encode(&data)).unwrap(), data);
    }

    #[test]
    fn lossless_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let c = lossless::compress(&data);
        prop_assert!(c.len() <= data.len() + data.len() / 128 + 8);
        prop_assert_eq!(lossless::decompress(&c).unwrap(), data);
    }

    #[test]
    fn negabinary_roundtrip(v in -(1i64 << 52)..(1i64 << 52)) {
        prop_assert_eq!(negabinary::from_negabinary(negabinary::to_negabinary(v)), v);
    }

    #[test]
    fn negabinary_truncation_monotone(v in -(1i64 << 40)..(1i64 << 40)) {
        // Keeping more digits never increases the truncation error.
        let nb = negabinary::to_negabinary(v);
        let full_digits = 64;
        let mut prev_err = i64::MAX;
        for keep in (0..=full_digits).rev().step_by(8) {
            let drop = (full_digits - keep) as u32;
            let t = negabinary::from_negabinary(negabinary::truncate_low_digits(nb, drop));
            let err = (v - t).abs();
            prop_assert!(err <= prev_err.max(err)); // err recorded; strict check below
            if drop == 0 {
                prop_assert_eq!(err, 0);
            }
            prev_err = prev_err.min(err);
        }
    }

    #[test]
    fn truncation_error_bounded(v in -(1i64 << 40)..(1i64 << 40), drop in 0u32..40) {
        let (pos, neg) = negabinary::truncation_error_bounds(drop);
        let nb = negabinary::to_negabinary(v);
        let t = negabinary::from_negabinary(negabinary::truncate_low_digits(nb, drop));
        let err = v - t;
        prop_assert!(-neg <= err && err <= pos, "err={err} bounds=({pos},{neg})");
    }

    #[test]
    fn bitstream_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..512)) {
        let mut w = bitstream::BitWriter::new();
        for &b in &bits {
            w.push(b);
        }
        let bytes = w.into_bytes();
        let mut r = bitstream::BitReader::new(&bytes);
        for &b in &bits {
            prop_assert_eq!(r.next_bit(), Some(b));
        }
    }
}
