//! Property tests for the codec layers.

use pmr_codec::{bitstream, lossless, negabinary, rle, transpose, PlaneKernel};
use proptest::prelude::*;

/// Both tile kernels available on this host: the portable SWAR path plus
/// whatever `Auto` resolves to (the SIMD path when the ISA supports one).
fn tile_impls() -> Vec<transpose::TileImpl> {
    vec![PlaneKernel::Swar.tile_impl(), PlaneKernel::Auto.tile_impl()]
}

proptest! {
    #[test]
    fn rle_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(rle::decode(&rle::encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_roundtrip_runny(runs in proptest::collection::vec((any::<u8>(), 1usize..300), 0..32)) {
        let mut data = Vec::new();
        for (b, n) in runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        prop_assert_eq!(rle::decode(&rle::encode(&data)).unwrap(), data);
    }

    #[test]
    fn lossless_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let c = lossless::compress(&data);
        prop_assert!(c.len() <= data.len() + data.len() / 128 + 8);
        prop_assert_eq!(lossless::decompress(&c).unwrap(), data);
    }

    #[test]
    fn negabinary_roundtrip(v in -(1i64 << 52)..(1i64 << 52)) {
        prop_assert_eq!(negabinary::from_negabinary(negabinary::to_negabinary(v)), v);
    }

    #[test]
    fn negabinary_truncation_monotone(v in -(1i64 << 40)..(1i64 << 40)) {
        // Keeping more digits never increases the truncation error.
        let nb = negabinary::to_negabinary(v);
        let full_digits = 64;
        let mut prev_err = i64::MAX;
        for keep in (0..=full_digits).rev().step_by(8) {
            let drop = (full_digits - keep) as u32;
            let t = negabinary::from_negabinary(negabinary::truncate_low_digits(nb, drop));
            let err = (v - t).abs();
            prop_assert!(err <= prev_err.max(err)); // err recorded; strict check below
            if drop == 0 {
                prop_assert_eq!(err, 0);
            }
            prev_err = prev_err.min(err);
        }
    }

    #[test]
    fn truncation_error_bounded(v in -(1i64 << 40)..(1i64 << 40), drop in 0u32..40) {
        let (pos, neg) = negabinary::truncation_error_bounds(drop);
        let nb = negabinary::to_negabinary(v);
        let t = negabinary::from_negabinary(negabinary::truncate_low_digits(nb, drop));
        let err = v - t;
        prop_assert!(-neg <= err && err <= pos, "err={err} bounds=({pos},{neg})");
    }

    #[test]
    fn bitstream_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..512)) {
        let mut w = bitstream::BitWriter::new();
        for &b in &bits {
            w.push(b);
        }
        let bytes = w.into_bytes();
        let mut r = bitstream::BitReader::new(&bytes);
        for &b in &bits {
            prop_assert_eq!(r.next_bit(), Some(b));
        }
    }

    // --- decoders-never-panic: arbitrary bytes must come back as a clean
    // rejection (None / Err), never a panic or an unbounded allocation. ---

    #[test]
    fn rle_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Worst-case legal expansion is 130 decoded bytes per 2 encoded.
        if let Some(out) = rle::decode(&data) {
            prop_assert!(out.len() <= data.len().div_ceil(2) * 130);
        }
    }

    #[test]
    fn rle_decode_bounded_never_exceeds_cap(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cap in 0usize..4096,
    ) {
        if let Some(out) = rle::decode_bounded(&data, cap) {
            prop_assert!(out.len() <= cap);
        }
    }

    #[test]
    fn lossless_decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = lossless::decompress_bounded(&data, 1 << 16);
        let _ = lossless::mode_of(&data);
    }

    #[test]
    fn lossless_try_decompress_err_or_exact(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        expected in 0usize..2048,
    ) {
        match lossless::try_decompress(&data, expected) {
            Ok(out) => prop_assert_eq!(out.len(), expected),
            Err(e) => prop_assert!(e.to_string().contains("malformed")),
        }
    }

    #[test]
    fn rle_truncation_rejected_cleanly(data in proptest::collection::vec(any::<u8>(), 1..512)) {
        let enc = rle::encode(&data);
        // Every strict prefix either decodes to a (different) valid stream or
        // is rejected with None; the reader never walks off the buffer.
        for cut in 0..enc.len() {
            let _ = rle::decode(&enc[..cut]);
        }
    }

    #[test]
    fn bitreader_never_reads_past_end(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut r = bitstream::BitReader::new(&data);
        let mut n = 0usize;
        while r.next_bit().is_some() {
            n += 1;
        }
        prop_assert_eq!(n, data.len() * 8);
        prop_assert_eq!(r.next_bit(), None);
    }

    #[test]
    fn negabinary_total_on_arbitrary_patterns(nb in any::<u64>(), drop in 0u32..128) {
        // from_negabinary and truncate accept any 64-bit pattern.
        let v = negabinary::from_negabinary(nb);
        let t = negabinary::truncate_low_digits(nb, drop);
        prop_assert_eq!(negabinary::truncate_low_digits(t, drop), t);
        let _ = v;
    }

    // --- lane-transposed plane kernels: every implementation must be an
    // involution, agree with every other, and invert extraction exactly. ---

    #[test]
    fn transpose_is_an_involution(tile in proptest::collection::vec(any::<u64>(), 64)) {
        let orig: [u64; 64] = tile.as_slice().try_into().unwrap();
        for imp in tile_impls() {
            let mut x = orig;
            transpose::transpose64(&mut x, imp);
            transpose::transpose64(&mut x, imp);
            prop_assert_eq!(x, orig, "{imp:?} is not an involution");
        }
    }

    #[test]
    fn transpose_impls_agree(tile in proptest::collection::vec(any::<u64>(), 64)) {
        let orig: [u64; 64] = tile.as_slice().try_into().unwrap();
        let mut want = orig;
        transpose::transpose64_swar(&mut want);
        for imp in tile_impls() {
            let mut x = orig;
            transpose::transpose64(&mut x, imp);
            prop_assert_eq!(x, want, "{imp:?} disagrees with the SWAR reference");
        }
    }

    #[test]
    fn extract_reassemble_roundtrip(
        lanes in proptest::collection::vec(any::<u64>(), 64),
        b in 1usize..=64,
        filled in 0usize..=64,
    ) {
        // `filled` models a ragged tail: the trailing lanes of a partial
        // tile are zero padding. Digits are masked to `b` planes, the
        // codec's own invariant for a `b`-plane encoding.
        let mask = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
        let mut tile = [0u64; 64];
        for (dst, src) in tile.iter_mut().zip(&lanes).take(filled) {
            *dst = src & mask;
        }
        for imp in tile_impls() {
            let mut words = vec![0u64; b];
            transpose::extract_planes(&tile, b, &mut words, imp);
            let back = transpose::reassemble_digits(&words, b, imp);
            prop_assert_eq!(back, tile, "{imp:?} round trip diverged");
        }
    }

    #[test]
    fn reassemble_prefix_truncates_low_digits(
        lanes in proptest::collection::vec(any::<u64>(), 64),
        b in 1usize..=64,
        keep_frac in 0.0f64..=1.0,
    ) {
        // Reassembling only the first `p` plane words must zero exactly the
        // dropped low digits — the progressive-truncation semantics the
        // bit-at-a-time decoder implements.
        let p = ((b as f64) * keep_frac) as usize;
        let mask = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
        let kept = if p == 64 { mask } else { mask & !(mask >> p) };
        let mut tile = [0u64; 64];
        for (dst, src) in tile.iter_mut().zip(&lanes) {
            *dst = src & mask;
        }
        for imp in tile_impls() {
            let mut words = vec![0u64; b];
            transpose::extract_planes(&tile, b, &mut words, imp);
            let back = transpose::reassemble_digits(&words[..p], b, imp);
            for (got, want) in back.iter().zip(&tile) {
                prop_assert_eq!(*got, want & kept, "{imp:?} prefix {p}/{b} diverged");
            }
        }
    }
}

// Deterministic twins of the transpose properties above: the offline proptest
// stub elides `proptest!` bodies, so these keep the same invariants exercised
// in every local `cargo test` run (CI additionally runs the randomized form).
#[test]
fn transpose_properties_on_fixed_corpus() {
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for case in 0..64usize {
        let mut lanes = [0u64; 64];
        for lane in &mut lanes {
            *lane = next();
        }
        let b = 1 + case % 64;
        let filled = (case * 7) % 65;
        let mask = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
        let mut tile = [0u64; 64];
        for (dst, src) in tile.iter_mut().zip(&lanes).take(filled) {
            *dst = src & mask;
        }
        let mut reference = lanes;
        transpose::transpose64_swar(&mut reference);
        for imp in tile_impls() {
            // Involution + cross-implementation agreement.
            let mut x = lanes;
            transpose::transpose64(&mut x, imp);
            assert_eq!(x, reference, "{imp:?} disagrees with SWAR");
            transpose::transpose64(&mut x, imp);
            assert_eq!(x, lanes, "{imp:?} is not an involution");
            // Round trip and prefix truncation.
            let mut words = vec![0u64; b];
            transpose::extract_planes(&tile, b, &mut words, imp);
            let back = transpose::reassemble_digits(&words, b, imp);
            assert_eq!(back, tile, "{imp:?} round trip diverged at b={b}");
            let p = case % (b + 1);
            let kept = if p == 64 { mask } else { mask & !(mask >> p) };
            let partial = transpose::reassemble_digits(&words[..p], b, imp);
            for (got, want) in partial.iter().zip(&tile) {
                assert_eq!(*got, want & kept, "{imp:?} prefix {p}/{b} diverged");
            }
        }
    }
}
