//! Workspace-wide error type.
//!
//! Every fallible persistence or configuration path in the workspace funnels
//! into [`PmrError`] so that binaries (`pmrtool`) can print one coherent
//! message and exit nonzero instead of unwinding, and so library callers can
//! match on the failure class without string-parsing.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// The single error type shared by all `pmr-*` crates.
#[derive(Debug)]
pub enum PmrError {
    /// An OS-level I/O failure, with the path involved when known.
    Io {
        /// File the operation touched, if the call site knows it.
        path: Option<PathBuf>,
        /// Underlying error from the standard library.
        source: io::Error,
    },
    /// A byte stream failed structural validation (bad magic, truncated
    /// payload, out-of-range header field, trailing garbage, …).
    Malformed {
        /// Which artifact family was being decoded ("field", "mgard
        /// artifact", "block artifact", "mlp model", …).
        what: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// An API was handed invalid parameters.
    InvalidConfig {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// In-memory data violated an internal invariant: a length or shift that
    /// no longer fits its serialized width, a checksum mismatch, a value a
    /// checked conversion refused. Distinct from [`PmrError::Malformed`],
    /// which covers *external* bytes failing validation on the way in.
    Corrupt {
        /// Human-readable description of the violation.
        detail: String,
    },
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, PmrError>;

impl PmrError {
    /// A [`PmrError::Malformed`] with the given artifact family and detail.
    pub fn malformed(what: &'static str, detail: impl Into<String>) -> Self {
        PmrError::Malformed { what, detail: detail.into() }
    }

    /// A [`PmrError::InvalidConfig`] with the given detail.
    pub fn invalid_config(detail: impl Into<String>) -> Self {
        PmrError::InvalidConfig { detail: detail.into() }
    }

    /// A [`PmrError::Io`] that records the path that failed.
    pub fn io_at(path: impl Into<PathBuf>, source: io::Error) -> Self {
        PmrError::Io { path: Some(path.into()), source }
    }

    /// A [`PmrError::Corrupt`] with the given detail.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        PmrError::Corrupt { detail: detail.into() }
    }
}

/// Checked `usize → u32` for serialized length/count fields. Wrapping a
/// too-large length with `as u32` would silently corrupt the artifact; this
/// surfaces [`PmrError::Corrupt`] instead. `what` names the field for the
/// error message.
pub fn len_u32(n: usize, what: &str) -> Result<u32> {
    u32::try_from(n).map_err(|_| PmrError::corrupt(format!("{what} {n} exceeds u32 range")))
}

impl fmt::Display for PmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmrError::Io { path: Some(p), source } => {
                write!(f, "i/o error on {}: {source}", p.display())
            }
            PmrError::Io { path: None, source } => write!(f, "i/o error: {source}"),
            PmrError::Malformed { what, detail } => write!(f, "malformed {what}: {detail}"),
            PmrError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            PmrError::Corrupt { detail } => write!(f, "corrupt data: {detail}"),
        }
    }
}

impl std::error::Error for PmrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmrError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for PmrError {
    fn from(source: io::Error) -> Self {
        PmrError::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_path() {
        let e = PmrError::io_at("/tmp/x.pmr", io::Error::new(io::ErrorKind::NotFound, "gone"));
        let s = e.to_string();
        assert!(s.contains("/tmp/x.pmr"), "{s}");
        assert!(s.contains("gone"), "{s}");
    }

    #[test]
    fn display_malformed() {
        let e = PmrError::malformed("mgard artifact", "bad magic");
        assert_eq!(e.to_string(), "malformed mgard artifact: bad magic");
    }

    #[test]
    fn io_error_converts() {
        fn fails() -> crate::Result<()> {
            Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short read"))?;
            Ok(())
        }
        assert!(matches!(fails(), Err(PmrError::Io { path: None, .. })));
    }

    #[test]
    fn len_u32_checks_range() {
        assert_eq!(len_u32(7, "plane length").ok(), Some(7));
        if usize::BITS > 32 {
            let big = u32::MAX as usize + 1;
            let e = len_u32(big, "plane length").unwrap_err();
            assert!(matches!(e, PmrError::Corrupt { .. }), "{e}");
            assert!(e.to_string().contains("plane length"), "{e}");
        }
    }

    #[test]
    fn source_chains_io() {
        use std::error::Error;
        let e = PmrError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        let m = PmrError::invalid_config("threads must be >= 1");
        assert!(m.source().is_none());
    }
}
