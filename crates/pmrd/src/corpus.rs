//! The daemon's corpus: named compressed artifacts plus the segment
//! store each one is served from.
//!
//! `pmrd` owns the *manifests* (the [`Compressed`] metadata: level
//! layout, error tables, checksums) in memory, while plane payloads are
//! pulled through the shared cache from each dataset's
//! [`SegmentStore`] — an in-memory clone for directory-loaded corpora
//! today, but any store (file-backed, fault-injected, counting
//! wrappers in tests) plugs in per dataset.

use pmr_error::PmrError;
use pmr_mgard::{persist, Compressed};
use pmr_storage::{MemStore, SegmentStore};
use std::collections::BTreeMap;
use std::path::Path;

/// One served dataset.
pub struct CorpusEntry {
    /// Stable id used in cache keys (assigned at insertion).
    pub id: u32,
    /// The artifact's manifest (levels, error tables, plane payload
    /// metadata used for checksum verification).
    pub manifest: Compressed,
    /// The backing store planes are fetched from.
    pub store: Box<dyn SegmentStore>,
}

/// Name → dataset map. Built once at startup (or by tests), then shared
/// read-only across request handlers.
#[derive(Default)]
pub struct Corpus {
    by_name: BTreeMap<String, CorpusEntry>,
    next_id: u32,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Add a dataset served from an explicit store. Returns its cache id.
    /// Re-inserting a name replaces the dataset (the old id is retired —
    /// stale cache entries simply age out of the LRU).
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        manifest: Compressed,
        store: Box<dyn SegmentStore>,
    ) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.by_name.insert(name.into(), CorpusEntry { id, manifest, store });
        id
    }

    /// Add a dataset served from an in-memory clone of its own planes.
    pub fn insert_mem(&mut self, name: impl Into<String>, manifest: Compressed) -> u32 {
        let store = Box::new(MemStore::from_compressed(&manifest));
        self.insert(name, manifest, store)
    }

    /// Load every `*.pmrc` artifact in `dir`; the dataset name is the file
    /// stem. Non-artifact files are skipped; a corrupt artifact is an
    /// error (a daemon silently serving half its corpus is worse than one
    /// that fails loudly at startup).
    pub fn load_dir(dir: &Path) -> Result<Corpus, PmrError> {
        let mut corpus = Corpus::new();
        let entries = std::fs::read_dir(dir).map_err(|e| PmrError::io_at(dir, e))?;
        let mut paths: Vec<_> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| PmrError::io_at(dir, e))?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "pmrc") {
                paths.push(path);
            }
        }
        paths.sort();
        for path in paths {
            let manifest = persist::load(&path)?;
            let name =
                path.file_stem().and_then(|s| s.to_str()).map(str::to_string).ok_or_else(|| {
                    PmrError::invalid_config(format!("non-utf8 corpus file name: {path:?}"))
                })?;
            corpus.insert_mem(name, manifest);
        }
        Ok(corpus)
    }

    /// Look up a dataset by name.
    pub fn get(&self, name: &str) -> Option<&CorpusEntry> {
        self.by_name.get(name)
    }

    /// Dataset names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.by_name.keys().map(String::as_str).collect()
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Is the corpus empty?
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_field::{Field, Shape};
    use pmr_mgard::CompressConfig;

    fn artifact(name: &str) -> Compressed {
        let field = Field::from_fn(name, 0, Shape::cube(9), |x, y, _| {
            ((x as f64) * 0.5).sin() + (y as f64) * 0.03
        });
        Compressed::compress(&field, &CompressConfig::default())
    }

    #[test]
    fn load_dir_names_datasets_by_file_stem() {
        let dir = std::env::temp_dir().join(format!("pmrd_corpus_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        for name in ["alpha", "beta"] {
            persist::save(&artifact(name), &dir.join(format!("{name}.pmrc"))).expect("save");
        }
        std::fs::write(dir.join("notes.txt"), b"ignored").expect("write");
        let corpus = Corpus::load_dir(&dir).expect("load");
        assert_eq!(corpus.names(), vec!["alpha", "beta"]);
        assert_eq!(corpus.len(), 2);
        let entry = corpus.get("alpha").expect("present");
        assert!(entry.store.contains((0, 0)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ids_are_distinct_across_insertions() {
        let mut corpus = Corpus::new();
        let a = corpus.insert_mem("a", artifact("a"));
        let b = corpus.insert_mem("b", artifact("b"));
        let b2 = corpus.insert_mem("b", artifact("b"));
        assert!(a != b && b != b2, "replaced datasets must get fresh cache ids");
    }
}
