//! The daemon: a thread-pool reactor serving retrieval requests over
//! TCP or a unix socket.
//!
//! One acceptor thread hands connections to a fixed pool of workers over
//! an mpsc channel; each worker runs the per-connection request loop
//! (connections are persistent — a client may issue many requests).
//! Request handling is the library's tolerant fetch loop with two
//! daemon-level additions: every plane fetch is routed through the
//! shared single-flight [`PlaneCache`], and admission control caps
//! in-flight retrievals globally and per tenant, answering `Busy`
//! instead of queueing invisibly.

use crate::admission::{Admission, AdmissionConfig, Permit};
use crate::cache::{Origin, PlaneCache};
use crate::corpus::{Corpus, CorpusEntry};
use crate::protocol::{self, Report, Request, Status, Target, FLAG_NO_PLANES};
use pmr_core::api::{plan_for_target, RetrievalTarget, Tolerance};
use pmr_core::Theory;
use pmr_storage::{ExpectedSegment, FetchExecutor, TolerantConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use pmr_mgard::greedy_plan_capped;

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Connection-serving worker threads. A worker holds one connection
    /// until the client closes it, so size this to at least the number of
    /// concurrent client connections — fewer workers than connections means
    /// the excess connections queue unserved behind the held ones.
    pub workers: usize,
    /// Shared plane cache capacity, in payload bytes.
    pub cache_bytes: u64,
    /// Admission caps (global and per tenant).
    pub admission: AdmissionConfig,
    /// Fault-tolerance knobs for the fetch path.
    pub tolerant: TolerantConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 8,
            cache_bytes: 64 << 20,
            admission: AdmissionConfig::default(),
            tolerant: TolerantConfig::default(),
        }
    }
}

/// The daemon state shared by every worker.
pub struct Daemon {
    corpus: Corpus,
    cache: PlaneCache,
    admission: Admission,
    cfg: DaemonConfig,
}

/// Planes served for one request, by `(level, plane, payload)`.
/// Payloads are shared with the cache — streaming a hot plane to many
/// clients never copies it.
pub type ServedPlanes = Vec<(usize, u32, Arc<Vec<u8>>)>;

fn held<T>(payloads: &[T]) -> u32 {
    u32::try_from(payloads.len()).unwrap_or(u32::MAX)
}

impl Daemon {
    /// Build a daemon over `corpus`.
    pub fn new(corpus: Corpus, cfg: DaemonConfig) -> Arc<Daemon> {
        Arc::new(Daemon {
            corpus,
            cache: PlaneCache::new(cfg.cache_bytes),
            admission: Admission::new(cfg.admission),
            cfg,
        })
    }

    /// The shared cache (counters are exposed for tests and ops).
    pub fn cache(&self) -> &PlaneCache {
        &self.cache
    }

    /// Admission state (rejection counter, in-flight gauge).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The served corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Handle one parsed request. Public so in-process tests can exercise
    /// the exact server path without sockets.
    pub fn handle_request(&self, req: &Request) -> (ServedPlanes, Report) {
        if req.strategy != 0 {
            let rep = Report::error(
                Status::Failed,
                format!(
                    "strategy {} not available (corpus serves theory plans only)",
                    req.strategy
                ),
            );
            return (Vec::new(), rep);
        }
        let Some(entry) = self.corpus.get(&req.dataset) else {
            let rep = Report::error(
                Status::NotFound,
                format!("no dataset {:?} in corpus of {}", req.dataset, self.corpus.len()),
            );
            return (Vec::new(), rep);
        };
        let Some(permit) = self.admission.try_acquire(&req.tenant) else {
            let rep = Report::error(
                Status::Busy,
                format!("tenant {:?} over admission cap; retry later", req.tenant),
            );
            return (Vec::new(), rep);
        };
        self.serve_admitted(entry, &req.target, permit)
    }

    fn serve_admitted(
        &self,
        entry: &CorpusEntry,
        target: &Target,
        _permit: Permit,
    ) -> (ServedPlanes, Report) {
        let manifest = &entry.manifest;
        let api_target = match target {
            Target::Abs(e) => RetrievalTarget::Tolerance(Tolerance::Abs(*e)),
            Target::Rel(r) => RetrievalTarget::Tolerance(Tolerance::Rel(*r)),
            Target::Bytes(b) => RetrievalTarget::ByteBudget(*b),
            Target::Planes(p) => RetrievalTarget::PlaneSet(p.clone()),
        };
        let plan = match plan_for_target(manifest, &Theory, &[], &api_target) {
            Ok(plan) => plan,
            Err(e) => return (Vec::new(), Report::error(Status::Malformed, e.to_string())),
        };
        // The bound the degraded re-plan chases: the tolerance when the
        // target is one, otherwise the plan's own sound estimate.
        let bound = match &api_target {
            RetrievalTarget::Tolerance(tol) => match tol.absolute(manifest) {
                Ok(b) => b,
                Err(e) => return (Vec::new(), Report::error(Status::Malformed, e.to_string())),
            },
            _ => manifest.estimate_for(&plan.planes),
        };

        // The tolerant fetch loop (mirrors `fetch_plan_tolerant`), with
        // every plane routed through the shared single-flight cache. The
        // executor is per-request: retries and attempts are accounted to
        // the request that ran them.
        let mut exec = FetchExecutor::new(entry.store.as_ref(), self.cfg.tolerant.policy.clone());
        let levels = manifest.levels();
        let nl = levels.len();
        let mut payloads: Vec<Vec<Arc<Vec<u8>>>> = vec![Vec::new(); nl];
        let mut caps: Vec<u32> = levels.iter().map(|l| l.num_planes()).collect();
        let mut target_planes = plan.planes.clone();
        let mut lost: Vec<(usize, u32)> = Vec::new();
        let mut cache_hits = 0u64;
        let mut coalesced = 0u64;

        for round in 0..=self.cfg.tolerant.max_replan_rounds {
            for (l, lvl) in levels.iter().enumerate() {
                while held(&payloads[l]) < target_planes[l].min(caps[l]) {
                    let k = held(&payloads[l]);
                    let key = (entry.id, l, k);
                    let fetched = self.cache.get_or_fetch(key, || {
                        exec.fetch_verified((l, k), ExpectedSegment::of(lvl.plane_payload(k)))
                    });
                    match fetched {
                        Ok((data, origin)) => {
                            match origin {
                                Origin::Hit => cache_hits += 1,
                                Origin::Coalesced => coalesced += 1,
                                Origin::Fetched => {}
                            }
                            payloads[l].push(data);
                        }
                        Err(_) => {
                            // Unrecoverable even after retries: truncate
                            // this level's prefix here.
                            lost.push((l, k));
                            caps[l] = k;
                            break;
                        }
                    }
                }
            }
            let any_capped_below_target = target_planes.iter().zip(&caps).any(|(&t, &c)| c < t);
            if !any_capped_below_target
                || !self.cfg.tolerant.replan
                || round == self.cfg.tolerant.max_replan_rounds
            {
                break;
            }
            let floor: Vec<u32> = payloads.iter().map(|p| held(p)).collect();
            let next =
                greedy_plan_capped(levels, manifest.theory_constants(), bound, &floor, &caps);
            if next.planes == floor {
                break;
            }
            target_planes = next.planes;
        }

        let achieved: Vec<u32> = payloads.iter().map(|p| held(p)).collect();
        let estimated_error = manifest.estimate_for(&achieved);
        let bytes: u64 = levels
            .iter()
            .zip(&achieved)
            .map(|(lvl, &n)| (0..n).map(|k| lvl.plane_size(k)).sum::<u64>())
            .sum();
        let stats = exec.stats();
        let report = Report {
            status: Status::Ok,
            planes: achieved,
            estimated_error,
            bytes,
            lost,
            attempts: stats.attempts,
            retries: stats.retries,
            cache_hits,
            coalesced,
            detail: String::new(),
        };
        let mut served: ServedPlanes = Vec::new();
        for (l, level_payloads) in payloads.into_iter().enumerate() {
            for (k, data) in level_payloads.into_iter().enumerate() {
                served.push((l, u32::try_from(k).unwrap_or(u32::MAX), data));
            }
        }
        (served, report)
    }

    /// Serve one connection until the peer closes it (or a protocol /
    /// transport error makes the stream unusable).
    fn serve_connection(&self, stream: &mut PmrdStream) {
        loop {
            let frame = match protocol::read_frame(stream) {
                Ok(Some(frame)) => frame,
                Ok(None) | Err(_) => return, // clean EOF or dead transport
            };
            let response = match protocol::decode_request(&frame) {
                Ok(req) => {
                    let (planes, report) = self.handle_request(&req);
                    let send_planes = req.flags & FLAG_NO_PLANES == 0;
                    (if send_planes { planes } else { Vec::new() }, report)
                }
                Err(e) => (Vec::new(), Report::error(Status::Malformed, e.to_string())),
            };
            let (planes, report) = response;
            for (l, k, data) in &planes {
                let Ok(payload) = protocol::encode_plane(*l, *k, data) else { return };
                if protocol::write_frame(stream, &payload).is_err() {
                    return;
                }
            }
            let Ok(payload) = protocol::encode_report(&report) else { return };
            if protocol::write_frame(stream, &payload).is_err() {
                return;
            }
            if stream.flush().is_err() {
                return;
            }
        }
    }

    /// Bind a TCP listener (use port 0 for an ephemeral port) and serve in
    /// background threads until [`DaemonHandle::stop`].
    pub fn spawn_tcp(self: &Arc<Self>, addr: &str) -> std::io::Result<DaemonHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        self.spawn_on(Listener::Tcp(listener), Endpoint::Tcp(local))
    }

    /// Bind a unix socket listener (the path must not exist) and serve in
    /// background threads until [`DaemonHandle::stop`].
    #[cfg(unix)]
    pub fn spawn_unix(self: &Arc<Self>, path: impl Into<PathBuf>) -> std::io::Result<DaemonHandle> {
        let path = path.into();
        let listener = UnixListener::bind(&path)?;
        self.spawn_on(Listener::Unix(listener), Endpoint::Unix(path))
    }

    fn spawn_on(
        self: &Arc<Self>,
        listener: Listener,
        endpoint: Endpoint,
    ) -> std::io::Result<DaemonHandle> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::new(Mutex::new(std::collections::BTreeMap::new()));
        let next_conn = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (tx, rx) = mpsc::channel::<PmrdStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.cfg.workers.max(1));
        for _ in 0..self.cfg.workers.max(1) {
            let daemon = Arc::clone(self);
            let rx = Arc::clone(&rx);
            let conns = Arc::clone(&conns);
            let next_conn = Arc::clone(&next_conn);
            let shutdown = Arc::clone(&shutdown);
            workers.push(std::thread::spawn(move || loop {
                let next = {
                    let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                    guard.recv()
                };
                match next {
                    Ok(mut stream) => {
                        if shutdown.load(Ordering::SeqCst) {
                            continue; // draining: refuse late connections
                        }
                        // Register a shutdown handle so `stop()` can cut a
                        // persistent connection out from under a blocked
                        // read; re-check the flag afterwards to close the
                        // race with a concurrent sweep.
                        let id = next_conn.fetch_add(1, Ordering::SeqCst);
                        if let Ok(handle) = stream.try_clone_handle() {
                            conns.lock().unwrap_or_else(PoisonError::into_inner).insert(id, handle);
                            if shutdown.load(Ordering::SeqCst) {
                                stream.shutdown_both();
                            }
                        }
                        daemon.serve_connection(&mut stream);
                        conns.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
                    }
                    Err(_) => return, // acceptor gone: drain complete
                }
            }));
        }
        let accept_shutdown = Arc::clone(&shutdown);
        let acceptor = std::thread::spawn(move || {
            loop {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        if accept_shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            // Dropping `tx` lets the workers drain and exit.
        });
        Ok(DaemonHandle { endpoint, shutdown, conns, acceptor: Some(acceptor), workers })
    }
}

/// Shutdown handles for connections currently being served.
type ConnRegistry = Arc<Mutex<std::collections::BTreeMap<u64, PmrdStream>>>;

/// Where a spawned daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<PmrdStream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| PmrdStream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| PmrdStream::Unix(s)),
        }
    }
}

/// A connected byte stream, TCP or unix.
pub enum PmrdStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl PmrdStream {
    /// A second handle to the same OS socket (for out-of-band shutdown).
    fn try_clone_handle(&self) -> std::io::Result<PmrdStream> {
        match self {
            PmrdStream::Tcp(s) => s.try_clone().map(PmrdStream::Tcp),
            #[cfg(unix)]
            PmrdStream::Unix(s) => s.try_clone().map(PmrdStream::Unix),
        }
    }

    /// Shut the socket down in both directions, unblocking any thread
    /// mid-read on another handle to it.
    fn shutdown_both(&self) {
        match self {
            PmrdStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            PmrdStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for PmrdStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            PmrdStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            PmrdStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for PmrdStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            PmrdStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            PmrdStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            PmrdStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            PmrdStream::Unix(s) => s.flush(),
        }
    }
}

/// Handle to a running daemon's listener and worker threads.
pub struct DaemonHandle {
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    conns: ConnRegistry,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// Where the daemon is listening.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The TCP address, when TCP-bound.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.endpoint {
            Endpoint::Tcp(a) => Some(*a),
            Endpoint::Unix(_) => None,
        }
    }

    /// Stop accepting, cut live connections, and join every thread.
    /// Persistent clients see their connection close; an in-flight
    /// request may still complete its current write.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Cut connections being served so blocked reads return. Workers
        // that pick a queued connection up after this sweep see the flag
        // and drop it unserved.
        {
            let conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            for conn in conns.values() {
                conn.shutdown_both();
            }
        }
        // Unblock the acceptor with a throwaway connection.
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            Endpoint::Unix(path) => {
                #[cfg(unix)]
                {
                    let _ = UnixStream::connect(path);
                }
                #[cfg(not(unix))]
                let _ = path;
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}
