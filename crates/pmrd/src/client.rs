//! A blocking pmrd client.
//!
//! Connects over TCP or a unix socket, issues requests, and collects the
//! streamed plane frames plus the terminating report. Reconstruction is
//! client-side: [`ServedRetrieval::reconstruct`] regroups the plane
//! payloads into per-level prefixes and decodes them against the
//! dataset's manifest, bit-identically to a direct library retrieval.
//!
//! Everything here is error-returning, never panicking: a daemon speaking
//! garbage produces a [`PmrError`], not a client crash.

use crate::protocol::{self, Frame, Report, Request, Target};
use crate::server::PmrdStream;
use pmr_error::PmrError;
use pmr_field::Field;
use pmr_mgard::Compressed;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

/// A parsed `tcp:HOST:PORT` / `unix:PATH` connection address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectAddr {
    Tcp(String),
    Unix(PathBuf),
}

impl ConnectAddr {
    /// Parse `tcp:host:port` or `unix:/path/to.sock`.
    pub fn parse(s: &str) -> Result<ConnectAddr, PmrError> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            Ok(ConnectAddr::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix:") {
            Ok(ConnectAddr::Unix(PathBuf::from(rest)))
        } else {
            Err(PmrError::invalid_config(format!("address {s:?} must start with tcp: or unix:")))
        }
    }
}

/// One response: the report plus the plane payloads that preceded it.
#[derive(Debug, Clone)]
pub struct ServedRetrieval {
    /// The achieved-bound report.
    pub report: Report,
    /// Streamed planes in arrival order: `(level, plane, payload)`.
    pub planes: Vec<(usize, u32, Vec<u8>)>,
}

impl ServedRetrieval {
    /// Decode the served planes against `manifest`. The daemon streams
    /// each level's planes as a contiguous prefix `0..n`; anything else is
    /// a protocol violation, reported as malformed rather than decoded
    /// into silent garbage.
    pub fn reconstruct(&self, manifest: &Compressed) -> Result<Field, PmrError> {
        let mut payloads: Vec<Vec<Vec<u8>>> = vec![Vec::new(); manifest.num_levels()];
        for (level, plane, payload) in &self.planes {
            let slot = payloads.get_mut(*level).ok_or_else(|| {
                PmrError::malformed(
                    "pmrd frame",
                    format!("plane frame for level {level} out of range"),
                )
            })?;
            let expected = u32::try_from(slot.len()).unwrap_or(u32::MAX);
            if *plane != expected {
                return Err(PmrError::malformed(
                    "pmrd frame",
                    format!(
                        "level {level} planes arrived out of order: got {plane}, want {expected}"
                    ),
                ));
            }
            slot.push(payload.clone());
        }
        manifest.retrieve_from_payloads(&payloads)
    }
}

/// A persistent connection to a pmrd daemon.
pub struct Client {
    stream: PmrdStream,
}

impl Client {
    /// Connect to `addr` (TCP or unix).
    pub fn connect(addr: &ConnectAddr) -> Result<Client, PmrError> {
        match addr {
            ConnectAddr::Tcp(hostport) => Client::connect_tcp(hostport),
            ConnectAddr::Unix(path) => Client::connect_unix(path),
        }
    }

    /// Connect over TCP, e.g. `"127.0.0.1:7070"`.
    pub fn connect_tcp(addr: &str) -> Result<Client, PmrError> {
        let stream = TcpStream::connect(addr).map_err(|e| PmrError::io_at(addr, e))?;
        stream.set_nodelay(true).map_err(|e| PmrError::io_at(addr, e))?;
        Ok(Client { stream: PmrdStream::Tcp(stream) })
    }

    /// Connect over a unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> Result<Client, PmrError> {
        let stream = UnixStream::connect(path).map_err(|e| PmrError::io_at(path, e))?;
        Ok(Client { stream: PmrdStream::Unix(stream) })
    }

    #[cfg(not(unix))]
    pub fn connect_unix(path: &Path) -> Result<Client, PmrError> {
        Err(PmrError::invalid_config(format!(
            "unix sockets unavailable on this platform: {path:?}"
        )))
    }

    /// Issue one retrieval with the default strategy and flags.
    pub fn retrieve(
        &mut self,
        tenant: &str,
        dataset: &str,
        target: Target,
    ) -> Result<ServedRetrieval, PmrError> {
        self.retrieve_with(tenant, dataset, target, 0, 0)
    }

    /// Issue one retrieval, choosing the strategy byte and flags (e.g.
    /// [`protocol::FLAG_NO_PLANES`] for a report-only probe).
    pub fn retrieve_with(
        &mut self,
        tenant: &str,
        dataset: &str,
        target: Target,
        strategy: u8,
        flags: u8,
    ) -> Result<ServedRetrieval, PmrError> {
        let req = Request {
            tenant: tenant.to_string(),
            dataset: dataset.to_string(),
            target,
            strategy,
            flags,
        };
        let payload = protocol::encode_request(&req)?;
        protocol::write_frame(&mut self.stream, &payload)
            .map_err(|e| PmrError::io_at("pmrd connection", e))?;
        let mut planes = Vec::new();
        loop {
            let frame = protocol::read_frame(&mut self.stream)
                .map_err(|e| PmrError::io_at("pmrd connection", e))?
                .ok_or_else(|| {
                    PmrError::malformed("pmrd frame", "daemon closed the stream mid-response")
                })?;
            match protocol::decode_frame(&frame)? {
                Frame::Plane(p) => planes.push((p.level, p.plane, p.payload)),
                Frame::Report(report) => return Ok(ServedRetrieval { report, planes }),
            }
        }
    }
}
