//! Per-tenant admission control.
//!
//! The daemon bounds in-flight retrievals two ways: a global cap (its
//! worker pool's appetite for concurrent fetch loops) and a per-tenant
//! cap (so one noisy tenant cannot monopolise every slot). Admission is
//! checked *before* any planning or fetching, and rejection is graceful
//! — the client receives a `Busy` report and decides when to retry,
//! rather than queueing invisibly inside the daemon.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Admission caps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum retrievals in flight daemon-wide.
    pub max_inflight: usize,
    /// Maximum retrievals in flight for any single tenant.
    pub max_inflight_per_tenant: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_inflight: 32, max_inflight_per_tenant: 8 }
    }
}

#[derive(Default)]
struct Counts {
    total: usize,
    per_tenant: BTreeMap<String, usize>,
    rejected: u64,
}

/// Shared admission state. Cheap to clone (`Arc` inside).
#[derive(Clone)]
pub struct Admission {
    cfg: AdmissionConfig,
    counts: Arc<Mutex<Counts>>,
}

/// RAII admission slot: dropping it releases both the global and the
/// tenant count.
pub struct Permit {
    tenant: String,
    counts: Arc<Mutex<Counts>>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut g = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        g.total = g.total.saturating_sub(1);
        if let Some(n) = g.per_tenant.get_mut(&self.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                g.per_tenant.remove(&self.tenant);
            }
        }
    }
}

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission { cfg, counts: Arc::new(Mutex::new(Counts::default())) }
    }

    /// Try to admit one retrieval for `tenant`. `None` means over a cap —
    /// the caller should answer `Busy`.
    pub fn try_acquire(&self, tenant: &str) -> Option<Permit> {
        let mut g = self.counts.lock().unwrap_or_else(PoisonError::into_inner);
        let tenant_inflight = g.per_tenant.get(tenant).copied().unwrap_or(0);
        if g.total >= self.cfg.max_inflight || tenant_inflight >= self.cfg.max_inflight_per_tenant {
            g.rejected += 1;
            return None;
        }
        g.total += 1;
        *g.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        Some(Permit { tenant: tenant.to_string(), counts: Arc::clone(&self.counts) })
    }

    /// Requests turned away since daemon start.
    pub fn rejected(&self) -> u64 {
        self.counts.lock().unwrap_or_else(PoisonError::into_inner).rejected
    }

    /// Retrievals currently in flight.
    pub fn inflight(&self) -> usize {
        self.counts.lock().unwrap_or_else(PoisonError::into_inner).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tenant_cap_bites_before_global() {
        let adm = Admission::new(AdmissionConfig { max_inflight: 10, max_inflight_per_tenant: 2 });
        let a1 = adm.try_acquire("a").expect("first");
        let _a2 = adm.try_acquire("a").expect("second");
        assert!(adm.try_acquire("a").is_none(), "tenant a is at its cap");
        let _b1 = adm.try_acquire("b").expect("other tenants still admitted");
        assert_eq!(adm.rejected(), 1);
        assert_eq!(adm.inflight(), 3);
        drop(a1);
        assert!(adm.try_acquire("a").is_some(), "releasing a permit frees the slot");
    }

    #[test]
    fn global_cap_rejects_everyone() {
        let adm = Admission::new(AdmissionConfig { max_inflight: 2, max_inflight_per_tenant: 2 });
        let _p1 = adm.try_acquire("a").expect("1");
        let _p2 = adm.try_acquire("b").expect("2");
        assert!(adm.try_acquire("c").is_none());
        assert_eq!(adm.inflight(), 2);
    }

    #[test]
    fn dropping_permits_fully_drains_counts() {
        let adm = Admission::new(AdmissionConfig::default());
        let permits: Vec<_> = (0..5).filter_map(|i| adm.try_acquire(&format!("t{i}"))).collect();
        assert_eq!(adm.inflight(), 5);
        drop(permits);
        assert_eq!(adm.inflight(), 0);
    }
}
