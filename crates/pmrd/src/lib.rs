//! `pmrd` — a multi-tenant progressive-retrieval daemon.
//!
//! The library crates answer "how do I retrieve this artifact well";
//! `pmrd` answers "how do I *serve* that to many concurrent consumers".
//! A long-running daemon owns a corpus of compressed artifacts and their
//! segment stores, and serves retrieval requests over a length-prefixed
//! binary protocol (TCP or unix socket): request in, streamed bit-plane
//! payloads plus an achieved-bound report out.
//!
//! The daemon-level mechanics on top of the library's tolerant fetch
//! path:
//!
//! * [`cache::PlaneCache`] — a shared plane-level LRU keyed
//!   `(dataset, level, plane)` with **single-flight coalescing**:
//!   concurrent requests for the same plane trigger exactly one backing
//!   fetch, everyone else parks and shares the result.
//! * [`admission::Admission`] — global and per-tenant in-flight caps,
//!   rejecting with a graceful `Busy` report instead of queueing.
//! * [`server::Daemon`] — a small thread-pool reactor (one acceptor,
//!   N connection workers) over `std::net`; no async runtime.
//! * [`client::Client`] / [`load`] — a blocking client whose
//!   reconstructions are bit-identical to direct library retrievals, and
//!   an open-loop load generator reporting latency percentiles.
//!
//! Wire protocol details live in [`protocol`].

pub mod admission;
pub mod cache;
pub mod client;
pub mod corpus;
pub mod load;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionConfig};
pub use cache::{CacheStats, Origin, PlaneCache};
pub use client::{Client, ConnectAddr, ServedRetrieval};
pub use corpus::{Corpus, CorpusEntry};
pub use load::{run_load, LoadReport, LoadSpec};
pub use protocol::{Report, Request, Status, Target, FLAG_NO_PLANES};
pub use server::{Daemon, DaemonConfig, DaemonHandle, Endpoint};
