//! Open-loop load generation against a running daemon.
//!
//! Request start times are scheduled on a fixed grid (`i / rate`) before
//! any request is sent — the generator does not slow down when the
//! daemon does, which is what makes the measured latencies honest under
//! overload (closed-loop generators coordinate with the server and hide
//! queueing delay).
//!
//! Each worker thread owns one persistent connection and pulls the next
//! scheduled request index from a shared atomic counter, sleeping until
//! that request's start time. Latency is measured from the *scheduled*
//! start (so schedule slip counts against the daemon, not the client).

use crate::client::{Client, ConnectAddr};
use crate::protocol::{Status, Target, FLAG_NO_PLANES};
use pmr_error::PmrError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Datasets cycled round-robin across requests.
    pub datasets: Vec<String>,
    /// Tenant names cycled across requests.
    pub tenants: Vec<String>,
    /// Targets cycled across requests (mixed tolerances exercise both
    /// cache-friendly coarse planes and deep fetches).
    pub targets: Vec<Target>,
    /// Total requests to issue.
    pub requests: usize,
    /// Offered load in requests per second (open loop).
    pub rate_rps: f64,
    /// Client connections / worker threads.
    pub connections: usize,
    /// Ask the daemon to skip plane frames (report-only probes measure
    /// the fetch path without download bandwidth).
    pub report_only: bool,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            datasets: Vec::new(),
            tenants: vec!["load".to_string()],
            targets: vec![Target::Rel(1e-3)],
            requests: 100,
            rate_rps: 50.0,
            connections: 8,
            report_only: false,
        }
    }
}

/// Aggregated result of one load run at one offered rate.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    pub offered_rps: f64,
    pub requests: usize,
    pub ok: usize,
    pub busy: usize,
    pub degraded: usize,
    /// Transport or protocol failures — must be zero on a healthy daemon.
    pub errors: usize,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    /// Wall-clock completion rate actually achieved.
    pub achieved_rps: f64,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    // 0.0, not NaN: the report is serialized as JSON, which has no NaN.
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    let idx = rank.saturating_sub(1).min(sorted_ms.len() - 1);
    sorted_ms.get(idx).copied().unwrap_or(0.0)
}

#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    ok: usize,
    busy: usize,
    degraded: usize,
    errors: usize,
}

/// Run one open-loop burst against `addr`.
pub fn run_load(addr: &ConnectAddr, spec: &LoadSpec) -> Result<LoadReport, PmrError> {
    if spec.datasets.is_empty() || spec.tenants.is_empty() || spec.targets.is_empty() {
        return Err(PmrError::invalid_config(
            "load spec needs at least one dataset, tenant, and target".to_string(),
        ));
    }
    if !(spec.rate_rps.is_finite() && spec.rate_rps > 0.0) {
        return Err(PmrError::invalid_config(format!(
            "offered rate must be finite and positive, got {}",
            spec.rate_rps
        )));
    }
    let connections = spec.connections.clamp(1, spec.requests.max(1));
    let next = Arc::new(AtomicUsize::new(0));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let flags = if spec.report_only { FLAG_NO_PLANES } else { 0 };
    let epoch = Instant::now();
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..connections {
            let next = Arc::clone(&next);
            let tally = Arc::clone(&tally);
            scope.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        let mut t = tally.lock().unwrap_or_else(PoisonError::into_inner);
                        // Count every request this connection would have
                        // served as an error — a refused connect must not
                        // silently shrink the run.
                        t.errors += 1;
                        return;
                    }
                };
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= spec.requests {
                        return;
                    }
                    let scheduled = epoch + Duration::from_secs_f64(i as f64 / spec.rate_rps);
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let dataset = &spec.datasets[i % spec.datasets.len()];
                    let tenant = &spec.tenants[i % spec.tenants.len()];
                    let target = spec.targets[i % spec.targets.len()].clone();
                    let outcome = client.retrieve_with(tenant, dataset, target, 0, flags);
                    // From the *scheduled* start: schedule slip counts.
                    let latency_ms = scheduled.elapsed().as_secs_f64() * 1e3;
                    let mut t = tally.lock().unwrap_or_else(PoisonError::into_inner);
                    match outcome {
                        Ok(served) => match served.report.status {
                            Status::Ok => {
                                t.ok += 1;
                                if served.report.is_degraded() {
                                    t.degraded += 1;
                                }
                                t.latencies_ms.push(latency_ms);
                            }
                            Status::Busy => t.busy += 1,
                            _ => t.errors += 1,
                        },
                        Err(_) => {
                            t.errors += 1;
                            return; // the connection is unusable now
                        }
                    }
                }
            });
        }
    });

    let elapsed_s = started.elapsed().as_secs_f64().max(1e-9);
    let mut t = Arc::try_unwrap(tally)
        .map_err(|_| PmrError::invalid_config("load worker leaked its tally handle".to_string()))?
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    t.latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // 0.0, not NaN, on an all-error run: the value lands in JSON output.
    let mean_ms = if t.latencies_ms.is_empty() {
        0.0
    } else {
        t.latencies_ms.iter().sum::<f64>() / t.latencies_ms.len() as f64
    };
    Ok(LoadReport {
        offered_rps: spec.rate_rps,
        requests: spec.requests,
        ok: t.ok,
        busy: t.busy,
        degraded: t.degraded,
        errors: t.errors,
        p50_ms: percentile(&t.latencies_ms, 50.0),
        p90_ms: percentile(&t.latencies_ms, 90.0),
        p99_ms: percentile(&t.latencies_ms, 99.0),
        mean_ms,
        achieved_rps: t.ok as f64 / elapsed_s,
    })
}

/// Render load reports as the repo's hand-rolled benchmark JSON (one
/// object per offered rate, newline-separated inside a top-level array).
pub fn reports_to_json(runs: &[LoadReport], label: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"pmrd-load\",\n  \"label\": {label:?},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"offered_rps\": {:.1}, \"requests\": {}, \"ok\": {}, \"busy\": {}, \
             \"degraded\": {}, \"errors\": {}, \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"achieved_rps\": {:.1}}}{}\n",
            r.offered_rps,
            r.requests,
            r.ok,
            r.busy,
            r.degraded,
            r.errors,
            r.p50_ms,
            r.p90_ms,
            r.p99_ms,
            r.mean_ms,
            r.achieved_rps,
            if i + 1 == runs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_ceiling_rank() {
        let ms: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&ms, 50.0), 50.0);
        assert_eq!(percentile(&ms, 99.0), 99.0);
        assert_eq!(percentile(&ms, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        // Empty input yields 0.0, never NaN: the value lands in JSON output.
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn json_is_shaped_like_a_bench_artifact() {
        let runs = vec![LoadReport {
            offered_rps: 50.0,
            requests: 10,
            ok: 10,
            busy: 0,
            degraded: 0,
            errors: 0,
            p50_ms: 1.0,
            p90_ms: 2.0,
            p99_ms: 3.0,
            mean_ms: 1.5,
            achieved_rps: 49.0,
        }];
        let json = reports_to_json(&runs, "smoke");
        assert!(json.contains("\"bench\": \"pmrd-load\""));
        assert!(json.contains("\"p99_ms\": 3.000"));
        assert!(json.ends_with("}\n"));
    }
}
