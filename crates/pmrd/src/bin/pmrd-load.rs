//! Open-loop load generator for a running pmrd daemon.
//!
//! ```text
//! pmrd-load --connect tcp:127.0.0.1:7070 --dataset jet \
//!           [--requests 200] [--rates 50,200] [--connections 8] \
//!           [--report-only] [--out BENCH_pmrd.json]
//! ```
//!
//! Issues `--requests` retrievals at each offered rate (requests per
//! second, open loop: the schedule never slows down for a lagging
//! daemon), cycling a mixed set of tolerance targets, and reports
//! latency percentiles per rate. Exits non-zero if any run saw a
//! protocol or transport error.

use pmrd::load::reports_to_json;
use pmrd::{run_load, ConnectAddr, LoadSpec, Target};
use std::path::PathBuf;

struct Args {
    connect: String,
    datasets: Vec<String>,
    requests: usize,
    rates: Vec<f64>,
    connections: usize,
    report_only: bool,
    out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pmrd-load --connect tcp:HOST:PORT|unix:PATH --dataset NAME [--dataset NAME ...] \
         [--requests N] [--rates R1,R2,...] [--connections N] [--report-only] [--out FILE.json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: String::new(),
        datasets: Vec::new(),
        requests: 200,
        rates: vec![50.0, 200.0],
        connections: 8,
        report_only: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--connect" => args.connect = value("--connect"),
            "--dataset" => args.datasets.push(value("--dataset")),
            "--requests" => args.requests = value("--requests").parse().unwrap_or_else(|_| usage()),
            "--rates" => {
                args.rates = value("--rates")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--connections" => {
                args.connections = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--report-only" => args.report_only = true,
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.connect.is_empty() || args.datasets.is_empty() || args.rates.is_empty() {
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    let addr = match ConnectAddr::parse(&args.connect) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let mut runs = Vec::new();
    let mut any_errors = false;
    for &rate in &args.rates {
        let spec = LoadSpec {
            datasets: args.datasets.clone(),
            tenants: vec!["load-a".into(), "load-b".into()],
            targets: vec![
                Target::Rel(1e-2),
                Target::Rel(1e-3),
                Target::Rel(1e-4),
                Target::Bytes(64 << 10),
            ],
            requests: args.requests,
            rate_rps: rate,
            connections: args.connections,
            report_only: args.report_only,
        };
        match run_load(&addr, &spec) {
            Ok(report) => {
                eprintln!(
                    "rate {:>7.1} rps: ok {} busy {} degraded {} errors {} | \
                     p50 {:.2} ms p90 {:.2} ms p99 {:.2} ms (achieved {:.1} rps)",
                    report.offered_rps,
                    report.ok,
                    report.busy,
                    report.degraded,
                    report.errors,
                    report.p50_ms,
                    report.p90_ms,
                    report.p99_ms,
                    report.achieved_rps,
                );
                any_errors |= report.errors > 0;
                runs.push(report);
            }
            Err(e) => {
                eprintln!("load run at {rate} rps failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let json = reports_to_json(&runs, &args.connect);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
        None => print!("{json}"),
    }
    if any_errors {
        eprintln!("pmrd-load: protocol/transport errors observed");
        std::process::exit(1);
    }
}
