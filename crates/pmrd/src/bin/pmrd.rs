//! The pmrd daemon binary.
//!
//! ```text
//! pmrd --listen tcp:127.0.0.1:7070 --corpus ./artifacts \
//!      [--workers 8] [--cache-mb 64] [--max-inflight 32] [--per-tenant 8]
//! pmrd --listen unix:/tmp/pmrd.sock --corpus ./artifacts
//! ```
//!
//! The corpus directory is scanned for `*.pmrc` artifacts (written by
//! `pmrtool compress`); each is served under its file stem. The daemon
//! runs until SIGINT/SIGTERM kills the process.

use pmrd::{AdmissionConfig, Corpus, Daemon, DaemonConfig, Endpoint};
use std::path::PathBuf;

struct Args {
    listen: String,
    corpus: PathBuf,
    workers: usize,
    cache_mb: u64,
    max_inflight: usize,
    per_tenant: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: pmrd --listen tcp:HOST:PORT|unix:PATH --corpus DIR \
         [--workers N] [--cache-mb MB] [--max-inflight N] [--per-tenant N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: String::new(),
        corpus: PathBuf::new(),
        workers: 8,
        cache_mb: 64,
        max_inflight: 32,
        per_tenant: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen"),
            "--corpus" => args.corpus = PathBuf::from(value("--corpus")),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers"),
            "--cache-mb" => args.cache_mb = parse_num(&value("--cache-mb"), "--cache-mb"),
            "--max-inflight" => {
                args.max_inflight = parse_num(&value("--max-inflight"), "--max-inflight")
            }
            "--per-tenant" => args.per_tenant = parse_num(&value("--per-tenant"), "--per-tenant"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.listen.is_empty() || args.corpus.as_os_str().is_empty() {
        usage()
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} wants a number, got {s:?}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let corpus = match Corpus::load_dir(&args.corpus) {
        Ok(c) if !c.is_empty() => c,
        Ok(_) => {
            eprintln!("corpus {:?} holds no *.pmrc artifacts", args.corpus);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("failed to load corpus {:?}: {e}", args.corpus);
            std::process::exit(1);
        }
    };
    eprintln!("pmrd: serving {} dataset(s): {}", corpus.len(), corpus.names().join(", "));

    let cfg = DaemonConfig {
        workers: args.workers.max(1),
        cache_bytes: args.cache_mb.saturating_mul(1 << 20),
        admission: AdmissionConfig {
            max_inflight: args.max_inflight.max(1),
            max_inflight_per_tenant: args.per_tenant.max(1),
        },
        ..DaemonConfig::default()
    };
    let daemon = Daemon::new(corpus, cfg);

    let handle = if let Some(addr) = args.listen.strip_prefix("tcp:") {
        daemon.spawn_tcp(addr)
    } else if let Some(path) = args.listen.strip_prefix("unix:") {
        spawn_unix(&daemon, path)
    } else {
        eprintln!("--listen must be tcp:HOST:PORT or unix:PATH, got {:?}", args.listen);
        std::process::exit(2);
    };
    let handle = match handle {
        Ok(h) => h,
        Err(e) => {
            eprintln!("pmrd: failed to bind {:?}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    match handle.endpoint() {
        Endpoint::Tcp(a) => eprintln!("pmrd: listening on tcp:{a}"),
        Endpoint::Unix(p) => eprintln!("pmrd: listening on unix:{}", p.display()),
    }

    // Serve until the process is killed: the acceptor and workers own the
    // runtime; this thread just parks.
    loop {
        std::thread::park();
    }
}

#[cfg(unix)]
fn spawn_unix(daemon: &std::sync::Arc<Daemon>, path: &str) -> std::io::Result<pmrd::DaemonHandle> {
    // A stale socket file from a crashed daemon would fail the bind.
    let _ = std::fs::remove_file(path);
    daemon.spawn_unix(path)
}

#[cfg(not(unix))]
fn spawn_unix(_: &std::sync::Arc<Daemon>, path: &str) -> std::io::Result<pmrd::DaemonHandle> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        format!("unix sockets unavailable on this platform: {path}"),
    ))
}
